"""Graph traversal orders for iterative dataflow solving.

Iterating a forward problem in reverse postorder (and a backward problem
in reverse postorder of the *reversed* graph) propagates facts along as
many edges as possible per sweep, giving the classic
``O(depth + 2)``-sweep convergence bound for reducible graphs.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.ir.cfg import CFG


def postorder(cfg: CFG) -> List[str]:
    """Depth-first postorder of block labels starting at the entry.

    Deterministic: children are visited in terminator successor order.
    Only blocks reachable from the entry appear.
    """
    seen: Set[str] = set()
    order: List[str] = []
    # Iterative DFS with an explicit stack of (label, child iterator).
    stack = [(cfg.entry, iter(cfg.succs(cfg.entry)))]
    seen.add(cfg.entry)
    while stack:
        label, children = stack[-1]
        advanced = False
        for child in children:
            if child not in seen:
                seen.add(child)
                stack.append((child, iter(cfg.succs(child))))
                advanced = True
                break
        if not advanced:
            order.append(label)
            stack.pop()
    return order


def reverse_postorder(cfg: CFG) -> List[str]:
    """Reverse postorder from the entry — the forward iteration order."""
    return list(reversed(postorder(cfg)))


def backward_order(cfg: CFG) -> List[str]:
    """Iteration order for backward problems.

    A depth-first postorder of the reversed graph, reversed — i.e. facts
    flow from the exit towards the entry as early as possible per sweep.
    """
    seen: Set[str] = set()
    order: List[str] = []
    stack = [(cfg.exit, iter(cfg.preds(cfg.exit)))]
    seen.add(cfg.exit)
    while stack:
        label, parents = stack[-1]
        advanced = False
        for parent in parents:
            if parent not in seen:
                seen.add(parent)
                stack.append((parent, iter(cfg.preds(parent))))
                advanced = True
                break
        if not advanced:
            order.append(label)
            stack.pop()
    # Blocks that cannot reach the exit do not occur in valid CFGs
    # (validate_cfg enforces this), but be permissive: append any
    # remaining blocks in graph order so the solver still terminates.
    remaining = [label for label in cfg.labels if label not in seen]
    return list(reversed(order)) + remaining


def rpo_index(cfg: CFG) -> Dict[str, int]:
    """Map each label to its reverse-postorder position."""
    return {label: i for i, label in enumerate(reverse_postorder(cfg))}
