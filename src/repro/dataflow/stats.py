"""Solver statistics shared by the unidirectional and bidirectional solvers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class SolverStats:
    """Work performed by one solver run.

    Attributes:
        sweeps: number of full passes over the iteration order
            (round-robin solver) or 0 for worklist runs.
        node_visits: number of transfer-function evaluations.
        bitvec_ops: logical bit-vector operations, by kind, when the run
            happened inside a :func:`repro.dataflow.bitvec.counting`
            context attached by the caller; empty otherwise.
        backend: which solve loop produced the result — ``"dense"``
            (int-array sweeps, :mod:`repro.dataflow.dense`) or
            ``"reference"`` (the counted object path); empty for stats
            not produced by a single solve (merges, bespoke loops).
    """

    sweeps: int = 0
    node_visits: int = 0
    bitvec_ops: Dict[str, int] = field(default_factory=dict)
    backend: str = ""

    @property
    def total_bitvec_ops(self) -> int:
        return sum(self.bitvec_ops.values())

    def merged(self, other: "SolverStats") -> "SolverStats":
        ops = dict(self.bitvec_ops)
        for kind, n in other.bitvec_ops.items():
            ops[kind] = ops.get(kind, 0) + n
        return SolverStats(
            sweeps=self.sweeps + other.sweeps,
            node_visits=self.node_visits + other.node_visits,
            bitvec_ops=ops,
        )
