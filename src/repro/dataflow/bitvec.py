"""Fixed-width bit vectors with optional operation counting.

All global analyses in this reproduction operate on bit vectors indexed
by an expression universe.  The vectors are immutable value objects
backed by Python integers, so ``&``, ``|`` and ``~`` are single machine
operations for realistic universe sizes — exactly the cost model the
paper's "bit-vector data flow analysis" complexity claims assume.

For benchmark C1 (cost comparison of LCM's unidirectional analyses
against the bidirectional Morel–Renvoise system) every logical operation
can be counted: install an :class:`OpCounter` with the :func:`counting`
context manager and run the analyses inside it.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator


@dataclass
class OpCounter:
    """Tally of logical bit-vector operations, by operator kind."""

    counts: Dict[str, int] = field(default_factory=dict)

    def bump(self, kind: str) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def merged(self, other: "OpCounter") -> "OpCounter":
        merged = OpCounter(dict(self.counts))
        for kind, n in other.counts.items():
            merged.counts[kind] = merged.counts.get(kind, 0) + n
        return merged


#: The stack of installed ``(counter, exclusive)`` entries; empty when
#: counting is off (the default).  A stack — not a single slot — so the
#: tracing layer can attach a per-solve counter inside a whole-run
#: measurement (``measure_strategy``) without stealing its operations.
_ACTIVE_COUNTERS: tuple = ()


@contextmanager
def counting(exclusive: bool = True) -> Iterator[OpCounter]:
    """Count bit-vector operations performed inside the ``with`` block.

    By default a nested context *shadows* any enclosing one: the inner
    counter takes every operation and outer counters see none until it
    exits (so a measurement carved out of a larger one stays disjoint).
    With ``exclusive=False`` the context *joins* instead: operations
    count here **and** continue to propagate to the counters below —
    the mode the tracing layer uses to annotate solver spans without
    distorting an enclosing benchmark total.
    """
    global _ACTIVE_COUNTERS
    counter = OpCounter()
    previous = _ACTIVE_COUNTERS
    _ACTIVE_COUNTERS = previous + ((counter, exclusive),)
    try:
        yield counter
    finally:
        _ACTIVE_COUNTERS = previous


def _bump(kind: str) -> None:
    for counter, exclusive in reversed(_ACTIVE_COUNTERS):
        counter.bump(kind)
        if exclusive:
            break


def counting_active() -> bool:
    """True when any :func:`counting` context is installed.

    The dense solver backend (:mod:`repro.dataflow.dense`) performs no
    ``BitVector`` operations at all, so it checks this once per solve
    and steps aside — routing to the reference solver — whenever a
    measurement is in progress (benchmark C1 relies on every logical
    operation being tallied).
    """
    return bool(_ACTIVE_COUNTERS)


try:  # Python >= 3.10: native popcount.
    _popcount = int.bit_count
except AttributeError:  # pragma: no cover - 3.9 fallback
    def _popcount(bits: int) -> int:
        return bin(bits).count("1")


class BitVector:
    """An immutable bit vector of fixed width.

    Bit *i* corresponds to element *i* of whatever universe the caller
    indexes by (for the PRE analyses: expression *i*).  Out-of-range bits
    never appear; complement is taken within the width.
    """

    __slots__ = ("width", "bits")

    def __init__(self, width: int, bits: int = 0) -> None:
        if width < 0:
            raise ValueError(f"width must be >= 0, got {width}")
        mask = (1 << width) - 1
        if bits & ~mask:
            raise ValueError(f"bits {bits:#x} exceed width {width}")
        self.width = width
        self.bits = bits

    # -- constructors ---------------------------------------------------

    @classmethod
    def empty(cls, width: int) -> "BitVector":
        """The all-zeros vector (bottom of the union lattice)."""
        return cls(width, 0)

    @classmethod
    def full(cls, width: int) -> "BitVector":
        """The all-ones vector (top of the intersection lattice)."""
        return cls(width, (1 << width) - 1)

    @classmethod
    def of(cls, width: int, indices) -> "BitVector":
        """A vector with exactly the given *indices* set."""
        bits = 0
        for i in indices:
            if not 0 <= i < width:
                raise IndexError(f"bit {i} out of range for width {width}")
            bits |= 1 << i
        return cls(width, bits)

    @classmethod
    def singleton(cls, width: int, index: int) -> "BitVector":
        """A vector with only *index* set."""
        return cls.of(width, (index,))

    # -- logical operations ---------------------------------------------

    def _check(self, other: "BitVector") -> None:
        if not isinstance(other, BitVector):
            raise TypeError(f"expected BitVector, got {type(other).__name__}")
        if other.width != self.width:
            raise ValueError(
                f"width mismatch: {self.width} vs {other.width}"
            )

    def __and__(self, other: "BitVector") -> "BitVector":
        self._check(other)
        _bump("and")
        return BitVector(self.width, self.bits & other.bits)

    def __or__(self, other: "BitVector") -> "BitVector":
        self._check(other)
        _bump("or")
        return BitVector(self.width, self.bits | other.bits)

    def __xor__(self, other: "BitVector") -> "BitVector":
        self._check(other)
        _bump("xor")
        return BitVector(self.width, self.bits ^ other.bits)

    def __invert__(self) -> "BitVector":
        _bump("not")
        return BitVector(self.width, self.bits ^ ((1 << self.width) - 1))

    def __sub__(self, other: "BitVector") -> "BitVector":
        """Set difference: ``self & ~other`` as one counted operation."""
        self._check(other)
        _bump("andnot")
        return BitVector(self.width, self.bits & ~other.bits)

    # -- comparisons and queries ----------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return self.width == other.width and self.bits == other.bits

    def __hash__(self) -> int:
        return hash((self.width, self.bits))

    def __bool__(self) -> bool:
        return self.bits != 0

    def __contains__(self, index: int) -> bool:
        return 0 <= index < self.width and bool(self.bits >> index & 1)

    def __len__(self) -> int:
        return self.width

    def get(self, index: int) -> bool:
        """Value of bit *index* (range-checked)."""
        if not 0 <= index < self.width:
            raise IndexError(f"bit {index} out of range for width {self.width}")
        return bool(self.bits >> index & 1)

    def with_bit(self, index: int, value: bool = True) -> "BitVector":
        """A copy with bit *index* set (or cleared)."""
        if not 0 <= index < self.width:
            raise IndexError(f"bit {index} out of range for width {self.width}")
        if value:
            return BitVector(self.width, self.bits | (1 << index))
        return BitVector(self.width, self.bits & ~(1 << index))

    def issubset(self, other: "BitVector") -> bool:
        self._check(other)
        return self.bits & ~other.bits == 0

    def count(self) -> int:
        """Number of set bits (``int.bit_count`` where available)."""
        return _popcount(self.bits)

    def indices(self) -> Iterator[int]:
        """Yield the set bit positions in increasing order.

        Jumps straight from one set bit to the next (isolate the lowest
        set bit, locate it, clear it), so iteration costs O(popcount)
        big-int operations instead of O(width) single-bit shifts.
        """
        bits = self.bits
        while bits:
            low = bits & -bits
            yield low.bit_length() - 1
            bits ^= low

    def __iter__(self) -> Iterator[int]:
        return self.indices()

    def __repr__(self) -> str:
        return f"BitVector({self.width}, {{{', '.join(map(str, self))}}})"
