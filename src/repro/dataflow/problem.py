"""Declarative descriptions of unidirectional bit-vector dataflow problems.

A :class:`DataflowProblem` packages everything a solver needs:

* the direction facts flow in (:class:`Direction`),
* how facts meet at control-flow joins (:class:`Confluence`),
* the vector width (size of the expression universe),
* the per-block transfer function,
* the boundary value (at the entry for forward problems, at the exit for
  backward ones) and the initial interior value (the lattice top).

Transfer functions always map the block's *input-side* fact to its
*output-side* fact in the direction of flow: for a forward problem the
solver calls ``transfer(label, fact_at_block_entry)`` and stores the
result as the fact at block exit; for a backward problem it calls
``transfer(label, fact_at_block_exit)`` and stores the result at entry.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.dataflow.bitvec import BitVector


class Direction(enum.Enum):
    """Which way facts propagate along control flow edges."""

    FORWARD = "forward"
    BACKWARD = "backward"


class Confluence(enum.Enum):
    """The meet operation at control-flow joins.

    INTERSECT is the *all paths* quantifier (availability,
    anticipability, delayability); UNION is *some path* (partial
    availability, liveness).
    """

    INTERSECT = "intersect"
    UNION = "union"


#: A transfer function from input-side fact to output-side fact.
Transfer = Callable[[str, BitVector], BitVector]


@dataclass(frozen=True)
class GenKillTransfer:
    """The standard ``out = gen ∪ (in ∩ keep)`` transfer family.

    Every LCM analysis is of this shape, e.g. anticipability uses
    ``gen = ANTLOC`` and ``keep = TRANSP``.  ``keep`` is the complement of
    the usual *kill* set; storing it directly saves a negation per
    application, mirroring how production implementations (GCC's
    ``lcm.c``) precompute transparency.
    """

    gen: Mapping[str, BitVector]
    keep: Mapping[str, BitVector]

    def __call__(self, label: str, fact: BitVector) -> BitVector:
        return self.gen[label] | (fact & self.keep[label])

    def lower(self, labels) -> tuple:
        """Parallel raw-int ``(gen, keep)`` arrays, in *labels* order.

        The dense backend's lowering hook (see
        :func:`repro.dataflow.dense.lower_transfer`): the returned
        arrays satisfy ``transfer(labels[i], fact).bits ==
        gen[i] | (fact.bits & keep[i])`` exactly, so the inner solve
        loop needs no ``BitVector`` objects at all.
        """
        gen = self.gen
        keep = self.keep
        return (
            [gen[label].bits for label in labels],
            [keep[label].bits for label in labels],
        )


@dataclass(frozen=True)
class DataflowProblem:
    """A complete unidirectional bit-vector problem instance."""

    name: str
    direction: Direction
    confluence: Confluence
    width: int
    transfer: Transfer
    boundary: BitVector
    init: BitVector

    def __post_init__(self) -> None:
        if self.boundary.width != self.width:
            raise ValueError(
                f"{self.name}: boundary width {self.boundary.width} != {self.width}"
            )
        if self.init.width != self.width:
            raise ValueError(
                f"{self.name}: init width {self.init.width} != {self.width}"
            )

    @classmethod
    def forward_intersect(
        cls, name: str, width: int, transfer: Transfer
    ) -> "DataflowProblem":
        """Forward all-paths problem with the conventional init/boundary.

        Boundary (entry) = ∅ — nothing holds before the program runs;
        interior init = full — the optimistic top of the intersection
        lattice.
        """
        return cls(
            name,
            Direction.FORWARD,
            Confluence.INTERSECT,
            width,
            transfer,
            boundary=BitVector.empty(width),
            init=BitVector.full(width),
        )

    @classmethod
    def backward_intersect(
        cls, name: str, width: int, transfer: Transfer
    ) -> "DataflowProblem":
        """Backward all-paths problem (boundary at exit = ∅, init = full)."""
        return cls(
            name,
            Direction.BACKWARD,
            Confluence.INTERSECT,
            width,
            transfer,
            boundary=BitVector.empty(width),
            init=BitVector.full(width),
        )

    @classmethod
    def forward_union(
        cls, name: str, width: int, transfer: Transfer
    ) -> "DataflowProblem":
        """Forward some-path problem (boundary = ∅, init = ∅)."""
        return cls(
            name,
            Direction.FORWARD,
            Confluence.UNION,
            width,
            transfer,
            boundary=BitVector.empty(width),
            init=BitVector.empty(width),
        )

    @classmethod
    def backward_union(
        cls, name: str, width: int, transfer: Transfer
    ) -> "DataflowProblem":
        """Backward some-path problem (boundary = ∅, init = ∅)."""
        return cls(
            name,
            Direction.BACKWARD,
            Confluence.UNION,
            width,
            transfer,
            boundary=BitVector.empty(width),
            init=BitVector.empty(width),
        )
