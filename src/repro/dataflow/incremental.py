"""Incremental + demand-driven liveness: cost scales with the edit.

Every transformation loop in this library (LCM's copy cleanup, DCE,
assignment sinking) edits a handful of instructions and then asks the
same liveness question again.  Re-running the global fixpoint after
each edit makes the *analysis* cost proportional to the program, even
though the *edit* touched two instructions — ``BENCH_BATCH.json``
showed 826 full liveness solves for a 60-item corpus, dominating the
optimize wall time.  This module is the fix, and the first engine in
the repository whose cost scales with the edit, not the program:

* :class:`IncrementalLiveness` solves a CFG's liveness **once** (through
  the dense backend, memoized by the
  :class:`~repro.obs.manager.AnalysisManager` when one is attached) and
  thereafter *updates* the cached fixpoint after local edits.
  :meth:`~IncrementalLiveness.block_edited` records that a block's
  instruction list changed (insert/delete/replace — exactly the edits
  the transformation loops make); the next query recomputes that
  block's local sets, resets the **affected region** — the blocks that
  can reach an edited block, the only ones whose facts may depend on it
  in a backward problem — and re-runs a priority worklist over that
  region only.  Because liveness is a union (some-path) problem whose
  fixpoint is the unique least fixpoint, re-iterating the affected
  region from bottom with the untouched facts held fixed reproduces the
  full re-solve **bit for bit** (a hypothesis differential suite pins
  this), including after *deletions*, where naive re-propagation from
  stale facts would leave self-sustaining live ranges around loops.

* The **demand-driven** point-query API (:meth:`is_live_after`,
  :meth:`is_live_in`, :meth:`is_live_out` — the formulation of "Lazy
  Pointer Analysis", Khedker/Mycroft/Rawat) answers questions without
  ever computing the global fixpoint: when no facts are cached, it
  solves only the query's backward slice — the successor closure of the
  queried block, the only facts a backward analysis at that block can
  depend on.  Solved regions are remembered and grow monotonically;
  a later query outside the region solves just the difference.

* **Structural** changes (blocks or edges added/removed) are outside
  the edit-delta model: :meth:`structure_changed` drops everything and
  the next use rebuilds from scratch.  Callers signal edits through the
  module-level hooks in :mod:`repro.obs.manager`
  (:func:`~repro.obs.manager.notify_cfg_edited` for instruction-level
  edits, :func:`~repro.obs.manager.notify_cfg_mutated` for anything
  else), which forward to every manager-held engine.

Observability: ``dataflow.incr.fullsolve`` counts global solves,
``dataflow.incr.update`` counts applied edit deltas,
``dataflow.query.demand`` counts demand-driven region solves and
``dataflow.query.point`` counts point queries answered (see
``docs/OBSERVABILITY.md``); the per-engine :class:`IncrementalStats`
carries the same tallies plus region sizes.
"""

from __future__ import annotations

import heapq
import weakref
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.obs import trace

__all__ = ["IncrementalLiveness", "IncrementalStats"]


@dataclass
class IncrementalStats:
    """Work tallies for one :class:`IncrementalLiveness` engine.

    Attributes:
        full_solves: global fixpoint solves (the expensive path).
        incr_updates: edit deltas applied by region re-iteration.
        demand_solves: demand-driven region solves (includes promoting
            a partial engine to the full fixpoint).
        point_queries: ``is_live_*`` point queries answered.
        edits_seen: block-edit notifications received.
        blocks_updated: total blocks re-iterated by incremental updates.
        blocks_demanded: total blocks solved by demand queries.
        node_visits: transfer evaluations in region worklists.
    """

    full_solves: int = 0
    incr_updates: int = 0
    demand_solves: int = 0
    point_queries: int = 0
    edits_seen: int = 0
    blocks_updated: int = 0
    blocks_demanded: int = 0
    node_visits: int = 0


def _scan_block(block) -> Tuple[Set[str], Set[str], FrozenSet[str]]:
    """A block's (upward-exposed uses, defs, all mentioned names)."""
    upward: Set[str] = set()
    defined: Set[str] = set()
    mentioned: Set[str] = set()
    for instr in block.instrs:
        for v in instr.uses():
            mentioned.add(v)
            if v not in defined:
                upward.add(v)
        defined.add(instr.target)
        mentioned.add(instr.target)
    if block.terminator is not None:
        for v in block.terminator.uses():
            mentioned.add(v)
            if v not in defined:
                upward.add(v)
    return upward, defined, frozenset(mentioned)


class IncrementalLiveness:
    """Per-CFG liveness that solves once and updates after local edits.

    Args:
        cfg: the graph; the engine reads it lazily, so construct first
            and solve later.  The engine must be told about mutations:
            :meth:`block_edited` for instruction-level edits to an
            existing block, :meth:`structure_changed` for everything
            else (blocks added/removed, terminators rewritten, edges
            split).
        live_at_exit: names observable after the program ends (live at
            the exit block), exactly as for
            :func:`~repro.analysis.liveness.compute_liveness`.
        manager: optional :class:`~repro.obs.manager.AnalysisManager`;
            when given, the global solve is memoized through its tiers
            (memory → disk → solve) and the dense plan is shared with
            every other analysis of the same graph content.

    All query answers — and :meth:`result`, the materialised
    :class:`~repro.analysis.liveness.LivenessResult` — are bit-identical
    to a fresh ``compute_liveness`` on the current graph content.
    """

    def __init__(self, cfg, live_at_exit: Iterable[str] = (), manager=None) -> None:
        # A manager-held engine is mapped *from* its graph in a
        # WeakKeyDictionary; referencing the graph strongly there would
        # keep the entry alive forever, so it holds only a weakref (the
        # manager's contract: engines die with their graph).  A
        # standalone engine keeps its graph alive like any other object.
        self._cfg = weakref.ref(cfg)
        self._cfg_strong = cfg if manager is None else None
        self.exit_names: Tuple[str, ...] = tuple(sorted(set(live_at_exit)))
        self.manager = manager
        self.stats = IncrementalStats()
        self._plan = None
        self._position: Dict[int, int] = {}  # member id -> worklist priority
        self._vars: List[str] = []
        self._vidx: Dict[str, int] = {}
        self._mentions: Dict[str, int] = {}  # name -> blocks mentioning it
        self._names: List[FrozenSet[str]] = []
        self._use: List[int] = []
        self._def: List[int] = []
        self._in: List[int] = []
        self._out: List[int] = []
        self._boundary = 0
        self._solved: Set[int] = set()
        self._full = False
        self._dirty: Set[int] = set()
        self._materialized = None

    @property
    def cfg(self):
        """The engine's graph (see ``__init__`` for the lifetime rules)."""
        if self._cfg_strong is not None:
            return self._cfg_strong
        cfg = self._cfg()
        if cfg is None:
            raise ReferenceError("the engine's CFG has been garbage-collected")
        return cfg

    # -- cache keys -----------------------------------------------------

    @property
    def cache_key(self) -> str:
        """The manager/store computation key for the global solve.

        ``"liveness"`` for the default (empty) exit set — compatible
        with entries written by earlier versions — and a digest-tagged
        variant otherwise, so different observable sets never collide.
        """
        from repro.analysis.liveness import liveness_key

        return liveness_key(self.exit_names)

    # -- edit notifications ---------------------------------------------

    def block_edited(self, label: str) -> None:
        """Record that *label*'s instruction list changed in place.

        Cheap: the recompute is deferred to the next query, so a burst
        of edits coalesces into one delta.  A label the engine has not
        seen (a freshly added block) escalates to a structural change.
        """
        self.stats.edits_seen += 1
        if self._plan is None:
            return  # nothing cached yet; the first solve reads fresh state
        idx = self._plan.index.get(label)
        if idx is None:
            self.structure_changed()
            return
        self._dirty.add(idx)
        self._materialized = None

    def blocks_edited(self, labels: Iterable[str]) -> None:
        """Record edits to several blocks (see :meth:`block_edited`)."""
        for label in labels:
            self.block_edited(label)

    def structure_changed(self) -> None:
        """Drop everything: blocks/edges changed, the plan is stale."""
        self._plan = None
        self._position = {}
        self._vars = []
        self._vidx = {}
        self._mentions = {}
        self._names = []
        self._use = []
        self._def = []
        self._in = []
        self._out = []
        self._boundary = 0
        self._solved = set()
        self._full = False
        self._dirty = set()
        self._materialized = None

    # -- construction ----------------------------------------------------

    def _ensure_built(self) -> None:
        if self._plan is not None:
            return
        if self.manager is not None:
            plan = self.manager.dense_plan(self.cfg)
        else:
            from repro.dataflow.dense import compile_plan

            plan = compile_plan(self.cfg)
        self._plan = plan
        self._position = {i: pos for pos, i in enumerate(plan.backward_order)}
        n = len(plan.labels)
        mentions: Dict[str, int] = {}
        names: List[FrozenSet[str]] = []
        scans = []
        for label in plan.labels:
            upward, defined, mentioned = _scan_block(self.cfg.block(label))
            scans.append((upward, defined))
            names.append(mentioned)
            for name in mentioned:
                mentions[name] = mentions.get(name, 0) + 1
        universe = sorted(set(mentions) | set(self.exit_names))
        vidx = {name: i for i, name in enumerate(universe)}
        self._vars = universe
        self._vidx = vidx
        self._mentions = mentions
        self._names = names
        self._use = [self._bits(upward) for upward, _ in scans]
        self._def = [self._bits(defined) for _, defined in scans]
        self._boundary = self._bits(self.exit_names)
        self._in = [0] * n
        self._out = [0] * n
        self._dirty = set()

    def _bits(self, names: Iterable[str]) -> int:
        vidx = self._vidx
        bits = 0
        for name in names:
            bits |= 1 << vidx[name]
        return bits

    # -- the region worklist ---------------------------------------------

    def _solve_region(self, region: Set[int]) -> None:
        """Iterate *region* (member ids) to its least fixpoint.

        Facts outside the region are held fixed: solved blocks carry
        their final values, never-visited blocks stay at the init value
        (0) — exactly the reference solver's treatment of blocks missing
        from the backward order.  The region must be closed under the
        influence relation it is iterated for (predecessor-closed for
        updates, successor-closed for demand), which both callers
        guarantee by construction.
        """
        plan = self._plan
        position = self._position
        use, df = self._use, self._def
        fin, fout = self._in, self._out
        succs, preds = plan.succs, plan.preds
        exit_id = plan.exit
        boundary = self._boundary
        heap = sorted((position[i], i) for i in region)
        queued = set(region)
        visits = 0
        while heap:
            _, i = heapq.heappop(heap)
            queued.discard(i)
            visits += 1
            if i == exit_id:
                out = boundary
            else:
                out = 0
                for s in succs[i]:
                    out |= fin[s]
            nin = use[i] | (out & ~df[i])
            if out != fout[i] or nin != fin[i]:
                fout[i] = out
                if nin != fin[i]:
                    fin[i] = nin
                    for p in preds[i]:
                        if p in region and p not in queued:
                            queued.add(p)
                            heapq.heappush(heap, (position[p], p))
        self.stats.node_visits += visits

    # -- edit application -------------------------------------------------

    def _apply_edits(self) -> None:
        dirty, self._dirty = self._dirty, set()
        if self._plan is None or not dirty:
            return
        plan = self._plan
        mentions = self._mentions
        for i in sorted(dirty):
            upward, defined, mentioned = _scan_block(self.cfg.block(plan.labels[i]))
            old = self._names[i]
            if mentioned != old:
                for name in mentioned - old:
                    count = mentions.get(name, 0)
                    mentions[name] = count + 1
                    if name not in self._vidx:
                        # Universe growth: new columns start all-zero,
                        # which is the pre-edit truth for a name with no
                        # occurrences; the region re-solve fills them in.
                        self._vidx[name] = len(self._vars)
                        self._vars.append(name)
                for name in old - mentioned:
                    count = mentions[name] - 1
                    if count:
                        mentions[name] = count
                    else:
                        # Keep the (now dead) column: liveness is
                        # componentwise per variable, so its bits decay
                        # to zero through the update and materialise
                        # projects it away.
                        del mentions[name]
                self._names[i] = mentioned
            self._use[i] = self._bits(upward)
            self._def[i] = self._bits(defined)
        self._materialized = None
        if not self._solved:
            return  # locals refreshed; no facts exist to patch yet
        # The affected region: solved blocks that can reach an edited
        # block — in a backward problem, the only facts that may depend
        # on the edited local sets.  Predecessor-closed by construction.
        frontier = [i for i in dirty if i in self._solved]
        if not frontier:
            return
        region: Set[int] = set()
        while frontier:
            i = frontier.pop()
            if i in region:
                continue
            region.add(i)
            for p in self._plan.preds[i]:
                if p in self._solved and p not in region:
                    frontier.append(p)
        # Reset to bottom and re-iterate: sound for *deletions* too,
        # where propagating from stale facts would keep dead loop
        # variables alive forever.
        for i in region:
            self._in[i] = 0
            self._out[i] = 0
        self._solve_region(region)
        self.stats.incr_updates += 1
        self.stats.blocks_updated += len(region)
        trace.count("dataflow.incr.update")

    # -- solving ----------------------------------------------------------

    def _full_solve(self) -> None:
        from repro.analysis.liveness import compute_liveness

        cfg = self.cfg
        plan = self._plan
        exit_names = self.exit_names
        if self.manager is not None:
            result = self.manager.cached(
                cfg,
                self.cache_key,
                lambda: compute_liveness(cfg, live_at_exit=exit_names, plan=plan),
            )
        else:
            result = compute_liveness(cfg, live_at_exit=exit_names, plan=plan)
        index = plan.index
        if result.variables == self._vars:
            for label, vec in result.livein.items():
                self._in[index[label]] = vec.bits
            for label, vec in result.liveout.items():
                self._out[index[label]] = vec.bits
            self._materialized = result
        else:
            # A (rare) universe drift between build and solve — e.g. a
            # memoized result from a content-equal graph seen before
            # edits were applied here.  Remap columns by name.
            remap = [(self._vidx[name], ri) for ri, name in enumerate(result.variables)]
            for label, vec in result.livein.items():
                bits = vec.bits
                self._in[index[label]] = sum(
                    ((bits >> ri) & 1) << si for si, ri in remap
                )
            for label, vec in result.liveout.items():
                bits = vec.bits
                self._out[index[label]] = sum(
                    ((bits >> ri) & 1) << si for si, ri in remap
                )
            self._materialized = None
        self._solved = set(self._position)
        self._full = True
        self.stats.full_solves += 1
        trace.count("dataflow.incr.fullsolve")

    def solve(self) -> None:
        """Ensure the full fixpoint is cached (idempotent).

        Applies any pending edit delta first; with no facts at all it
        runs the global solve (memoized through the manager when one is
        attached); a partial (demand-solved) engine is promoted by
        solving just the remaining blocks.
        """
        self._ensure_built()
        if self._dirty:
            self._apply_edits()
        if self._full:
            return
        if not self._solved:
            self._full_solve()
            return
        region = set(self._position) - self._solved
        self._solve_region(region)
        self._solved |= region
        self._full = True
        self.stats.demand_solves += 1
        self.stats.blocks_demanded += len(region)
        trace.count("dataflow.query.demand")

    def _need(self, i: int) -> None:
        """Ensure block id *i* has valid facts, demand-solving its slice."""
        if self._dirty:
            self._apply_edits()
        if self._full or i in self._solved or i not in self._position:
            return
        # The backward slice: everything the query's facts can depend
        # on is the successor closure of the queried block.
        region: Set[int] = set()
        stack = [i]
        position = self._position
        solved = self._solved
        succs = self._plan.succs
        while stack:
            j = stack.pop()
            if j in region or j in solved or j not in position:
                continue
            region.add(j)
            stack.extend(succs[j])
        self._solve_region(region)
        solved |= region
        if len(solved) == len(position):
            self._full = True
        self.stats.demand_solves += 1
        self.stats.blocks_demanded += len(region)
        trace.count("dataflow.query.demand")

    # -- queries -----------------------------------------------------------

    def _block_id(self, label: str) -> int:
        idx = self._plan.index.get(label)
        if idx is None:
            from repro.ir.cfg import CFGError

            raise CFGError(f"no block named {label!r}")
        return idx

    def is_live_out(self, label: str, var: str) -> bool:
        """Is *var* live on exit from *label*? (demand-driven)"""
        self.stats.point_queries += 1
        trace.count("dataflow.query.point")
        self._ensure_built()
        vi = self._vidx.get(var)
        if vi is None:
            return False
        i = self._block_id(label)
        self._need(i)
        return (self._out[i] >> vi) & 1 == 1

    def is_live_in(self, label: str, var: str) -> bool:
        """Is *var* live on entry to *label*? (demand-driven)"""
        self.stats.point_queries += 1
        trace.count("dataflow.query.point")
        self._ensure_built()
        vi = self._vidx.get(var)
        if vi is None:
            return False
        i = self._block_id(label)
        self._need(i)
        return (self._in[i] >> vi) & 1 == 1

    def is_live_after(self, label: str, index: int, var: str) -> bool:
        """Is *var* live immediately after instruction *index* of *label*?

        The demand-driven point query of the tentpole: the block tail is
        scanned locally (uses before defs, then the terminator), and only
        if the answer rests on the block-exit fact does the engine solve
        — and then only the query's backward slice.
        """
        self._ensure_built()
        block = self.cfg.block(label)
        for instr in block.instrs[index + 1 :]:
            if var in instr.uses():
                return True
            if instr.target == var:
                return False
        if block.terminator is not None and var in block.terminator.uses():
            return True
        return self.is_live_out(label, var)

    def live_in(self, label: str) -> Set[str]:
        """The names live on entry to *label* (demand-driven)."""
        self.stats.point_queries += 1
        trace.count("dataflow.query.point")
        self._ensure_built()
        i = self._block_id(label)
        self._need(i)
        return self._names_of(self._in[i])

    def live_out(self, label: str) -> Set[str]:
        """The names live on exit from *label* (demand-driven)."""
        self.stats.point_queries += 1
        trace.count("dataflow.query.point")
        self._ensure_built()
        i = self._block_id(label)
        self._need(i)
        return self._names_of(self._out[i])

    def _names_of(self, bits: int) -> Set[str]:
        names = set()
        vars_ = self._vars
        i = 0
        while bits:
            if bits & 1:
                names.add(vars_[i])
            bits >>= 1
            i += 1
        return names

    # -- materialisation ----------------------------------------------------

    def result(self):
        """The full fixpoint as a :class:`~repro.analysis.liveness.LivenessResult`.

        Bit-identical to ``compute_liveness(cfg, live_at_exit)`` on the
        current graph content; when the engine's internal universe has
        drifted after edits (appended or retired columns), the facts are
        projected onto the canonical sorted universe first.
        """
        self.solve()
        if self._materialized is not None:
            return self._materialized
        from repro.analysis.liveness import LivenessResult
        from repro.dataflow.bitvec import BitVector
        from repro.dataflow.stats import SolverStats

        target = sorted(set(self._mentions) | set(self.exit_names))
        width = len(target)
        plan = self._plan
        if target == self._vars:
            livein = {
                label: BitVector(width, self._in[i])
                for i, label in enumerate(plan.labels)
            }
            liveout = {
                label: BitVector(width, self._out[i])
                for i, label in enumerate(plan.labels)
            }
        else:
            perm = [self._vidx[name] for name in target]

            def project(bits: int) -> int:
                out = 0
                for ti, si in enumerate(perm):
                    out |= ((bits >> si) & 1) << ti
                return out

            livein = {
                label: BitVector(width, project(self._in[i]))
                for i, label in enumerate(plan.labels)
            }
            liveout = {
                label: BitVector(width, project(self._out[i]))
                for i, label in enumerate(plan.labels)
            }
        materialized = LivenessResult(
            variables=list(target),
            index={name: i for i, name in enumerate(target)},
            livein=livein,
            liveout=liveout,
            stats=SolverStats(
                node_visits=self.stats.node_visits, backend="incremental"
            ),
        )
        self._materialized = materialized
        return materialized
