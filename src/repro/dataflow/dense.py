"""The dense solver backend: allocation-free int-array fixpoint sweeps.

The reference solver (:mod:`repro.dataflow.solver`) pays Python object
tax on every logical operation: each ``&``/``|`` constructs a fresh
:class:`~repro.dataflow.bitvec.BitVector`, re-validates widths and walks
the operation-counter stack even when no counter is installed.  The
paper's complexity claim — four *cheap* unidirectional bit-vector
analyses — assumes the per-operation cost of a machine word; production
implementations (GCC's ``pre_edge_lcm``) run the sweeps over raw words.
This module is the Python equivalent:

* a :class:`DenseGraph` *plan* is compiled once per CFG — labels mapped
  to contiguous integer ids, predecessor/successor adjacency as tuples
  of ids, the forward and backward traversal orders precomputed — and
  shared by every solve on that graph (the memory tier of
  :class:`~repro.obs.manager.AnalysisManager` caches it by content
  fingerprint, so all four LCM analyses plus liveness compile it once);
* the solve loop runs on plain Python ints in preallocated lists.
  Gen/kill problems are *lowered* to parallel ``gen``/``keep`` int
  arrays (see :meth:`repro.dataflow.problem.GenKillTransfer.lower`), so
  the inner loop is ``out[i] = gen[i] | (acc & keep[i])`` — zero object
  allocation, zero width checks, zero counter-stack probes;
* transfers without a lowering hook fall back to a per-node closure
  over ints that wraps the original transfer function at the boundary;
* the :class:`~repro.dataflow.solver.Solution` is materialised into
  ``BitVector`` dictionaries only at the very end, so callers are
  untouched.

Semantics are preserved exactly: the sweep structure mirrors the
reference round-robin solver node for node, so fixpoints *and* the
``sweeps``/``node_visits`` statistics are identical (a property test
pins this).  The backend never runs inside a
:func:`~repro.dataflow.bitvec.counting` context — :func:`solver.solve
<repro.dataflow.solver.solve>` routes those runs to the counted
reference path so benchmark C1's operation tallies are unchanged.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.dataflow.bitvec import BitVector
from repro.dataflow.order import backward_order, reverse_postorder
from repro.dataflow.problem import Confluence, DataflowProblem, Direction
from repro.dataflow.stats import SolverStats
from repro.ir.cfg import CFG


class DenseGraph:
    """A compiled, immutable solve plan for one CFG.

    Everything the inner loop needs, precomputed once: contiguous block
    ids (in ``cfg.labels`` order), adjacency as id tuples, and the two
    traversal orders.  A plan is valid for any graph with the same
    content — :meth:`repro.obs.manager.AnalysisManager.dense_plan`
    caches them by content fingerprint so repeated analyses share one.
    """

    __slots__ = (
        "labels", "index", "preds", "succs",
        "forward_order", "backward_order", "entry", "exit",
    )

    def __init__(
        self,
        labels: Tuple[str, ...],
        index: Dict[str, int],
        preds: Tuple[Tuple[int, ...], ...],
        succs: Tuple[Tuple[int, ...], ...],
        forward: Tuple[int, ...],
        backward: Tuple[int, ...],
        entry: int,
        exit: int,
    ) -> None:
        self.labels = labels
        self.index = index
        self.preds = preds
        self.succs = succs
        self.forward_order = forward
        self.backward_order = backward
        self.entry = entry
        self.exit = exit

    def __len__(self) -> int:
        return len(self.labels)

    def __repr__(self) -> str:
        return f"DenseGraph({len(self.labels)} blocks)"


def compile_plan(cfg: CFG) -> DenseGraph:
    """Compile *cfg* into a :class:`DenseGraph` plan.

    The traversal orders are exactly the reference solver's
    (:func:`~repro.dataflow.order.reverse_postorder` forward,
    :func:`~repro.dataflow.order.backward_order` backward), translated
    to ids — blocks missing from an order (unreachable ones the
    reference solver never visits) are likewise never visited here, so
    their facts stay at the init value in both backends.
    """
    labels = tuple(cfg.labels)
    index = {label: i for i, label in enumerate(labels)}
    preds = tuple(
        tuple(index[p] for p in cfg.preds(label)) for label in labels
    )
    succs = tuple(
        tuple(index[s] for s in cfg.succs(label)) for label in labels
    )
    forward = tuple(index[label] for label in reverse_postorder(cfg))
    backward = tuple(index[label] for label in backward_order(cfg))
    return DenseGraph(
        labels, index, preds, succs, forward, backward,
        index[cfg.entry], index[cfg.exit],
    )


def lower_transfer(
    problem: DataflowProblem, labels: Tuple[str, ...]
) -> Optional[Tuple[List[int], List[int]]]:
    """The problem's parallel gen/keep int arrays, or None.

    The lowering contract: a transfer object exposing
    ``lower(labels) -> (gen, keep)`` — parallel lists of raw ints such
    that ``transfer(labels[i], fact) == gen[i] | (fact & keep[i])``
    bit-for-bit — is run as a pure int sweep.
    :class:`~repro.dataflow.problem.GenKillTransfer` implements it;
    bespoke transfers (the KRS delay/isolation systems) may too, as
    long as the array form is exactly equivalent.
    """
    lower = getattr(problem.transfer, "lower", None)
    if lower is None:
        return None
    return lower(labels)


def _closure_transfer(
    problem: DataflowProblem, labels: Tuple[str, ...]
) -> Callable[[int, int], int]:
    """Per-node int transfer wrapping a non-lowerable transfer function.

    The original transfer still sees/returns ``BitVector``s — only the
    meets, comparisons and storage stay in raw ints, which is where the
    reference solver spends most of its time.
    """
    transfer = problem.transfer
    width = problem.width

    def apply(i: int, fact: int) -> int:
        return transfer(labels[i], BitVector(width, fact)).bits

    return apply


def solve_dense(
    cfg: CFG,
    problem: DataflowProblem,
    plan: Optional[DenseGraph] = None,
    max_sweeps: int = 10_000,
):
    """Round-robin solve of *problem* on *cfg* over raw int arrays.

    Returns a :class:`~repro.dataflow.solver.Solution` bit-identical to
    ``solve(cfg, problem, strategy="round-robin")``, with identical
    ``sweeps`` and ``node_visits`` statistics.  Pass a precompiled
    *plan* to share the id mapping across solves (the analysis manager
    does); without one the plan is compiled on the fly.
    """
    from repro.dataflow.solver import Solution  # cycle: solver routes here

    if plan is None:
        plan = compile_plan(cfg)
    labels = plan.labels
    n = len(labels)
    width = problem.width
    forward = problem.direction is Direction.FORWARD
    intersect = problem.confluence is Confluence.INTERSECT
    full_mask = (1 << width) - 1
    neutral = full_mask if intersect else 0
    boundary_bits = problem.boundary.bits
    init_bits = problem.init.bits

    lowered = lower_transfer(problem, labels)
    if lowered is not None:
        gen, keep = lowered
    else:
        gen = keep = None
        apply = _closure_transfer(problem, labels)

    # The two fact arrays; `met` facts land on the meet side of each
    # block (entry for forward problems), `out` facts on the other.
    if forward:
        order, nbrs, boundary_id = plan.forward_order, plan.preds, plan.entry
    else:
        order, nbrs, boundary_id = plan.backward_order, plan.succs, plan.exit
    met_facts = [init_bits] * n   # forward: IN,  backward: OUT
    out_facts = [init_bits] * n   # forward: OUT, backward: IN

    sweeps = 0
    node_visits = 0
    changed = True
    while changed:
        if sweeps >= max_sweeps:
            raise RuntimeError(
                f"dataflow problem {problem.name!r} did not converge in "
                f"{max_sweeps} sweeps"
            )
        changed = False
        sweeps += 1
        for i in order:
            node_visits += 1
            if i == boundary_id:
                met = boundary_bits
            else:
                nb = nbrs[i]
                count = len(nb)
                if count:
                    met = out_facts[nb[0]]
                    k = 1
                    if intersect:
                        while k < count:
                            met &= out_facts[nb[k]]
                            k += 1
                    else:
                        while k < count:
                            met |= out_facts[nb[k]]
                            k += 1
                else:
                    met = neutral
            if gen is not None:
                out = gen[i] | (met & keep[i])
            else:
                out = apply(i, met)
            if met != met_facts[i] or out != out_facts[i]:
                met_facts[i] = met
                out_facts[i] = out
                changed = True

    # Materialise BitVector dictionaries only at the API boundary.
    if forward:
        in_facts, out_side = met_facts, out_facts
    else:
        in_facts, out_side = out_facts, met_facts
    inof = {labels[i]: BitVector(width, in_facts[i]) for i in range(n)}
    outof = {labels[i]: BitVector(width, out_side[i]) for i in range(n)}
    stats = SolverStats(sweeps=sweeps, node_visits=node_visits, backend="dense")
    return Solution(problem.name, inof, outof, stats)
