"""Iterative solver for unidirectional bit-vector dataflow problems.

One entry point, :func:`solve`, with interchangeable strategies
producing identical fixpoints:

* ``"auto"`` (the default) — the dense int-array backend
  (:mod:`repro.dataflow.dense`) whenever no operation counter is
  installed, the counted reference round-robin loop otherwise;
* ``"dense"`` — the dense backend explicitly (it still steps aside for
  an active :func:`~repro.dataflow.bitvec.counting` context, so
  benchmark C1's operation tallies are never distorted);
* ``"round-robin"`` — full sweeps in reverse postorder (forward) or
  reverse postorder of the reversed graph (backward), the textbook
  algorithm whose sweep count the paper's complexity remarks refer to;
* ``"worklist"`` — a priority worklist keyed by traversal-order
  position, revisiting only blocks whose inputs changed.

All return a :class:`Solution` mapping every block to the fact holding
at its entry (``inof``) and exit (``outof``), plus work statistics.

When tracing is active, every solve emits a ``dataflow.solve`` span on
the installed tracer (see :mod:`repro.obs.trace`) carrying the problem
name, strategy, the ``backend`` that actually ran (``"dense"`` or
``"reference"``), sweep and visit counts and — on the reference
backend — the per-run bit-vector operation tally, which is also stored
in ``Solution.stats.bitvec_ops``.  When tracing is off, :func:`solve`
enters no span context at all, so the dense inner loop is not wrapped
in dead tracing machinery.

``solve_worklist`` survives as a deprecated alias for
``solve(cfg, problem, strategy="worklist")``.
"""

from __future__ import annotations

import heapq
import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.dataflow.bitvec import BitVector, counting, counting_active
from repro.dataflow.dense import DenseGraph, solve_dense
from repro.dataflow.order import backward_order, reverse_postorder
from repro.dataflow.problem import Confluence, DataflowProblem, Direction
from repro.dataflow.stats import SolverStats
from repro.ir.cfg import CFG
from repro.obs.trace import is_active, span

#: The solver strategies accepted by :func:`solve`.
STRATEGIES = ("auto", "dense", "round-robin", "worklist")

#: The strategies served by the dense backend (absent an op counter).
_DENSE_STRATEGIES = ("auto", "dense")


@dataclass
class Solution:
    """A dataflow fixpoint: facts at every block boundary, plus stats."""

    problem: str
    inof: Dict[str, BitVector]
    outof: Dict[str, BitVector]
    stats: SolverStats = field(default_factory=SolverStats)


def _meet(problem: DataflowProblem, facts: Iterable[BitVector]) -> BitVector:
    """Fold the confluence operator over *facts* without materializing them."""
    intersect = problem.confluence is Confluence.INTERSECT
    result: Optional[BitVector] = None
    for fact in facts:
        if result is None:
            result = fact
        elif intersect:
            result = result & fact
        else:
            result = result | fact
    if result is None:
        # Joins with no incoming facts only occur at the graph boundary,
        # which the solvers special-case; return the neutral element.
        if intersect:
            return BitVector.full(problem.width)
        return BitVector.empty(problem.width)
    return result


def solve(
    cfg: CFG,
    problem: DataflowProblem,
    strategy: str = "auto",
    max_sweeps: int = 10_000,
    plan: Optional[DenseGraph] = None,
) -> Solution:
    """Solve *problem* on *cfg* to its fixpoint with the named *strategy*.

    Args:
        cfg: the graph to analyse.
        strategy: one of :data:`STRATEGIES`; all reach the same
            fixpoint (a property test pins this).  ``"auto"`` and
            ``"dense"`` run the int-array backend unless an operation
            counter is installed, in which case the counted reference
            path runs instead (so measured op tallies never change).
        max_sweeps: divergence guard for the sweeping strategies
            (a non-monotone transfer function raises RuntimeError).
        plan: a precompiled :class:`~repro.dataflow.dense.DenseGraph`
            for *cfg*, letting consecutive solves share one id mapping
            (the analysis manager caches these by content fingerprint);
            only consulted by the dense backend.
    """
    if strategy not in STRATEGIES:
        names = ", ".join(STRATEGIES)
        raise ValueError(f"unknown solver strategy {strategy!r}; choose one of: {names}")
    dense = strategy in _DENSE_STRATEGIES and not counting_active()
    if not is_active():
        # Tracing off: skip the span machinery entirely.
        if dense:
            return solve_dense(cfg, problem, plan=plan, max_sweeps=max_sweeps)
        return _run(cfg, problem, strategy, max_sweeps)
    with span(
        "dataflow.solve", problem=problem.name, strategy=strategy
    ) as solve_span:
        if dense:
            solution = solve_dense(cfg, problem, plan=plan, max_sweeps=max_sweeps)
        else:
            # Attach a per-run counter so the span and the solution both
            # carry the bit-vector op tally; non-exclusive, so outer
            # counting() contexts (benchmark totals) still see every op.
            with counting(exclusive=False) as ops:
                solution = _run(cfg, problem, strategy, max_sweeps)
            solution.stats.bitvec_ops = dict(ops.counts)
        solve_span.set(
            sweeps=solution.stats.sweeps,
            node_visits=solution.stats.node_visits,
            bitvec_ops=solution.stats.total_bitvec_ops,
            blocks=len(cfg),
            width=problem.width,
            backend=solution.stats.backend,
        )
    return solution


def _run(
    cfg: CFG, problem: DataflowProblem, strategy: str, max_sweeps: int
) -> Solution:
    if strategy == "worklist":
        solution = _solve_worklist(cfg, problem)
    else:
        solution = _solve_round_robin(cfg, problem, max_sweeps)
    solution.stats.backend = "reference"
    return solution


def _solve_round_robin(
    cfg: CFG, problem: DataflowProblem, max_sweeps: int
) -> Solution:
    """Round-robin iteration to the maximum (resp. minimum) fixpoint."""
    forward = problem.direction is Direction.FORWARD
    order = reverse_postorder(cfg) if forward else backward_order(cfg)
    boundary_label = cfg.entry if forward else cfg.exit

    inof: Dict[str, BitVector] = {}
    outof: Dict[str, BitVector] = {}
    for label in cfg.labels:
        inof[label] = problem.init
        outof[label] = problem.init

    stats = SolverStats()
    changed = True
    while changed:
        if stats.sweeps >= max_sweeps:
            raise RuntimeError(
                f"dataflow problem {problem.name!r} did not converge in "
                f"{max_sweeps} sweeps"
            )
        changed = False
        stats.sweeps += 1
        for label in order:
            stats.node_visits += 1
            if forward:
                if label == boundary_label:
                    new_in = problem.boundary
                else:
                    new_in = _meet(problem, map(outof.__getitem__, cfg.preds(label)))
                new_out = problem.transfer(label, new_in)
                if new_in != inof[label] or new_out != outof[label]:
                    inof[label], outof[label] = new_in, new_out
                    changed = True
            else:
                if label == boundary_label:
                    new_out = problem.boundary
                else:
                    new_out = _meet(problem, map(inof.__getitem__, cfg.succs(label)))
                new_in = problem.transfer(label, new_out)
                if new_in != inof[label] or new_out != outof[label]:
                    inof[label], outof[label] = new_in, new_out
                    changed = True
    return Solution(problem.name, inof, outof, stats)


def _solve_worklist(cfg: CFG, problem: DataflowProblem) -> Solution:
    """Priority-worklist iteration; same fixpoint as round-robin."""
    forward = problem.direction is Direction.FORWARD
    order = reverse_postorder(cfg) if forward else backward_order(cfg)
    priority = {label: i for i, label in enumerate(order)}
    boundary_label = cfg.entry if forward else cfg.exit

    inof: Dict[str, BitVector] = {label: problem.init for label in cfg.labels}
    outof: Dict[str, BitVector] = {label: problem.init for label in cfg.labels}

    stats = SolverStats()
    heap: List[tuple] = []
    queued = set()

    def push(label: str) -> None:
        if label not in queued and label in priority:
            queued.add(label)
            heapq.heappush(heap, (priority[label], label))

    for label in order:
        push(label)

    while heap:
        _, label = heapq.heappop(heap)
        queued.discard(label)
        stats.node_visits += 1
        if forward:
            if label == boundary_label:
                new_in = problem.boundary
            else:
                new_in = _meet(problem, map(outof.__getitem__, cfg.preds(label)))
            new_out = problem.transfer(label, new_in)
            if new_in != inof[label] or new_out != outof[label]:
                inof[label], outof[label] = new_in, new_out
                for succ in cfg.succs(label):
                    push(succ)
        else:
            if label == boundary_label:
                new_out = problem.boundary
            else:
                new_out = _meet(problem, map(inof.__getitem__, cfg.succs(label)))
            new_in = problem.transfer(label, new_out)
            if new_in != inof[label] or new_out != outof[label]:
                inof[label], outof[label] = new_in, new_out
                for pred in cfg.preds(label):
                    push(pred)
    return Solution(problem.name, inof, outof, stats)


def solve_worklist(cfg: CFG, problem: DataflowProblem) -> Solution:
    """Deprecated alias for ``solve(cfg, problem, strategy="worklist")``."""
    warnings.warn(
        "solve_worklist() is deprecated; use "
        'solve(cfg, problem, strategy="worklist")',
        DeprecationWarning,
        stacklevel=2,
    )
    return solve(cfg, problem, strategy="worklist")
