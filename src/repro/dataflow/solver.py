"""Iterative solver for unidirectional bit-vector dataflow problems.

One entry point, :func:`solve`, with two interchangeable strategies
producing identical fixpoints:

* ``"round-robin"`` (the default) — full sweeps in reverse postorder
  (forward) or reverse postorder of the reversed graph (backward), the
  textbook algorithm whose sweep count the paper's complexity remarks
  refer to;
* ``"worklist"`` — a priority worklist keyed by traversal-order
  position, revisiting only blocks whose inputs changed.

Both return a :class:`Solution` mapping every block to the fact holding
at its entry (``inof``) and exit (``outof``), plus work statistics.

Every solve emits a ``dataflow.solve`` span on the installed tracer
(see :mod:`repro.obs.trace`) carrying the problem name, strategy, sweep
and visit counts and — when tracing is active — the per-run bit-vector
operation tally, which is also stored in ``Solution.stats.bitvec_ops``.

``solve_worklist`` survives as a deprecated alias for
``solve(cfg, problem, strategy="worklist")``.
"""

from __future__ import annotations

import heapq
import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.dataflow.bitvec import BitVector, counting
from repro.dataflow.order import backward_order, reverse_postorder
from repro.dataflow.problem import Confluence, DataflowProblem, Direction
from repro.dataflow.stats import SolverStats
from repro.ir.cfg import CFG
from repro.obs.trace import is_active, span

#: The solver strategies accepted by :func:`solve`.
STRATEGIES = ("round-robin", "worklist")


@dataclass
class Solution:
    """A dataflow fixpoint: facts at every block boundary, plus stats."""

    problem: str
    inof: Dict[str, BitVector]
    outof: Dict[str, BitVector]
    stats: SolverStats = field(default_factory=SolverStats)


def _meet(problem: DataflowProblem, facts: Iterable[BitVector]) -> BitVector:
    """Fold the confluence operator over *facts* without materializing them."""
    intersect = problem.confluence is Confluence.INTERSECT
    result: Optional[BitVector] = None
    for fact in facts:
        if result is None:
            result = fact
        elif intersect:
            result = result & fact
        else:
            result = result | fact
    if result is None:
        # Joins with no incoming facts only occur at the graph boundary,
        # which the solvers special-case; return the neutral element.
        if intersect:
            return BitVector.full(problem.width)
        return BitVector.empty(problem.width)
    return result


def solve(
    cfg: CFG,
    problem: DataflowProblem,
    strategy: str = "round-robin",
    max_sweeps: int = 10_000,
) -> Solution:
    """Solve *problem* on *cfg* to its fixpoint with the named *strategy*.

    Args:
        cfg: the graph to analyse.
        strategy: ``"round-robin"`` or ``"worklist"``; both reach the
            same fixpoint (a property test pins this).
        max_sweeps: divergence guard for the round-robin strategy
            (a non-monotone transfer function raises RuntimeError).
    """
    if strategy not in STRATEGIES:
        names = ", ".join(STRATEGIES)
        raise ValueError(f"unknown solver strategy {strategy!r}; choose one of: {names}")
    with span(
        "dataflow.solve", problem=problem.name, strategy=strategy
    ) as solve_span:
        if is_active():
            # Attach a per-run counter so the span and the solution both
            # carry the bit-vector op tally; non-exclusive, so outer
            # counting() contexts (benchmark totals) still see every op.
            with counting(exclusive=False) as ops:
                solution = _run(cfg, problem, strategy, max_sweeps)
            solution.stats.bitvec_ops = dict(ops.counts)
        else:
            solution = _run(cfg, problem, strategy, max_sweeps)
        solve_span.set(
            sweeps=solution.stats.sweeps,
            node_visits=solution.stats.node_visits,
            bitvec_ops=solution.stats.total_bitvec_ops,
            blocks=len(cfg),
            width=problem.width,
        )
    return solution


def _run(
    cfg: CFG, problem: DataflowProblem, strategy: str, max_sweeps: int
) -> Solution:
    if strategy == "worklist":
        return _solve_worklist(cfg, problem)
    return _solve_round_robin(cfg, problem, max_sweeps)


def _solve_round_robin(
    cfg: CFG, problem: DataflowProblem, max_sweeps: int
) -> Solution:
    """Round-robin iteration to the maximum (resp. minimum) fixpoint."""
    forward = problem.direction is Direction.FORWARD
    order = reverse_postorder(cfg) if forward else backward_order(cfg)
    boundary_label = cfg.entry if forward else cfg.exit

    inof: Dict[str, BitVector] = {}
    outof: Dict[str, BitVector] = {}
    for label in cfg.labels:
        inof[label] = problem.init
        outof[label] = problem.init

    stats = SolverStats()
    changed = True
    while changed:
        if stats.sweeps >= max_sweeps:
            raise RuntimeError(
                f"dataflow problem {problem.name!r} did not converge in "
                f"{max_sweeps} sweeps"
            )
        changed = False
        stats.sweeps += 1
        for label in order:
            stats.node_visits += 1
            if forward:
                if label == boundary_label:
                    new_in = problem.boundary
                else:
                    new_in = _meet(problem, map(outof.__getitem__, cfg.preds(label)))
                new_out = problem.transfer(label, new_in)
                if new_in != inof[label] or new_out != outof[label]:
                    inof[label], outof[label] = new_in, new_out
                    changed = True
            else:
                if label == boundary_label:
                    new_out = problem.boundary
                else:
                    new_out = _meet(problem, map(inof.__getitem__, cfg.succs(label)))
                new_in = problem.transfer(label, new_out)
                if new_in != inof[label] or new_out != outof[label]:
                    inof[label], outof[label] = new_in, new_out
                    changed = True
    return Solution(problem.name, inof, outof, stats)


def _solve_worklist(cfg: CFG, problem: DataflowProblem) -> Solution:
    """Priority-worklist iteration; same fixpoint as round-robin."""
    forward = problem.direction is Direction.FORWARD
    order = reverse_postorder(cfg) if forward else backward_order(cfg)
    priority = {label: i for i, label in enumerate(order)}
    boundary_label = cfg.entry if forward else cfg.exit

    inof: Dict[str, BitVector] = {label: problem.init for label in cfg.labels}
    outof: Dict[str, BitVector] = {label: problem.init for label in cfg.labels}

    stats = SolverStats()
    heap: List[tuple] = []
    queued = set()

    def push(label: str) -> None:
        if label not in queued and label in priority:
            queued.add(label)
            heapq.heappush(heap, (priority[label], label))

    for label in order:
        push(label)

    while heap:
        _, label = heapq.heappop(heap)
        queued.discard(label)
        stats.node_visits += 1
        if forward:
            if label == boundary_label:
                new_in = problem.boundary
            else:
                new_in = _meet(problem, map(outof.__getitem__, cfg.preds(label)))
            new_out = problem.transfer(label, new_in)
            if new_in != inof[label] or new_out != outof[label]:
                inof[label], outof[label] = new_in, new_out
                for succ in cfg.succs(label):
                    push(succ)
        else:
            if label == boundary_label:
                new_out = problem.boundary
            else:
                new_out = _meet(problem, map(inof.__getitem__, cfg.succs(label)))
            new_in = problem.transfer(label, new_out)
            if new_in != inof[label] or new_out != outof[label]:
                inof[label], outof[label] = new_in, new_out
                for pred in cfg.preds(label):
                    push(pred)
    return Solution(problem.name, inof, outof, stats)


def solve_worklist(cfg: CFG, problem: DataflowProblem) -> Solution:
    """Deprecated alias for ``solve(cfg, problem, strategy="worklist")``."""
    warnings.warn(
        "solve_worklist() is deprecated; use "
        'solve(cfg, problem, strategy="worklist")',
        DeprecationWarning,
        stacklevel=2,
    )
    return solve(cfg, problem, strategy="worklist")
