"""Iterative solvers for unidirectional bit-vector dataflow problems.

Two solvers are provided with identical results:

* :func:`solve` — round-robin sweeps in reverse postorder (forward) or
  reverse postorder of the reversed graph (backward), the textbook
  algorithm whose sweep count the paper's complexity remarks refer to;
* :func:`solve_worklist` — a priority worklist keyed by traversal-order
  position, revisiting only blocks whose inputs changed.

Both return a :class:`Solution` mapping every block to the fact holding
at its entry (``inof``) and exit (``outof``), plus work statistics.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List

from repro.dataflow.bitvec import BitVector
from repro.dataflow.order import backward_order, reverse_postorder
from repro.dataflow.problem import Confluence, DataflowProblem, Direction
from repro.dataflow.stats import SolverStats
from repro.ir.cfg import CFG


@dataclass
class Solution:
    """A dataflow fixpoint: facts at every block boundary, plus stats."""

    problem: str
    inof: Dict[str, BitVector]
    outof: Dict[str, BitVector]
    stats: SolverStats = field(default_factory=SolverStats)


def _meet(problem: DataflowProblem, facts: List[BitVector]) -> BitVector:
    if not facts:
        # Joins with no incoming facts only occur at the graph boundary,
        # which the solvers special-case; return the neutral element.
        if problem.confluence is Confluence.INTERSECT:
            return BitVector.full(problem.width)
        return BitVector.empty(problem.width)
    result = facts[0]
    for fact in facts[1:]:
        result = result & fact if problem.confluence is Confluence.INTERSECT else result | fact
    return result


def solve(cfg: CFG, problem: DataflowProblem, max_sweeps: int = 10_000) -> Solution:
    """Round-robin iteration to the maximum (resp. minimum) fixpoint."""
    forward = problem.direction is Direction.FORWARD
    order = reverse_postorder(cfg) if forward else backward_order(cfg)
    boundary_label = cfg.entry if forward else cfg.exit

    inof: Dict[str, BitVector] = {}
    outof: Dict[str, BitVector] = {}
    for label in cfg.labels:
        inof[label] = problem.init
        outof[label] = problem.init

    stats = SolverStats()
    changed = True
    while changed:
        if stats.sweeps >= max_sweeps:
            raise RuntimeError(
                f"dataflow problem {problem.name!r} did not converge in "
                f"{max_sweeps} sweeps"
            )
        changed = False
        stats.sweeps += 1
        for label in order:
            stats.node_visits += 1
            if forward:
                if label == boundary_label:
                    new_in = problem.boundary
                else:
                    new_in = _meet(problem, [outof[p] for p in cfg.preds(label)])
                new_out = problem.transfer(label, new_in)
                if new_in != inof[label] or new_out != outof[label]:
                    inof[label], outof[label] = new_in, new_out
                    changed = True
            else:
                if label == boundary_label:
                    new_out = problem.boundary
                else:
                    new_out = _meet(problem, [inof[s] for s in cfg.succs(label)])
                new_in = problem.transfer(label, new_out)
                if new_in != inof[label] or new_out != outof[label]:
                    inof[label], outof[label] = new_in, new_out
                    changed = True
    return Solution(problem.name, inof, outof, stats)


def solve_worklist(cfg: CFG, problem: DataflowProblem) -> Solution:
    """Priority-worklist iteration; same fixpoint as :func:`solve`."""
    forward = problem.direction is Direction.FORWARD
    order = reverse_postorder(cfg) if forward else backward_order(cfg)
    priority = {label: i for i, label in enumerate(order)}
    boundary_label = cfg.entry if forward else cfg.exit

    inof: Dict[str, BitVector] = {label: problem.init for label in cfg.labels}
    outof: Dict[str, BitVector] = {label: problem.init for label in cfg.labels}

    stats = SolverStats()
    heap: List[tuple] = []
    queued = set()

    def push(label: str) -> None:
        if label not in queued and label in priority:
            queued.add(label)
            heapq.heappush(heap, (priority[label], label))

    for label in order:
        push(label)

    while heap:
        _, label = heapq.heappop(heap)
        queued.discard(label)
        stats.node_visits += 1
        if forward:
            if label == boundary_label:
                new_in = problem.boundary
            else:
                new_in = _meet(problem, [outof[p] for p in cfg.preds(label)])
            new_out = problem.transfer(label, new_in)
            if new_in != inof[label] or new_out != outof[label]:
                inof[label], outof[label] = new_in, new_out
                for succ in cfg.succs(label):
                    push(succ)
        else:
            if label == boundary_label:
                new_out = problem.boundary
            else:
                new_out = _meet(problem, [inof[s] for s in cfg.succs(label)])
            new_in = problem.transfer(label, new_out)
            if new_in != inof[label] or new_out != outof[label]:
                inof[label], outof[label] = new_in, new_out
                for pred in cfg.preds(label):
                    push(pred)
    return Solution(problem.name, inof, outof, stats)
