"""A fixpoint solver for coupled (bidirectional) equation systems.

Morel–Renvoise PRE — the baseline the paper improves on — couples its
"placement possible" predicates in both control flow directions, so it
does not fit the unidirectional solvers.  This module solves arbitrary
systems of monotone bit-vector equations by round-robin re-evaluation
until stabilisation, which is how bidirectional frameworks were solved in
practice.

The generality has a measurable price (more sweeps, more vector
operations); benchmark C1 quantifies it against LCM's four
unidirectional problems.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Sequence, Tuple

from repro.dataflow.bitvec import BitVector, counting
from repro.dataflow.order import reverse_postorder
from repro.dataflow.stats import SolverStats
from repro.ir.cfg import CFG
from repro.obs.trace import is_active, span

#: The solver state: variable name -> block label -> current fact.
State = Dict[str, Dict[str, BitVector]]

#: One equation: recompute variable `name` at block `label` from `state`.
Equation = Tuple[str, Callable[[str, State], BitVector]]


@dataclass
class EquationSystem:
    """A named set of mutually recursive bit-vector equations.

    Attributes:
        width: vector width shared by all variables.
        variables: the variable names, each initialised per block by
            ``init[name]`` (defaults to the empty vector).
        equations: re-evaluation rules applied to every block each sweep,
            in the given order.
    """

    width: int
    variables: Sequence[str]
    equations: Sequence[Equation]
    init: Dict[str, BitVector] = field(default_factory=dict)

    def initial_state(self, cfg: CFG) -> State:
        state: State = {}
        for name in self.variables:
            default = self.init.get(name, BitVector.empty(self.width))
            state[name] = {label: default for label in cfg.labels}
        return state


def solve_system(
    cfg: CFG, system: EquationSystem, max_sweeps: int = 10_000
) -> Tuple[State, SolverStats]:
    """Iterate *system* to a fixpoint over *cfg*; returns (state, stats).

    Emits a ``dataflow.solve_system`` span with sweep/visit counts and
    (when tracing is active) the bit-vector operation tally.
    """
    with span("dataflow.solve_system", problem="bidirectional") as system_span:
        if is_active():
            with counting(exclusive=False) as ops:
                state, stats = _run_system(cfg, system, max_sweeps)
            stats.bitvec_ops = dict(ops.counts)
        else:
            state, stats = _run_system(cfg, system, max_sweeps)
        system_span.set(
            sweeps=stats.sweeps,
            node_visits=stats.node_visits,
            bitvec_ops=stats.total_bitvec_ops,
            blocks=len(cfg),
        )
    return state, stats


def _run_system(
    cfg: CFG, system: EquationSystem, max_sweeps: int
) -> Tuple[State, SolverStats]:
    state = system.initial_state(cfg)
    order = reverse_postorder(cfg)
    stats = SolverStats()

    changed = True
    while changed:
        if stats.sweeps >= max_sweeps:
            raise RuntimeError(
                f"equation system did not converge in {max_sweeps} sweeps"
            )
        changed = False
        stats.sweeps += 1
        for label in order:
            stats.node_visits += 1
            for name, rule in system.equations:
                new = rule(label, state)
                if new != state[name][label]:
                    state[name][label] = new
                    changed = True
    return state, stats
