"""The fused dense LCM plan: one graph, one int-array sweep for the quartet.

The paper defines Lazy Code Motion as a fixed cascade — down-safety and
up-safety feed earliestness, earliestness feeds the delay system, and
the delay fixpoint yields the insert/replace frontier.  The staged
pipeline (:mod:`repro.core.lcm` / :mod:`repro.core.krs`) runs that
cascade as four independent ``solve()`` calls, each materialising a
:class:`~repro.dataflow.solver.Solution` of ``BitVector`` dictionaries
that the next stage immediately re-reads.  On the hot path that
round-tripping *is* the cost: the dense backend (PR 4) already made each
individual solve allocation-free, so what remains is the glue between
them.

This module fuses the whole cascade into one compiled plan:

* an :class:`LCMPlan` is compiled once per (CFG content fingerprint,
  expression universe) — it bundles the shared
  :class:`~repro.dataflow.dense.DenseGraph` with the LCM local
  predicates (ANTLOC/COMP/TRANSP) lowered once to parallel int rows,
  plus the edge list as id pairs (:meth:`AnalysisManager.lcm_plan
  <repro.obs.manager.AnalysisManager.lcm_plan>` memoizes plans by
  content fingerprint, next to the dense-graph tier);
* :func:`run_fused_lcm` and :func:`run_fused_krs` execute the full
  edge-based / node-level cascade on raw ints: the gen/kill systems run
  in one pair of preallocated fact arrays reused back-to-back by every
  system in the cascade, and each successor system consumes its
  predecessor's raw arrays directly — EARLIEST is computed from the
  anticipability/availability ints, the LATER/DELAY systems from the
  EARLIEST ints, INSERT/REPLACE from the LATER ints — with ``BitVector``
  dictionaries materialised exactly once, at the very end;
* the sweep loops mirror the staged solvers node for node, so the
  resulting :class:`~repro.core.lcm.LCMAnalysis` /
  :class:`~repro.core.krs.KRSAnalysis` bundles are **bit-identical** to
  the staged pipeline's, and the ``sweeps``/``node_visits`` statistics
  match the staged dense path exactly (hypothesis-pinned in
  ``tests/test_dataflow_fused.py``; the fused stats carry
  ``backend="fused"`` as their only distinguishing mark).

Like the dense backend, the fused path never runs inside a
:func:`~repro.dataflow.bitvec.counting` context: the pointwise predicate
algebra would be invisible to the operation counter, so
:func:`repro.core.lcm.analyze_lcm` and :func:`repro.core.krs.analyze_krs`
route counted runs to the staged reference pipeline (benchmark C1's
op tallies are pinned unchanged by ``tests/test_dataflow_fused.py``).

See ``docs/PIPELINE.md`` for the paper-predicate ↔ code map and the
staged-vs-fused execution order, and ``docs/PERFORMANCE.md`` for the
measured speedup (``BENCH_solver.json``, ``fused`` block).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.dataflow.bitvec import BitVector
from repro.dataflow.dense import DenseGraph, compile_plan
from repro.dataflow.stats import SolverStats
from repro.ir.cfg import CFG, Edge

#: Divergence guard, matching :func:`repro.dataflow.dense.solve_dense`.
MAX_SWEEPS = 10_000


class LCMPlan:
    """A compiled, immutable fused-solve plan for one (CFG, universe).

    Everything the cascade needs beyond the :class:`DenseGraph`: the
    local predicate rows lowered to raw ints (indexed by block id, in
    ``graph.labels`` order) and the edge list as id pairs in
    ``cfg.edges()`` order.  A plan is valid for any graph with the same
    content analysed over the same universe — for the default universe
    (derived from graph content) that makes it a pure function of the
    fingerprint, which is how the analysis manager caches it.
    """

    __slots__ = (
        "graph", "width", "full", "antloc", "comp", "transp",
        "edge_ids", "edge_labels",
    )

    def __init__(
        self,
        graph: DenseGraph,
        width: int,
        antloc: Tuple[int, ...],
        comp: Tuple[int, ...],
        transp: Tuple[int, ...],
        edge_ids: Tuple[Tuple[int, int], ...],
        edge_labels: Tuple[Edge, ...],
    ) -> None:
        self.graph = graph
        self.width = width
        self.full = (1 << width) - 1
        self.antloc = antloc
        self.comp = comp
        self.transp = transp
        self.edge_ids = edge_ids
        self.edge_labels = edge_labels

    def __repr__(self) -> str:
        return (
            f"LCMPlan({len(self.graph.labels)} blocks, "
            f"{len(self.edge_ids)} edges, width {self.width})"
        )


def compile_lcm_plan(cfg: CFG, local, graph: Optional[DenseGraph] = None) -> LCMPlan:
    """Compile the fused plan for *cfg* over *local*'s universe.

    *local* is a :class:`~repro.analysis.local.LocalProperties`; its
    ANTLOC/COMP/TRANSP vectors are lowered to int rows once, here, so no
    per-run lowering remains.  Pass a precompiled dense *graph* to share
    the id mapping with other analyses (the analysis manager does).
    """
    if graph is None:
        graph = compile_plan(cfg)
    labels = graph.labels
    index = graph.index
    antloc = tuple(local.antloc[label].bits for label in labels)
    comp = tuple(local.comp[label].bits for label in labels)
    transp = tuple(local.transp[label].bits for label in labels)
    edge_labels = tuple(cfg.edges())
    edge_ids = tuple((index[m], index[n]) for m, n in edge_labels)
    return LCMPlan(
        graph, local.universe.width, antloc, comp, transp, edge_ids, edge_labels
    )


def _sweep_genkill(
    order: Tuple[int, ...],
    nbrs: Tuple[Tuple[int, ...], ...],
    boundary_id: int,
    boundary_bits: int,
    gen: Tuple[int, ...],
    keep: Tuple[int, ...],
    init_bits: int,
    neutral: int,
    met: List[int],
    out: List[int],
    name: str,
) -> Tuple[int, int]:
    """One all-paths gen/kill fixpoint over the shared fact arrays.

    Exactly the inner loop of :func:`repro.dataflow.dense.solve_dense`
    (same initialisation, same change detection, same visit order), so
    the fixpoint *and* the sweep statistics match the staged dense path
    bit for bit.  ``met``/``out`` are the plan-wide scratch arrays —
    reset here and left holding the fixpoint for the caller to consume
    in place.
    """
    n = len(met)
    met[:] = [init_bits] * n
    out[:] = [init_bits] * n
    sweeps = 0
    node_visits = 0
    changed = True
    while changed:
        if sweeps >= MAX_SWEEPS:
            raise RuntimeError(
                f"dataflow problem {name!r} did not converge in "
                f"{MAX_SWEEPS} sweeps"
            )
        changed = False
        sweeps += 1
        for i in order:
            node_visits += 1
            if i == boundary_id:
                fact = boundary_bits
            else:
                nb = nbrs[i]
                count = len(nb)
                if count:
                    fact = out[nb[0]]
                    k = 1
                    while k < count:
                        fact &= out[nb[k]]
                        k += 1
                else:
                    fact = neutral
            new_out = gen[i] | (fact & keep[i])
            if fact != met[i] or new_out != out[i]:
                met[i] = fact
                out[i] = new_out
                changed = True
    return sweeps, node_visits


def _vecmap(
    labels: Tuple[str, ...], width: int, bits: List[int]
) -> Dict[str, BitVector]:
    """Materialise one per-block int array as a BitVector dictionary."""
    return {labels[i]: BitVector(width, bits[i]) for i in range(len(labels))}


# ---------------------------------------------------------------------------
# Edge-based cascade (repro.core.lcm).
# ---------------------------------------------------------------------------


def run_fused_lcm(cfg: CFG, plan: LCMPlan, local):
    """The complete edge-based LCM cascade on raw ints.

    Returns an :class:`~repro.core.lcm.LCMAnalysis` bit-identical to
    :func:`repro.core.lcm.analyze_lcm`'s staged pipeline (facts and
    sweep statistics alike; ``stats.backend`` is ``"fused"``).
    """
    from repro.core.lcm import LCMAnalysis

    g = plan.graph
    labels = g.labels
    n = len(labels)
    width = plan.width
    full = plan.full
    antloc, comp, transp = plan.antloc, plan.comp, plan.transp

    # The one pair of fact arrays every system in the cascade reuses.
    met: List[int] = [0] * n
    out: List[int] = [0] * n

    # 1. Anticipability (down-safety): backward all-paths,
    #    gen = ANTLOC, keep = TRANSP.  Backward: met side is OUT.
    ant_sweeps, ant_visits = _sweep_genkill(
        g.backward_order, g.succs, g.exit, 0, antloc, transp, full, full,
        met, out, "anticipability",
    )
    antin = out[:]
    antout = met[:]

    # 2. Availability (up-safety): forward all-paths,
    #    gen = COMP, keep = TRANSP.  Forward: met side is IN.
    av_sweeps, av_visits = _sweep_genkill(
        g.forward_order, g.preds, g.entry, 0, comp, transp, full, full,
        met, out, "availability",
    )
    avin = met[:]
    avout = out[:]

    # 3. EARLIEST per edge, pointwise from the raw anticipability and
    #    availability arrays (no Solution round-trip).
    entry = g.entry
    earliest_bits: List[int] = []
    for mi, ni in plan.edge_ids:
        base = antin[ni] & ~avout[mi]
        if mi != entry:
            base &= (full ^ transp[mi]) | (full ^ antout[mi])
        earliest_bits.append(base)

    # 4. The LATER system: greatest fixpoint over edges, mirroring
    #    repro.core.lcm._solve_later sweep for sweep.  Per-node
    #    predecessor edge rows are prebuilt so the inner loop touches
    #    only ints.
    not_antloc = [full ^ antloc[i] for i in range(n)]
    edge_of: Dict[Tuple[int, int], int] = {
        pair: earliest_bits[k] for k, pair in enumerate(plan.edge_ids)
    }
    pred_rows: List[Tuple[Tuple[int, int], ...]] = [
        tuple((m, edge_of[(m, i)]) for m in g.preds[i]) for i in range(n)
    ]
    laterin: List[int] = [full] * n
    laterin[entry] = 0
    later_sweeps = 0
    later_visits = 0
    changed = True
    while changed:
        if later_sweeps >= MAX_SWEEPS:
            raise RuntimeError(
                f"dataflow problem 'later' did not converge in {MAX_SWEEPS} sweeps"
            )
        changed = False
        later_sweeps += 1
        for i in g.forward_order:
            if i == entry:
                continue
            later_visits += 1
            acc = -1  # all-ones sentinel: meet identity over the row
            for m, e_bits in pred_rows[i]:
                acc &= e_bits | (laterin[m] & not_antloc[m])
            new = acc & full if pred_rows[i] else 0
            if new != laterin[i]:
                laterin[i] = new
                changed = True

    # 5. LATER / INSERT per edge and DELETE per block, pointwise.
    earliest: Dict[Edge, BitVector] = {}
    later: Dict[Edge, BitVector] = {}
    insert: Dict[Edge, BitVector] = {}
    for k, (m_label, n_label) in enumerate(plan.edge_labels):
        mi, ni = plan.edge_ids[k]
        later_bits = earliest_bits[k] | (laterin[mi] & ~antloc[mi])
        earliest[(m_label, n_label)] = BitVector(width, earliest_bits[k])
        later[(m_label, n_label)] = BitVector(width, later_bits)
        insert[(m_label, n_label)] = BitVector(width, later_bits & ~laterin[ni])
    delete_bits = [
        0 if i == entry else antloc[i] & ~laterin[i] for i in range(n)
    ]

    stats = SolverStats(
        sweeps=ant_sweeps + av_sweeps + later_sweeps,
        node_visits=ant_visits + av_visits + later_visits,
        backend="fused",
    )
    return LCMAnalysis(
        cfg=cfg,
        local=local,
        antin=_vecmap(labels, width, antin),
        antout=_vecmap(labels, width, antout),
        avin=_vecmap(labels, width, avin),
        avout=_vecmap(labels, width, avout),
        earliest=earliest,
        laterin=_vecmap(labels, width, laterin),
        later=later,
        insert=insert,
        delete=_vecmap(labels, width, delete_bits),
        stats=stats,
    )


# ---------------------------------------------------------------------------
# Node-level cascade (repro.core.krs).
# ---------------------------------------------------------------------------


def run_fused_krs(cfg: CFG, plan: LCMPlan, local):
    """The complete node-level KRS cascade on raw ints.

    Returns a :class:`~repro.core.krs.KRSAnalysis` bit-identical to
    :func:`repro.core.krs.analyze_krs`'s staged pipeline.  The COMP
    predicate of the node-level formulation is ``local.antloc`` (one
    statement per node), exactly as the staged code uses it; the
    availability solve still uses ``local.comp`` so the self-kill case
    (``a = a + b``) matches.
    """
    from repro.core.krs import KRSAnalysis

    g = plan.graph
    labels = g.labels
    n = len(labels)
    width = plan.width
    full = plan.full
    antloc, comp_rows, transp = plan.antloc, plan.comp, plan.transp
    comp = antloc  # the node-level occurrence predicate
    not_comp = tuple(full ^ comp[i] for i in range(n))

    met: List[int] = [0] * n
    out: List[int] = [0] * n

    # 1+2. Down-safety / up-safety: the same two solves as the
    #      edge-based cascade, consumed at node entry.
    ant_sweeps, ant_visits = _sweep_genkill(
        g.backward_order, g.succs, g.exit, 0, antloc, transp, full, full,
        met, out, "anticipability",
    )
    dsafe = out[:]

    av_sweeps, av_visits = _sweep_genkill(
        g.forward_order, g.preds, g.entry, 0, comp_rows, transp, full, full,
        met, out, "availability",
    )
    usafe = met[:]

    # 3. EARLIEST(n) = DSAFE(n) ∧ ¬∏_{m∈pred}(TRANSP(m) ∧ (DSAFE(m) ∨ USAFE(m))).
    earliest: List[int] = [0] * n
    for i in range(n):
        preds = g.preds[i]
        if preds:
            safe_above = full
            for m in preds:
                safe_above &= transp[m] & (dsafe[m] | usafe[m])
        else:
            safe_above = 0
        earliest[i] = dsafe[i] & ~safe_above

    # 4. DELAY: forward all-paths with gen = EARLIEST − COMP,
    #    keep = ¬COMP (the DelayTransfer lowering), then
    #    DELAY(n) = EARLIEST(n) ∨ IN(n) pointwise.
    delay_gen = tuple(earliest[i] & not_comp[i] for i in range(n))
    delay_sweeps, delay_visits = _sweep_genkill(
        g.forward_order, g.preds, g.entry, 0, delay_gen, not_comp, full, full,
        met, out, "delayability",
    )
    delay = [earliest[i] | met[i] for i in range(n)]

    # 5. LATEST(n) = DELAY(n) ∧ (COMP(n) ∨ ¬∏_{s∈succ} DELAY(s)).
    latest: List[int] = [0] * n
    for i in range(n):
        all_delayable_below = full
        for s in g.succs[i]:
            all_delayable_below &= delay[s]
        latest[i] = delay[i] & (comp[i] | (full ^ all_delayable_below))

    # 6. ISOLATED: backward all-paths with gen = LATEST, keep = ¬COMP,
    #    boundary full at the exit (vacuous conjunction).  Backward:
    #    the met side is the OUT facts the staged pipeline returns.
    iso_sweeps, iso_visits = _sweep_genkill(
        g.backward_order, g.succs, g.exit, full, tuple(latest), not_comp,
        full, full, met, out, "isolation",
    )
    isolated = met[:]

    stats = SolverStats(
        sweeps=ant_sweeps + av_sweeps + delay_sweeps + iso_sweeps,
        node_visits=ant_visits + av_visits + delay_visits + iso_visits,
        backend="fused",
    )
    return KRSAnalysis(
        cfg=cfg,
        local=local,
        dsafe=_vecmap(labels, width, dsafe),
        usafe=_vecmap(labels, width, usafe),
        earliest=_vecmap(labels, width, earliest),
        delay=_vecmap(labels, width, delay),
        latest=_vecmap(labels, width, latest),
        isolated=_vecmap(labels, width, isolated),
        stats=stats,
    )
