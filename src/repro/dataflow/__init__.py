"""Generic bit-vector dataflow machinery.

The paper's efficiency argument is that Lazy Code Motion needs only
*unidirectional* bit-vector problems, which are simpler and cheaper to
solve than Morel–Renvoise's bidirectional system.  This package provides
the machinery to measure that claim:

* :mod:`repro.dataflow.bitvec` — fixed-width bit vectors over an indexed
  universe, with optional per-operation counting;
* :mod:`repro.dataflow.order` — postorder / reverse-postorder traversals;
* :mod:`repro.dataflow.problem` — declarative problem descriptions
  (direction, confluence, boundary, transfer functions);
* :mod:`repro.dataflow.solver` — round-robin and worklist iterative
  solvers for unidirectional problems;
* :mod:`repro.dataflow.dense` — the allocation-free int-array backend
  the default ``"auto"`` strategy compiles problems to;
* :mod:`repro.dataflow.fused` — the fused LCM plan: the whole
  earliest/later/insert/replace quartet (edge-based and node-level) as
  one back-to-back int-array cascade over a single compiled plan;
* :mod:`repro.dataflow.incremental` — per-CFG incremental +
  demand-driven liveness (solve once, patch after local edits, answer
  point queries from backward slices);
* :mod:`repro.dataflow.bidirectional` — a fixpoint solver for coupled
  equation systems (used by the Morel–Renvoise baseline);
* :mod:`repro.dataflow.stats` — counters shared by all of the above.
"""

from repro.dataflow.bitvec import BitVector, OpCounter, counting, counting_active
from repro.dataflow.dense import DenseGraph, compile_plan, solve_dense
from repro.dataflow.fused import (
    LCMPlan,
    compile_lcm_plan,
    run_fused_krs,
    run_fused_lcm,
)
from repro.dataflow.incremental import IncrementalLiveness, IncrementalStats
from repro.dataflow.order import postorder, reverse_postorder, backward_order
from repro.dataflow.problem import (
    Confluence,
    DataflowProblem,
    Direction,
    GenKillTransfer,
)
from repro.dataflow.solver import STRATEGIES, Solution, solve, solve_worklist
from repro.dataflow.bidirectional import EquationSystem, solve_system
from repro.dataflow.stats import SolverStats

__all__ = [
    "BitVector",
    "STRATEGIES",
    "Confluence",
    "DataflowProblem",
    "DenseGraph",
    "Direction",
    "EquationSystem",
    "GenKillTransfer",
    "IncrementalLiveness",
    "IncrementalStats",
    "LCMPlan",
    "OpCounter",
    "Solution",
    "SolverStats",
    "backward_order",
    "compile_lcm_plan",
    "compile_plan",
    "counting",
    "counting_active",
    "postorder",
    "reverse_postorder",
    "run_fused_krs",
    "run_fused_lcm",
    "solve",
    "solve_dense",
    "solve_system",
    "solve_worklist",
]
