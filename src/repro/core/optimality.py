"""Machine-checking the paper's theorems on concrete graphs.

The paper proves three properties of its transformations; this module
turns each into an executable check over all control flow paths of a
program, up to a branch-decision bound:

* **safety** — no path of the transformed program evaluates a candidate
  expression more often than the same path of the original (classic PRE
  never speculates);
* **computational optimality** — Busy and Lazy Code Motion evaluate the
  candidate *at most as often as any other safe placement* on every
  path; checked pairwise against each competing transformation, and the
  theorem's corollary LCM == BCM on every path is checked exactly;
* **correctness** — the transformed program is semantically equivalent:
  identical final environments on the source variables for the same
  inputs.

Paths are identified by their branch-decision sequence, which is stable
across the transformations in this library (they may add blocks but
never add, remove or reorder conditional branches), so "the same path"
is well defined.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.interp.machine import run
from repro.interp.random_inputs import random_envs
from repro.ir.cfg import CFG
from repro.ir.expr import Expr


@dataclass
class Trace:
    """One complete path: its decisions and per-expression eval counts."""

    decisions: Tuple[bool, ...]
    eval_counts: Dict[Expr, int]

    def count(self, expr: Expr) -> int:
        return self.eval_counts.get(expr, 0)

    @property
    def total(self) -> int:
        return sum(self.eval_counts.values())


def enumerate_traces(
    cfg: CFG, max_branches: int = 10, max_steps: int = 10_000
) -> List[Trace]:
    """All complete entry-to-exit paths using at most *max_branches*
    branch decisions.

    Decision sequences are explored as a prefix tree: a run that halts
    before consuming the whole sequence identifies a complete path and
    prunes its subtree; a run that exhausts the sequence without
    reaching the exit is extended by one more decision until the bound.
    """
    traces: List[Trace] = []
    seen: Set[Tuple[bool, ...]] = set()
    pending: List[Tuple[bool, ...]] = [()]
    while pending:
        prefix = pending.pop()
        result = run(cfg, decisions=prefix, max_steps=max_steps)
        if result.reached_exit:
            key = tuple(result.decisions_taken)
            if key not in seen:
                seen.add(key)
                traces.append(Trace(key, dict(result.eval_counts)))
        elif len(prefix) < max_branches:
            pending.append(prefix + (False,))
            pending.append(prefix + (True,))
    traces.sort(key=lambda t: (len(t.decisions), t.decisions))
    return traces


def replay(cfg: CFG, decisions: Sequence[bool], max_steps: int = 100_000) -> Trace:
    """Execute *cfg* along one decision sequence; it must reach the exit."""
    result = run(cfg, decisions=decisions, max_steps=max_steps)
    if not result.reached_exit:
        raise RuntimeError(
            f"path {list(decisions)} does not reach the exit "
            "(the transformation changed branch structure?)"
        )
    return Trace(tuple(result.decisions_taken), dict(result.eval_counts))


@dataclass
class PathReport:
    """The result of a pairwise per-path comparison of two programs."""

    paths_checked: int = 0
    safety_violations: List[Tuple[Tuple[bool, ...], Expr, int, int]] = field(
        default_factory=list
    )
    improvements: int = 0
    regressions: int = 0
    total_before: int = 0
    total_after: int = 0

    @property
    def safe(self) -> bool:
        return not self.safety_violations

    def describe(self) -> str:
        status = "SAFE" if self.safe else f"{len(self.safety_violations)} VIOLATIONS"
        return (
            f"{self.paths_checked} paths, {status}; evaluations "
            f"{self.total_before} -> {self.total_after} "
            f"({self.improvements} paths improved, {self.regressions} regressed)"
        )


def compare_per_path(
    original: CFG,
    transformed: CFG,
    exprs: Optional[Iterable[Expr]] = None,
    max_branches: int = 10,
) -> PathReport:
    """Per-path evaluation-count comparison over all bounded paths.

    A *safety violation* is a path on which *transformed* evaluates some
    candidate expression strictly more often than *original* — exactly
    what classic PRE's admissibility forbids.
    """
    report = PathReport()
    expr_filter = set(exprs) if exprs is not None else None
    for before in enumerate_traces(original, max_branches):
        after = replay(transformed, before.decisions)
        report.paths_checked += 1
        keys = set(before.eval_counts) | set(after.eval_counts)
        if expr_filter is not None:
            keys &= expr_filter
        before_total = sum(before.count(e) for e in keys)
        after_total = sum(after.count(e) for e in keys)
        report.total_before += before_total
        report.total_after += after_total
        if after_total < before_total:
            report.improvements += 1
        elif after_total > before_total:
            report.regressions += 1
        for expr in keys:
            if after.count(expr) > before.count(expr):
                report.safety_violations.append(
                    (before.decisions, expr, before.count(expr), after.count(expr))
                )
    return report


def paths_agree(
    left: CFG,
    right: CFG,
    max_branches: int = 10,
) -> bool:
    """Do two programs evaluate every candidate equally on every path?

    Used for the LCM == BCM computational-optimality corollary and for
    cross-checking the node-level against the edge-based formulation.
    """
    for trace in enumerate_traces(left, max_branches):
        other = replay(right, trace.decisions)
        if other.eval_counts != trace.eval_counts:
            return False
    return True


@dataclass
class EquivalenceReport:
    """Differential-testing outcome for semantic preservation."""

    runs: int = 0
    mismatches: List[Tuple[Dict[str, int], str]] = field(default_factory=list)

    @property
    def equivalent(self) -> bool:
        return not self.mismatches


def check_equivalence(
    original: CFG,
    transformed: CFG,
    runs: int = 50,
    seed: int = 0,
    max_steps: int = 100_000,
    compare_decisions: bool = True,
) -> EquivalenceReport:
    """Execute both programs on random inputs; compare source variables.

    Variables introduced by the transformation (absent from the
    original) are ignored; every original variable must end with the
    same value.  With *compare_decisions* (the default) the executed
    branch sequences must match too — right for code motion, which
    never touches branches, but too strict for structure-changing
    passes like branch folding; those pass ``compare_decisions=False``.
    """
    report = EquivalenceReport()
    source_vars = sorted(original.variables())
    for env in random_envs(original, runs, seed):
        before = run(original, env, max_steps=max_steps)
        after = run(transformed, env, max_steps=max_steps)
        report.runs += 1
        if not before.reached_exit:
            continue  # diverging input; nothing to compare
        if not after.reached_exit:
            report.mismatches.append((env, "transformed program diverged"))
            continue
        if compare_decisions and before.decisions_taken != after.decisions_taken:
            report.mismatches.append((env, "branch decisions differ"))
            continue
        for name in source_vars:
            if before.env.get(name, 0) != after.env.get(name, 0):
                report.mismatches.append(
                    (
                        env,
                        f"variable {name!r}: "
                        f"{before.env.get(name, 0)} != {after.env.get(name, 0)}",
                    )
                )
                break
    return report


def check_safety_and_optimality(
    original: CFG,
    candidates: Mapping[str, CFG],
    reference: Optional[str] = None,
    max_branches: int = 10,
) -> Dict[str, PathReport]:
    """Run :func:`compare_per_path` for several transformed programs.

    Args:
        original: the untransformed program.
        candidates: name -> transformed CFG.
        reference: optional candidate name every other candidate must
            not beat on any path (e.g. ``"lcm"`` — computational
            optimality says nothing evaluates fewer candidates than LCM
            on any path).  A regression against the reference raises.
        max_branches: path bound.

    Returns per-candidate :class:`PathReport` (against the original).
    """
    reports = {
        name: compare_per_path(original, cfg, max_branches=max_branches)
        for name, cfg in candidates.items()
    }
    if reference is not None:
        ref_cfg = candidates[reference]
        for name, cfg in candidates.items():
            if name == reference:
                continue
            head_to_head = compare_per_path(ref_cfg, cfg, max_branches=max_branches)
            if head_to_head.safety_violations:
                # The competitor evaluates more than the reference
                # somewhere — allowed; optimality only forbids the
                # reverse, which shows up as an "improvement" over the
                # reference.
                pass
            if head_to_head.improvements:
                raise AssertionError(
                    f"{name} beats reference {reference} on "
                    f"{head_to_head.improvements} paths — optimality violated"
                )
    return reports
