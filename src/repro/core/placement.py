"""Placement descriptions: where a transformation inserts and deletes.

A :class:`Placement` is the *plan* a PRE algorithm produces for one
candidate expression, before any code is touched:

* ``insert_edges`` — control flow edges that receive ``t = e``
  (realised by edge splitting);
* ``insert_entries`` — blocks that receive ``t = e`` at their entry
  (used by the node-level formulation and the Morel–Renvoise baseline's
  end-of-block insertions, expressed via its successor edges);
* ``delete_blocks`` — blocks whose *upwards-exposed* occurrence of ``e``
  is replaced by a read of ``t``.

Keeping the plan first-class (rather than mutating the CFG directly)
lets the test-suite compare plans across algorithms, feed them to the
optimality checkers, and report them in the benchmark tables exactly the
way the paper's figures mark insertion/replacement points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable

from repro.ir.cfg import CFG, Edge
from repro.ir.expr import Expr, is_computation


class PlacementError(ValueError):
    """Raised when a placement is inconsistent with its CFG."""


@dataclass(frozen=True)
class Placement:
    """An insertion/deletion plan for one expression.

    Attributes:
        expr: the candidate expression being moved.
        temp: name of the temporary that will carry the value.
        insert_edges: edges receiving ``temp = expr``.
        insert_entries: block labels receiving ``temp = expr`` at entry.
        insert_exits: block labels receiving ``temp = expr`` at the end
            of the block, before the terminator (the Morel–Renvoise
            style of insertion).
        delete_blocks: labels whose upwards-exposed occurrence of
            ``expr`` is rewritten to read ``temp``.
    """

    expr: Expr
    temp: str
    insert_edges: FrozenSet[Edge] = frozenset()
    insert_entries: FrozenSet[str] = frozenset()
    delete_blocks: FrozenSet[str] = frozenset()
    insert_exits: FrozenSet[str] = frozenset()

    @classmethod
    def make(
        cls,
        expr: Expr,
        temp: str,
        insert_edges: Iterable[Edge] = (),
        insert_entries: Iterable[str] = (),
        delete_blocks: Iterable[str] = (),
        insert_exits: Iterable[str] = (),
    ) -> "Placement":
        if not is_computation(expr):
            raise PlacementError(f"not a candidate computation: {expr!r}")
        return cls(
            expr,
            temp,
            frozenset(insert_edges),
            frozenset(insert_entries),
            frozenset(delete_blocks),
            frozenset(insert_exits),
        )

    @property
    def is_identity(self) -> bool:
        """True when the plan changes nothing."""
        return not (
            self.insert_edges
            or self.insert_entries
            or self.insert_exits
            or self.delete_blocks
        )

    @property
    def insertion_count(self) -> int:
        """Number of static ``temp = expr`` instructions to be added."""
        return (
            len(self.insert_edges)
            + len(self.insert_entries)
            + len(self.insert_exits)
        )

    def validate_against(self, cfg: CFG) -> None:
        """Check the plan's targets exist in *cfg* and deletions apply."""
        for src, dst in self.insert_edges:
            if not cfg.has_edge(src, dst):
                raise PlacementError(
                    f"{self.expr}: insertion on missing edge {src!r} -> {dst!r}"
                )
        for label in self.insert_entries | self.insert_exits:
            if label not in cfg:
                raise PlacementError(
                    f"{self.expr}: insertion at missing block {label!r}"
                )
        for label in self.delete_blocks:
            if label not in cfg:
                raise PlacementError(
                    f"{self.expr}: deletion at missing block {label!r}"
                )
            if not _has_upward_exposed(cfg, label, self.expr):
                raise PlacementError(
                    f"{self.expr}: block {label!r} has no upwards-exposed "
                    "occurrence to delete"
                )

    def describe(self) -> str:
        """One-line summary used by examples and the bench harness."""
        parts = []
        if self.insert_edges:
            edges = ", ".join(f"{s}->{d}" for s, d in sorted(self.insert_edges))
            parts.append(f"insert on edges [{edges}]")
        if self.insert_entries:
            parts.append(
                "insert at entries [" + ", ".join(sorted(self.insert_entries)) + "]"
            )
        if self.insert_exits:
            parts.append(
                "insert at exits [" + ", ".join(sorted(self.insert_exits)) + "]"
            )
        if self.delete_blocks:
            parts.append(
                "replace in [" + ", ".join(sorted(self.delete_blocks)) + "]"
            )
        if not parts:
            parts.append("no change")
        return f"{self.expr}: " + "; ".join(parts)


def _has_upward_exposed(cfg: CFG, label: str, expr: Expr) -> bool:
    """Does *label* contain an upwards-exposed occurrence of *expr*?"""
    from repro.ir.expr import expr_vars

    operands = set(expr_vars(expr))
    for instr in cfg.block(label).instrs:
        if instr.expr == expr:
            return True
        if instr.target in operands:
            return False
    return False


def upward_exposed_index(cfg: CFG, label: str, expr: Expr) -> int:
    """Index of the upwards-exposed occurrence of *expr* in *label*.

    Raises :class:`PlacementError` when there is none — placements that
    delete in such a block are bugs in the producing algorithm.
    """
    from repro.ir.expr import expr_vars

    operands = set(expr_vars(expr))
    for i, instr in enumerate(cfg.block(label).instrs):
        if instr.expr == expr:
            return i
        if instr.target in operands:
            break
    raise PlacementError(
        f"no upwards-exposed occurrence of {expr} in block {label!r}"
    )
