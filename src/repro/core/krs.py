"""The original node-level formulation of Busy and Lazy Code Motion.

This module follows the paper's own presentation: the flow graph is
statement-granular (build one with
:func:`repro.core.nodegraph.expand_to_nodes` and split critical edges
first), each node ``n`` has the two local predicates

* ``COMP(n)`` — the node's statement computes the expression
  (for single-statement nodes this coincides with local
  anticipatability), and
* ``TRANSP(n)`` — the statement does not assign any operand,

and six global predicates are computed, every one a unidirectional
all-paths bit-vector problem:

* ``DSAFE`` (down-safety)  — may we insert here without adding a
  computation to any path?  Identical to anticipability at node entry.
* ``USAFE`` (up-safety)    — has every path already computed the value?
  Identical to availability at node entry.
* ``EARLIEST``             — the first down-safe points: insertion
  cannot move up any further without losing safety.
* ``DELAY``                — insertion can still be postponed to here
  from the earliest points without passing a use.
* ``LATEST``               — the last delayable points: the paper's
  optimal insertion frontier.
* ``ISOLATED``             — an insertion here would only feed the
  node's own occurrence, so it is pointless.

The three transformations of the paper are read off pointwise:

* **BCM**  (busy):  insert at ``EARLIEST``, replace every occurrence;
* **ALCM** (almost lazy): insert at ``LATEST``, replace every
  occurrence;
* **LCM**  (lazy):  insert at ``OCP = LATEST ∧ ¬ISOLATED``, replace the
  occurrences ``RO = COMP ∧ ¬(LATEST ∧ ISOLATED)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.anticipability import compute_anticipability
from repro.analysis.availability import compute_availability
from repro.analysis.local import LocalProperties, compute_local_properties
from repro.analysis.universe import ExprUniverse
from repro.core.lcm import _use_fused
from repro.core.placement import Placement
from repro.dataflow.bitvec import BitVector
from repro.dataflow.dense import compile_plan
from repro.dataflow.problem import Confluence, DataflowProblem, Direction
from repro.dataflow.solver import solve
from repro.dataflow.stats import SolverStats
from repro.ir.cfg import CFG
from repro.obs import trace
from repro.obs.trace import span


@dataclass
class KRSAnalysis:
    """The six global predicate vectors of the node-level formulation."""

    cfg: CFG
    local: LocalProperties
    dsafe: Dict[str, BitVector]
    usafe: Dict[str, BitVector]
    earliest: Dict[str, BitVector]
    delay: Dict[str, BitVector]
    latest: Dict[str, BitVector]
    isolated: Dict[str, BitVector]
    stats: SolverStats

    @property
    def universe(self) -> ExprUniverse:
        return self.local.universe

    @property
    def comp(self) -> Dict[str, BitVector]:
        """The node-level occurrence predicate (== ANTLOC per node)."""
        return self.local.antloc


def _check_node_granularity(cfg: CFG) -> None:
    for block in cfg:
        if len(block.instrs) > 1:
            raise ValueError(
                "the node-level formulation needs a statement-granular "
                f"graph (block {block.label!r} has {len(block.instrs)} "
                "instructions); use expand_to_nodes() first"
            )


def _compute_earliest(
    cfg: CFG,
    local: LocalProperties,
    dsafe: Dict[str, BitVector],
    usafe: Dict[str, BitVector],
) -> Dict[str, BitVector]:
    """EARLIEST(n) = DSAFE(n) ∧ ¬∏_{m∈pred}(TRANSP(m) ∧ (DSAFE(m) ∨ USAFE(m))).

    The meet over an empty predecessor set (the entry node) is ∅, so the
    entry is earliest for everything down-safe there.
    """
    width = local.universe.width
    earliest: Dict[str, BitVector] = {}
    for n in cfg.labels:
        preds = cfg.preds(n)
        if not preds:
            safe_above = BitVector.empty(width)
        else:
            safe_above = BitVector.full(width)
            for m in preds:
                safe_above = safe_above & (
                    local.transp[m] & (dsafe[m] | usafe[m])
                )
        earliest[n] = dsafe[n] - safe_above
    return earliest


@dataclass(frozen=True)
class DelayTransfer:
    """Per-node transfer of the DELAY system, with a dense lowering.

    Applied: ``(EARLIEST(n) ∨ fact) ∧ ¬COMP(n)`` — the exact operation
    sequence benchmark C1 counts.  The lowered gen/kill form
    (``gen = EARLIEST − COMP``, ``keep = ¬COMP``) is bit-for-bit
    equivalent by distribution, and is precomputed on raw ints so no
    counted operation ever runs.
    """

    earliest: Dict[str, BitVector]
    comp: Dict[str, BitVector]

    def __call__(self, label: str, fact: BitVector) -> BitVector:
        return (self.earliest[label] | fact) - self.comp[label]

    def lower(self, labels) -> tuple:
        gen, keep = [], []
        for label in labels:
            comp = self.comp[label]
            not_comp = comp.bits ^ ((1 << comp.width) - 1)
            gen.append(self.earliest[label].bits & not_comp)
            keep.append(not_comp)
        return gen, keep


@dataclass(frozen=True)
class IsolationTransfer:
    """Per-node transfer of the ISOLATED system, with a dense lowering.

    Applied: ``LATEST(n) ∨ (fact ∧ ¬COMP(n))``; lowered:
    ``gen = LATEST``, ``keep = ¬COMP`` — already the gen/kill shape.
    """

    latest: Dict[str, BitVector]
    comp: Dict[str, BitVector]

    def __call__(self, label: str, fact: BitVector) -> BitVector:
        return self.latest[label] | (fact - self.comp[label])

    def lower(self, labels) -> tuple:
        gen, keep = [], []
        for label in labels:
            comp = self.comp[label]
            gen.append(self.latest[label].bits)
            keep.append(comp.bits ^ ((1 << comp.width) - 1))
        return gen, keep


def delay_problem(
    local: LocalProperties, earliest: Dict[str, BitVector]
) -> DataflowProblem:
    """The DELAY instance over *local*'s universe, given EARLIEST."""
    return DataflowProblem.forward_intersect(
        "delayability",
        local.universe.width,
        DelayTransfer(earliest=earliest, comp=local.antloc),
    )


def isolation_problem(
    local: LocalProperties, latest: Dict[str, BitVector]
) -> DataflowProblem:
    """The ISOLATED instance over *local*'s universe, given LATEST."""
    width = local.universe.width
    return DataflowProblem(
        "isolation",
        Direction.BACKWARD,
        Confluence.INTERSECT,
        width,
        IsolationTransfer(latest=latest, comp=local.antloc),
        boundary=BitVector.full(width),
        init=BitVector.full(width),
    )


def _compute_delay(
    cfg: CFG,
    local: LocalProperties,
    earliest: Dict[str, BitVector],
    plan=None,
) -> tuple:
    """DELAY(n) = EARLIEST(n) ∨ ∏_{m∈pred}(DELAY(m) ∧ ¬COMP(m)).

    Solved as a forward all-paths problem whose per-node output is
    ``DELAY(m) ∧ ¬COMP(m)``; DELAY itself is recovered pointwise.
    """
    solution = solve(cfg, delay_problem(local, earliest), plan=plan)
    delay = {n: earliest[n] | solution.inof[n] for n in cfg.labels}
    return delay, solution.stats


def _compute_isolated(
    cfg: CFG,
    local: LocalProperties,
    latest: Dict[str, BitVector],
    plan=None,
) -> tuple:
    """ISOLATED(n) = ∏_{s∈succ}(LATEST(s) ∨ (¬COMP(s) ∧ ISOLATED(s))).

    Backward all-paths with boundary *full* at the exit (the conjunction
    over no successors is vacuously true).
    """
    solution = solve(cfg, isolation_problem(local, latest), plan=plan)
    return solution.outof, solution.stats


def analyze_krs(
    cfg: CFG,
    universe: Optional[ExprUniverse] = None,
    manager=None,
    strategy: str = "auto",
) -> KRSAnalysis:
    """Run the node-level analysis stack on a statement-granular *cfg*.

    With an :class:`~repro.obs.manager.AnalysisManager`, the whole
    bundle is memoized by graph content (default universe only), like
    :func:`repro.core.lcm.analyze_lcm` — and *strategy* has the same
    semantics as there (:data:`repro.core.lcm.LCM_STRATEGIES`):
    ``"auto"`` runs the fused single-module cascade
    (:func:`repro.dataflow.fused.run_fused_krs`) unless an operation
    counter is installed, and every strategy produces bit-identical
    bundles.
    """
    _check_node_granularity(cfg)
    if manager is not None and universe is None:
        return manager.cached(
            cfg, "krs.analysis", lambda: _analyze_krs(cfg, None, manager, strategy)
        )
    return _analyze_krs(cfg, universe, manager, strategy)


def _analyze_krs_fused(
    cfg: CFG, universe: Optional[ExprUniverse], manager
) -> KRSAnalysis:
    """The fused execution plan for the node-level formulation."""
    from repro.dataflow.fused import compile_lcm_plan, run_fused_krs

    with span("krs.analyze", blocks=len(cfg)):
        local = compute_local_properties(cfg, universe)
        if manager is not None and universe is None:
            plan = manager.lcm_plan(cfg, local)
        else:
            plan = compile_lcm_plan(cfg, local)
        trace.count("fused.run")
        with span(
            "krs.fused", blocks=len(cfg), width=local.universe.width
        ) as fused_span:
            analysis = run_fused_krs(cfg, plan, local)
            fused_span.set(
                sweeps=analysis.stats.sweeps,
                node_visits=analysis.stats.node_visits,
            )
        if manager is not None:
            manager.stats.backends["fused"] = (
                manager.stats.backends.get("fused", 0) + 1
            )
    return analysis


def _analyze_krs(
    cfg: CFG,
    universe: Optional[ExprUniverse],
    manager,
    strategy: str = "staged",
) -> KRSAnalysis:
    if _use_fused(strategy):
        return _analyze_krs_fused(cfg, universe, manager)
    with span("krs.analyze", blocks=len(cfg)):
        local = compute_local_properties(cfg, universe)
        comp = local.antloc
        width = local.universe.width

        # One dense solve plan shared by all four dataflow solves.
        plan = (
            manager.dense_plan(cfg) if manager is not None else compile_plan(cfg)
        )
        ant = compute_anticipability(cfg, local, manager=manager, plan=plan)
        av = compute_availability(cfg, local, manager=manager, plan=plan)
        dsafe = ant.antin
        usafe = av.avin
        stats = ant.stats.merged(av.stats)

        with span("krs.earliest"):
            earliest = _compute_earliest(cfg, local, dsafe, usafe)
        delay, delay_stats = _compute_delay(cfg, local, earliest, plan=plan)
        stats = stats.merged(delay_stats)

        with span("krs.latest"):
            latest: Dict[str, BitVector] = {}
            for n in cfg.labels:
                succs = cfg.succs(n)
                if not succs:
                    all_delayable_below = BitVector.full(width)
                else:
                    all_delayable_below = BitVector.full(width)
                    for s in succs:
                        all_delayable_below = all_delayable_below & delay[s]
                latest[n] = delay[n] & (comp[n] | ~all_delayable_below)

        isolated, iso_stats = _compute_isolated(cfg, local, latest, plan=plan)
        stats = stats.merged(iso_stats)

    return KRSAnalysis(
        cfg=cfg,
        local=local,
        dsafe=dsafe,
        usafe=usafe,
        earliest=earliest,
        delay=delay,
        latest=latest,
        isolated=isolated,
        stats=stats,
    )


def krs_placements(analysis: KRSAnalysis, variant: str = "lcm") -> List[Placement]:
    """Placements for one of the paper's three transformations.

    Args:
        analysis: a :func:`analyze_krs` result.
        variant: ``"bcm"`` (earliest insertion, all occurrences
            replaced), ``"alcm"`` (latest insertion, all occurrences
            replaced) or ``"lcm"`` (latest non-isolated insertion,
            non-isolated occurrences replaced).

    Insertions are at node entries (``insert_entries``); on a
    statement-granular graph with critical edges split this is as
    expressive as edge insertion.
    """
    cfg = analysis.cfg
    universe = analysis.universe
    comp = analysis.comp

    if variant == "bcm":
        insert_at = analysis.earliest
        replace_at = comp
    elif variant == "alcm":
        insert_at = analysis.latest
        replace_at = comp
    elif variant == "lcm":
        insert_at = {
            n: analysis.latest[n] - analysis.isolated[n] for n in cfg.labels
        }
        replace_at = {
            n: comp[n] - (analysis.latest[n] & analysis.isolated[n])
            for n in cfg.labels
        }
    else:
        raise ValueError(f"unknown KRS variant {variant!r}")

    placements: List[Placement] = []
    for idx, expr in universe.enumerate():
        entries = frozenset(n for n in cfg.labels if idx in insert_at[n])
        deletes = frozenset(n for n in cfg.labels if idx in replace_at[n])
        placements.append(
            Placement(expr, universe.temp_name(expr), frozenset(), entries, deletes)
        )
    return placements
