"""Whole-program optimisation reports.

``optimization_report`` runs the analyses and a strategy on a program
and renders everything a human reviewing the optimisation wants in one
place: the candidate universe, per-expression analysis summary and
placement, the verification verdict and the before/after metrics.
Used by the CLI's ``audit --full`` and handy in notebooks/tests::

    from repro.core.report import optimization_report
    print(optimization_report(cfg))
"""

from __future__ import annotations

from typing import List, Optional

from repro.bench.harness import Table
from repro.core.lcm import analyze_lcm, lcm_placements
from repro.core.lifetime import measure_lifetimes, program_pressure
from repro.core.pipeline import optimize
from repro.core.verify import verify_transformation
from repro.ir.cfg import CFG
from repro.obs.manager import AnalysisManager


def _expression_rows(cfg: CFG, manager: Optional[AnalysisManager] = None) -> Table:
    analysis = analyze_lcm(cfg, manager=manager)
    universe = analysis.universe
    table = Table(
        ["#", "expression", "occurrences", "anticipatable blocks",
         "available blocks", "plan"],
        title="candidate expressions",
    )
    placements = {p.expr: p for p in lcm_placements(analysis)}
    for idx, expr in universe.enumerate():
        occurrences = sum(
            1 for _, _, instr in cfg.instructions() if instr.expr == expr
        )
        ant = sum(1 for label in cfg.labels if idx in analysis.antin[label])
        av = sum(1 for label in cfg.labels if idx in analysis.avin[label])
        plan = placements[expr]
        if plan.is_identity:
            summary = "leave in place"
        else:
            summary = (
                f"{plan.insertion_count} insert / "
                f"{len(plan.delete_blocks)} delete"
            )
        table.add_row(idx, str(expr), occurrences, ant, av, summary)
    return table


def optimization_report(
    cfg: CFG,
    strategy: str = "lcm",
    verify: bool = True,
    title: Optional[str] = None,
    manager: Optional[AnalysisManager] = None,
) -> str:
    """A complete, readable optimisation report for *cfg*.

    When no *manager* is given one is created for the duration of the
    report, so the expression table and the transformation below it
    share a single set of dataflow solutions.
    """
    if manager is None:
        manager = AnalysisManager()
    lines: List[str] = []
    header = title or f"optimisation report ({strategy})"
    lines.append(header)
    lines.append("=" * len(header))
    lines.append("")

    lines.append(_expression_rows(cfg, manager).render())
    lines.append("")

    result = optimize(cfg, strategy, manager=manager)
    lines.append("placements")
    lines.append("-" * 10)
    for line in result.describe().splitlines():
        lines.append(f"  {line}")
    copies = sorted(result.copy_blocks)
    if copies:
        lines.append(f"  generator copies kept in: {', '.join(copies)}")
    lines.append("")

    before_peak, before_avg = program_pressure(cfg)
    after_peak, after_avg = program_pressure(result.cfg)
    lifetimes = measure_lifetimes(result.cfg, result.temps)
    metrics = Table(["metric", "before", "after"], title="metrics")
    metrics.add_row(
        "static computations",
        cfg.static_computation_count(),
        result.cfg.static_computation_count(),
    )
    metrics.add_row("blocks", len(cfg), len(result.cfg))
    metrics.add_row("peak pressure (all vars)", before_peak, after_peak)
    metrics.add_row(
        "temp live points", "-", lifetimes.total_live_points
    )
    lines.append(metrics.render())
    lines.append("")

    if verify:
        verdict = verify_transformation(cfg, result.cfg)
        lines.append("verification")
        lines.append("-" * 12)
        for line in verdict.describe().splitlines():
            lines.append(f"  {line}")
    return "\n".join(lines)
