"""One-call verification of a transformation against the paper's bars.

``verify_transformation`` bundles the library's oracles into a single
verdict for a (original, transformed) pair:

* **equivalence** — differential execution on random inputs;
* **safety** — per-path evaluation counts never increase (classic
  PRE's admissibility; speculative transformations legitimately fail
  this and can say so upfront);
* **profitability** — at least one path got cheaper (optional: the
  identity transformation is fine for `optimize(cfg, "none")`).

Used by the CLI's ``opt --verify`` and handy in user code::

    from repro import optimize
    from repro.core.verify import verify_transformation

    result = optimize(cfg, "lcm")
    verdict = verify_transformation(cfg, result.cfg)
    assert verdict.ok, verdict.describe()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.optimality import (
    EquivalenceReport,
    PathReport,
    check_equivalence,
    compare_per_path,
)
from repro.ir.cfg import CFG
from repro.ir.validate import validate_cfg


@dataclass
class Verdict:
    """The bundled verification outcome."""

    equivalence: EquivalenceReport
    paths: PathReport
    structural_ok: bool
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        lines = [
            f"structure : {'ok' if self.structural_ok else 'INVALID'}",
            f"semantics : {self.equivalence.runs} runs, "
            + ("equivalent" if self.equivalence.equivalent else "MISMATCH"),
            f"paths     : {self.paths.describe()}",
        ]
        if self.failures:
            lines.append("FAILURES: " + "; ".join(self.failures))
        else:
            lines.append("verdict   : OK")
        return "\n".join(lines)


def verify_transformation(
    original: CFG,
    transformed: CFG,
    runs: int = 30,
    max_branches: int = 7,
    expect_safe: bool = True,
    expect_profitable: bool = False,
    compare_decisions: bool = True,
    seed: int = 0,
) -> Verdict:
    """Check *transformed* against *original* on all three bars."""
    failures: List[str] = []

    structural_ok = True
    try:
        validate_cfg(transformed)
    except Exception as exc:  # pragma: no cover - defensive
        structural_ok = False
        failures.append(f"structural validation failed: {exc}")

    equivalence = check_equivalence(
        original,
        transformed,
        runs=runs,
        seed=seed,
        compare_decisions=compare_decisions,
    )
    if not equivalence.equivalent:
        sample = equivalence.mismatches[0][1] if equivalence.mismatches else ""
        failures.append(f"semantics changed ({sample})")

    if compare_decisions:
        paths = compare_per_path(original, transformed, max_branches=max_branches)
        if expect_safe and not paths.safe:
            failures.append(
                f"{len(paths.safety_violations)} per-path safety violations"
            )
        if expect_profitable and paths.improvements == 0:
            failures.append("no path improved")
    else:
        # Branch structure changed (e.g. branch folding): per-path
        # replay is undefined; report an empty path comparison.
        paths = PathReport()

    return Verdict(equivalence, paths, structural_ok, failures)
