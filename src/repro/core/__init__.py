"""The paper's contribution: Busy and Lazy Code Motion.

Two independent implementations are provided and cross-checked:

* :mod:`repro.core.lcm` — the practical *edge-based* basic-block
  formulation (anticipability, availability, earliestness on edges, the
  LATER postponement system, INSERT/DELETE), the shape used by GCC's
  ``lcm.c``;
* :mod:`repro.core.krs` — the original *node-level* formulation of the
  paper (down-safety, up-safety, earliestness, delayability, latestness,
  isolation) on a statement-granular graph built by
  :mod:`repro.core.nodegraph`.

Both produce :class:`repro.core.placement.Placement` objects, which
:mod:`repro.core.transform` applies to a CFG.  :mod:`repro.core.pipeline`
wires everything into the one-call public API;
:mod:`repro.core.lifetime` and :mod:`repro.core.optimality` provide the
machinery that checks the paper's optimality theorems.
"""

from repro.core.placement import Placement, PlacementError
from repro.core.lcm import LCMAnalysis, analyze_lcm, lcm_placements, bcm_placements
from repro.core.krs import KRSAnalysis, analyze_krs, krs_placements
from repro.core.nodegraph import NodeGraph, expand_to_nodes
from repro.core.transform import (
    TransformResult,
    apply_placements,
    eliminate_dead_code,
)
from repro.core.pipeline import (
    OptimizeConfig,
    OptimizeContext,
    PREStrategy,
    available_strategies,
    get_pass,
    optimize,
    register_pass,
)
from repro.core.lifetime import LifetimeReport, measure_lifetimes
from repro.core.optimality import (
    PathReport,
    check_safety_and_optimality,
    enumerate_traces,
)

__all__ = [
    "KRSAnalysis",
    "LCMAnalysis",
    "LifetimeReport",
    "NodeGraph",
    "OptimizeConfig",
    "OptimizeContext",
    "PREStrategy",
    "PathReport",
    "Placement",
    "PlacementError",
    "TransformResult",
    "analyze_krs",
    "analyze_lcm",
    "apply_placements",
    "available_strategies",
    "bcm_placements",
    "check_safety_and_optimality",
    "eliminate_dead_code",
    "enumerate_traces",
    "expand_to_nodes",
    "get_pass",
    "krs_placements",
    "lcm_placements",
    "measure_lifetimes",
    "optimize",
    "register_pass",
]
