"""The one-call public API: ``optimize(cfg, pass_="lcm")``.

Optimisation passes live in a registry keyed by name; core algorithms,
baselines and extensions all register themselves with the
:func:`register_pass` decorator, so the dispatch table is open — a new
PRE variant anywhere in the codebase becomes available to the CLI, the
benchmarks and the reports by registering itself.

Registered passes:

===========  ==============================================================
``lcm``      edge-based Lazy Code Motion (the paper's algorithm; default)
``bcm``      edge-based Busy Code Motion (earliest placement)
``krs-lcm``  the original node-level LCM on a statement-granular graph
``krs-alcm`` node-level Almost-LCM (no isolation filtering)
``krs-bcm``  node-level BCM
``lcm-size`` code-size-governed LCM (extension)
``mr``       Morel–Renvoise bidirectional PRE (1979 baseline)
``gcse``     full-redundancy elimination only (global CSE)
``licm``     naive loop-invariant code motion (speculative baseline)
``none``     identity (no change)
===========  ==============================================================

All passes return a :class:`~repro.core.transform.TransformResult`
whose ``cfg`` is a *new* graph; the input is never mutated.

Behaviour is configured with :class:`OptimizeConfig`; repeated runs over
unchanged graphs are made cheap by passing an
:class:`~repro.obs.manager.AnalysisManager`, which memoizes every
dataflow solution by graph content.  Front-ends should not call this
module directly: :mod:`repro.api` is the facade that wraps it (and
source loading) in typed outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.krs import analyze_krs, krs_placements
from repro.core.lcm import analyze_lcm, bcm_placements, lcm_placements
from repro.core.localcse import local_cse
from repro.core.nodegraph import expand_to_nodes
from repro.core.transform import TransformResult, apply_placements
from repro.ir.cfg import CFG
from repro.ir.edgesplit import split_join_edges
from repro.ir.validate import validate_cfg
from repro.obs.manager import notify_cfg_derived
from repro.obs.trace import span


@dataclass(frozen=True)
class OptimizeConfig:
    """Knobs for :func:`optimize` that are not the pass itself.

    Attributes:
        run_local_cse: normalise blocks with local CSE first, as the
            paper assumes.
        validate: check the input's structural invariants first.
    """

    run_local_cse: bool = True
    validate: bool = True


@dataclass(frozen=True)
class OptimizeContext:
    """Everything a registered pass receives besides the graph."""

    config: OptimizeConfig
    manager: Optional[object] = None  # an AnalysisManager, when caching


#: A registered pass body: ``(cfg, ctx) -> TransformResult``.
PassFn = Callable[[CFG, OptimizeContext], TransformResult]


@dataclass(frozen=True)
class PREStrategy:
    """A named, registered PRE pass usable with :func:`optimize`.

    ``hidden`` passes resolve by exact name (:func:`get_pass`,
    :func:`optimize`) but are excluded from
    :func:`available_strategies` — the shape test fixtures use for
    deliberately broken passes (e.g. ``miscompile-dce`` in
    :mod:`repro.batch.testing`) that must never be offered by the CLI
    or swept by whole-registry property tests.
    """

    name: str
    description: str
    run: PassFn
    hidden: bool = False


_REGISTRY: Dict[str, PREStrategy] = {}


def register_pass(
    name: str, description: str = "", hidden: bool = False
) -> Callable[[PassFn], PassFn]:
    """Class-of-one decorator: register *fn* as the pass named *name*.

    ::

        @register_pass("my-pre", "my own placement strategy")
        def _my_pre(cfg, ctx):
            return apply_placements(cfg, my_placements(cfg))

    The function receives the (already LCSE-normalised, when configured)
    graph and an :class:`OptimizeContext`; it must return a
    :class:`TransformResult` over a *new* graph.  Registering a taken
    name raises ``ValueError``.
    """

    def decorate(fn: PassFn) -> PassFn:
        if name in _REGISTRY:
            raise ValueError(f"pass {name!r} is already registered")
        summary = description or (fn.__doc__ or "").strip().splitlines()[0]
        _REGISTRY[name] = PREStrategy(name, summary, fn, hidden=hidden)
        return fn

    return decorate


def _ensure_registered() -> Dict[str, PREStrategy]:
    """Import every pass-providing module, then return the registry.

    Imports are deferred so :mod:`repro.core` does not hard-depend on
    the baselines/extensions packages at import time (they import
    repro.core themselves).
    """
    import repro.baselines.gcse  # noqa: F401  (registers "gcse")
    import repro.baselines.licm  # noqa: F401  (registers "licm")
    import repro.baselines.morel_renvoise  # noqa: F401  (registers "mr")
    import repro.extensions.codesize  # noqa: F401  (registers "lcm-size")

    return _REGISTRY


# -- the core passes --------------------------------------------------------

def _edge_based(cfg: CFG, variant: str, ctx: OptimizeContext) -> TransformResult:
    manager = ctx.manager if ctx is not None else None
    analysis = analyze_lcm(cfg, manager=manager)
    if variant == "lcm":
        placements = lcm_placements(analysis)
    elif variant == "bcm":
        placements = bcm_placements(analysis)
    else:
        raise ValueError(f"unknown edge-based variant {variant!r}")
    result = apply_placements(cfg, placements, manager=ctx.manager)
    return result


def _node_based(cfg: CFG, variant: str, ctx: OptimizeContext) -> TransformResult:
    expanded = expand_to_nodes(cfg).cfg
    # Edge-split form (every edge into a join gets a landing node) is
    # required for node insertions to be as expressive as edge
    # insertions; critical-edge splitting alone loses optimality when a
    # single-successor block ending in a kill feeds a join.
    split_join_edges(expanded)
    analysis = analyze_krs(
        expanded, manager=ctx.manager if ctx is not None else None
    )
    placements = krs_placements(analysis, variant)
    # The node-level formulation accounts for isolation itself (for the
    # lcm variant); the transform's own copy machinery still runs so
    # that the two mechanisms can be compared, but for BCM/ALCM the
    # "replace everything" plans need the tentative copies collapsed
    # only when truly dead, which is the default behaviour.
    result = apply_placements(expanded, placements, manager=ctx.manager)
    return TransformResult(
        original=cfg,
        cfg=result.cfg,
        placements=result.placements,
        temps=result.temps,
        copies_added=result.copies_added,
        copies_collapsed=result.copies_collapsed,
        insertions_dropped=result.insertions_dropped,
    )


@register_pass("lcm", "Lazy Code Motion, edge-based (Knoop/Ruething/Steffen 1992)")
def _lcm_pass(cfg: CFG, ctx: OptimizeContext) -> TransformResult:
    return _edge_based(cfg, "lcm", ctx)


@register_pass("bcm", "Busy Code Motion, edge-based (earliest placement)")
def _bcm_pass(cfg: CFG, ctx: OptimizeContext) -> TransformResult:
    return _edge_based(cfg, "bcm", ctx)


@register_pass("krs-lcm", "Lazy Code Motion, original node-level formulation")
def _krs_lcm_pass(cfg: CFG, ctx: OptimizeContext) -> TransformResult:
    return _node_based(cfg, "lcm", ctx)


@register_pass("krs-alcm", "Almost-lazy Code Motion (latest placement, no isolation)")
def _krs_alcm_pass(cfg: CFG, ctx: OptimizeContext) -> TransformResult:
    return _node_based(cfg, "alcm", ctx)


@register_pass("krs-bcm", "Busy Code Motion, original node-level formulation")
def _krs_bcm_pass(cfg: CFG, ctx: OptimizeContext) -> TransformResult:
    return _node_based(cfg, "bcm", ctx)


@register_pass("none", "Identity (no optimisation)")
def _identity_pass(cfg: CFG, ctx: OptimizeContext) -> TransformResult:
    return TransformResult(original=cfg, cfg=cfg.copy(), placements=[], temps=set())


# -- lookup -----------------------------------------------------------------

def available_strategies() -> List[PREStrategy]:
    """All registered non-hidden passes, name-sorted."""
    table = _ensure_registered()
    return [
        table[name] for name in sorted(table) if not table[name].hidden
    ]


def get_pass(name: str) -> PREStrategy:
    """The registered pass named *name* (ValueError lists options)."""
    table = _ensure_registered()
    if name not in table:
        names = ", ".join(sorted(table))
        raise ValueError(f"unknown strategy {name!r}; choose one of: {names}")
    return table[name]


# -- the entry point --------------------------------------------------------


def optimize(
    cfg: CFG,
    pass_: str = "lcm",
    *,
    config: Optional[OptimizeConfig] = None,
    manager=None,
) -> TransformResult:
    """Optimise *cfg* with the registered pass named *pass_*.

    Args:
        cfg: the input program (never mutated).
        pass_: one of :func:`available_strategies`.
        config: behaviour knobs (:class:`OptimizeConfig`; defaults
            apply when None).
        manager: an :class:`~repro.obs.manager.AnalysisManager` to
            memoize dataflow solutions across calls.

    Returns the transformation result; ``result.cfg`` is the optimised
    program.

    The pre-registry keyword spelling (``strategy=...``,
    ``run_local_cse=...``, ``validate=...``) was removed after a
    deprecation cycle; those keywords now raise ``TypeError``.
    """
    if config is None:
        config = OptimizeConfig()

    if config.validate:
        with span("pass.validate"):
            validate_cfg(cfg)
    registered = get_pass(pass_)
    ctx = OptimizeContext(config=config, manager=manager)
    with span("optimize", pass_=pass_) as opt_span:
        source = cfg
        if config.run_local_cse:
            with span("pass.lcse"):
                lcse_edits: List[str] = []
                source, _ = local_cse(cfg, edited=lcse_edits)
            # LCSE returns a copy differing only in the edited blocks;
            # seed its fingerprint state from the input's.
            notify_cfg_derived(source, cfg, lcse_edits)
        result = registered.run(source, ctx)
        opt_span.set(
            insertions=sum(p.insertion_count for p in result.placements),
            deletions=sum(len(p.delete_blocks) for p in result.placements),
        )
    # Report against the caller's graph, not the LCSE'd intermediate.
    result.original = cfg
    return result
