"""The one-call public API: ``optimize(cfg, strategy)``.

Wires the analyses, placement computation and transformation engine
into named strategies:

===========  ==============================================================
``lcm``      edge-based Lazy Code Motion (the paper's algorithm; default)
``bcm``      edge-based Busy Code Motion (earliest placement)
``krs-lcm``  the original node-level LCM on a statement-granular graph
``krs-alcm`` node-level Almost-LCM (no isolation filtering)
``krs-bcm``  node-level BCM
``mr``       Morel–Renvoise bidirectional PRE (1979 baseline)
``gcse``     full-redundancy elimination only (global CSE)
``licm``     naive loop-invariant code motion (speculative baseline)
``none``     identity (no change)
===========  ==============================================================

All strategies return a :class:`~repro.core.transform.TransformResult`
whose ``cfg`` is a *new* graph; the input is never mutated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.krs import analyze_krs, krs_placements
from repro.core.lcm import analyze_lcm, bcm_placements, lcm_placements
from repro.core.localcse import local_cse
from repro.core.nodegraph import expand_to_nodes
from repro.core.transform import TransformResult, apply_placements
from repro.ir.cfg import CFG
from repro.ir.edgesplit import split_join_edges
from repro.ir.validate import validate_cfg


@dataclass(frozen=True)
class PREStrategy:
    """A named PRE algorithm usable with :func:`optimize`."""

    name: str
    description: str
    run: Callable[[CFG], TransformResult]


def _edge_based(cfg: CFG, variant: str) -> TransformResult:
    analysis = analyze_lcm(cfg)
    if variant == "lcm":
        placements = lcm_placements(analysis)
    elif variant == "bcm":
        placements = bcm_placements(analysis)
    else:
        raise ValueError(f"unknown edge-based variant {variant!r}")
    result = apply_placements(cfg, placements)
    return result


def _node_based(cfg: CFG, variant: str) -> TransformResult:
    expanded = expand_to_nodes(cfg).cfg
    # Edge-split form (every edge into a join gets a landing node) is
    # required for node insertions to be as expressive as edge
    # insertions; critical-edge splitting alone loses optimality when a
    # single-successor block ending in a kill feeds a join.
    split_join_edges(expanded)
    analysis = analyze_krs(expanded)
    placements = krs_placements(analysis, variant)
    # The node-level formulation accounts for isolation itself (for the
    # lcm variant); the transform's own copy machinery still runs so
    # that the two mechanisms can be compared, but for BCM/ALCM the
    # "replace everything" plans need the tentative copies collapsed
    # only when truly dead, which is the default behaviour.
    result = apply_placements(expanded, placements)
    return TransformResult(
        original=cfg,
        cfg=result.cfg,
        placements=result.placements,
        temps=result.temps,
        copies_added=result.copies_added,
        copies_collapsed=result.copies_collapsed,
        insertions_dropped=result.insertions_dropped,
    )


def _identity(cfg: CFG) -> TransformResult:
    return TransformResult(original=cfg, cfg=cfg.copy(), placements=[], temps=set())


def _size_governed(cfg: CFG) -> TransformResult:
    from repro.extensions.codesize import size_governed_transform

    result, _ = size_governed_transform(cfg)
    return result


def _strategy_table() -> Dict[str, PREStrategy]:
    # Imported here so repro.core does not hard-depend on the baselines
    # package at import time (the baselines import repro.core).
    from repro.baselines.gcse import gcse_transform
    from repro.baselines.licm import licm_transform
    from repro.baselines.morel_renvoise import morel_renvoise_transform

    return {
        "lcm": PREStrategy(
            "lcm",
            "Lazy Code Motion, edge-based (Knoop/Ruething/Steffen 1992)",
            lambda cfg: _edge_based(cfg, "lcm"),
        ),
        "bcm": PREStrategy(
            "bcm",
            "Busy Code Motion, edge-based (earliest placement)",
            lambda cfg: _edge_based(cfg, "bcm"),
        ),
        "krs-lcm": PREStrategy(
            "krs-lcm",
            "Lazy Code Motion, original node-level formulation",
            lambda cfg: _node_based(cfg, "lcm"),
        ),
        "krs-alcm": PREStrategy(
            "krs-alcm",
            "Almost-lazy Code Motion (latest placement, no isolation)",
            lambda cfg: _node_based(cfg, "alcm"),
        ),
        "krs-bcm": PREStrategy(
            "krs-bcm",
            "Busy Code Motion, original node-level formulation",
            lambda cfg: _node_based(cfg, "bcm"),
        ),
        "lcm-size": PREStrategy(
            "lcm-size",
            "Code-size-governed LCM (never grows the program text)",
            _size_governed,
        ),
        "mr": PREStrategy(
            "mr",
            "Morel-Renvoise bidirectional PRE (1979 baseline)",
            morel_renvoise_transform,
        ),
        "gcse": PREStrategy(
            "gcse",
            "Global CSE: full-redundancy elimination only",
            gcse_transform,
        ),
        "licm": PREStrategy(
            "licm",
            "Naive loop-invariant code motion (speculative baseline)",
            licm_transform,
        ),
        "none": PREStrategy("none", "Identity (no optimisation)", _identity),
    }


def available_strategies() -> List[PREStrategy]:
    """All strategies usable with :func:`optimize`, in a stable order."""
    return list(_strategy_table().values())


def optimize(
    cfg: CFG,
    strategy: str = "lcm",
    run_local_cse: bool = True,
    validate: bool = True,
) -> TransformResult:
    """Optimise *cfg* with the named *strategy*.

    Args:
        cfg: the input program (never mutated).
        strategy: one of :func:`available_strategies`.
        run_local_cse: normalise blocks with local CSE first, as the
            paper assumes.
        validate: check the input's structural invariants first.

    Returns the transformation result; ``result.cfg`` is the optimised
    program.
    """
    if validate:
        validate_cfg(cfg)
    table = _strategy_table()
    if strategy not in table:
        names = ", ".join(sorted(table))
        raise ValueError(f"unknown strategy {strategy!r}; choose one of: {names}")
    source = cfg
    if run_local_cse:
        source, _ = local_cse(cfg)
    result = table[strategy].run(source)
    # Report against the caller's graph, not the LCSE'd intermediate.
    result.original = cfg
    return result
