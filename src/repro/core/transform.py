"""Applying placements: the code motion transformation itself.

Given a CFG and one :class:`~repro.core.placement.Placement` per
expression, :func:`apply_placements` produces the transformed program:

1. **Replace** the upwards-exposed occurrence ``x = e`` in every
   ``delete_blocks`` member with ``x = t``.
2. **Initialise** ``t``: insert ``t = e`` at every ``insert_entries``
   block entry and on every ``insert_edges`` edge (realised by edge
   splitting; simultaneous insertions of several expressions on one edge
   share the split block).
3. **Copy at generators**: every *remaining* occurrence ``x = e`` is
   tentatively rewritten to ``t = e; x = t`` so its value can flow to
   replaced occurrences downstream.
4. **Suppress isolated copies**: a tentative copy whose temporary is
   dead after the pair is collapsed back to the original ``x = e``.
   This reproduces the paper's isolation treatment *semantically*; the
   analyses' own isolation handling is cross-checked against it in the
   tests.

The result is always semantically equivalent to the input for *any*
placement that is value-correct; the interpreter-based checkers in
:mod:`repro.core.optimality` verify this property for every algorithm in
the library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.liveness import LivenessResult
from repro.core.placement import Placement, PlacementError, upward_exposed_index
from repro.dataflow.incremental import IncrementalLiveness
from repro.ir.cfg import CFG, Edge
from repro.ir.expr import Expr, Var
from repro.ir.instr import Assign
from repro.obs.manager import (
    AnalysisManager,
    notify_cfg_derived,
    notify_cfg_edited,
)


def _liveness_engine(
    cfg: CFG, manager: Optional[AnalysisManager], live_at_exit=()
) -> IncrementalLiveness:
    """The incremental liveness engine for *cfg*.

    With a manager, the engine is the manager-held one — its global
    solve is memoized by content fingerprint (a second transformation
    run producing the same intermediate programs hits the cache) and it
    is kept current through the notification hooks.  Without one, a
    private engine is returned; callers must pair every mutation with
    :func:`_mark_edited` / :func:`_mark_mutated` so both kinds stay in
    sync.
    """
    if manager is None:
        return IncrementalLiveness(cfg, live_at_exit=live_at_exit)
    return manager.liveness(cfg, live_at_exit=live_at_exit)


def _mark_edited(
    cfg: CFG,
    engine: IncrementalLiveness,
    labels,
    manager: Optional[AnalysisManager],
) -> None:
    """Signal instruction-level edits to *labels* after mutating *cfg*.

    The module hook reaches every live manager (including the one
    holding *engine*, when there is one); a private engine gets the
    marks directly.
    """
    notify_cfg_edited(cfg, labels)
    if manager is None:
        engine.blocks_edited(labels)


@dataclass
class TransformResult:
    """The outcome of applying a set of placements."""

    original: CFG
    cfg: CFG
    placements: List[Placement]
    temps: Set[str]
    copies_added: List[Tuple[str, str]] = field(default_factory=list)
    copies_collapsed: List[Tuple[str, str]] = field(default_factory=list)
    insertions_dropped: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def copy_blocks(self) -> Set[str]:
        """Blocks where a generating occurrence kept its copy (COPY set)."""
        collapsed = set(self.copies_collapsed)
        return {label for label, _ in self.copies_added if (label, _) not in collapsed}

    def describe(self) -> str:
        lines = [p.describe() for p in self.placements if not p.is_identity]
        if not lines:
            return "no transformation applied"
        return "\n".join(lines)


def _is_live_after(
    cfg: CFG, liveness: LivenessResult, label: str, index: int, var: str
) -> bool:
    """Is *var* live immediately after instruction *index* of *label*?"""
    block = cfg.block(label)
    for instr in block.instrs[index + 1 :]:
        if var in instr.uses():
            return True
        if instr.target == var:
            return False
    if block.terminator is not None and var in block.terminator.uses():
        return True
    return liveness.is_live_out(label, var)


def apply_placements(
    cfg: CFG,
    placements: Sequence[Placement],
    add_copies: bool = True,
    collapse_isolated_copies: bool = True,
    drop_dead_insertions: bool = True,
    manager: Optional[AnalysisManager] = None,
) -> TransformResult:
    """Apply *placements* to a copy of *cfg* and return the result.

    Args:
        cfg: the program to transform (left untouched).
        placements: one plan per expression; temps must be distinct.
        add_copies: rewrite remaining occurrences to ``t = e; x = t`` so
            their value reaches replaced occurrences (step 3 above).
            Disable only for algorithms that provably need no
            generators, or to study the resulting miscompiles.
        collapse_isolated_copies: undo copies whose temp is dead
            (step 4).  Disabling yields the ALCM-style "copy
            everywhere" program, used by the isolation ablation.
        drop_dead_insertions: remove inserted ``t = e`` whose temp is
            dead — a defensive cleanup for baselines that may insert
            uselessly; LCM/BCM never trigger it.
        manager: optional :class:`repro.obs.manager.AnalysisManager`
            memoizing the liveness solves of the cleanup steps.
    """
    temps = [p.temp for p in placements]
    if len(set(temps)) != len(temps):
        raise PlacementError("placements must use pairwise distinct temps")
    # Uniquify temp names against the program (re-optimising an already
    # transformed program would otherwise reuse last round's temps).
    existing = set(cfg.variables())
    taken = existing | set(temps)
    renamed: List[Placement] = []
    for placement in placements:
        placement.validate_against(cfg)
        temp = placement.temp
        if temp in existing:
            suffix = 2
            while f"{temp}~{suffix}" in taken:
                suffix += 1
            temp = f"{temp}~{suffix}"
            taken.add(temp)
            placement = Placement(
                placement.expr,
                temp,
                placement.insert_edges,
                placement.insert_entries,
                placement.delete_blocks,
                placement.insert_exits,
            )
        renamed.append(placement)
    placements = renamed

    work = cfg.copy()
    result = TransformResult(
        original=cfg,
        cfg=work,
        placements=list(placements),
        temps={p.temp for p in placements},
    )

    # Labels whose content steps 1-3 change, relative to the input; the
    # copy's fingerprint state is derived from the input's through them.
    step_edits: Set[str] = set()

    # Step 1: replace deleted occurrences.
    for placement in placements:
        for label in sorted(placement.delete_blocks):
            index = upward_exposed_index(work, label, placement.expr)
            block = work.block(label)
            old = block.instrs[index]
            block.instrs[index] = Assign(old.target, Var(placement.temp))
            step_edits.add(label)

    # Step 3 (before insertions so indices refer to original occurrences):
    # tentative copies at every remaining occurrence.  The rewrite keeps
    # every occurrence of the planned expression in place (``x = e``
    # becomes ``t = e; x = t``) and never plants one in a new block, so
    # a single occurrence scan up front serves every placement —
    # including later placements over the same expression.
    if add_copies:
        planned = {p.expr for p in placements}
        occ_labels: Dict[Expr, List[str]] = {}
        for block in work:
            seen_here: Set[Expr] = set()
            for instr in block.instrs:
                expr = instr.expr
                if expr in planned and expr not in seen_here:
                    seen_here.add(expr)
                    occ_labels.setdefault(expr, []).append(block.label)
        for placement in placements:
            for label in occ_labels.get(placement.expr, ()):
                block = work.block(label)
                rewritten: List[Assign] = []
                changed = False
                for instr in block.instrs:
                    if instr.expr == placement.expr and instr.target != placement.temp:
                        rewritten.append(Assign(placement.temp, placement.expr))
                        rewritten.append(Assign(instr.target, Var(placement.temp)))
                        result.copies_added.append((block.label, placement.temp))
                        changed = True
                    else:
                        rewritten.append(instr)
                if changed:
                    block.instrs[:] = rewritten
                    step_edits.add(label)

    # Step 2a: entry insertions (prepended, so they precede every use)
    # and exit insertions (appended, after every occurrence).
    for placement in placements:
        for label in sorted(placement.insert_entries):
            work.block(label).instrs.insert(
                0, Assign(placement.temp, placement.expr)
            )
            step_edits.add(label)
        for label in sorted(placement.insert_exits):
            work.block(label).append(Assign(placement.temp, placement.expr))
            step_edits.add(label)

    # Step 2b: edge insertions; one split block per edge, shared by all
    # expressions inserting there.  The split retargets the source's
    # terminator, so both the new block and the source are edits.
    by_edge: Dict[Edge, List[Placement]] = {}
    for placement in placements:
        for edge in placement.insert_edges:
            by_edge.setdefault(edge, []).append(placement)
    split_labels: Set[str] = set()
    for edge in sorted(by_edge):
        src, dst = edge
        split = work.split_edge(src, dst, f"ins_{src}_{dst}")
        for placement in sorted(by_edge[edge], key=lambda p: p.temp):
            split.append(Assign(placement.temp, placement.expr))
        split_labels.add(split.label)
        step_edits.add(split.label)
        step_edits.add(src)

    # Seed the copy's fingerprint state from the input's: only the
    # blocks in step_edits hash differently, so the first fingerprint
    # of the result is an incremental patch, not a whole-CFG hash.
    notify_cfg_derived(work, cfg, sorted(step_edits))

    # Step 4: collapse isolated copies and drop dead insertions.  One
    # incremental engine serves both cleanups: a single full liveness
    # solve up front, then O(affected-region) patches after each edit
    # instead of the global re-solves this loop used to do.  Temps are
    # only ever defined at copy sites and insertion sites, so both
    # sweeps visit just those blocks.
    if (collapse_isolated_copies and result.copies_added) or drop_dead_insertions:
        engine = _liveness_engine(work, manager)
        if collapse_isolated_copies and result.copies_added:
            _collapse_dead_copies(work, result, engine, manager)
        if drop_dead_insertions:
            def_sites = split_labels | {
                label for label, _ in result.copies_added
            }
            for placement in placements:
                def_sites |= placement.insert_entries
                def_sites |= placement.insert_exits
            _drop_dead_insertions(work, result, engine, manager, def_sites)

    return result


def _collapse_dead_copies(
    cfg: CFG,
    result: TransformResult,
    engine: IncrementalLiveness,
    manager: Optional[AnalysisManager] = None,
) -> None:
    """Rewrite ``t = e; x = t`` back to ``x = e`` where *t* dies at once."""
    engine.solve()
    copy_sites = {label for label, _ in result.copies_added}
    for block in cfg:
        if block.label not in copy_sites:
            continue
        changed = False
        i = 0
        while i + 1 < len(block.instrs):
            first, second = block.instrs[i], block.instrs[i + 1]
            if (
                first.target in result.temps
                and second.expr == Var(first.target)
                and second.target != first.target
                and (block.label, first.target) in result.copies_added
                and not engine.is_live_after(block.label, i + 1, first.target)
            ):
                block.instrs[i : i + 2] = [Assign(second.target, first.expr)]
                result.copies_collapsed.append((block.label, first.target))
                changed = True
                # A collapse can only shorten later liveness, never extend
                # it, so continuing with this block's stale exit fact is
                # sound: it may miss a newly dead copy in *earlier* blocks,
                # which the fixpoint loop in the caller would catch; in
                # practice the pairs are independent.  Patch the facts at
                # the block boundary to stay exact.
            else:
                i += 1
        if changed:
            _mark_edited(cfg, engine, [block.label], manager)


def _drop_dead_insertions(
    cfg: CFG,
    result: TransformResult,
    engine: IncrementalLiveness,
    manager: Optional[AnalysisManager] = None,
    candidates: Optional[Set[str]] = None,
) -> None:
    """Remove inserted/copy definitions of temps that are never used.

    *candidates*, when given, is the set of labels that can contain a
    temp definition (insertion sites, split blocks, copy sites); other
    blocks define no temps and are skipped.  Removals never create temp
    definitions elsewhere, so the set stays valid across rounds.
    """
    engine.solve()
    changed = True
    while changed:
        changed = False
        edited: List[str] = []
        for block in cfg:
            if candidates is not None and block.label not in candidates:
                continue
            keep: List[Assign] = []
            for i, instr in enumerate(block.instrs):
                if instr.target in result.temps and not engine.is_live_after(
                    block.label, i, instr.target
                ):
                    result.insertions_dropped.append((block.label, instr.target))
                    changed = True
                else:
                    keep.append(instr)
            if len(keep) != len(block.instrs):
                block.instrs[:] = keep
                edited.append(block.label)
        if edited:
            # Facts stay frozen within the round (every block decides
            # against the same fixpoint — the old re-solve-per-round
            # semantics); the patch lands at the round boundary.
            _mark_edited(cfg, engine, edited, manager)


def eliminate_dead_code(
    cfg: CFG,
    candidates: Iterable[str],
    manager: Optional[AnalysisManager] = None,
) -> int:
    """Iteratively remove dead assignments to the *candidates* variables.

    Returns the number of instructions removed.  Only assignments whose
    target is in *candidates* are touched (all right-hand sides in this
    IR are pure, so removal is always sound for dead targets).  Solves
    liveness once (memoized through *manager* when given) and patches
    the fixpoint incrementally between rounds.
    """
    candidate_set = set(candidates)
    engine = _liveness_engine(cfg, manager)
    engine.solve()
    removed = 0
    changed = True
    while changed:
        changed = False
        edited: List[str] = []
        for block in cfg:
            keep: List[Assign] = []
            for i, instr in enumerate(block.instrs):
                if instr.target in candidate_set and not engine.is_live_after(
                    block.label, i, instr.target
                ):
                    removed += 1
                    changed = True
                else:
                    keep.append(instr)
            if len(keep) != len(block.instrs):
                block.instrs[:] = keep
                edited.append(block.label)
        if edited:
            _mark_edited(cfg, engine, edited, manager)
    return removed
