"""Local common-subexpression elimination (with temporaries).

The paper assumes LCSE has been applied to every basic block before the
global analyses run, so each block exposes at most one upwards- and one
downwards-exposed occurrence per expression.  This pass establishes
that normal form: within a block, recomputations of an expression whose
operands are unchanged since an earlier occurrence are replaced by
copies.

The subtlety is *holder loss*: in ``w = d*a; w = c*d; u = d*a`` the
value of ``d*a`` outlives the variable that held it.  A holder-based
LCSE cannot fix the recomputation, and block-granular PRE cannot
either (only the upwards-exposed first occurrence of a block is
replaceable) — whereas the paper's statement-granular formulation can.
To keep the two formulations equivalent, this pass saves the value into
a fresh dotted temporary (``lcse<N>.t``) whenever the natural holder
does not survive to the last reuse, exactly like local value numbering
with temporaries in production compilers.

No global information is used; the pass is idempotent and semantics
preserving.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.ir.cfg import CFG
from repro.ir.expr import Expr, Var, expr_vars, is_computation
from repro.ir.instr import Assign


def _occurrence_runs(instrs: List[Assign]) -> List[Tuple[Expr, List[int]]]:
    """Maximal kill-free runs of same-expression occurrences.

    A run of expression ``e`` is a maximal sequence of instruction
    indices computing ``e`` with no assignment to an operand of ``e``
    in between.  Every occurrence after the first of a run is locally
    redundant.
    """
    runs: List[Tuple[Expr, List[int]]] = []
    open_runs: Dict[Expr, List[int]] = {}
    for i, instr in enumerate(instrs):
        expr = instr.expr
        if is_computation(expr):
            open_runs.setdefault(expr, []).append(i)
        target = instr.target
        for e in list(open_runs):
            if target in expr_vars(e):
                runs.append((e, open_runs.pop(e)))
    runs.extend(open_runs.items())
    return runs


def local_cse_block(
    instrs: List[Assign], temp_stem: str = "lcse", temp_start: int = 0
) -> Tuple[List[Assign], int]:
    """LCSE over one instruction list; returns (new list, replacements).

    Temporaries introduced for holder-loss runs are named
    ``<temp_stem><n>.t`` starting at *temp_start*; the dot keeps them
    out of the source namespace.
    """
    runs = [(e, idxs) for e, idxs in _occurrence_runs(instrs) if len(idxs) >= 2]

    # Decide, per redundant run, whether the first occurrence's target
    # can serve as the holder or a temp is needed.
    #   rewrite_def[i] = temp name  -> emit "temp = e; x = temp" at i
    #   rewrite_use[i] = source var -> emit "x = source" at i
    rewrite_def: Dict[int, str] = {}
    rewrite_use: Dict[int, str] = {}
    temp_counter = temp_start
    replaced = 0
    for expr, idxs in runs:
        first, last = idxs[0], idxs[-1]
        occurrence_set = set(idxs)
        holder = instrs[first].target
        holder_survives = holder not in expr_vars(expr) and not any(
            instrs[j].target == holder
            for j in range(first + 1, last + 1)
            if j not in occurrence_set
        )
        if holder_survives:
            source = holder
        else:
            source = f"{temp_stem}{temp_counter}.t"
            temp_counter += 1
            rewrite_def[first] = source
        for j in idxs[1:]:
            rewrite_use[j] = source
            replaced += 1

    result: List[Assign] = []
    for i, instr in enumerate(instrs):
        if i in rewrite_def:
            temp = rewrite_def[i]
            result.append(Assign(temp, instr.expr))
            result.append(Assign(instr.target, Var(temp)))
        elif i in rewrite_use:
            source = rewrite_use[i]
            if instr.target != source:
                result.append(Assign(instr.target, Var(source)))
            # target == source: the recomputation is a pure no-op; drop.
        else:
            result.append(instr)
    return result, replaced


def local_cse(
    cfg: CFG,
    blocks: Optional[Iterable[str]] = None,
    edited: Optional[List[str]] = None,
) -> Tuple[CFG, int]:
    """Apply LCSE to every block of a copy of *cfg*.

    Returns the transformed copy and the number of occurrences
    replaced.  The pass is purely block-local, so *blocks* (when given)
    scopes it exactly — other blocks are copied untouched.  Labels of
    blocks that actually changed are appended to *edited* when given,
    so callers can seed the copy's fingerprint state from the input's
    (:func:`repro.obs.manager.notify_cfg_derived`).
    """
    scope = None if blocks is None else set(blocks)
    work = cfg.copy()
    total = 0
    temp_start = 0
    for block in work:
        if scope is None or block.label in scope:
            new_instrs, replaced = local_cse_block(
                block.instrs, temp_start=temp_start
            )
            if replaced:
                block.instrs[:] = new_instrs
                total += replaced
                if edited is not None:
                    edited.append(block.label)
        # Advance the counter past any temps the block introduced so
        # names stay unique graph-wide.
        temp_start += sum(
            1 for instr in block.instrs if instr.target.startswith("lcse")
        )
    return work, total
