"""Live-range measurement for the lifetime-optimality experiments.

The paper's second theorem is about *register pressure*: among all
computationally optimal placements, Lazy Code Motion makes the
introduced temporaries live for the shortest possible ranges.  This
module measures those ranges:

* :func:`lifetime_points` — the exact set of program points (block
  label, instruction boundary) at which each temporary is live;
* :func:`measure_lifetimes` — a summary report: per-temp live-point
  counts, and the maximum/total pressure the temporaries add;
* :func:`blockwise_dominates` — the theorem's comparison: restricted to
  the blocks two transformed programs share (the original labels),
  one program's temp is live at a subset of the points of the other's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from repro.analysis.liveness import liveness_of
from repro.ir.cfg import CFG

#: A program point: (block label, boundary index).  Boundary ``i`` is
#: the point *before* instruction ``i``; boundary ``len(instrs)`` is the
#: point before the terminator.
Point = Tuple[str, int]


def lifetime_points(
    cfg: CFG, variables: Iterable[str], manager=None
) -> Dict[str, Set[Point]]:
    """The set of points at which each of *variables* is live in *cfg*.

    Pass an :class:`~repro.obs.manager.AnalysisManager` to memoize the
    underlying liveness solve (one graph is typically measured several
    times by the lifetime experiments).
    """
    wanted = set(variables)
    liveness = liveness_of(cfg, manager=manager)
    points: Dict[str, Set[Point]] = {name: set() for name in wanted}

    for block in cfg:
        # Walk backwards from the block-exit liveness.
        live: Set[str] = {
            name for name in liveness.live_out(block.label) if name in wanted
        }
        if block.terminator is not None:
            live.update(
                name for name in block.terminator.uses() if name in wanted
            )
        boundary = len(block.instrs)
        for name in live:
            points[name].add((block.label, boundary))
        for index in range(len(block.instrs) - 1, -1, -1):
            instr = block.instrs[index]
            if instr.target in live:
                live.discard(instr.target)
            live.update(name for name in instr.uses() if name in wanted)
            for name in live:
                points[name].add((block.label, index))
    return points


@dataclass
class LifetimeReport:
    """Summary of temporary live ranges in one transformed program."""

    points: Dict[str, Set[Point]]
    max_pressure: int
    total_live_points: int

    def live_span(self, name: str) -> int:
        """Number of program points at which *name* is live."""
        return len(self.points.get(name, ()))

    def describe(self) -> str:
        spans = ", ".join(
            f"{name}:{len(pts)}" for name, pts in sorted(self.points.items())
        )
        return (
            f"total live points {self.total_live_points}, "
            f"max pressure {self.max_pressure} ({spans})"
        )


def measure_lifetimes(
    cfg: CFG, temps: Iterable[str], manager=None
) -> LifetimeReport:
    """Measure the live ranges of *temps* in *cfg*."""
    points = lifetime_points(cfg, temps, manager=manager)
    pressure: Dict[Point, int] = {}
    for pts in points.values():
        for point in pts:
            pressure[point] = pressure.get(point, 0) + 1
    return LifetimeReport(
        points=points,
        max_pressure=max(pressure.values(), default=0),
        total_live_points=sum(len(pts) for pts in points.values()),
    )


def program_pressure(cfg: CFG, manager=None) -> Tuple[int, float]:
    """Whole-program register pressure: (peak, average) live variables.

    Counts *all* variables, not just PRE temporaries, over every
    program point — the allocator-facing view of what a transformation
    did to the program.  The paper's lifetime-optimality theorem is
    about the temporaries; this metric shows the net effect.
    """
    variables = sorted(cfg.variables())
    points = lifetime_points(cfg, variables, manager=manager)
    pressure: Dict[Point, int] = {}
    total_points = sum(len(block.instrs) + 1 for block in cfg)
    for pts in points.values():
        for point in pts:
            pressure[point] = pressure.get(point, 0) + 1
    peak = max(pressure.values(), default=0)
    average = sum(pressure.values()) / max(total_points, 1)
    return peak, average


def blockwise_dominates(
    tighter: CFG,
    looser: CFG,
    temps: Iterable[str],
    common_blocks: Iterable[str],
    manager=None,
) -> List[str]:
    """Check the lifetime theorem's subset relation on shared blocks.

    For every temp and every shared block, if the temp is live on entry
    to the block in *tighter*, it must also be live there in *looser*
    (LCM's ranges are contained in BCM's).  Returns the list of
    violations (empty when the relation holds) as readable strings.
    """
    temp_list = list(temps)
    common = [b for b in common_blocks if b in tighter and b in looser]
    tight_points = lifetime_points(tighter, temp_list, manager=manager)
    loose_points = lifetime_points(looser, temp_list, manager=manager)
    violations: List[str] = []
    for name in temp_list:
        tight_entries = {
            label for (label, index) in tight_points.get(name, ()) if index == 0
        }
        loose_entries = {
            label for (label, index) in loose_points.get(name, ()) if index == 0
        }
        for label in common:
            if label in tight_entries and label not in loose_entries:
                violations.append(
                    f"{name} live at entry of {label!r} under the tighter "
                    "placement but not under the looser one"
                )
    return violations
