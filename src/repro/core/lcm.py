"""Edge-based Lazy Code Motion on basic blocks.

This is the practical formulation of the paper's algorithm on ordinary
basic blocks, with insertions on *edges* (the shape later adopted by
Drechsler & Stadel's variant and by GCC's ``lcm.c``).  It composes four
unidirectional bit-vector analyses:

1. **anticipability** (down-safety) — backward, all paths;
2. **availability** (up-safety) — forward, all paths;
3. **earliestness** — a per-edge predicate computed pointwise from 1+2::

       EARLIEST(m,n) = ANTIN(n) ∩ ¬AVOUT(m) ∩ (¬TRANSP(m) ∪ ¬ANTOUT(m))

   (for edges leaving the entry the last factor is dropped);
4. **the LATER system** — forward, all paths, over edges::

       LATERIN(n)  = ∏_{(m,n)} LATER(m,n)        (∅ at the entry)
       LATER(m,n)  = EARLIEST(m,n) ∪ (LATERIN(m) ∩ ¬ANTLOC(m))

from which the transformation is read off pointwise::

       INSERT(m,n) = LATER(m,n) ∩ ¬LATERIN(n)
       DELETE(n)   = ANTLOC(n) ∩ ¬LATERIN(n)     (n ≠ entry)

Busy Code Motion (the computationally optimal but lifetime-greedy
variant) short-circuits the LATER system and inserts at the EARLIEST
edges directly, deleting every upwards-exposed occurrence.

The LATER system ends the delay at blocks with upwards-exposed
occurrences (the ``¬ANTLOC`` factor), which is what makes the *isolated*
case come out right with no separate isolation analysis: when the delay
reaches the use itself (``LATERIN`` holds at the use block), nothing is
inserted and nothing is deleted — the original computation stays put.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.anticipability import compute_anticipability
from repro.analysis.availability import compute_availability
from repro.analysis.local import LocalProperties, compute_local_properties
from repro.analysis.universe import ExprUniverse
from repro.core.placement import Placement
from repro.dataflow.bitvec import BitVector, counting_active
from repro.dataflow.dense import compile_plan
from repro.dataflow.order import reverse_postorder
from repro.dataflow.stats import SolverStats
from repro.ir.cfg import CFG, Edge
from repro.obs import trace
from repro.obs.trace import span

#: The analysis strategies accepted by :func:`analyze_lcm` (and, with
#: identical semantics, :func:`repro.core.krs.analyze_krs`): ``"auto"``
#: runs the fused plan (:mod:`repro.dataflow.fused`) unless an operation
#: counter is installed, ``"fused"``/``"staged"`` force a path —
#: although even an explicit ``"fused"`` steps aside inside a
#: :func:`~repro.dataflow.bitvec.counting` context, mirroring the dense
#: solver backend, so measured op tallies never change.
LCM_STRATEGIES = ("auto", "fused", "staged")


def _use_fused(strategy: str) -> bool:
    if strategy not in LCM_STRATEGIES:
        names = ", ".join(LCM_STRATEGIES)
        raise ValueError(
            f"unknown analysis strategy {strategy!r}; choose one of: {names}"
        )
    if strategy == "staged":
        return False
    if counting_active():
        # The fused cascade computes pointwise predicate algebra on raw
        # ints the operation counter cannot see; counted runs take the
        # staged reference path so C1 tallies stay bit-identical.
        trace.count("fused.fallback")
        return False
    return True


@dataclass
class LCMAnalysis:
    """All intermediate and final vectors of the edge-based algorithm."""

    cfg: CFG
    local: LocalProperties
    antin: Dict[str, BitVector]
    antout: Dict[str, BitVector]
    avin: Dict[str, BitVector]
    avout: Dict[str, BitVector]
    earliest: Dict[Edge, BitVector]
    laterin: Dict[str, BitVector]
    later: Dict[Edge, BitVector]
    insert: Dict[Edge, BitVector]
    delete: Dict[str, BitVector]
    stats: SolverStats

    @property
    def universe(self) -> ExprUniverse:
        return self.local.universe


def _compute_earliest(
    cfg: CFG,
    local: LocalProperties,
    antin: Dict[str, BitVector],
    antout: Dict[str, BitVector],
    avout: Dict[str, BitVector],
) -> Dict[Edge, BitVector]:
    """Pointwise earliestness per edge (no fixpoint needed)."""
    earliest: Dict[Edge, BitVector] = {}
    for m, n in cfg.edges():
        base = antin[n] - avout[m]
        if m == cfg.entry:
            earliest[(m, n)] = base
        else:
            earliest[(m, n)] = base & (~local.transp[m] | ~antout[m])
    return earliest


def _solve_later(
    cfg: CFG,
    local: LocalProperties,
    earliest: Dict[Edge, BitVector],
    stats: SolverStats,
) -> Dict[str, BitVector]:
    """Iterate the LATER/LATERIN system to its greatest fixpoint.

    Facts live on edges, so this is a small bespoke round-robin loop
    rather than an instance of the block solver; it converges for the
    same monotonicity reasons.  Returns LATERIN (LATER is recomputed
    pointwise from it by the caller).
    """
    width = local.universe.width
    full = BitVector.full(width)
    empty = BitVector.empty(width)

    laterin: Dict[str, BitVector] = {label: full for label in cfg.labels}
    laterin[cfg.entry] = empty

    order = reverse_postorder(cfg)
    changed = True
    while changed:
        changed = False
        stats.sweeps += 1
        for n in order:
            if n == cfg.entry:
                continue
            stats.node_visits += 1
            acc: Optional[BitVector] = None
            for m in cfg.preds(n):
                later_mn = earliest[(m, n)] | (laterin[m] - local.antloc[m])
                acc = later_mn if acc is None else acc & later_mn
            new = acc if acc is not None else empty
            if new != laterin[n]:
                laterin[n] = new
                changed = True
    return laterin


def analyze_lcm(
    cfg: CFG,
    universe: Optional[ExprUniverse] = None,
    manager=None,
    strategy: str = "auto",
) -> LCMAnalysis:
    """Run the complete edge-based LCM analysis pipeline on *cfg*.

    With an :class:`~repro.obs.manager.AnalysisManager`, the whole
    analysis bundle — and each underlying dataflow solution — is
    memoized by graph content, so re-analysing an unchanged graph does
    no solver work.  (The bundle memo only applies for the default
    universe; an explicit *universe* bypasses it.)

    *strategy* selects the execution plan, not the result: ``"auto"``
    (the default) runs the fused single-module cascade
    (:func:`repro.dataflow.fused.run_fused_lcm`) unless an operation
    counter is installed; ``"staged"`` forces the four-solve reference
    pipeline; ``"fused"`` forces the fused plan (still stepping aside
    under :func:`~repro.dataflow.bitvec.counting`).  All strategies
    produce bit-identical bundles — facts *and* sweep statistics —
    which is why they share one memo key.
    """
    if manager is not None and universe is None:
        return manager.cached(
            cfg, "lcm.analysis", lambda: _analyze_lcm(cfg, None, manager, strategy)
        )
    return _analyze_lcm(cfg, universe, manager, strategy)


def _analyze_lcm(
    cfg: CFG,
    universe: Optional[ExprUniverse],
    manager,
    strategy: str = "staged",
) -> LCMAnalysis:
    if _use_fused(strategy):
        return _analyze_lcm_fused(cfg, universe, manager)
    with span("lcm.analyze", blocks=len(cfg)):
        with span("lcm.local"):
            local = compute_local_properties(cfg, universe)
        return run_staged_lcm(cfg, local, manager=manager)


def run_staged_lcm(cfg: CFG, local: LocalProperties, manager=None, plan=None):
    """The staged (four-solve) quartet given precomputed *local* props.

    The reference execution plan the fused module is pinned against:
    two dense solves through :func:`~repro.dataflow.solver.solve`, then
    EARLIEST pointwise and the LATER fixpoint on ``BitVector`` maps.
    Exposed separately from :func:`analyze_lcm` so the benchmark can
    time the quartet itself — both arms warm, a precompiled dense
    *plan* here against a precompiled
    :class:`~repro.dataflow.fused.LCMPlan` in
    :func:`~repro.dataflow.fused.run_fused_lcm`.
    """
    with span("lcm.staged", blocks=len(cfg)):
        # One dense solve plan serves both analyses (and, with a
        # manager, every later solve on a graph with this content).
        if manager is None and plan is None:
            plan = compile_plan(cfg)
        ant = compute_anticipability(cfg, local, manager=manager, plan=plan)
        av = compute_availability(cfg, local, manager=manager, plan=plan)
        stats = ant.stats.merged(av.stats)

        with span("lcm.earliest"):
            earliest = _compute_earliest(cfg, local, ant.antin, ant.antout, av.avout)
        with span("lcm.later") as later_span:
            sweeps_before, visits_before = stats.sweeps, stats.node_visits
            laterin = _solve_later(cfg, local, earliest, stats)
            later_span.set(
                sweeps=stats.sweeps - sweeps_before,
                node_visits=stats.node_visits - visits_before,
            )

        later: Dict[Edge, BitVector] = {}
        insert: Dict[Edge, BitVector] = {}
        for m, n in cfg.edges():
            later[(m, n)] = earliest[(m, n)] | (laterin[m] - local.antloc[m])
            insert[(m, n)] = later[(m, n)] - laterin[n]

        delete: Dict[str, BitVector] = {}
        for label in cfg.labels:
            if label == cfg.entry:
                delete[label] = local.universe.empty()
            else:
                delete[label] = local.antloc[label] - laterin[label]

    return LCMAnalysis(
        cfg=cfg,
        local=local,
        antin=ant.antin,
        antout=ant.antout,
        avin=av.avin,
        avout=av.avout,
        earliest=earliest,
        laterin=laterin,
        later=later,
        insert=insert,
        delete=delete,
        stats=stats,
    )


def _analyze_lcm_fused(
    cfg: CFG, universe: Optional[ExprUniverse], manager
) -> LCMAnalysis:
    """The fused execution plan: one module, one set of int arrays.

    Local properties are computed exactly as in the staged path; the
    four global systems then run back-to-back inside
    :func:`repro.dataflow.fused.run_fused_lcm` on one compiled
    :class:`~repro.dataflow.fused.LCMPlan` — memoized by content
    fingerprint through :meth:`AnalysisManager.lcm_plan
    <repro.obs.manager.AnalysisManager.lcm_plan>` when a manager is
    attached and the universe is the graph's own default.
    """
    from repro.dataflow.fused import compile_lcm_plan, run_fused_lcm

    with span("lcm.analyze", blocks=len(cfg)):
        with span("lcm.local"):
            local = compute_local_properties(cfg, universe)
        if manager is not None and universe is None:
            plan = manager.lcm_plan(cfg, local)
        else:
            plan = compile_lcm_plan(cfg, local)
        trace.count("fused.run")
        with span(
            "lcm.fused", blocks=len(cfg), width=local.universe.width
        ) as fused_span:
            analysis = run_fused_lcm(cfg, plan, local)
            fused_span.set(
                sweeps=analysis.stats.sweeps,
                node_visits=analysis.stats.node_visits,
            )
        if manager is not None:
            manager.stats.backends["fused"] = (
                manager.stats.backends.get("fused", 0) + 1
            )
    return analysis


def _placements_from(
    analysis: LCMAnalysis,
    insert: Dict[Edge, BitVector],
    delete: Dict[str, BitVector],
) -> List[Placement]:
    """Turn per-edge/per-block vectors into one Placement per expression."""
    universe = analysis.universe
    placements: List[Placement] = []
    for idx, expr in universe.enumerate():
        edges = frozenset(e for e, vec in insert.items() if idx in vec)
        blocks = frozenset(b for b, vec in delete.items() if idx in vec)
        placements.append(
            Placement(expr, universe.temp_name(expr), edges, frozenset(), blocks)
        )
    return placements


def lcm_placements(analysis: LCMAnalysis) -> List[Placement]:
    """Lazy Code Motion: insert at the latest possible safe edges."""
    return _placements_from(analysis, analysis.insert, analysis.delete)


def bcm_placements(analysis: LCMAnalysis) -> List[Placement]:
    """Busy Code Motion: insert at the earliest safe edges.

    Computationally optimal like LCM, but temporaries are live from the
    earliest point — the register-pressure problem LCM's delaying fixes.
    """
    delete = {
        label: (
            analysis.universe.empty()
            if label == analysis.cfg.entry
            else analysis.local.antloc[label]
        )
        for label in analysis.cfg.labels
    }
    return _placements_from(analysis, analysis.earliest, delete)
