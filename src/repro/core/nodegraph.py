"""Statement-granular expansion of a CFG.

The original paper formulates Lazy Code Motion on flow graphs whose
nodes hold (at most) a single statement.  :func:`expand_to_nodes` turns
a basic-block CFG into that shape: each block ``b`` with instructions
``i_0 … i_{k-1}`` becomes a chain of nodes ``b@0 → … → b@{k-1}``, the
last of which carries the original terminator; empty blocks become the
single node ``b@0``.

The expansion is a plain :class:`~repro.ir.cfg.CFG`, so every analysis
and transformation in the library applies to it unchanged, and the
:class:`NodeGraph` wrapper remembers how nodes map back to the original
blocks so results can be projected for cross-checking against the
edge-based formulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.ir.block import BasicBlock
from repro.ir.cfg import CFG
from repro.ir.instr import CondBranch, Halt, Jump


@dataclass
class NodeGraph:
    """A statement-granular CFG plus its mapping back to block land.

    Attributes:
        cfg: the expanded graph (one instruction per node at most).
        source: the original block-level graph.
        origin: node label -> (original block label, instruction index).
            Empty blocks map to index 0.
        entry_node: original block label -> label of its first node.
        exit_node: original block label -> label of its last node.
    """

    cfg: CFG
    source: CFG
    origin: Dict[str, Tuple[str, int]]
    entry_node: Dict[str, str]
    exit_node: Dict[str, str]

    def node_label(self, block: str, index: int = 0) -> str:
        """The node holding instruction *index* of original block *block*."""
        label = f"{block}@{index}"
        if label not in self.cfg:
            raise KeyError(f"no node for {block!r}[{index}]")
        return label


def expand_to_nodes(cfg: CFG) -> NodeGraph:
    """Expand *cfg* so every node holds at most one instruction."""
    expanded = CFG(entry=f"{cfg.entry}@0", exit=f"{cfg.exit}@0")
    origin: Dict[str, Tuple[str, int]] = {}
    entry_node: Dict[str, str] = {}
    exit_node: Dict[str, str] = {}

    def first_node(label: str) -> str:
        return f"{label}@0"

    for block in cfg:
        count = max(1, len(block.instrs))
        labels = [f"{block.label}@{i}" for i in range(count)]
        entry_node[block.label] = labels[0]
        exit_node[block.label] = labels[-1]
        for i, node_label in enumerate(labels):
            instrs = [block.instrs[i]] if i < len(block.instrs) else []
            node = BasicBlock(node_label, instrs)
            if node_label == labels[-1]:
                term = block.terminator
                if isinstance(term, Jump):
                    node.terminator = Jump(first_node(term.target))
                elif isinstance(term, CondBranch):
                    node.terminator = CondBranch(
                        term.cond,
                        first_node(term.then_target),
                        first_node(term.else_target),
                    )
                elif isinstance(term, Halt):
                    node.terminator = Halt()
                else:
                    raise ValueError(
                        f"block {block.label!r} has no terminator; "
                        "validate the CFG before expanding"
                    )
            else:
                node.terminator = Jump(labels[i + 1])
            expanded.add_block(node)
            origin[node_label] = (block.label, i)

    return NodeGraph(expanded, cfg, origin, entry_node, exit_node)
