"""Extensions beyond the paper's core algorithm.

The paper draws a sharp line: classic PRE only ever inserts at
*down-safe* points, so its optimal transformation is independent of
execution frequencies; profile-guided *speculative* PRE crosses that
line to win more in expectation, at the cost of losing on cold paths.
This package implements the speculative side of that contrast so the
trade-off can be measured:

* :mod:`repro.extensions.speculative` — profile-guided speculative
  loop-invariant motion with an explicit benefit test;
* :mod:`repro.extensions.strength` — induction-variable strength
  reduction (the direction of the authors' own *Lazy Strength
  Reduction* follow-up);
* :mod:`repro.extensions.codesize` — code-size-governed placement
  (the authors' *Sparse Code Motion* direction);
* :mod:`repro.extensions.sinking` — partial dead-code elimination by
  assignment sinking (the authors' PLDI'94 dual of PRE).
"""

from repro.extensions.codesize import (
    SizeReport,
    size_governed_placements,
    size_governed_transform,
)
from repro.extensions.sinking import SinkReport, sink_assignments
from repro.extensions.speculative import (
    SpeculationReport,
    speculative_transform,
)
from repro.extensions.strength import (
    DerivedIV,
    InductionVariable,
    StrengthReport,
    find_derived_variables,
    find_induction_variables,
    strength_reduce,
)

__all__ = [
    "DerivedIV",
    "InductionVariable",
    "SinkReport",
    "SizeReport",
    "SpeculationReport",
    "StrengthReport",
    "find_derived_variables",
    "find_induction_variables",
    "sink_assignments",
    "size_governed_placements",
    "size_governed_transform",
    "speculative_transform",
    "strength_reduce",
]
