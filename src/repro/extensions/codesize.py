"""Code-size-sensitive PRE (the authors' *Sparse Code Motion* direction).

Knoop, Rüthing & Steffen later observed (Sparse Code Motion, POPL
2000) that speed-optimal placements can grow the program: one deleted
occurrence may require several insertions (one per uncovered incoming
path).  When code size matters — embedded targets, inlining budgets —
a placement should only be applied where it does not bloat the text.

This module implements the simple size-governed variant on top of the
standard analysis: per expression, the LCM placement is applied only
when its static balance is acceptable,

    |INSERT| - |DELETE|  <=  budget        (budget 0 by default)

and dropped (identity) otherwise.  Dropping a placement never affects
other expressions (placements are independent per expression), never
breaks safety (the identity is trivially safe), and keeps the
transformation computationally optimal *on the expressions it still
transforms*.

``size_governed_placements`` is the planning hook;
``size_governed_transform`` the one-call version.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.core.lcm import LCMAnalysis, analyze_lcm, lcm_placements
from repro.core.pipeline import register_pass
from repro.core.placement import Placement
from repro.core.transform import TransformResult, apply_placements
from repro.ir.cfg import CFG


@dataclass
class SizeReport:
    """Which placements the size governor kept and which it dropped."""

    applied: List[Tuple[str, int, int]] = field(default_factory=list)
    dropped: List[Tuple[str, int, int]] = field(default_factory=list)

    def describe(self) -> str:
        lines = [
            f"applied {expr}: {ins} insert / {dele} delete"
            for expr, ins, dele in self.applied
        ]
        lines += [
            f"dropped {expr}: {ins} insert / {dele} delete (would bloat)"
            for expr, ins, dele in self.dropped
        ]
        return "\n".join(lines) or "no candidate placements"


def size_governed_placements(
    analysis: LCMAnalysis, budget: int = 0
) -> Tuple[List[Placement], SizeReport]:
    """Filter the LCM placements by the static size balance."""
    report = SizeReport()
    kept: List[Placement] = []
    for placement in lcm_placements(analysis):
        if placement.is_identity:
            kept.append(placement)
            continue
        inserts = placement.insertion_count
        deletes = len(placement.delete_blocks)
        if inserts - deletes <= budget:
            kept.append(placement)
            report.applied.append((str(placement.expr), inserts, deletes))
        else:
            kept.append(
                Placement(placement.expr, placement.temp)  # identity
            )
            report.dropped.append((str(placement.expr), inserts, deletes))
    return kept, report


def size_governed_transform(
    cfg: CFG, budget: int = 0, manager=None
) -> Tuple[TransformResult, SizeReport]:
    """LCM restricted to placements within the code-size *budget*."""
    analysis = analyze_lcm(cfg, manager=manager)
    placements, report = size_governed_placements(analysis, budget)
    return apply_placements(cfg, placements), report


@register_pass("lcm-size", "Code-size-governed LCM (never grows the program text)")
def _lcm_size_pass(cfg: CFG, ctx) -> TransformResult:
    result, _ = size_governed_transform(
        cfg, manager=ctx.manager if ctx is not None else None
    )
    return result
