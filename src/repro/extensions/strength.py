"""Induction-variable strength reduction.

The paper's authors extended Lazy Code Motion to *lazy strength
reduction* (Knoop, Rüthing & Steffen, 1993); this module implements the
classical core of that optimisation on the same IR:

* a **basic induction variable** of a loop is a variable ``i`` with
  exactly one in-loop definition of the form ``i = i + s`` or
  ``i = i - s`` with ``s`` a region constant (a literal, or a variable
  the loop never assigns);
* a **derived induction variable** is a variable ``j`` with exactly
  one in-loop definition of the form ``j = i ± rc`` / ``j = rc ± i``
  over a basic IV ``i`` and a region constant ``rc``;
* a **candidate** is an in-loop computation ``x = v * c`` (or
  ``c * v``) with ``v`` a basic or derived IV and ``c`` a region
  constant;
* for a basic IV the transformation keeps a temporary ``t == i * c``
  by initialising it in the preheader and adding ``t = t ± d``
  (``d = s*c``) right after the induction step;
* for a derived IV ``j = i ± rc`` it keeps a *shadow product*
  ``t_j == j * c``: the preheader initialises ``t_j = j * c`` (so
  reads of a stale pre-loop ``j`` stay correct), and right after
  ``j``'s definition ``t_j`` is recomputed **additively** from the
  basic product ``u == i * c`` as ``t_j = u ± e`` with ``e = rc * c``
  — no multiplication, and no assumptions about how often ``j``'s
  definition executes relative to ``i``'s step.

Every temporary shadows its variable's definitions in lockstep, so the
``t == v * c`` invariant holds at every program point outside the
two-statement update windows, wherever the occurrences sit.

Like the speculative extension, the preheader initialisation runs even
when the loop body would not have computed the candidate (zero-trip
loops), so this is outside classic PRE's safety discipline; the
expressions are pure, so semantics are preserved, and the benchmark
``bench_extension_strength.py`` quantifies the multiplication-for-
addition trade.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.analysis.loops import LoopNest
from repro.baselines.licm import _ensure_preheader
from repro.core.transform import TransformResult
from repro.ir.cfg import CFG
from repro.ir.expr import Atom, BinExpr, Const, Var
from repro.ir.instr import Assign


@dataclass(frozen=True)
class InductionVariable:
    """A basic induction variable: where and how it steps."""

    name: str
    block: str
    index: int
    op: str  # "+" or "-"
    step: Atom


@dataclass(frozen=True)
class DerivedIV:
    """A derived induction variable ``j = base ± rc`` (single def)."""

    name: str
    block: str
    base: str
    form: str  # "i+rc", "i-rc" or "rc-i"
    offset: Atom


@dataclass
class StrengthReport:
    """What the strength-reduction pass found and rewrote."""

    induction_variables: List[InductionVariable] = field(default_factory=list)
    derived_variables: List[DerivedIV] = field(default_factory=list)
    reduced: List[Tuple[str, str]] = field(default_factory=list)  # (iv, temp)
    replaced_occurrences: int = 0

    def describe(self) -> str:
        if not self.reduced:
            return "no strength-reduction candidates"
        lines = [
            f"{iv} * ... carried in {temp}" for iv, temp in self.reduced
        ]
        lines.append(f"{self.replaced_occurrences} multiplications replaced")
        return "\n".join(lines)


def _region_constants(cfg: CFG, body: Set[str]) -> Set[str]:
    defined: Set[str] = set()
    for label in body:
        defined.update(cfg.block(label).defs())
    names: Set[str] = set()
    for label in body:
        for instr in cfg.block(label).instrs:
            names.update(instr.uses())
    return names - defined


def find_induction_variables(cfg: CFG, body: Set[str]) -> List[InductionVariable]:
    """Basic induction variables of the loop *body*."""
    constants = _region_constants(cfg, body)

    def is_region_const(atom: Atom) -> bool:
        return isinstance(atom, Const) or (
            isinstance(atom, Var) and atom.name in constants
        )

    defs: Dict[str, List[Tuple[str, int, Assign]]] = {}
    for label in sorted(body):
        for i, instr in enumerate(cfg.block(label).instrs):
            defs.setdefault(instr.target, []).append((label, i, instr))

    ivs: List[InductionVariable] = []
    for name, sites in sorted(defs.items()):
        if len(sites) != 1:
            continue
        label, index, instr = sites[0]
        expr = instr.expr
        if not isinstance(expr, BinExpr) or expr.op not in ("+", "-"):
            continue
        if expr.op == "+" and expr.left == Var(name) and is_region_const(expr.right):
            step: Atom = expr.right
        elif expr.op == "+" and expr.right == Var(name) and is_region_const(expr.left):
            step = expr.left
        elif expr.op == "-" and expr.left == Var(name) and is_region_const(expr.right):
            step = expr.right
        else:
            continue
        ivs.append(InductionVariable(name, label, index, expr.op, step))
    return ivs


def find_derived_variables(
    cfg: CFG, body: Set[str], basic_names: Set[str]
) -> List[DerivedIV]:
    """Derived induction variables: ``j = i ± rc`` with one in-loop def."""
    constants = _region_constants(cfg, body)

    def is_region_const(atom: Atom) -> bool:
        return isinstance(atom, Const) or (
            isinstance(atom, Var) and atom.name in constants
        )

    defs: Dict[str, List[Tuple[str, Assign]]] = {}
    for label in sorted(body):
        for instr in cfg.block(label).instrs:
            defs.setdefault(instr.target, []).append((label, instr))

    derived: List[DerivedIV] = []
    for name, sites in sorted(defs.items()):
        if len(sites) != 1 or name in basic_names:
            continue
        label, instr = sites[0]
        expr = instr.expr
        if not isinstance(expr, BinExpr) or expr.op not in ("+", "-"):
            continue
        left_iv = isinstance(expr.left, Var) and expr.left.name in basic_names
        right_iv = isinstance(expr.right, Var) and expr.right.name in basic_names
        if expr.op == "+" and left_iv and is_region_const(expr.right):
            derived.append(DerivedIV(name, label, expr.left.name, "i+rc", expr.right))
        elif expr.op == "+" and right_iv and is_region_const(expr.left):
            derived.append(DerivedIV(name, label, expr.right.name, "i+rc", expr.left))
        elif expr.op == "-" and left_iv and is_region_const(expr.right):
            derived.append(DerivedIV(name, label, expr.left.name, "i-rc", expr.right))
        elif expr.op == "-" and right_iv and is_region_const(expr.left):
            derived.append(DerivedIV(name, label, expr.right.name, "rc-i", expr.left))
    return derived


def _candidates(
    cfg: CFG, body: Set[str], iv_names: Set[str], constants: Set[str]
) -> List[BinExpr]:
    """Distinct ``v * c`` expressions computed in the loop (``v`` an IV)."""

    def is_region_const(atom: Atom) -> bool:
        return isinstance(atom, Const) or (
            isinstance(atom, Var) and atom.name in constants
        )

    found: List[BinExpr] = []
    seen: Set[BinExpr] = set()
    for label in sorted(body):
        for instr in cfg.block(label).instrs:
            expr = instr.expr
            if not isinstance(expr, BinExpr) or expr.op != "*":
                continue
            iv_left = isinstance(expr.left, Var) and expr.left.name in iv_names
            iv_right = isinstance(expr.right, Var) and expr.right.name in iv_names
            ok = (iv_left and is_region_const(expr.right)) or (
                iv_right and is_region_const(expr.left)
            )
            if ok and expr not in seen:
                seen.add(expr)
                found.append(expr)
    return found


class _LoopReducer:
    """Strength-reduce one loop: shared basic products, derived shadows."""

    def __init__(self, work: CFG, body: Set[str], pre_label: str,
                 temps: Set[str], report: StrengthReport, counter: List[int]):
        self.work = work
        self.body = body
        self.pre = work.block(pre_label)
        self.temps = temps
        self.report = report
        self.counter = counter
        # (basic iv name, factor atom) -> temp holding i * factor.
        self._basic_products: Dict[Tuple[str, Atom], str] = {}

    def _fresh(self, stem: str) -> str:
        name = f"sr{self.counter[0]}.{stem}"
        self.counter[0] += 1
        self.temps.add(name)
        return name

    def _after_def(self, var: str, block_label: str, new_instr: Assign) -> None:
        """Insert *new_instr* right after the single def of *var*."""
        block = self.work.block(block_label)
        for i, instr in enumerate(block.instrs):
            if instr.target == var and isinstance(instr.expr, BinExpr):
                block.instrs.insert(i + 1, new_instr)
                return
        raise AssertionError(f"lost the definition of {var!r}")

    def _replace_occurrences(self, expr: BinExpr, temp: str) -> None:
        # Only loop-body occurrences; the preheader's one-time
        # initialisations are outside `body` and stay multiplications.
        for label in sorted(self.body):
            block = self.work.block(label)
            block.instrs[:] = [
                Assign(instr.target, Var(temp))
                if instr.expr == expr
                else instr
                for instr in block.instrs
            ]

    def basic_product(self, iv: InductionVariable, factor: Atom) -> str:
        """The temp carrying ``iv * factor`` (created on first demand)."""
        key = (iv.name, factor)
        if key in self._basic_products:
            return self._basic_products[key]
        temp = self._fresh("t")
        # Preheader: t = i * c; delta d = step * c.
        self.pre.append(Assign(temp, BinExpr("*", Var(iv.name), factor)))
        if isinstance(iv.step, Const) and isinstance(factor, Const):
            delta_atom: Atom = Const(iv.step.value * factor.value)
        else:
            delta = self._fresh("d")
            self.pre.append(Assign(delta, BinExpr("*", iv.step, factor)))
            delta_atom = Var(delta)
        self._after_def(
            iv.name, iv.block, Assign(temp, BinExpr(iv.op, Var(temp), delta_atom))
        )
        self._basic_products[key] = temp
        self.report.reduced.append((iv.name, temp))
        return temp

    def derived_shadow(
        self, derived: DerivedIV, iv: InductionVariable, factor: Atom
    ) -> str:
        """A temp carrying ``derived * factor``, maintained additively.

        ``t_j = u ± e`` right after ``j``'s definition, where ``u`` is
        the basic product ``i * factor`` and ``e = rc * factor``.
        """
        u = self.basic_product(iv, factor)
        temp = self._fresh("t")
        # Preheader: t_j = j * c covers reads of the stale pre-loop j.
        self.pre.append(
            Assign(temp, BinExpr("*", Var(derived.name), factor))
        )
        if isinstance(derived.offset, Const) and isinstance(factor, Const):
            offset_atom: Atom = Const(derived.offset.value * factor.value)
        else:
            e = self._fresh("e")
            self.pre.append(Assign(e, BinExpr("*", derived.offset, factor)))
            offset_atom = Var(e)
        if derived.form == "i+rc":
            recompute = BinExpr("+", Var(u), offset_atom)
        elif derived.form == "i-rc":
            recompute = BinExpr("-", Var(u), offset_atom)
        else:  # rc-i
            recompute = BinExpr("-", offset_atom, Var(u))
        self._after_def(derived.name, derived.block, Assign(temp, recompute))
        self.report.reduced.append((derived.name, temp))
        return temp


def strength_reduce(cfg: CFG) -> Tuple[TransformResult, StrengthReport]:
    """Strength-reduce every natural loop of *cfg* (input not mutated)."""
    work = cfg.copy()
    report = StrengthReport()
    temps: Set[str] = set()
    counter = [0]

    # Inner loops first: their candidates should use their own step.
    for loop in LoopNest.compute(work).innermost_first():
        header, body = loop.header, loop.body
        constants = _region_constants(work, body)
        basic = {iv.name: iv for iv in find_induction_variables(work, body)}
        report.induction_variables.extend(basic.values())
        if not basic:
            continue
        derived = {
            d.name: d for d in find_derived_variables(work, body, set(basic))
        }
        report.derived_variables.extend(derived.values())
        candidates = _candidates(
            work, body, set(basic) | set(derived), constants
        )
        if not candidates:
            continue
        pre_label = _ensure_preheader(work, header, body)
        reducer = _LoopReducer(work, body, pre_label, temps, report, counter)

        for expr in candidates:
            if isinstance(expr.left, Var) and expr.left.name in (
                set(basic) | set(derived)
            ):
                var_name, factor = expr.left.name, expr.right
            else:
                var_name, factor = expr.right.name, expr.left

            if var_name in basic:
                temp = reducer.basic_product(basic[var_name], factor)
            else:
                d = derived[var_name]
                temp = reducer.derived_shadow(d, basic[d.base], factor)
            reducer._replace_occurrences(expr, temp)
            report.replaced_occurrences += sum(
                1
                for label in body
                for instr in work.block(label).instrs
                if instr.expr == Var(temp)
            )

    result = TransformResult(
        original=cfg, cfg=work, placements=[], temps=temps
    )
    return result, report
