"""Partial dead-code elimination by assignment sinking.

The authors' own dual of PRE (Knoop, Rüthing & Steffen, *Partial Dead
Code Elimination*, PLDI 1994): where PRE hoists *computations* against
the control flow to kill partial redundancy, PDE sinks *assignments*
with the control flow to kill partial deadness — an assignment that is
dead along some paths is moved down to the arms that actually need it
and disappears from the others.

This module implements the sinking core under this library's
observable-state semantics (final variable values are program output,
so "dead" means *overwritten before any use*, never merely "unread"):

* only a block's **last** assignment is a sinking candidate (nothing
  below it in the block can interfere), and the block terminator must
  not read its target;
* at a branch, the assignment moves onto exactly the outgoing edges
  where its target is live-in (edge splitting gives each arm a landing
  block, precisely as for PRE insertions); arms where the target is
  dead simply lose the assignment;
* if the target is dead on *every* successor, the assignment is fully
  dead and is removed outright;
* rounds iterate to a fixed point, so chains of sinkable assignments
  bubble down one step per round.

Per-path evaluation counts never increase (the assignment runs on a
subset of the paths it ran on before), and they strictly decrease on
the dead arms — the mirrored image of the PRE guarantee, checked by
the same oracles in the tests and by benchmark E4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.core.transform import TransformResult
from repro.dataflow.incremental import IncrementalLiveness
from repro.ir.cfg import CFG
from repro.ir.instr import Assign
from repro.obs.manager import notify_cfg_edited, notify_cfg_mutated


@dataclass
class SinkReport:
    """What the sinking pass did."""

    sunk: List[Tuple[str, str, Tuple[str, ...]]] = field(default_factory=list)
    removed: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def actions(self) -> int:
        return len(self.sunk) + len(self.removed)

    def describe(self) -> str:
        lines = [
            f"sunk {instr!s} from {block!r} into {', '.join(targets)}"
            for block, instr, targets in self.sunk
        ]
        lines += [
            f"removed fully dead {instr!s} from {block!r}"
            for block, instr in self.removed
        ]
        return "\n".join(lines) or "nothing to sink"


def _sinkable(cfg: CFG, label: str) -> Optional[Assign]:
    """The block's last assignment, if the terminator doesn't read it."""
    block = cfg.block(label)
    if not block.instrs:
        return None
    instr = block.instrs[-1]
    if block.terminator is not None and instr.target in block.terminator.uses():
        return None
    return instr


def _one_round(
    cfg: CFG, engine: IncrementalLiveness, report: SinkReport, standalone: bool
) -> bool:
    for label in list(cfg.labels):
        if label in (cfg.entry, cfg.exit):
            continue
        instr = _sinkable(cfg, label)
        if instr is None:
            continue
        succs = cfg.succs(label)
        if len(succs) < 2:
            continue  # sinking pays only where paths diverge
        if len(set(succs)) != len(succs):
            continue  # parallel edges: nothing to separate
        # Demand-driven point queries: only the branch arms' backward
        # slices are ever solved — a sinking run over a large graph with
        # few branches never computes the global fixpoint.
        live_targets = [
            s for s in succs if engine.is_live_in(s, instr.target)
        ]
        if len(live_targets) == len(succs):
            continue  # live everywhere: no deadness to exploit
        block = cfg.block(label)
        block.instrs.pop()
        if not live_targets:
            report.removed.append((label, str(instr)))
            notify_cfg_edited(cfg, [label])
            if standalone:
                engine.blocks_edited([label])
            return True
        landing_labels = []
        edited = [label]
        split = False
        for succ in live_targets:
            if len(cfg.preds(succ)) == 1:
                cfg.block(succ).instrs.insert(0, instr)
                landing_labels.append(succ)
                edited.append(succ)
            else:
                landing = cfg.split_edge(label, succ, f"sink_{label}_{succ}")
                landing.instrs.insert(0, instr)
                landing_labels.append(landing.label)
                split = True
        if split:
            # Edge splitting adds blocks and rewires edges — outside
            # the edit-delta model, so the engine rebuilds.
            notify_cfg_mutated(cfg)
            if standalone:
                engine.structure_changed()
        else:
            notify_cfg_edited(cfg, edited)
            if standalone:
                engine.blocks_edited(edited)
        report.sunk.append((label, str(instr), tuple(landing_labels)))
        return True
    return False


def sink_assignments(
    cfg: CFG,
    observable: Optional[Set[str]] = None,
    max_rounds: int = 200,
    manager=None,
) -> Tuple[TransformResult, SinkReport]:
    """Partially-dead-code-eliminate *cfg* (input never mutated).

    Args:
        cfg: the program.
        observable: variables whose final values matter (default: all
            of the program's variables — the interpreter's semantics).
        max_rounds: fixed-point bound; each round performs one sinking
            step, so this caps the total number of moves.
        manager: optional :class:`~repro.obs.manager.AnalysisManager`
            supplying the incremental liveness engine (dense-plan and
            memo sharing); without one a private engine is used.

    Liveness is never solved globally up front: each round's branch
    queries are answered demand-driven from the engine, which patches
    its facts incrementally after every sinking step (or rebuilds after
    an edge split).
    """
    work = cfg.copy()
    obs = set(observable) if observable is not None else work.variables()
    report = SinkReport()
    exit_names = sorted(obs)
    if manager is None:
        engine = IncrementalLiveness(work, live_at_exit=exit_names)
    else:
        engine = manager.liveness(work, live_at_exit=exit_names)
    for _ in range(max_rounds):
        if not _one_round(work, engine, report, standalone=manager is None):
            break
    result = TransformResult(
        original=cfg, cfg=work, placements=[], temps=set()
    )
    return result, report
