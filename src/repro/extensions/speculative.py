"""Profile-guided speculative loop-invariant motion.

Classic PRE (the paper's discipline) refuses to hoist an invariant out
of a zero-trip loop: the insertion point is not down-safe, so some path
would compute a value it never needs.  Speculative PRE accepts that
cost when a profile says it pays off in expectation: hoist ``e`` from
loop ``L`` to its preheader when

    frequency(occurrences of e inside L)  >  frequency(preheader)

i.e. the loop body executes the computation more often than the loop
is entered.  The expressions here are pure and total, so speculation
is always *semantically* safe — only the classic-PRE per-path count
guarantee is given up, which is exactly the trade-off the benchmark
``bench_extension_speculative.py`` quantifies against LCM under hot
and cold profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Set, Tuple

from repro.analysis.frequency import block_frequencies
from repro.analysis.loops import LoopNest
from repro.baselines.licm import _ensure_preheader, loop_invariant_exprs
from repro.core.transform import TransformResult
from repro.ir.cfg import CFG
from repro.ir.expr import Expr, Var
from repro.ir.instr import Assign


@dataclass
class SpeculationReport:
    """What the speculative pass decided, per loop and expression."""

    hoisted: List[Tuple[str, Expr, int, int]] = field(default_factory=list)
    rejected: List[Tuple[str, Expr, int, int]] = field(default_factory=list)

    def describe(self) -> str:
        lines = []
        for header, expr, inside, entry in self.hoisted:
            lines.append(
                f"hoisted {expr} out of loop {header!r} "
                f"(inside freq {inside} > entry freq {entry})"
            )
        for header, expr, inside, entry in self.rejected:
            lines.append(
                f"kept {expr} in loop {header!r} "
                f"(inside freq {inside} <= entry freq {entry})"
            )
        return "\n".join(lines) or "no speculation candidates"


def _occurrence_frequency(
    cfg: CFG, body: Set[str], expr: Expr, freq: Mapping[str, int]
) -> int:
    total = 0
    for label in body:
        occurrences = sum(
            1 for instr in cfg.block(label).instrs if instr.expr == expr
        )
        total += occurrences * freq.get(label, 0)
    return total


def speculative_transform(
    cfg: CFG,
    frequencies: Mapping[str, int] = None,
) -> Tuple[TransformResult, SpeculationReport]:
    """Hoist profitable loop invariants of *cfg* speculatively.

    Args:
        cfg: the program (never mutated); its edge weights supply the
            profile unless *frequencies* overrides them.
        frequencies: optional explicit block-frequency map.

    Returns the transformation result and a decision report.
    """
    work = cfg.copy()
    freq = dict(frequencies) if frequencies is not None else block_frequencies(work)
    report = SpeculationReport()
    temps: Set[str] = set()
    counter = 0
    existing = work.variables()

    for loop in LoopNest.compute(work).outermost_first():
        header, body = loop.header, loop.body
        invariants = loop_invariant_exprs(work, body)
        if not invariants:
            continue
        decisions = []
        for expr in invariants:
            inside = _occurrence_frequency(work, body, expr, freq)
            entry_freq = sum(
                work.weight((m, header))
                for m in work.preds(header)
                if m not in body
            )
            decisions.append((expr, inside, entry_freq))
        profitable = [d for d in decisions if d[1] > d[2]]
        for expr, inside, entry_freq in decisions:
            if (expr, inside, entry_freq) not in profitable:
                report.rejected.append((header, expr, inside, entry_freq))
        if not profitable:
            continue
        pre_label = _ensure_preheader(work, header, body)
        pre = work.block(pre_label)
        for expr, inside, entry_freq in profitable:
            while f"sp{counter}.spec" in existing:
                counter += 1
            temp = f"sp{counter}.spec"
            counter += 1
            temps.add(temp)
            pre.append(Assign(temp, expr))
            for label in sorted(body):
                block = work.block(label)
                block.instrs[:] = [
                    Assign(instr.target, Var(temp))
                    if instr.expr == expr
                    else instr
                    for instr in block.instrs
                ]
            report.hoisted.append((header, expr, inside, entry_freq))

    result = TransformResult(
        original=cfg,
        cfg=work,
        placements=[],
        temps=temps,
    )
    return result, report
