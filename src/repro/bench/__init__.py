"""Benchmark substrate: workloads, reconstructed figures, metrics, tables.

* :mod:`repro.bench.generators` — seeded random programs (via the
  mini-language AST) used for the optimality/complexity sweeps;
* :mod:`repro.bench.figures` — the reconstructed worked examples of the
  paper (see DESIGN.md for the reconstruction notes);
* :mod:`repro.bench.metrics` — static/dynamic computation counts,
  lifetime and solver-cost measurement for a strategy run;
* :mod:`repro.bench.harness` — plain-text table rendering for the
  benchmark reports.
"""

from repro.bench.generators import random_program, random_cfg, GeneratorConfig
from repro.bench.figures import (
    FIGURES,
    diamond_example,
    figure_description,
    isolated_example,
    lifetime_ladder,
    loop_example,
    running_example,
)
from repro.bench.metrics import (
    StrategyMetrics,
    dynamic_evaluations,
    measure_strategy,
    solver_cost,
)
from repro.bench.harness import Table

__all__ = [
    "FIGURES",
    "GeneratorConfig",
    "StrategyMetrics",
    "Table",
    "diamond_example",
    "dynamic_evaluations",
    "figure_description",
    "isolated_example",
    "lifetime_ladder",
    "loop_example",
    "measure_strategy",
    "random_cfg",
    "random_program",
    "running_example",
    "solver_cost",
]
