"""Unstructured random CFG generation.

The mini-language generator only produces *reducible*, well-structured
graphs; real control flow (gotos, loop exits, irreducible regions from
tail merging) is messier, and the paper's algorithm must handle it —
the analyses never assume reducibility.  This generator produces
arbitrary-shaped graphs directly:

* a random forward skeleton guarantees every block is reachable and
  reaches the exit (the paper's structural assumption);
* random extra forward edges create joins and *critical edges*;
* random back edges create loops, including irreducible ones (a back
  edge may target a block that does not dominate its source);
* blocks are filled with assignments drawn from a small expression
  pool so redundancies occur.

Concrete execution of these graphs may not terminate (branch variables
can be loop-invariant), so the property tests drive them with the
decision-oracle path enumerator instead of the interpreter.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.ir.block import BasicBlock
from repro.ir.cfg import CFG
from repro.ir.expr import BinExpr, Const, Var
from repro.ir.instr import Assign, CondBranch, Halt, Jump
from repro.ir.validate import validate_cfg


@dataclass(frozen=True)
class ShapeConfig:
    """Knobs for :func:`random_shape_cfg`."""

    blocks: int = 10
    extra_edge_probability: float = 0.5
    back_edge_probability: float = 0.3
    instrs_per_block: int = 2
    value_vars: tuple = ("a", "b", "c")
    result_vars: tuple = ("x", "y", "z", "w")
    operators: tuple = ("+", "*", "-")
    kill_probability: float = 0.2


def random_shape_cfg(seed: int, config: ShapeConfig = ShapeConfig()) -> CFG:
    """A reproducible random unstructured CFG (validated)."""
    rng = random.Random(seed)
    n = max(2, config.blocks)
    labels = [f"n{i}" for i in range(n)]

    # Expression pool for the block bodies.
    pool = [
        BinExpr(
            rng.choice(config.operators),
            Var(rng.choice(config.value_vars)),
            rng.choice(
                (Var(rng.choice(config.value_vars)), Const(rng.randint(1, 5)))
            ),
        )
        for _ in range(4)
    ]

    cfg = CFG()
    cfg.add_block(BasicBlock("entry", [], Jump(labels[0])))
    cfg.add_block(BasicBlock("exit", [], Halt()))

    # Choose successor sets: a skeleton edge i -> i+1 (or exit) keeps
    # everything connected; extra forward/back edges add shape.
    successors: List[List[str]] = []
    for i, label in enumerate(labels):
        succs = [labels[i + 1] if i + 1 < n else "exit"]
        if rng.random() < config.extra_edge_probability:
            # A forward edge skipping ahead (possibly to exit).
            targets = labels[i + 2 :] + ["exit"]
            extra = rng.choice(targets) if targets else "exit"
            if extra not in succs:
                succs.append(extra)
        elif i > 0 and rng.random() < config.back_edge_probability:
            back = labels[rng.randrange(0, i)]
            if back not in succs:
                succs.append(back)
        successors.append(succs)

    for i, label in enumerate(labels):
        block = BasicBlock(label)
        for _ in range(rng.randrange(config.instrs_per_block + 1)):
            if rng.random() < config.kill_probability:
                target = rng.choice(config.value_vars)
            else:
                target = rng.choice(config.result_vars)
            block.append(Assign(target, rng.choice(pool)))
        succs = successors[i]
        if len(succs) == 1:
            block.terminator = Jump(succs[0])
        else:
            block.terminator = CondBranch(Var(f"p{i}"), succs[0], succs[1])
        cfg.add_block(block)

    validate_cfg(cfg)
    return cfg
