"""Measurement of a strategy run: counts, lifetimes, solver cost.

These are the columns of the benchmark tables:

* static computations — operator-expression occurrences in the program
  text (code size effect of a transformation);
* dynamic evaluations — interpreter-counted expression evaluations over
  a fixed set of random inputs (the quantity the computational-
  optimality theorem is about);
* temporary lifetime — total live program points and peak pressure of
  the introduced temporaries (the lifetime-optimality theorem);
* solver cost — bit-vector operations, sweeps and transfer-function
  evaluations consumed by the analyses (the paper's efficiency claim).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.lifetime import measure_lifetimes
from repro.core.pipeline import optimize
from repro.dataflow.bitvec import OpCounter, counting
from repro.interp.machine import run
from repro.interp.random_inputs import random_envs
from repro.ir.cfg import CFG


@dataclass
class StrategyMetrics:
    """One row of a comparison table."""

    strategy: str
    static_computations: int
    dynamic_evaluations: int
    runs_completed: int
    temp_count: int
    temp_live_points: int
    max_pressure: int
    bitvec_ops: int
    blocks: int

    def as_row(self) -> Dict[str, object]:
        return {
            "strategy": self.strategy,
            "static": self.static_computations,
            "dynamic": self.dynamic_evaluations,
            "temps": self.temp_count,
            "live pts": self.temp_live_points,
            "pressure": self.max_pressure,
            "bv ops": self.bitvec_ops,
            "blocks": self.blocks,
        }


def dynamic_evaluations(
    cfg: CFG,
    runs: int = 20,
    seed: int = 0,
    max_steps: int = 200_000,
    env_source: Optional[CFG] = None,
) -> tuple:
    """Total expression evaluations over *runs* random executions.

    Returns ``(total evaluations, completed runs)``; runs that exceed
    the step budget are excluded from both (the generators produce only
    bounded loops, so in practice everything completes).

    *env_source* controls which graph's variable set seeds the inputs.
    When comparing several transformed versions of one program, pass
    the **original** graph for all of them — otherwise the differing
    temporary names would draw different random environments and the
    counts would not be comparable.
    """
    total = 0
    completed = 0
    for env in random_envs(env_source if env_source is not None else cfg, runs, seed):
        result = run(cfg, env, max_steps=max_steps)
        if result.reached_exit:
            total += result.total_evaluations
            completed += 1
    return total, completed


def measure_strategy(
    cfg: CFG,
    strategy: str,
    runs: int = 20,
    seed: int = 0,
) -> StrategyMetrics:
    """Optimise *cfg* with *strategy* and measure everything.

    The dynamic numbers for different strategies are directly
    comparable because the same seed generates the same inputs.
    """
    with counting() as ops:
        result = optimize(cfg, strategy)
    dynamic, completed = dynamic_evaluations(
        result.cfg, runs, seed, env_source=cfg
    )
    lifetimes = measure_lifetimes(result.cfg, result.temps)
    return StrategyMetrics(
        strategy=strategy,
        static_computations=result.cfg.static_computation_count(),
        dynamic_evaluations=dynamic,
        runs_completed=completed,
        temp_count=len(result.temps),
        temp_live_points=lifetimes.total_live_points,
        max_pressure=lifetimes.max_pressure,
        bitvec_ops=ops.total,
        blocks=len(result.cfg),
    )


def solver_cost(cfg: CFG, strategy: str) -> OpCounter:
    """Bit-vector operations consumed by one strategy's analyses."""
    with counting() as ops:
        optimize(cfg, strategy)
    return ops


def operation_mix(cfg: CFG, inputs, max_steps: int = 200_000) -> Dict[str, int]:
    """Dynamic evaluation counts grouped by operator.

    Runs *cfg* on *inputs* and tallies how often each operator was
    evaluated — the measurement behind the strength-reduction
    experiments' "multiplications for additions" trade.
    """
    from repro.ir.expr import BinExpr, UnaryExpr

    result = run(cfg, inputs, max_steps=max_steps)
    mix: Dict[str, int] = {}
    for expr, count in result.eval_counts.items():
        if isinstance(expr, (BinExpr, UnaryExpr)):
            mix[expr.op] = mix.get(expr.op, 0) + count
    return mix
