"""Reconstructed worked examples of the paper (see DESIGN.md, F1/F2).

The original figures are unavailable to this reproduction (the supplied
text was a different paper), so the graphs below are reconstructions
that exhibit exactly the phenomena the PLDI'92 figures demonstrate:

* :func:`running_example` — one graph containing a join-point partial
  redundancy (with the generator on one arm), a loop-invariant
  computation hoistable only to the loop-entry edge, a full redundancy
  killed on one path, and an isolated single occurrence that must stay
  put.  The expected BCM/LCM placements are documented (and asserted in
  the test-suite) block by block.
* :func:`loop_example` — the classic do-while loop-invariant motion.
* :func:`isolated_example` — a lone computation: LCM must not touch it,
  busy placement moves it pointlessly.
* :func:`lifetime_ladder` — a parameterised chain amplifying the
  BCM-vs-LCM temporary-lifetime gap (the paper's register-pressure
  motivation).
* :func:`diamond_example` — the minimal textbook diamond.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.ir.builder import CFGBuilder
from repro.ir.cfg import CFG
from repro.lang.lower import compile_program


def running_example() -> CFG:
    """The reconstruction of the paper's running example (F1).

    Structure (expression of interest ``a + b``; ``c + d`` is the
    isolated occurrence)::

        entry -> n1 -(p)-> n2[x=a+b] -> n4
                      \\--> n3        -> n4
        n4[y=a+b] -> n5[a=k*3] -(q)-> n6 | n10
        n6[z=a+b] -> n7 -(rg)-> n6 | n8     (do-while loop n6,n7;
                                             n7 counts r down so every
                                             execution terminates)
        n8[w2=c+d] -> n9 -> n10
        n10[w=a+b] -> exit

    Hand-derived optimal (LCM) placement for ``a + b``:

    * ``n2`` keeps its computation (it is the generator; ``LATERIN``
      holds there) and contributes a copy;
    * insert on edge ``n3 -> n4``; replace in ``n4``;
    * ``n5`` kills ``a``; insert on edges ``n5 -> n6`` (hoisting the
      loop-invariant out of the do-while) and ``n5 -> n10``;
      replace in ``n6`` and ``n10``.

    ``c + d`` in ``n8`` is isolated: LCM must leave it untouched.
    Busy code motion instead inserts on both edges out of ``n1`` and on
    ``n7 -> n8`` — same evaluation counts, strictly longer lifetimes.
    """
    b = CFGBuilder()
    b.block("n1").branch("p", "n2", "n3")
    b.block("n2", "x = a + b").jump("n4")
    b.block("n3").jump("n4")
    b.block("n4", "y = a + b").jump("n5")
    b.block("n5", "a = k * 3").branch("q", "n6", "n10")
    b.block("n6", "z = a + b").jump("n7")
    b.block("n7", "r = r - 1", "rg = r > 0").branch("rg", "n6", "n8")
    b.block("n8", "w2 = c + d").jump("n9")
    b.block("n9").jump("n10")
    b.block("n10", "w = a + b").to_exit()
    return b.build()


def loop_example() -> CFG:
    """Loop-invariant motion through a do-while loop (F2).

    ``a * k`` is invariant and computed on every iteration; it is
    anticipatable at the loop entry (the body always runs), so LCM
    hoists it to the loop-entry edge — one evaluation regardless of the
    trip count.  The trailing use after the loop is then fully
    redundant.
    """
    return compile_program(
        """
        s = 0;
        i = 0;
        do {
            step = a * k;
            s = s + step;
            i = i + 1;
            t = i < n;
        } while (t);
        final = a * k;
        """
    )


def isolated_example() -> CFG:
    """A single, unredundant computation: the isolation litmus test.

    The only occurrence of ``a + b`` sits on one arm of a branch.  Any
    insertion elsewhere is wasted motion; the paper's isolation
    analysis (and the ``LATERIN`` mechanism of the edge-based
    formulation) must leave the program unchanged.
    """
    b = CFGBuilder()
    b.block("fork").branch("p", "only", "other")
    b.block("only", "x = a + b").jump("join")
    b.block("other", "y = c * 2").jump("join")
    b.block("join").to_exit()
    return b.build()


def lifetime_ladder(rungs: int = 6) -> CFG:
    """A transparent chain between the earliest point and the uses.

    Both arms of a branch assign ``a`` (killing ``a + b``), then a
    chain of *rungs* pass-through blocks (copies only, so they are not
    PRE candidates themselves) leads to two uses of ``a + b``.  The
    earliest down-safe points are the edges right below the kills; the
    latest are just above the first use:

    * BCM inserts at the top of the ladder and keeps the temporary live
      across all *rungs* blocks — cost linear in the ladder height;
    * LCM delays the insertion to the bottom (here: leaves the first
      use in place as the generator) — constant cost.

    This is the starkest form of the paper's register-pressure
    argument; benchmark T2 sweeps the height.
    """
    if rungs < 1:
        raise ValueError("need at least one rung")
    b = CFGBuilder()
    b.block("top").branch("p", "seta", "setb")
    b.block("seta", "a = k + 1").jump("rung0")
    b.block("setb", "a = k + 2").jump("rung0")
    for i in range(rungs):
        nxt = f"rung{i + 1}" if i + 1 < rungs else "use1"
        b.block(f"rung{i}", f"m{i} = z{i}").jump(nxt)
    b.block("use1", "x = a + b").jump("use2")
    b.block("use2", "y = a + b").to_exit()
    return b.build()


def diamond_example() -> CFG:
    """The minimal diamond: compute on one arm, use at the join."""
    b = CFGBuilder()
    b.block("cond", "p = a < b").branch("p", "left", "right")
    b.block("left", "x = a + b").jump("join")
    b.block("right").jump("join")
    b.block("join", "y = a + b").to_exit()
    return b.build()


def kill_into_join_example() -> CFG:
    """The edge-split-form litmus (DESIGN.md "Finding").

    ``pre`` kills ``b`` on its way into the join ``use``, whose other
    predecessor already carries ``b * b``.  The only optimal insertion
    point is the *non-critical* edge ``pre -> use`` — the case that
    separates critical-edge splitting from full edge-split form.
    """
    b = CFGBuilder()
    b.block("top", "c = b * b").branch("p", "pre", "use")
    b.block("pre", "b = a - b").jump("use")
    b.block("use", "y = b * b").to_exit()
    return b.build()


def nested_loop_example() -> CFG:
    """Counted nested loops with invariants at both depths.

    ``a * k`` is invariant in both loops (hoistable to the outermost
    entry once the inner do-while guarantees execution); ``row * w``
    is invariant only in the inner loop.  Exercises cascaded motion
    through two loop levels.
    """
    return compile_program(
        """
        acc = 0;
        row = 0;
        do {
            col = 0;
            do {
                g = a * k;          # invariant at both depths
                r = row * w;        # invariant in the inner loop only
                acc = acc + g;
                acc = acc + r;
                col = col + 1;
                ti = col < inner;
            } while (ti);
            row = row + 1;
            to = row < outer;
        } while (to);
        final = a * k;
        """
    )


#: Registry used by the figure benchmarks: name -> constructor.
FIGURES: Dict[str, Callable[[], CFG]] = {
    "running_example": running_example,
    "loop_example": loop_example,
    "isolated_example": isolated_example,
    "lifetime_ladder": lifetime_ladder,
    "diamond_example": diamond_example,
    "kill_into_join": kill_into_join_example,
    "nested_loops": nested_loop_example,
}


def figure_description(name: str) -> str:
    """The docstring of a registered figure (for bench report headers)."""
    fn = FIGURES[name]
    return (fn.__doc__ or name).strip().splitlines()[0]
