"""Seeded random workload generation.

Programs are generated as mini-language ASTs and lowered through the
front-end, which guarantees structurally valid, reducible CFGs in which
every block lies on an entry-to-exit path — the paper's setting.  The
generator is biased to produce the phenomena PRE cares about: a small
variable pool so expressions recur, occasional reassignment of operands
(kills), joins, and loops of both the zero-trip (``while``) and
at-least-once (``do-while``) kind.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields
from typing import Any, Dict, List, Tuple

from repro.ir.cfg import CFG
from repro.ir.expr import Atom, BinExpr, Const, Expr, UnaryExpr, Var
from repro.lang import ast
from repro.lang.lower import lower_program


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs for :func:`random_program`.

    The defaults generate mid-sized programs (a few dozen blocks) with
    plenty of recurring expressions.

    A config round-trips through plain JSON (:meth:`to_dict` /
    :meth:`from_dict`), which is how corpus manifests record the exact
    generator settings next to each seed — ``(seed, GeneratorConfig)``
    fully determines the program, so a manifest alone reproduces a
    corpus bit-identically (see ``docs/CORPUS.md``).
    """

    statements: int = 12
    max_depth: int = 3
    value_vars: Tuple[str, ...] = ("a", "b", "c", "d")
    result_vars: Tuple[str, ...] = ("x", "y", "z", "w", "u", "v")
    operators: Tuple[str, ...] = ("+", "-", "*", "&")
    compare_ops: Tuple[str, ...] = ("<", "<=", "==", "!=")
    kill_probability: float = 0.15
    loop_probability: float = 0.18
    branch_probability: float = 0.30
    max_loop_iterations: int = 4

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready projection; tuples become lists."""
        out: Dict[str, Any] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            out[spec.name] = list(value) if isinstance(value, tuple) else value
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "GeneratorConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Missing fields take their defaults; unknown fields raise, so a
        manifest minted by a newer generator fails loudly instead of
        silently generating different programs.
        """
        known = {spec.name for spec in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown generator config field(s): {', '.join(unknown)}"
            )
        kwargs = {
            name: tuple(value) if isinstance(value, list) else value
            for name, value in data.items()
        }
        return cls(**kwargs)


def _random_atom(rng: random.Random, config: GeneratorConfig) -> Atom:
    if rng.random() < 0.25:
        return Const(rng.randint(-4, 9))
    return Var(rng.choice(config.value_vars))


def _fresh_expr(rng: random.Random, config: GeneratorConfig) -> Expr:
    roll = rng.random()
    if roll < 0.10:
        return _random_atom(rng, config)
    if roll < 0.20:
        return UnaryExpr(rng.choice(("-", "~")), Var(rng.choice(config.value_vars)))
    op = rng.choice(config.operators)
    return BinExpr(op, _random_atom(rng, config), _random_atom(rng, config))


class _ExprPool:
    """A small per-program expression pool.

    Drawing right-hand sides from a handful of expressions makes the
    same computation recur across the program — the raw material of
    partial redundancy.  A fresh expression is still minted
    occasionally so universes vary.
    """

    def __init__(self, rng: random.Random, config: GeneratorConfig, size: int = 6):
        self._rng = rng
        self._config = config
        self._pool = [_fresh_expr(rng, config) for _ in range(size)]

    def draw(self) -> Expr:
        if self._rng.random() < 0.15:
            expr = _fresh_expr(self._rng, self._config)
            self._pool[self._rng.randrange(len(self._pool))] = expr
            return expr
        return self._rng.choice(self._pool)


def _random_condition(rng: random.Random, config: GeneratorConfig) -> Expr:
    return BinExpr(
        rng.choice(config.compare_ops),
        Var(rng.choice(config.value_vars)),
        _random_atom(rng, config),
    )


def _random_body(
    rng: random.Random,
    config: GeneratorConfig,
    budget: int,
    depth: int,
    pool: _ExprPool,
) -> List[ast.Stmt]:
    """Generate about *budget* statements at the given nesting depth."""
    body: List[ast.Stmt] = []
    remaining = budget
    while remaining > 0:
        roll = rng.random()
        if depth < config.max_depth and roll < config.loop_probability:
            inner_budget = max(1, remaining // 2)
            inner = _random_body(rng, config, inner_budget, depth + 1, pool)
            # Bounded loops keep dynamic benchmarking cheap: repeat(k)
            # lowers to a counted while loop.
            body.append(
                ast.RepeatStmt(
                    Const(rng.randint(1, config.max_loop_iterations)), tuple(inner)
                )
            )
            remaining -= inner_budget + 1
        elif depth < config.max_depth and roll < (
            config.loop_probability + config.branch_probability
        ):
            then_budget = max(1, remaining // 3)
            else_budget = max(0, remaining // 3) if rng.random() < 0.7 else 0
            then_body = _random_body(rng, config, then_budget, depth + 1, pool)
            else_body = (
                _random_body(rng, config, else_budget, depth + 1, pool)
                if else_budget
                else []
            )
            body.append(
                ast.IfStmt(
                    _random_condition(rng, config),
                    tuple(then_body),
                    tuple(else_body),
                )
            )
            remaining -= then_budget + else_budget + 1
        else:
            if rng.random() < config.kill_probability:
                # A kill: reassign one of the shared value variables.
                target = rng.choice(config.value_vars)
            else:
                target = rng.choice(config.result_vars)
            body.append(ast.AssignStmt(target, pool.draw()))
            remaining -= 1
    return body


def random_program(seed: int, config: GeneratorConfig = GeneratorConfig()) -> ast.Program:
    """A reproducible random mini-language program."""
    rng = random.Random(seed)
    pool = _ExprPool(rng, config)
    body = _random_body(rng, config, config.statements, 0, pool)
    # Ensure at least one potential partial redundancy: end by recomputing
    # a binary expression over the value pool.
    body.append(
        ast.AssignStmt(
            "result",
            BinExpr(
                rng.choice(config.operators),
                Var(config.value_vars[0]),
                Var(config.value_vars[1]),
            ),
        )
    )
    return ast.Program(tuple(body))


def random_cfg(seed: int, config: GeneratorConfig = GeneratorConfig()) -> CFG:
    """A reproducible random CFG (a lowered random program)."""
    return lower_program(random_program(seed, config))
