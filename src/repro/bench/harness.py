"""Plain-text tables and trace persistence for the benchmark reports.

The benchmark modules print the same kind of rows the paper's
figures/claims contain; this keeps the rendering in one place so every
report looks alike and diffs cleanly run to run.  The suite can also
persist the observability layer's trace summary alongside the tables
(:func:`write_trace_summary`), giving every benchmark run a
machine-readable record of analysis timings, sweep counts and
bit-vector operation tallies.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.trace import Tracer, current


class Table:
    """A fixed-header, aligned, plain-text table."""

    def __init__(self, headers: Sequence[str], title: str = "") -> None:
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append([_format(cell) for cell in cells])

    def add_mapping(self, row: Dict[str, object]) -> None:
        """Add a row from a ``header -> value`` mapping."""
        self.add_row(*(row.get(header, "") for header in self.headers))

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _format(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def print_table(table: Table) -> None:
    """Print with a blank line around, for readable bench output."""
    print()
    print(table.render())
    print()


# ---------------------------------------------------------------------------
# Report registry: benchmark modules record their tables here and the
# benchmark suite's conftest prints everything in the terminal summary
# (so the paper-shaped rows survive pytest's output capturing).
# ---------------------------------------------------------------------------

_REPORTS: List[str] = []


def record_report(title: str, body: object) -> None:
    """Register a rendered report for the end-of-run summary."""
    text = body.render() if isinstance(body, Table) else str(body)
    _REPORTS.append(f"== {title} ==\n{text}")


def drain_reports() -> List[str]:
    """Return and clear all recorded reports."""
    reports = list(_REPORTS)
    _REPORTS.clear()
    return reports


# ---------------------------------------------------------------------------
# Trace persistence: benchmark runs carry the trace summary with them so
# timing/sweep/bit-vector-op numbers land next to the rendered tables.
# ---------------------------------------------------------------------------


def trace_summary_payload(
    tracer: Optional[Tracer] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """A benchmark-JSON payload for *tracer* (default: the active one).

    The payload embeds the full ``repro-trace`` document (events,
    counters, gauges, per-span-name summary) under ``"trace"`` plus any
    *extra* run metadata at the top level.
    """
    tracer = tracer if tracer is not None else current()
    if tracer is None:
        raise ValueError("no tracer given and none active")
    payload: Dict[str, Any] = {
        "format": "repro-bench-trace",
        "version": 1,
        "trace": tracer.to_dict(),
    }
    if extra:
        payload.update(extra)
    return payload


def write_json_report(path: str, payload: Dict[str, Any]) -> Dict[str, Any]:
    """Persist any benchmark JSON *payload* to *path*; returns it.

    The common sink for machine-readable benchmark artifacts — trace
    summaries (:func:`write_trace_summary`) and batch reports
    (``BatchReport.to_dict()``) both land through here so every
    artifact is written the same way.
    """
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return payload


def write_trace_summary(
    path: str,
    tracer: Optional[Tracer] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Persist the trace summary JSON to *path*; returns the payload."""
    return write_json_report(path, trace_summary_payload(tracer, extra))
