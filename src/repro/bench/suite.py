"""The library-facing experiment suite: ``python -m repro.bench``.

Mirrors the pytest benchmark modules (which stay the canonical,
asserted versions — see ``benchmarks/``) as plain functions a user can
call without pytest, each returning a rendered
:class:`~repro.bench.harness.Table`.  ``run_suite`` executes everything
and prints an EXPERIMENTS.md-shaped report.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.bench.figures import lifetime_ladder, loop_example, running_example
from repro.bench.generators import GeneratorConfig, random_cfg
from repro.bench.harness import Table
from repro.bench.metrics import dynamic_evaluations, solver_cost
from repro.core.lifetime import measure_lifetimes
from repro.core.optimality import compare_per_path, paths_agree
from repro.core.pipeline import optimize
from repro.interp.machine import run
from repro.ir.expr import BinExpr, Var


def figure_running_example() -> Table:
    """F1: placements and lifetimes on the running example."""
    table = Table(
        ["variant", "inserts", "deletes", "temp live pts"],
        title="F1: running example",
    )
    for strategy in ("bcm", "krs-alcm", "lcm"):
        cfg = running_example()
        result = optimize(cfg, strategy)
        inserts = sum(p.insertion_count for p in result.placements)
        deletes = sum(len(p.delete_blocks) for p in result.placements)
        lifetimes = measure_lifetimes(result.cfg, result.temps)
        table.add_row(strategy, inserts, deletes, lifetimes.total_live_points)
    return table


def figure_loop_series() -> Table:
    """F2: loop-invariant evaluations vs trip count."""
    cfg = loop_example()
    optimised = optimize(cfg, "lcm").cfg
    expr = BinExpr("*", Var("a"), Var("k"))
    table = Table(["n", "original", "after LCM"], title="F2: a*k evaluations")
    for n in (1, 4, 16):
        env = {"a": 3, "k": 5, "n": n}
        table.add_row(n, run(cfg, env).count(expr), run(optimised, env).count(expr))
    return table


def theorem_optimality(seeds: int = 6) -> Table:
    """T1/T3 condensed: safety + LCM==BCM over random programs."""
    table = Table(
        ["seed", "paths", "before", "after LCM", "safe", "LCM==BCM"],
        title="T1/T3: per-path optimality",
    )
    for seed in range(seeds):
        cfg = random_cfg(seed, GeneratorConfig(statements=10))
        lcm = optimize(cfg, "lcm")
        bcm = optimize(cfg, "bcm")
        report = compare_per_path(cfg, lcm.cfg, max_branches=6)
        agree = paths_agree(lcm.cfg, bcm.cfg, max_branches=6)
        table.add_row(
            seed,
            report.paths_checked,
            report.total_before,
            report.total_after,
            "yes" if report.safe else "NO",
            "yes" if agree else "NO",
        )
    return table


def theorem_lifetime_ladder() -> Table:
    """T2: the BCM-linear / LCM-constant ladder."""
    table = Table(
        ["rungs", "BCM live pts", "LCM live pts"], title="T2: lifetime ladder"
    )
    for rungs in (1, 4, 16):
        cfg = lifetime_ladder(rungs)
        spans = {}
        for strategy in ("bcm", "lcm"):
            result = optimize(cfg, strategy)
            spans[strategy] = measure_lifetimes(
                result.cfg, result.temps
            ).total_live_points
        table.add_row(rungs, spans["bcm"], spans["lcm"])
    return table


def complexity_costs() -> Table:
    """C1: LCM's unidirectional analyses vs bidirectional MR."""
    table = Table(
        ["statements", "LCM bv-ops", "MR bv-ops"], title="C1: analysis cost"
    )
    for statements in (10, 40):
        cfg = random_cfg(statements, GeneratorConfig(statements=statements))
        table.add_row(
            statements,
            solver_cost(cfg, "lcm").total,
            solver_cost(cfg, "mr").total,
        )
    return table


def quality_dynamic(seeds: int = 4) -> Table:
    """C3 condensed: dynamic evaluations per strategy."""
    strategies = ("none", "gcse", "mr", "lcm")
    table = Table(["seed", *strategies], title="C3: dynamic evaluations")
    for seed in range(seeds):
        cfg = random_cfg(seed, GeneratorConfig(statements=10))
        row = [seed]
        for strategy in strategies:
            result = optimize(cfg, strategy)
            total, _ = dynamic_evaluations(
                result.cfg, runs=8, seed=3, env_source=cfg
            )
            row.append(total)
        table.add_row(*row)
    return table


def extension_strength() -> Table:
    """E2 condensed: multiplications before/after strength reduction."""
    from repro.extensions.strength import strength_reduce
    from repro.ir.builder import CFGBuilder

    b = CFGBuilder()
    b.block("init", "i = 0", "s = 0").jump("head")
    b.block("head", "t = i < n").branch("t", "body", "out")
    b.block("body", "a = i * 8", "s = s + a", "i = i + 1").jump("head")
    b.block("out").to_exit()
    cfg = b.build()
    reduced, _ = strength_reduce(cfg)
    table = Table(["n", "muls before", "muls after"], title="E2: strength reduction")
    for n in (4, 16):
        def muls(graph):
            result = run(graph, {"n": n})
            return sum(
                c for e, c in result.eval_counts.items()
                if isinstance(e, BinExpr) and e.op == "*"
            )
        table.add_row(n, muls(cfg), muls(reduced.cfg))
    return table


def extension_sinking() -> Table:
    """E4 condensed: the PRE/PDE dual on one graph."""
    from repro.extensions.sinking import sink_assignments
    from repro.ir.builder import CFGBuilder

    b = CFGBuilder()
    b.block("top", "x = c * d").branch("p", "l", "r")
    b.block("l", "u = a + b", "y = x + u").jump("join")
    b.block("r", "x = 5").jump("join")
    b.block("join", "v = a + b", "out = v + x").to_exit()
    cfg = b.build()
    pre = optimize(cfg, "lcm")
    pde, _ = sink_assignments(cfg)
    both, _ = sink_assignments(pre.cfg)
    table = Table(["variant", "total path evals"], title="E4: PRE vs PDE vs both")
    for name, graph in (("original", cfg), ("PRE", pre.cfg),
                        ("PDE", pde.cfg), ("PRE+PDE", both.cfg)):
        total = compare_per_path(cfg, graph, max_branches=4).total_after
        table.add_row(name, total)
    return table


#: Everything `run_suite` executes, in report order.
EXPERIMENTS: Dict[str, Callable[[], Table]] = {
    "F1": figure_running_example,
    "F2": figure_loop_series,
    "T1/T3": theorem_optimality,
    "T2": theorem_lifetime_ladder,
    "C1": complexity_costs,
    "C3": quality_dynamic,
    "E2": extension_strength,
    "E4": extension_sinking,
}


def run_suite(names: List[str] = None, out=None) -> List[Table]:
    """Run the (selected) experiments and print their tables."""
    import sys

    out = out if out is not None else sys.stdout
    chosen = names or list(EXPERIMENTS)
    tables = []
    for name in chosen:
        if name not in EXPERIMENTS:
            raise KeyError(
                f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
            )
        table = EXPERIMENTS[name]()
        tables.append(table)
        print(f"== {name} ==", file=out)
        print(table.render(), file=out)
        print(file=out)
    return tables
