"""``python -m repro.bench`` — run the experiment suite without pytest."""

import sys

from repro.bench.suite import run_suite

run_suite(sys.argv[1:] or None)
