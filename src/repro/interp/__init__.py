"""A concrete interpreter for CFG programs.

Substitutes for the paper authors' compiler testbed: programs are
executed before and after a transformation with identical inputs, and
the interpreter counts how often each candidate expression is evaluated
— the exact quantity the paper's computational-optimality theorem
bounds.  A decision-oracle mode drives branches from an explicit bit
sequence so the checkers can enumerate all control flow paths up to a
bound.
"""

from repro.interp.machine import (
    ExecutionResult,
    InterpreterError,
    eval_expr,
    run,
)
from repro.interp.random_inputs import random_env, random_envs

__all__ = [
    "ExecutionResult",
    "InterpreterError",
    "eval_expr",
    "random_env",
    "random_envs",
    "run",
]
