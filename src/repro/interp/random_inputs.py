"""Random input environments for differential testing.

Semantic-equivalence checks execute a program before and after a
transformation on many random environments; these helpers generate them
reproducibly from a seed.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List

from repro.ir.cfg import CFG


def random_env(
    variables: Iterable[str],
    rng: random.Random,
    lo: int = -100,
    hi: int = 100,
) -> Dict[str, int]:
    """One random environment binding every variable in *variables*.

    Zero is drawn with elevated probability: branches on raw input
    variables treat non-zero as true, so a uniform draw would almost
    never exercise their false arms (and division/modulo-by-zero paths
    would go untested).
    """
    return {
        name: 0 if rng.random() < 0.2 else rng.randint(lo, hi)
        for name in sorted(set(variables))
    }


def random_envs(
    cfg: CFG,
    count: int,
    seed: int = 0,
    lo: int = -100,
    hi: int = 100,
) -> List[Dict[str, int]]:
    """*count* reproducible environments covering every variable of *cfg*."""
    rng = random.Random(seed)
    variables = sorted(cfg.variables())
    return [random_env(variables, rng, lo, hi) for _ in range(count)]
