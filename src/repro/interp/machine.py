"""Execution of CFG programs with expression-evaluation counting.

The arithmetic is total: division and modulo by zero yield 0 and shift
amounts are taken modulo 64, so random programs can be executed on
random inputs without faulting.  Division and remainder are both
C-style truncated (quotient rounds toward zero, remainder takes the
sign of the dividend), so ``(a / b) * b + a % b == a`` holds for every
sign combination with ``b != 0``.  What the evaluation *counts* measure is
unaffected by these conventions — both the original and the transformed
program use the same semantics, and PRE is semantics-agnostic about the
operator's meaning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional

from repro.ir.cfg import CFG
from repro.ir.expr import Atom, BinExpr, Const, Expr, UnaryExpr, Var, is_computation
from repro.ir.instr import CondBranch, Halt, Jump


class InterpreterError(RuntimeError):
    """Raised on execution faults (undefined variable in strict mode…)."""


def _eval_atom(atom: Atom, env: Mapping[str, int], strict: bool) -> int:
    if isinstance(atom, Const):
        return atom.value
    if strict and atom.name not in env:
        raise InterpreterError(f"read of undefined variable {atom.name!r}")
    return env.get(atom.name, 0)


def eval_expr(expr: Expr, env: Mapping[str, int], strict: bool = False) -> int:
    """Evaluate *expr* under *env* with total arithmetic."""
    if isinstance(expr, (Const, Var)):
        return _eval_atom(expr, env, strict)
    if isinstance(expr, UnaryExpr):
        value = _eval_atom(expr.operand, env, strict)
        if expr.op == "-":
            return -value
        if expr.op == "!":
            return 0 if value else 1
        if expr.op == "~":
            return ~value
        if expr.op == "abs":
            return abs(value)
        raise InterpreterError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, BinExpr):
        left = _eval_atom(expr.left, env, strict)
        right = _eval_atom(expr.right, env, strict)
        op = expr.op
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            # C-style truncating division, total (x / 0 == 0).
            if right == 0:
                return 0
            quotient = abs(left) // abs(right)
            return -quotient if (left < 0) != (right < 0) else quotient
        if op == "%":
            # C-style truncated remainder, total (x % 0 == 0).  Pairs
            # with the truncating division above so that
            # (a / b) * b + a % b == a for every sign combination.
            if right == 0:
                return 0
            remainder = abs(left) % abs(right)
            return -remainder if left < 0 else remainder
        if op == "<":
            return int(left < right)
        if op == "<=":
            return int(left <= right)
        if op == ">":
            return int(left > right)
        if op == ">=":
            return int(left >= right)
        if op == "==":
            return int(left == right)
        if op == "!=":
            return int(left != right)
        if op == "&":
            return left & right
        if op == "|":
            return left | right
        if op == "^":
            return left ^ right
        if op == "<<":
            return left << (right % 64)
        if op == ">>":
            return left >> (right % 64)
        if op == "min":
            return min(left, right)
        if op == "max":
            return max(left, right)
        raise InterpreterError(f"unknown binary operator {op!r}")
    raise InterpreterError(f"not an expression: {expr!r}")


@dataclass
class ExecutionResult:
    """The outcome of one program run."""

    env: Dict[str, int]
    eval_counts: Dict[Expr, int]
    block_trace: List[str]
    decisions_taken: List[bool]
    steps: int
    reached_exit: bool

    @property
    def total_evaluations(self) -> int:
        """Total operator-expression evaluations across the run."""
        return sum(self.eval_counts.values())

    def count(self, expr: Expr) -> int:
        """Evaluations of one expression."""
        return self.eval_counts.get(expr, 0)

    def block_counts(self) -> Dict[str, int]:
        """How often each block executed (from the trace)."""
        counts: Dict[str, int] = {}
        for label in self.block_trace:
            counts[label] = counts.get(label, 0) + 1
        return counts


def run(
    cfg: CFG,
    inputs: Optional[Mapping[str, int]] = None,
    max_steps: int = 100_000,
    decisions: Optional[Iterable[bool]] = None,
    strict: bool = False,
) -> ExecutionResult:
    """Execute *cfg* from its entry block.

    Args:
        cfg: the program.
        inputs: initial variable environment (missing reads default to 0
            unless *strict*).
        max_steps: instruction + block-transfer budget; exceeding it
            returns ``reached_exit=False`` rather than raising, so
            checkers can handle diverging decision prefixes.
        decisions: when given, branches take their direction from this
            sequence (oracle mode) instead of the condition's value;
            when the sequence runs out the run stops with
            ``reached_exit=False``.
        strict: raise on reads of undefined variables.
    """
    env: Dict[str, int] = dict(inputs or {})
    eval_counts: Dict[Expr, int] = {}
    trace: List[str] = []
    taken: List[bool] = []
    oracle: Optional[Iterator[bool]] = iter(decisions) if decisions is not None else None

    label = cfg.entry
    steps = 0
    while True:
        block = cfg.block(label)
        trace.append(label)
        for instr in block.instrs:
            steps += 1
            if steps > max_steps:
                return ExecutionResult(env, eval_counts, trace, taken, steps, False)
            if is_computation(instr.expr):
                eval_counts[instr.expr] = eval_counts.get(instr.expr, 0) + 1
            env[instr.target] = eval_expr(instr.expr, env, strict)
        term = block.terminator
        if term is None:
            raise InterpreterError(f"block {label!r} has no terminator")
        if isinstance(term, Halt):
            return ExecutionResult(env, eval_counts, trace, taken, steps, True)
        steps += 1
        if steps > max_steps:
            return ExecutionResult(env, eval_counts, trace, taken, steps, False)
        if isinstance(term, Jump):
            label = term.target
        elif isinstance(term, CondBranch):
            if oracle is not None:
                decision = next(oracle, None)
                if decision is None:
                    return ExecutionResult(env, eval_counts, trace, taken, steps, False)
                decision = bool(decision)
            else:
                decision = _eval_atom(term.cond, env, strict) != 0
            taken.append(decision)
            label = term.then_target if decision else term.else_target
        else:
            raise InterpreterError(f"unknown terminator {term!r}")
