"""A small synchronous client for the ``repro serve`` daemon.

Tests, the CI smoke and embedding callers all need the same four
lines — connect, send one NDJSON request, read the correlated
response, close — so :class:`ServeClient` packages them.  It is
deliberately one-request-at-a-time: pipelining belongs to async
clients speaking :mod:`repro.service.protocol` directly (the wire
format is the whole contract; this class adds nothing to it).

::

    from repro.service import ServeClient

    with ServeClient(host, port) as client:
        record = client.optimize("a = b + c; d = b + c;")
        assert record["status"] == "ok"
        stats = client.stats()
"""

from __future__ import annotations

import socket
from dataclasses import replace
from typing import Any, Dict, Optional

from repro.service import protocol
from repro.service.protocol import ProtocolError, Request


class ServeClient:
    """One blocking connection to a running daemon.

    ``timeout`` is the *socket* timeout in seconds (None blocks
    forever) — requests whose two-tier server-side deadline may fire
    late should leave headroom above their ``timeout`` field.
    """

    def __init__(
        self, host: str, port: int, timeout: Optional[float] = None
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout)
        self._file = self._sock.makefile("rb")
        self._next_id = 0

    # -- the request primitives -----------------------------------------

    def call(self, request: Request) -> Dict[str, Any]:
        """Send one request and return its correlated response record.

        Requests without an ``id`` get one assigned, so every response
        can be matched; records for other ids (none, for a client used
        as intended) are skipped.
        """
        if request.id is None:
            self._next_id += 1
            request = replace(request, id=f"c{self._next_id}")
        self._sock.sendall(protocol.encode(request.to_dict()))
        while True:
            line = self._file.readline()
            if not line:
                raise ProtocolError("connection closed by server")
            record = protocol.decode(line)
            if record.get("id") == request.id:
                return record

    # -- convenience wrappers -------------------------------------------

    def optimize(
        self,
        source: str,
        *,
        kind: str = "source",
        pass_: str = "lcm",
        pipeline: bool = False,
        timeout: Optional[float] = None,
        keep_ir: bool = False,
        name: str = "",
    ) -> Dict[str, Any]:
        """Optimise one program; returns the response record."""
        return self.call(
            Request(
                op=protocol.OP_OPTIMIZE,
                source=source,
                kind=kind,
                pass_=pass_,
                pipeline=pipeline,
                timeout=timeout,
                keep_ir=keep_ir,
                name=name,
            )
        )

    def analyze(
        self,
        source: str,
        *,
        kind: str = "source",
        timeout: Optional[float] = None,
        name: str = "",
    ) -> Dict[str, Any]:
        """Run the LCM analysis stack on one program."""
        return self.call(
            Request(
                op=protocol.OP_ANALYZE,
                source=source,
                kind=kind,
                timeout=timeout,
                name=name,
            )
        )

    def stats(self) -> Dict[str, Any]:
        """The daemon's live stats snapshot (the ``stats`` payload)."""
        return self.call(Request(op=protocol.OP_STATS))["stats"]

    def ping(self) -> Dict[str, Any]:
        """Round-trip a ``ping``; returns the ``pong`` record."""
        return self.call(Request(op=protocol.OP_PING))

    def shutdown(self) -> Dict[str, Any]:
        """Ask the daemon to stop; returns the ``bye`` record."""
        return self.call(Request(op=protocol.OP_SHUTDOWN))

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:  # pragma: no cover - already torn down
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already torn down
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
