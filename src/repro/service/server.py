"""The ``repro serve`` daemon: one warm pool behind a socket API.

Every front-end so far pays process start-up per invocation: import
the package, fork workers, populate caches, exit.  The daemon keeps
all of that warm.  :class:`ReproServer` is an asyncio TCP server
speaking the NDJSON protocol of :mod:`repro.service.protocol`; work
requests (``optimize`` / ``analyze``) are multiplexed onto a
:class:`~repro.batch.supervisor.WorkerPool` of long-lived worker
processes, so repeat clients reuse hot analysis managers and the
shared on-disk solution store.

The layering per request:

1. **Parse** — the inbound line goes through
   :func:`~repro.service.protocol.parse_request`; malformed lines come
   back as ``error`` records and never touch a worker.
2. **Admission** — at most ``jobs + queue_limit`` work requests may be
   in flight; past that the daemon answers immediately with a
   ``rejected`` record (explicit back-pressure beats silent queueing).
3. **Response cache** — deterministic requests are keyed by a SHA-256
   digest of their payload.  A hit (memory LRU first, then the
   optional disk tier shared with the solution store) is answered
   without dispatching to a worker at all; the ``serve.cache.hit`` /
   ``serve.pool.dispatch`` counters make the fast path observable.
4. **Dispatch** — a miss runs on the next idle pool worker under the
   same two-tier deadline as batch mode: the per-request ``timeout``
   arms the in-worker SIGALRM, and the pool SIGKILLs the worker at
   ``timeout + grace`` if it is stuck in an uninterruptible C call.
   Either way the client gets a structured ``result`` record (status
   ``ok`` / ``error`` / ``timeout``) and the daemon keeps serving —
   a hung request costs one worker process, never the service.

Control operations answer inline: ``stats`` returns a live snapshot
of the daemon's private :class:`~repro.obs.trace.Tracer` counters
plus pool supervision and cache state, ``ping`` answers ``pong``, and
``shutdown`` acknowledges with ``bye`` and stops the server.

The server owns a *private* tracer — it never installs one globally,
so embedding a server (tests run it with :meth:`start_in_thread`)
cannot perturb the host process's tracing.
"""

from __future__ import annotations

import asyncio
import functools
import hashlib
import json
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Set, Tuple

from repro.batch.driver import BatchConfig, WorkItem
from repro.batch.supervisor import WorkerPool
from repro.obs.store import JSONRecord, SolutionStore
from repro.obs.trace import Tracer, snapshot
from repro.service import protocol
from repro.service.protocol import ProtocolError, Request

#: Trace counters the daemon maintains (exposed by the ``stats`` op).
COUNTER_REQUESTS = "serve.request.total"
COUNTER_INVALID = "serve.request.invalid"
COUNTER_REJECTED = "serve.request.rejected"
COUNTER_CACHE_HIT = "serve.cache.hit"
COUNTER_CACHE_MISS = "serve.cache.miss"
COUNTER_CACHE_STORE_HIT = "serve.cache.store_hit"
COUNTER_DISPATCH = "serve.pool.dispatch"

#: The store key namespace response-cache entries live under.
_RESPONSE_KEY = "serve-response"


@dataclass(frozen=True)
class ServeConfig:
    """Knobs for :class:`ReproServer`.

    Attributes:
        host: bind address (loopback by default — the protocol has no
            authentication; front it with something that does before
            exposing it).
        port: bind port; 0 picks a free one (the chosen port is in the
            readiness record and :attr:`ReproServer.port`).
        jobs: pool worker processes serving work requests.
        timeout: default per-request wall-clock budget in seconds
            (None: unlimited); a request's own ``timeout`` field
            overrides it.
        grace: extra seconds past the budget before the pool SIGKILLs
            a stuck worker (the two-tier deadline of batch mode).
        queue_limit: work requests allowed to wait for a worker beyond
            the ``jobs`` already running; past ``jobs + queue_limit``
            in flight, new work is answered with ``rejected``.
        cache_size: response-cache entries kept in memory (LRU);
            0 disables response caching entirely.
        store_path: directory of a shared on-disk
            :class:`~repro.obs.store.SolutionStore`.  Doubles as the
            workers' persistent dataflow-solution tier *and* the
            response cache's disk tier, so warm answers survive
            daemon restarts (None: memory only).
        cache: whether worker analysis managers memoize.
        max_tasks_per_worker: recycle pool workers after this many
            requests (None: workers live as long as the daemon).
        allow_call: honour requests with ``kind="call"`` (arbitrary
            ``module:function`` loaders — fault injection and tests);
            off by default, and such requests are never cached.
    """

    host: str = "127.0.0.1"
    port: int = 0
    jobs: int = 2
    timeout: Optional[float] = None
    grace: float = 1.0
    queue_limit: int = 8
    cache_size: int = 256
    store_path: Optional[str] = None
    cache: bool = True
    max_tasks_per_worker: Optional[int] = None
    allow_call: bool = False


class ReproServer:
    """The long-lived optimization daemon.

    Lifecycle: construct with a :class:`ServeConfig`, then either
    :meth:`run` (blocks; what ``repro serve`` does) or
    :meth:`start_in_thread` (returns once listening; what tests do),
    and :meth:`stop` from any thread.  ``on_listening`` is called with
    ``(host, port)`` once the socket is bound — the CLI prints the
    readiness record from it.
    """

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config if config is not None else ServeConfig()
        #: The daemon's private tracer; never installed globally.
        self.tracer = Tracer()
        #: Supervision counters the worker pool accumulates.
        self.pool_stats: Dict[str, int] = {}
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self.on_listening = None
        self._pool: Optional[WorkerPool] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._store: Optional[SolutionStore] = None
        self._memcache: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._tasks: Set["asyncio.Task"] = set()
        self._ready = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._active = 0
        self._sequence = 0
        self._started_at = 0.0

    # -- lifecycle ------------------------------------------------------

    def run(self) -> None:
        """Serve until :meth:`stop` or a ``shutdown`` request (blocks)."""
        asyncio.run(self._serve())

    def start_in_thread(self) -> Tuple[str, int]:
        """Run the daemon on a background thread; returns ``(host, port)``
        once it is accepting connections."""
        self._thread = threading.Thread(
            target=self.run, name="repro-serve", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        return self.host, self.port

    def stop(self, join: bool = True) -> None:
        """Stop the daemon from any thread.  Idempotent."""
        loop = self._loop
        if loop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(self._signal_stop)
            except RuntimeError:  # loop torn down between check and call
                pass
        if join and self._thread is not None:
            self._thread.join()
            self._thread = None

    def _signal_stop(self) -> None:
        if self._stop_event is not None:
            self._stop_event.set()

    def _base_config(self) -> BatchConfig:
        config = self.config
        return BatchConfig(
            timeout=config.timeout,
            grace=config.grace,
            cache=config.cache,
            store_path=config.store_path,
            max_tasks_per_worker=config.max_tasks_per_worker,
        )

    async def _serve(self) -> None:
        config = self.config
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._started_at = time.monotonic()
        slots = config.jobs + max(0, config.queue_limit)
        self._pool = WorkerPool(
            self._base_config(), config.jobs, self.pool_stats
        )
        self._executor = ThreadPoolExecutor(
            max_workers=slots, thread_name_prefix="repro-serve-dispatch"
        )
        if config.store_path:
            self._store = SolutionStore(config.store_path)
        server = await asyncio.start_server(
            self._handle_client, config.host, config.port
        )
        try:
            address = server.sockets[0].getsockname()
            self.host, self.port = address[0], address[1]
            if self.on_listening is not None:
                self.on_listening(self.host, self.port)
            self._ready.set()
            await self._stop_event.wait()
        finally:
            self._ready.set()  # never leave start_in_thread hanging
            server.close()
            await server.wait_closed()
            # Kill busy workers first: that unblocks dispatcher threads
            # (they observe the dead pipe and return a lost record), so
            # in-flight tasks finish and the executor can drain.
            self._pool.close()
            if self._tasks:
                await asyncio.gather(*list(self._tasks),
                                     return_exceptions=True)
            self._executor.shutdown(wait=True)

    # -- connection handling --------------------------------------------

    async def _handle_client(self, reader, writer) -> None:
        try:
            while not self._stop_event.is_set():
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                await self._handle_line(line, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _handle_line(self, line: bytes, writer) -> None:
        self.tracer.count(COUNTER_REQUESTS)
        request_id: Optional[str] = None
        try:
            document = protocol.decode(line)
            raw_id = document.get("id")
            if isinstance(raw_id, (str, int)):
                request_id = str(raw_id)
            request = protocol.parse_request(document)
        except ProtocolError as exc:
            self.tracer.count(COUNTER_INVALID)
            await self._send(writer, protocol.error_record(request_id,
                                                           str(exc)))
            return
        self.tracer.count(f"serve.request.{request.op}")
        if request.op == protocol.OP_PING:
            await self._send(writer, protocol.pong_record(request.id))
        elif request.op == protocol.OP_STATS:
            await self._send(
                writer, protocol.stats_record(request.id, self._stats())
            )
        elif request.op == protocol.OP_SHUTDOWN:
            await self._send(writer, protocol.bye_record(request.id))
            self._stop_event.set()
        else:
            await self._admit(request, writer)

    async def _admit(self, request: Request, writer) -> None:
        config = self.config
        if request.kind == "call" and not config.allow_call:
            self.tracer.count(COUNTER_INVALID)
            await self._send(
                writer,
                protocol.error_record(
                    request.id,
                    "kind 'call' is disabled on this server "
                    "(start with --allow-call)",
                ),
            )
            return
        limit = config.jobs + max(0, config.queue_limit)
        if self._active >= limit:
            self.tracer.count(COUNTER_REJECTED)
            await self._send(
                writer,
                protocol.rejected_record(
                    request.id,
                    f"queue full: {self._active} requests in flight "
                    f"(limit {limit})",
                    queue_depth=max(0, self._active - config.jobs),
                    queue_limit=config.queue_limit,
                ),
            )
            return
        self._active += 1
        self.tracer.gauge("serve.active", self._active)
        task = asyncio.ensure_future(self._run_work(request, writer))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    # -- work requests ---------------------------------------------------

    async def _run_work(self, request: Request, writer) -> None:
        try:
            key = self._cache_key(request)
            if key is not None:
                payload = self._cache_load(key)
                if payload is not None:
                    self.tracer.count(COUNTER_CACHE_HIT)
                    await self._send(
                        writer,
                        protocol.cached_result_record(request.id, payload),
                    )
                    return
                self.tracer.count(COUNTER_CACHE_MISS)
            record = await self._dispatch(request)
            if record.ok and key is not None:
                self._cache_save(key, record)
            self.tracer.count(f"serve.result.{record.status}")
            await self._send(
                writer, protocol.result_record(request.id, record)
            )
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass  # client went away; the result is simply dropped
        finally:
            self._active -= 1
            self.tracer.gauge("serve.active", self._active)

    async def _dispatch(self, request: Request):
        self._sequence += 1
        index = self._sequence
        item = WorkItem(
            name=request.name or f"req{index}",
            kind=request.kind,
            payload=request.source,
        )
        config = self._base_config()
        config = replace(
            config,
            pass_=request.pass_,
            pipeline=request.pipeline,
            keep_ir=request.keep_ir,
            analyze=request.op == protocol.OP_ANALYZE,
        )
        if request.timeout is not None:
            config = replace(config, timeout=request.timeout)
        self.tracer.count(COUNTER_DISPATCH)
        return await self._loop.run_in_executor(
            self._executor,
            functools.partial(
                self._pool.run, item, config=config, index=index
            ),
        )

    # -- the response cache ---------------------------------------------

    def _cache_key(self, request: Request) -> Optional[str]:
        """The response-cache digest, or None for uncacheable requests."""
        if self.config.cache_size <= 0 or request.kind == "call":
            return None
        core = {
            "op": request.op,
            "kind": request.kind,
            "source": request.source,
            "pass": request.pass_,
            "pipeline": request.pipeline,
            "keep_ir": request.keep_ir,
        }
        body = json.dumps(core, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(body.encode("utf-8")).hexdigest()

    def _cache_load(self, key: str) -> Optional[Dict[str, Any]]:
        payload = self._memcache.get(key)
        if payload is not None:
            self._memcache.move_to_end(key)
            return payload
        if self._store is not None:
            entry = self._store.load(key, _RESPONSE_KEY)
            if isinstance(entry, JSONRecord):
                self.tracer.count(COUNTER_CACHE_STORE_HIT)
                self._cache_insert(key, entry.payload)
                return entry.payload
        return None

    def _cache_save(self, key: str, record) -> None:
        payload = record.to_dict()
        payload.pop("index", None)  # the sequence number is not content
        self._cache_insert(key, payload)
        if self._store is not None:
            self._store.save(key, _RESPONSE_KEY, JSONRecord(payload))

    def _cache_insert(self, key: str, payload: Dict[str, Any]) -> None:
        self._memcache[key] = payload
        self._memcache.move_to_end(key)
        while len(self._memcache) > self.config.cache_size:
            self._memcache.popitem(last=False)

    # -- stats -----------------------------------------------------------

    def _stats(self) -> Dict[str, Any]:
        config = self.config
        live = snapshot(self.tracer)
        stats: Dict[str, Any] = {
            "protocol": protocol.PROTOCOL,
            "version": protocol.PROTOCOL_VERSION,
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "jobs": config.jobs,
            "queue_limit": config.queue_limit,
            "active": self._active,
            "idle_workers": self._pool.idle if self._pool else 0,
            "counters": live["counters"],
            "gauges": live["gauges"],
            "supervisor": dict(self.pool_stats),
            "cache": {
                "memory_entries": len(self._memcache),
                "memory_limit": config.cache_size,
            },
        }
        if self._store is not None:
            stats["cache"]["store"] = self._store.stats()
        return stats

    # -- plumbing --------------------------------------------------------

    async def _send(self, writer, record: Dict[str, Any]) -> None:
        writer.write(protocol.encode(record))
        await writer.drain()
