"""The optimization service: one daemon, one wire schema, one client.

``repro serve`` composes the building blocks the batch stack already
provides — the supervised worker pool with hard deadlines
(:mod:`repro.batch.supervisor`), the two-tier
:class:`~repro.obs.store.SolutionStore` cache and the
:mod:`repro.obs.trace` counters — into a long-lived request/response
daemon:

* :mod:`repro.service.protocol` — the versioned NDJSON record codec
  shared by ``repro batch --stream`` and ``repro serve`` (requests,
  item results, reports, errors, rejections, stats);
* :mod:`repro.service.server` — the asyncio daemon: admission control,
  per-request deadlines, cache-aware routing, live stats;
* :mod:`repro.service.client` — a small synchronous client
  (:class:`~repro.service.client.ServeClient`) for tests, smokes and
  scripts.

See ``docs/SERVE.md`` for the protocol and operational story.
"""

from repro.service.client import ServeClient
from repro.service.protocol import (
    PROTOCOL,
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    parse_request,
)
from repro.service.server import ReproServer, ServeConfig

__all__ = [
    "PROTOCOL",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ReproServer",
    "Request",
    "ServeClient",
    "ServeConfig",
    "parse_request",
]
