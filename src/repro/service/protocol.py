"""The wire schema: one versioned NDJSON codec for batch and serve.

Two surfaces speak newline-delimited JSON: ``repro batch --stream``
(one item record per line, then the collected report) and the
``repro serve`` daemon (request in, tagged response records out).
Before this module each surface shaped its own dictionaries; now both
route through the same codec so they cannot drift:

* :func:`item_record` / :func:`report_record` — the *bare* shapes of
  one :class:`~repro.batch.report.ItemResult` and one
  :class:`~repro.batch.report.BatchReport`.  These are exactly the
  batch schema-v3 lines (``repro-batch-report`` version 3, see
  ``docs/BATCH.md``); the stream CLI emits them unchanged.
* The serve *envelopes* — :func:`result_record`, :func:`error_record`,
  :func:`rejected_record`, :func:`stats_record`, :func:`pong_record`,
  :func:`listening_record`, :func:`bye_record` — wrap a payload with
  ``{"v": PROTOCOL_VERSION, "type": ..., "id": ...}`` so responses on
  a multiplexed connection can be matched to their request.  A serve
  ``result`` record is the envelope plus the *same* item fields a
  batch stream line carries.
* :func:`parse_request` — the single validated entry for inbound
  request lines; every malformed shape raises :exc:`ProtocolError`
  with a one-line reason the server maps to an ``error`` record.

Lines are UTF-8 JSON documents terminated by ``\\n`` — encode with
:func:`encode`, decode with :func:`decode`.  The envelope version is
bumped whenever a record shape changes incompatibly; servers answer
requests of the versions they know and reject the rest explicitly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.batch.report import BatchReport, ItemResult

#: Name and version of the serve envelope schema.
PROTOCOL = "repro-serve"
PROTOCOL_VERSION = 1

#: Request operations the daemon understands.
OP_OPTIMIZE = "optimize"
OP_ANALYZE = "analyze"
OP_STATS = "stats"
OP_PING = "ping"
OP_SHUTDOWN = "shutdown"
OPS = (OP_OPTIMIZE, OP_ANALYZE, OP_STATS, OP_PING, OP_SHUTDOWN)

#: Operations that carry a program payload and run on a worker.
WORK_OPS = (OP_OPTIMIZE, OP_ANALYZE)

#: Response record types.
TYPE_RESULT = "result"
TYPE_ERROR = "error"
TYPE_REJECTED = "rejected"
TYPE_STATS = "stats"
TYPE_PONG = "pong"
TYPE_LISTENING = "listening"
TYPE_BYE = "bye"

#: Payload kinds a work request may carry.  ``source``, ``json`` and
#: ``generated`` (a corpus ``(seed, config)`` spec) match
#: :func:`repro.api.load_cfg`; ``call`` resolves a ``module:function``
#: reference inside the worker and is only honoured by servers started
#: with ``allow_call`` (fault injection and tests).
REQUEST_KINDS = ("source", "json", "call", "generated")


class ProtocolError(ValueError):
    """An inbound line does not parse as a valid request."""


@dataclass(frozen=True)
class Request:
    """One validated inbound request.

    ``id`` is the client's correlation token, echoed verbatim on every
    response record the request produces; ``None`` when the client sent
    none.  ``timeout`` overrides the server's default per-request
    budget (the two-tier ``timeout + grace`` kill machinery applies
    either way).
    """

    op: str
    id: Optional[str] = None
    source: str = ""
    kind: str = "source"
    pass_: str = "lcm"
    pipeline: bool = False
    timeout: Optional[float] = None
    keep_ir: bool = False
    name: str = ""

    def to_dict(self) -> Dict[str, Any]:
        """The wire shape of this request (what a client sends)."""
        payload: Dict[str, Any] = {"v": PROTOCOL_VERSION, "op": self.op}
        if self.id is not None:
            payload["id"] = self.id
        if self.op in WORK_OPS:
            payload["source"] = self.source
            payload["kind"] = self.kind
            payload["pass"] = self.pass_
            payload["pipeline"] = self.pipeline
            payload["keep_ir"] = self.keep_ir
            if self.timeout is not None:
                payload["timeout"] = self.timeout
            if self.name:
                payload["name"] = self.name
        return payload


def _expect(condition: bool, message: str) -> None:
    if not condition:
        raise ProtocolError(message)


def parse_request(document: Any) -> Request:
    """Validate one decoded request document into a :class:`Request`.

    Accepts the raw line (str/bytes) or an already-decoded mapping.
    Raises :exc:`ProtocolError` on anything malformed: bad JSON, a
    non-object line, an unknown ``op`` or ``kind``, wrong field types,
    an unsupported envelope version, or a missing program payload.
    """
    if isinstance(document, (str, bytes)):
        try:
            document = json.loads(document)
        except ValueError as exc:
            raise ProtocolError(f"bad JSON: {exc}") from exc
    _expect(isinstance(document, dict), "request must be a JSON object")
    version = document.get("v", PROTOCOL_VERSION)
    _expect(
        version == PROTOCOL_VERSION,
        f"unsupported protocol version {version!r} "
        f"(this server speaks v{PROTOCOL_VERSION})",
    )
    op = document.get("op")
    _expect(
        op in OPS,
        f"unknown op {op!r}; expected one of: {', '.join(OPS)}",
    )
    request_id = document.get("id")
    _expect(
        request_id is None or isinstance(request_id, (str, int)),
        "id must be a string or integer",
    )
    if request_id is not None:
        request_id = str(request_id)
    if op not in WORK_OPS:
        return Request(op=op, id=request_id)

    source = document.get("source")
    _expect(
        isinstance(source, str) and source != "",
        f"op {op!r} needs a non-empty string 'source'",
    )
    kind = document.get("kind", "source")
    _expect(
        kind in REQUEST_KINDS,
        f"unknown kind {kind!r}; expected one of: {', '.join(REQUEST_KINDS)}",
    )
    pass_ = document.get("pass", "lcm")
    _expect(isinstance(pass_, str), "pass must be a string")
    pipeline = document.get("pipeline", False)
    _expect(isinstance(pipeline, bool), "pipeline must be a boolean")
    keep_ir = document.get("keep_ir", False)
    _expect(isinstance(keep_ir, bool), "keep_ir must be a boolean")
    timeout = document.get("timeout")
    if timeout is not None:
        _expect(
            isinstance(timeout, (int, float))
            and not isinstance(timeout, bool)
            and timeout > 0,
            "timeout must be a positive number of seconds",
        )
        timeout = float(timeout)
    name = document.get("name", "")
    _expect(isinstance(name, str), "name must be a string")
    return Request(
        op=op,
        id=request_id,
        source=source,
        kind=kind,
        pass_=pass_,
        pipeline=pipeline,
        timeout=timeout,
        keep_ir=keep_ir,
        name=name,
    )


# ---------------------------------------------------------------------------
# The bare batch shapes.  `repro batch --stream` emits these unchanged
# (one item line per result, the report as the final line), and a serve
# `result` record embeds the same item fields — one schema, two
# transports.
# ---------------------------------------------------------------------------


def item_record(item: ItemResult) -> Dict[str, Any]:
    """The bare wire shape of one item result (a batch stream line)."""
    return item.to_dict()


def report_record(report: BatchReport) -> Dict[str, Any]:
    """The bare wire shape of a collected batch report (schema v3)."""
    return report.to_dict()


# ---------------------------------------------------------------------------
# The serve envelopes.
# ---------------------------------------------------------------------------


def _envelope(type_: str, request_id: Optional[str]) -> Dict[str, Any]:
    return {"v": PROTOCOL_VERSION, "type": type_, "id": request_id}


def result_record(
    request_id: Optional[str],
    item: ItemResult,
    *,
    cached: bool = False,
) -> Dict[str, Any]:
    """A work result: the envelope plus the bare item fields.

    ``cached`` marks responses served from the daemon's response cache
    without dispatching to a worker.
    """
    record = _envelope(TYPE_RESULT, request_id)
    record.update(item_record(item))
    record["cached"] = cached
    return record


def cached_result_record(
    request_id: Optional[str], payload: Dict[str, Any]
) -> Dict[str, Any]:
    """A work result replayed from an already-encoded item payload."""
    record = _envelope(TYPE_RESULT, request_id)
    record.update(payload)
    record["cached"] = True
    return record


def error_record(
    request_id: Optional[str], message: str
) -> Dict[str, Any]:
    """A request-level failure (protocol violation, bad program, ...)."""
    record = _envelope(TYPE_ERROR, request_id)
    record["message"] = message
    return record


def rejected_record(
    request_id: Optional[str],
    reason: str,
    *,
    queue_depth: int,
    queue_limit: int,
) -> Dict[str, Any]:
    """Admission control turned the request away; try again later."""
    record = _envelope(TYPE_REJECTED, request_id)
    record["reason"] = reason
    record["queue_depth"] = queue_depth
    record["queue_limit"] = queue_limit
    return record


def stats_record(
    request_id: Optional[str], stats: Dict[str, Any]
) -> Dict[str, Any]:
    """A live daemon stats snapshot."""
    record = _envelope(TYPE_STATS, request_id)
    record["stats"] = stats
    return record


def pong_record(request_id: Optional[str]) -> Dict[str, Any]:
    """The answer to a ``ping``."""
    return _envelope(TYPE_PONG, request_id)


def listening_record(host: str, port: int) -> Dict[str, Any]:
    """The daemon's readiness line (stdout, not the socket)."""
    record = _envelope(TYPE_LISTENING, None)
    del record["id"]
    record["host"] = host
    record["port"] = port
    return record


def bye_record(request_id: Optional[str]) -> Dict[str, Any]:
    """The acknowledgement of a ``shutdown`` request."""
    return _envelope(TYPE_BYE, request_id)


# ---------------------------------------------------------------------------
# Line framing.
# ---------------------------------------------------------------------------


def encode(record: Dict[str, Any]) -> bytes:
    """One record as a compact, newline-terminated UTF-8 JSON line."""
    return (json.dumps(record, separators=(",", ":")) + "\n").encode("utf-8")


def decode(line: Any) -> Dict[str, Any]:
    """One NDJSON line back into a record (:exc:`ProtocolError` on junk)."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        document = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"bad JSON: {exc}") from exc
    _expect(isinstance(document, dict), "record must be a JSON object")
    return document
