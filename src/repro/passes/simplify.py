"""CFG cleanup: structural simplifications that preserve semantics.

The code motion transformations leave structural residue — split
blocks whose insertions were collapsed away, pass-through blocks from
critical-edge splitting — and front-end lowering produces empty join
blocks.  This pass removes what can be removed:

* **branch folding** — a conditional branch on a constant, or with two
  equal targets, becomes a jump;
* **pass-through elision** — an empty block that just jumps on is cut
  out of every predecessor's edge (unless doing so would give a
  conditional branch two identical successors while the condition
  variable still matters — those are folded first);
* **linear merging** — a block whose single successor has no other
  predecessors absorbs it (straight-line chains become one block);
* **unreachable removal** — blocks no longer reachable from the entry
  are deleted.

The entry and exit blocks are never removed.  The pass iterates to a
fixed point and reports how many of each rewrite it performed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Set

from repro.ir.cfg import CFG
from repro.ir.instr import CondBranch, Const, Jump


@dataclass
class SimplifyStats:
    """What :func:`simplify_cfg` did.

    ``touched`` collects the labels of *surviving* blocks whose content
    (instructions or terminator) the pass changed — removed blocks are
    not listed.  Callers pass it to
    :func:`repro.obs.manager.notify_cfg_mutated` so fingerprint state
    is patched (dirty labels + add/remove reconciliation) instead of
    recomputed from scratch.
    """

    branches_folded: int = 0
    blocks_elided: int = 0
    blocks_merged: int = 0
    unreachable_removed: int = 0
    touched: Set[str] = field(default_factory=set)

    @property
    def total(self) -> int:
        return (
            self.branches_folded
            + self.blocks_elided
            + self.blocks_merged
            + self.unreachable_removed
        )


def _fold_branches(cfg: CFG, stats: SimplifyStats) -> bool:
    changed = False
    for block in cfg:
        term = block.terminator
        if not isinstance(term, CondBranch):
            continue
        if term.then_target == term.else_target:
            block.terminator = Jump(term.then_target)
            stats.branches_folded += 1
            stats.touched.add(block.label)
            changed = True
        elif isinstance(term.cond, Const):
            target = term.then_target if term.cond.value else term.else_target
            block.terminator = Jump(target)
            stats.branches_folded += 1
            stats.touched.add(block.label)
            changed = True
    if changed:
        cfg.notify_terminator_changed()
    return changed


def _elide_pass_throughs(cfg: CFG, stats: SimplifyStats) -> bool:
    changed = False
    for label in list(cfg.labels):
        if label in (cfg.entry, cfg.exit):
            continue
        block = cfg.block(label)
        if block.instrs or not isinstance(block.terminator, Jump):
            continue
        target = block.terminator.target
        if target == label:
            continue  # degenerate self-loop; unreachable removal's job
        preds = cfg.preds(label)
        if not preds:
            continue  # unreachable; handled separately
        # Retargeting a CondBranch may produce two equal successors;
        # that is legal only if we immediately fold it, which loses the
        # branch (fine: the condition is a pure atom).  Check that no
        # predecessor already reaches `target` through its other arm
        # AND requires distinct targets semantically — it never does,
        # so always safe; we just need to fold afterwards.
        for pred in preds:
            cfg.retarget(pred, label, target)
            stats.touched.add(pred)
        cfg.remove_block(label)
        stats.touched.discard(label)
        stats.blocks_elided += 1
        changed = True
        _fold_branches(cfg, stats)
    return changed


def _merge_linear_pairs(cfg: CFG, stats: SimplifyStats) -> bool:
    """Absorb a sole-predecessor successor into its predecessor.

    ``b: ...; goto c`` followed by ``c`` (whose only predecessor is
    ``b``) becomes one block carrying ``c``'s terminator.  The entry
    block stays empty (the structural invariant) and the exit block is
    never absorbed.
    """
    changed = False
    for label in list(cfg.labels):
        if label == cfg.entry or label not in cfg:
            continue
        block = cfg.block(label)
        term = block.terminator
        if not isinstance(term, Jump):
            continue
        succ = term.target
        if succ in (cfg.entry, cfg.exit, label):
            continue
        if cfg.preds(succ) != [label]:
            continue
        succ_block = cfg.block(succ)
        block.instrs.extend(succ_block.instrs)
        block.terminator = succ_block.terminator
        cfg.notify_terminator_changed()
        cfg.remove_block(succ)
        stats.touched.add(label)
        stats.touched.discard(succ)
        stats.blocks_merged += 1
        changed = True
    return changed


def _remove_unreachable(cfg: CFG, stats: SimplifyStats) -> bool:
    reachable: Set[str] = set()
    stack = [cfg.entry]
    while stack:
        label = stack.pop()
        if label in reachable:
            continue
        reachable.add(label)
        stack.extend(cfg.succs(label))
    doomed = [l for l in cfg.labels if l not in reachable and l != cfg.exit]
    for label in doomed:
        cfg.remove_block(label)
        stats.touched.discard(label)
        stats.unreachable_removed += 1
    return bool(doomed)


def simplify_cfg(cfg: CFG) -> SimplifyStats:
    """Simplify *cfg* in place to a fixed point; returns statistics."""
    stats = SimplifyStats()
    changed = True
    while changed:
        changed = False
        changed |= _fold_branches(cfg, stats)
        changed |= _elide_pass_throughs(cfg, stats)
        changed |= _merge_linear_pairs(cfg, stats)
        changed |= _remove_unreachable(cfg, stats)
    return stats
