"""Supporting optimisation passes around the PRE core.

Lazy Code Motion is one pass of a real optimiser pipeline; this package
provides the neighbours a downstream user expects, built on the same IR
and dataflow engine:

* :mod:`repro.passes.simplify` — CFG cleanup: merge pass-through
  blocks, fold redundant branches, drop unreachable code;
* :mod:`repro.passes.copyprop` — global copy propagation (forward
  "reaching copies" analysis), which tidies the ``x = t`` reads PRE
  leaves behind;
* :mod:`repro.passes.constfold` — constant folding plus a forward
  constant-propagation sweep;
* :mod:`repro.passes.dce` — dead code elimination for *all* variables
  (the transformation engine's own cleanup only touches its temps);
* :mod:`repro.passes.pipeline` — compose passes into a fixed-point
  optimisation pipeline.
"""

from repro.passes.simplify import simplify_cfg
from repro.passes.copyprop import copy_propagate
from repro.passes.constfold import fold_constants
from repro.passes.canonical import canonicalize
from repro.passes.dce import dead_code_elimination
from repro.passes.pipeline import PassResult, run_pipeline, standard_pipeline

__all__ = [
    "PassResult",
    "canonicalize",
    "copy_propagate",
    "dead_code_elimination",
    "fold_constants",
    "run_pipeline",
    "simplify_cfg",
    "standard_pipeline",
]
