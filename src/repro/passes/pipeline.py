"""Pass pipeline: compose cleanup passes and PRE into one optimiser.

``standard_pipeline`` is the order a real compiler would use around a
PRE pass: normalise first (constant folding exposes equal expressions,
LCSE canonicalises blocks), run Lazy Code Motion, then clean up the
copies and structure it leaves behind — iterating the cleanup trio to a
fixed point because each enables the others (copy propagation exposes
dead stores, DCE exposes pass-through blocks, ...).

The cleanup fixpoint is driven by **dirty-region scheduling** (the
default; ``scheduling="full"`` keeps the classic whole-CFG sweeps as a
reference and benchmark baseline).  Each pass keeps a dirty set of
block labels; a pass only runs when its set is non-empty, consumes the
set as its rewrite scope, and every edit re-dirties the blocks whose
facts that edit can change: the *forward* closure (edit + descendants)
for the forward passes (copy propagation, constant folding), the
*backward* closure (edit + ancestors) for DCE.  The dataflow fixpoints
themselves are still solved globally each call, so a scoped run makes
exactly the rewrites a whole-CFG run would — the scope only skips
blocks whose facts and content are provably unchanged — and the final
IR is bit-identical (a hypothesis differential test pins this).
Structural simplification stays whole-CFG (it is driven by a
reachability walk, not per-block facts) and runs only when something
changed since its last run; its edits reset every dirty set.

Every pass runs under a :func:`repro.obs.trace.span` (``pipeline.run``
with one ``pass.<name>`` child per rewrite pass and one
``pipeline.round`` span per cleanup iteration), and every in-place
mutation is announced — block-granular edits through
:func:`repro.obs.manager.notify_cfg_edited`, structural changes
through :func:`repro.obs.manager.notify_cfg_mutated` (with the touched
labels, so fingerprint state is patched, not dropped).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.localcse import local_cse
from repro.core.pipeline import OptimizeConfig, optimize
from repro.ir.cfg import CFG
from repro.ir.validate import validate_cfg
from repro.obs.manager import (
    AnalysisManager,
    notify_cfg_derived,
    notify_cfg_edited,
    notify_cfg_mutated,
)
from repro.obs.trace import span
from repro.passes.canonical import canonicalize
from repro.passes.constfold import fold_constants
from repro.passes.copyprop import copy_propagate
from repro.passes.dce import dead_code_elimination
from repro.passes.simplify import simplify_cfg


@dataclass
class PassResult:
    """Outcome of a pipeline run."""

    cfg: CFG
    rewrites: Dict[str, int] = field(default_factory=dict)

    def bump(self, name: str, count: int) -> None:
        if count:
            self.rewrites[name] = self.rewrites.get(name, 0) + count

    @property
    def total_rewrites(self) -> int:
        return sum(self.rewrites.values())

    def describe(self) -> str:
        if not self.rewrites:
            return "pipeline: no rewrites"
        parts = ", ".join(f"{k}={v}" for k, v in sorted(self.rewrites.items()))
        return f"pipeline: {parts}"


def _run_pass(result: PassResult, name: str, fn, cfg: CFG) -> int:
    """Run one whole-CFG rewrite pass under a span (legacy scheduling).

    Invalidation is coarse — any rewrite drops/dirties the whole
    fingerprint — which is exactly the behaviour the ``scheduling="full"``
    baseline arm of the rewrite benchmark wants to measure against.
    """
    with span(f"pass.{name}") as sp:
        count = fn(cfg)
        sp.set(rewrites=count)
    if count:
        notify_cfg_mutated(cfg)
    result.bump(name, count)
    return count


def _run_pass_edited(
    result: PassResult, name: str, fn, cfg: CFG, edits: List[str]
) -> int:
    """Run one block-local rewrite pass, announcing edits per label."""
    edited: List[str] = []
    with span(f"pass.{name}") as sp:
        count = fn(cfg, edited=edited)
        sp.set(rewrites=count)
    if edited:
        notify_cfg_edited(cfg, edited)
        edits.extend(edited)
    result.bump(name, count)
    return count


def _spread_dirt(
    cfg: CFG, dirty: Dict[str, Set[str]], edited: List[str]
) -> None:
    """Re-dirty every block whose pass-relevant facts an edit can change.

    Copy propagation and constant folding are forward problems: an edit
    changes facts at the edited block and its descendants.  Liveness
    (DCE) is backward: an edit changes facts at the edited block and
    its ancestors.
    """
    forward = cfg.reachable_from(edited)
    dirty["copyprop"] |= forward
    dirty["constfold"] |= forward
    dirty["dce"] |= cfg.reaching(edited)


def _cleanup_full(
    cfg: CFG,
    result: PassResult,
    max_rounds: int,
    manager: Optional[AnalysisManager],
) -> None:
    """Legacy fixpoint: every pass sweeps the whole CFG every round."""

    def _dce(c: CFG) -> int:
        return dead_code_elimination(c, manager=manager)

    for _ in range(max_rounds):
        round_total = 0
        round_total += _run_pass(result, "copyprop", copy_propagate, cfg)
        round_total += _run_pass(result, "constfold", fold_constants, cfg)
        round_total += _run_pass(result, "dce", _dce, cfg)
        with span("pass.simplify") as sp:
            stats = simplify_cfg(cfg)
            sp.set(rewrites=stats.total)
        if stats.total:
            notify_cfg_mutated(cfg)
        result.bump("simplify", stats.total)
        round_total += stats.total
        if round_total == 0:
            return


def _cleanup_dirty(
    cfg: CFG,
    result: PassResult,
    max_rounds: int,
    manager: Optional[AnalysisManager],
) -> None:
    """Dirty-region fixpoint: each pass revisits only suspect blocks.

    Every dirty set starts full (the PRE phase touched an unknown
    region), so round one matches the legacy sweep; from then on a pass
    runs only over blocks re-dirtied by closures of actual edits.
    Structural simplification runs whenever anything changed since its
    last run; its edits reset every dirty set because block identity
    itself moved.
    """
    labels = set(cfg.labels)
    dirty: Dict[str, Set[str]] = {
        "copyprop": set(labels),
        "constfold": set(labels),
        "dce": set(labels),
    }
    simplify_pending = True

    def scoped(name: str, fn, notify: bool) -> int:
        scope = dirty[name]
        if not scope:
            return 0
        dirty[name] = set()
        edited: List[str] = []
        with span(f"pass.{name}") as sp:
            count = fn(scope, edited)
            sp.set(rewrites=count, scope=len(scope))
        if edited:
            if notify:
                notify_cfg_edited(cfg, edited)
            _spread_dirt(cfg, dirty, edited)
        result.bump(name, count)
        return count

    for round_no in range(max_rounds):
        with span("pipeline.round", round=round_no) as round_sp:
            trio_total = scoped(
                "copyprop",
                lambda scope, edited: copy_propagate(
                    cfg, blocks=scope, edited=edited, manager=manager
                ),
                notify=True,
            )
            trio_total += scoped(
                "constfold",
                lambda scope, edited: fold_constants(
                    cfg, blocks=scope, edited=edited
                ),
                notify=True,
            )
            # DCE announces its own edits at each internal round
            # boundary (its scoped liveness patches depend on it).
            trio_total += scoped(
                "dce",
                lambda scope, edited: dead_code_elimination(
                    cfg, manager=manager, blocks=scope, edited=edited
                ),
                notify=False,
            )
            round_total = trio_total
            if simplify_pending or trio_total:
                with span("pass.simplify") as sp:
                    stats = simplify_cfg(cfg)
                    sp.set(rewrites=stats.total)
                if stats.total:
                    notify_cfg_mutated(cfg, labels=sorted(stats.touched))
                    current = set(cfg.labels)
                    for name in dirty:
                        dirty[name] = set(current)
                result.bump("simplify", stats.total)
                round_total += stats.total
                simplify_pending = stats.total > 0
            round_sp.set(rewrites=round_total)
            if round_total == 0 and not simplify_pending:
                return


def _cleanup_to_fixpoint(
    cfg: CFG,
    result: PassResult,
    max_rounds: int = 20,
    manager: Optional[AnalysisManager] = None,
    scheduling: str = "dirty",
) -> None:
    if scheduling == "full":
        _cleanup_full(cfg, result, max_rounds, manager)
    elif scheduling == "dirty":
        _cleanup_dirty(cfg, result, max_rounds, manager)
    else:
        raise ValueError(f"unknown scheduling {scheduling!r}")


def run_pipeline(
    cfg: CFG,
    pre_strategy: Optional[str] = "lcm",
    validate: bool = True,
    manager: Optional[AnalysisManager] = None,
    scheduling: str = "dirty",
) -> PassResult:
    """Run the standard pipeline on a copy of *cfg*.

    Args:
        cfg: input program (never mutated).
        pre_strategy: which PRE pass to run in the middle, or None to
            run the cleanup passes only.
        validate: validate the input and the final result.
        manager: optional :class:`repro.obs.manager.AnalysisManager`
            memoizing dataflow solutions across the PRE pass (and
            across repeated pipeline runs on identical programs).
        scheduling: ``"dirty"`` (default) drives the cleanup fixpoint
            from per-pass dirty-block sets; ``"full"`` sweeps the whole
            CFG every round (legacy behaviour, kept as the reference
            for the differential tests and the benchmark baseline).
            Both produce bit-identical output.
    """
    if validate:
        with span("pass.validate", stage="input"):
            validate_cfg(cfg)
    with span("pipeline.run", pre=pre_strategy or "none") as sp:
        work = cfg.copy()
        result = PassResult(cfg=work)
        pre_edits: List[str] = []
        _run_pass_edited(result, "canonicalize", canonicalize, work, pre_edits)
        _run_pass_edited(result, "constfold", fold_constants, work, pre_edits)
        # The copy's blocks hash identically to the input's except where
        # the two passes above rewrote, so seed its fingerprint state
        # from the input's instead of rehashing the whole graph.
        notify_cfg_derived(work, cfg, pre_edits)
        with span("pass.lcse") as lcse_sp:
            lcse_edits: List[str] = []
            cse_work, lcse_replaced = local_cse(work, edited=lcse_edits)
            lcse_sp.set(rewrites=lcse_replaced)
        notify_cfg_derived(cse_work, work, lcse_edits)
        work = cse_work
        result.cfg = work
        result.bump("lcse", lcse_replaced)

        if pre_strategy is not None:
            pre = optimize(
                work,
                pre_strategy,
                config=OptimizeConfig(run_local_cse=False, validate=False),
                manager=manager,
            )
            work = pre.cfg
            result.cfg = work
            result.bump(
                f"pre({pre_strategy})",
                sum(
                    p.insertion_count + len(p.delete_blocks)
                    for p in pre.placements
                ),
            )

        _cleanup_to_fixpoint(
            work, result, manager=manager, scheduling=scheduling
        )
        sp.set(total_rewrites=result.total_rewrites)
    if validate:
        with span("pass.validate", stage="output"):
            validate_cfg(work)
    return result


def standard_pipeline(
    cfg: CFG, manager: Optional[AnalysisManager] = None
) -> PassResult:
    """The default full pipeline: normalise, LCM, clean up."""
    return run_pipeline(cfg, "lcm", manager=manager)
