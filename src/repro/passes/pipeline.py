"""Pass pipeline: compose cleanup passes and PRE into one optimiser.

``standard_pipeline`` is the order a real compiler would use around a
PRE pass: normalise first (constant folding exposes equal expressions,
LCSE canonicalises blocks), run Lazy Code Motion, then clean up the
copies and structure it leaves behind — iterating the cleanup trio to a
fixed point because each enables the others (copy propagation exposes
dead stores, DCE exposes pass-through blocks, ...).

Every pass runs under a :func:`repro.obs.trace.span` (``pipeline.run``
with one ``pass.<name>`` child per rewrite pass), and every in-place
mutation is followed by :func:`repro.obs.manager.notify_cfg_mutated` so
any live :class:`repro.obs.manager.AnalysisManager` drops its stale
content fingerprint for the working CFG.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.localcse import local_cse
from repro.core.pipeline import OptimizeConfig, optimize
from repro.ir.cfg import CFG
from repro.ir.validate import validate_cfg
from repro.obs.manager import AnalysisManager, notify_cfg_mutated
from repro.obs.trace import span
from repro.passes.canonical import canonicalize
from repro.passes.constfold import fold_constants
from repro.passes.copyprop import copy_propagate
from repro.passes.dce import dead_code_elimination
from repro.passes.simplify import simplify_cfg


@dataclass
class PassResult:
    """Outcome of a pipeline run."""

    cfg: CFG
    rewrites: Dict[str, int] = field(default_factory=dict)

    def bump(self, name: str, count: int) -> None:
        if count:
            self.rewrites[name] = self.rewrites.get(name, 0) + count

    @property
    def total_rewrites(self) -> int:
        return sum(self.rewrites.values())

    def describe(self) -> str:
        if not self.rewrites:
            return "pipeline: no rewrites"
        parts = ", ".join(f"{k}={v}" for k, v in sorted(self.rewrites.items()))
        return f"pipeline: {parts}"


def _run_pass(result: PassResult, name: str, fn, cfg: CFG) -> int:
    """Run one in-place rewrite pass under a span, with invalidation."""
    with span(f"pass.{name}") as sp:
        count = fn(cfg)
        sp.set(rewrites=count)
    if count:
        notify_cfg_mutated(cfg)
    result.bump(name, count)
    return count


def _cleanup_to_fixpoint(
    cfg: CFG,
    result: PassResult,
    max_rounds: int = 20,
    manager: Optional[AnalysisManager] = None,
) -> None:
    def _dce(c: CFG) -> int:
        return dead_code_elimination(c, manager=manager)

    for _ in range(max_rounds):
        round_total = 0
        round_total += _run_pass(result, "copyprop", copy_propagate, cfg)
        round_total += _run_pass(result, "constfold", fold_constants, cfg)
        round_total += _run_pass(result, "dce", _dce, cfg)
        with span("pass.simplify") as sp:
            stats = simplify_cfg(cfg)
            sp.set(rewrites=stats.total)
        if stats.total:
            notify_cfg_mutated(cfg)
        result.bump("simplify", stats.total)
        round_total += stats.total
        if round_total == 0:
            return


def run_pipeline(
    cfg: CFG,
    pre_strategy: Optional[str] = "lcm",
    validate: bool = True,
    manager: Optional[AnalysisManager] = None,
) -> PassResult:
    """Run the standard pipeline on a copy of *cfg*.

    Args:
        cfg: input program (never mutated).
        pre_strategy: which PRE pass to run in the middle, or None to
            run the cleanup passes only.
        validate: validate the input and the final result.
        manager: optional :class:`repro.obs.manager.AnalysisManager`
            memoizing dataflow solutions across the PRE pass (and
            across repeated pipeline runs on identical programs).
    """
    if validate:
        validate_cfg(cfg)
    with span("pipeline.run", pre=pre_strategy or "none") as sp:
        work = cfg.copy()
        result = PassResult(cfg=work)
        _run_pass(result, "canonicalize", canonicalize, work)
        _run_pass(result, "constfold", fold_constants, work)
        with span("pass.lcse") as lcse_sp:
            work, lcse_replaced = local_cse(work)
            lcse_sp.set(rewrites=lcse_replaced)
        result.cfg = work
        result.bump("lcse", lcse_replaced)

        if pre_strategy is not None:
            pre = optimize(
                work,
                pre_strategy,
                config=OptimizeConfig(run_local_cse=False, validate=False),
                manager=manager,
            )
            work = pre.cfg
            result.cfg = work
            result.bump(
                f"pre({pre_strategy})",
                sum(
                    p.insertion_count + len(p.delete_blocks)
                    for p in pre.placements
                ),
            )

        _cleanup_to_fixpoint(work, result, manager=manager)
        sp.set(total_rewrites=result.total_rewrites)
    if validate:
        validate_cfg(work)
    return result


def standard_pipeline(
    cfg: CFG, manager: Optional[AnalysisManager] = None
) -> PassResult:
    """The default full pipeline: normalise, LCM, clean up."""
    return run_pipeline(cfg, "lcm", manager=manager)
