"""Pass pipeline: compose cleanup passes and PRE into one optimiser.

``standard_pipeline`` is the order a real compiler would use around a
PRE pass: normalise first (constant folding exposes equal expressions,
LCSE canonicalises blocks), run Lazy Code Motion, then clean up the
copies and structure it leaves behind — iterating the cleanup trio to a
fixed point because each enables the others (copy propagation exposes
dead stores, DCE exposes pass-through blocks, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.localcse import local_cse
from repro.core.pipeline import optimize
from repro.ir.cfg import CFG
from repro.ir.validate import validate_cfg
from repro.passes.canonical import canonicalize
from repro.passes.constfold import fold_constants
from repro.passes.copyprop import copy_propagate
from repro.passes.dce import dead_code_elimination
from repro.passes.simplify import simplify_cfg


@dataclass
class PassResult:
    """Outcome of a pipeline run."""

    cfg: CFG
    rewrites: Dict[str, int] = field(default_factory=dict)

    def bump(self, name: str, count: int) -> None:
        if count:
            self.rewrites[name] = self.rewrites.get(name, 0) + count

    @property
    def total_rewrites(self) -> int:
        return sum(self.rewrites.values())

    def describe(self) -> str:
        if not self.rewrites:
            return "pipeline: no rewrites"
        parts = ", ".join(f"{k}={v}" for k, v in sorted(self.rewrites.items()))
        return f"pipeline: {parts}"


def _cleanup_to_fixpoint(cfg: CFG, result: PassResult, max_rounds: int = 20) -> None:
    for _ in range(max_rounds):
        round_total = 0
        round_total += _record(result, "copyprop", copy_propagate(cfg))
        round_total += _record(result, "constfold", fold_constants(cfg))
        round_total += _record(result, "dce", dead_code_elimination(cfg))
        stats = simplify_cfg(cfg)
        result.bump("simplify", stats.total)
        round_total += stats.total
        if round_total == 0:
            return


def _record(result: PassResult, name: str, count: int) -> int:
    result.bump(name, count)
    return count


def run_pipeline(
    cfg: CFG,
    pre_strategy: Optional[str] = "lcm",
    validate: bool = True,
) -> PassResult:
    """Run the standard pipeline on a copy of *cfg*.

    Args:
        cfg: input program (never mutated).
        pre_strategy: which PRE strategy to run in the middle, or None
            to run the cleanup passes only.
        validate: validate the input and the final result.
    """
    if validate:
        validate_cfg(cfg)
    work = cfg.copy()
    result = PassResult(cfg=work)
    _record(result, "canonicalize", canonicalize(work))
    _record(result, "constfold", fold_constants(work))
    work, lcse_replaced = local_cse(work)
    result.cfg = work
    result.bump("lcse", lcse_replaced)

    if pre_strategy is not None:
        pre = optimize(work, pre_strategy, run_local_cse=False, validate=False)
        work = pre.cfg
        result.cfg = work
        result.bump(
            f"pre({pre_strategy})",
            sum(p.insertion_count + len(p.delete_blocks) for p in pre.placements),
        )

    _cleanup_to_fixpoint(work, result)
    if validate:
        validate_cfg(work)
    return result


def standard_pipeline(cfg: CFG) -> PassResult:
    """The default full pipeline: normalise, LCM, clean up."""
    return run_pipeline(cfg, "lcm")
