"""Global copy propagation via a "reaching copies" analysis.

After code motion every replaced occurrence reads its value through a
copy (``x = t``); downstream uses of ``x`` can often read ``t``
directly, shortening ``x``'s live range and exposing dead assignments.
This pass computes, as a forward all-paths bit-vector problem over the
universe of copy instructions, which copies ``x = y`` are *valid* (both
``x`` and ``y`` unassigned since the copy executed) at each block
entry, then rewrites uses accordingly — including branch conditions.

A single application performs one propagation step along each chain
(``a = b; c = a`` becomes ``c = b`` only after the pass sees ``a = b``
reach the use); the pass pipeline iterates passes to a fixed point, so
chains collapse fully in practice.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.dataflow.bitvec import BitVector
from repro.dataflow.problem import DataflowProblem
from repro.dataflow.solver import solve
from repro.ir.cfg import CFG
from repro.ir.expr import Atom, BinExpr, Const, Expr, UnaryExpr, Var
from repro.ir.instr import Assign, CondBranch

#: A copy fact: (destination, source) for "dest = source".
CopyPair = Tuple[str, str]


def _collect_pairs(cfg: CFG) -> List[CopyPair]:
    pairs: List[CopyPair] = []
    seen = set()
    for _, _, instr in cfg.instructions():
        if isinstance(instr.expr, Var) and instr.expr.name != instr.target:
            pair = (instr.target, instr.expr.name)
            if pair not in seen:
                seen.add(pair)
                pairs.append(pair)
    return pairs


def _substitute(expr: Expr, mapping: Dict[str, str]) -> Expr:
    def sub_atom(atom: Atom) -> Atom:
        if isinstance(atom, Var) and atom.name in mapping:
            return Var(mapping[atom.name])
        return atom

    if isinstance(expr, Var):
        return sub_atom(expr)
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, UnaryExpr):
        return UnaryExpr(expr.op, sub_atom(expr.operand))
    if isinstance(expr, BinExpr):
        return BinExpr(expr.op, sub_atom(expr.left), sub_atom(expr.right))
    return expr


def copy_propagate(
    cfg: CFG,
    blocks: Optional[Iterable[str]] = None,
    edited: Optional[List[str]] = None,
    manager=None,
) -> int:
    """Propagate copies through *cfg* in place; returns rewrites made.

    Args:
        cfg: the program (mutated).
        blocks: restrict the *rewrite sweep* to these labels.  The
            reaching-copies fixpoint is always solved globally, so the
            scope is exact whenever it covers every block whose content
            or entry facts changed since the last run.
        edited: when given, labels of blocks actually changed are
            appended, for the caller's invalidation bookkeeping.
        manager: optional :class:`~repro.obs.manager.AnalysisManager`;
            the solve routes through its memo tiers and dense plan.
    """
    pairs = _collect_pairs(cfg)
    if not pairs:
        return 0
    width = len(pairs)
    index = {pair: i for i, pair in enumerate(pairs)}

    # Per block: gen (copies downward exposed) and keep (survivors).
    gen: Dict[str, BitVector] = {}
    keep: Dict[str, BitVector] = {}
    for block in cfg:
        g = BitVector.empty(width)
        k = BitVector.full(width)
        for instr in block.instrs:
            target = instr.target
            killed = BitVector.of(
                width,
                (
                    i
                    for i, (dst, src) in enumerate(pairs)
                    if dst == target or src == target
                ),
            )
            g = g - killed
            k = k - killed
            if (
                isinstance(instr.expr, Var)
                and instr.expr.name != target
            ):
                g = g.with_bit(index[(target, instr.expr.name)])
        gen[block.label] = g
        keep[block.label] = k

    def transfer(label: str, fact: BitVector) -> BitVector:
        return gen[label] | (fact & keep[label])

    problem = DataflowProblem.forward_intersect("reaching-copies", width, transfer)
    if manager is not None:
        solution = manager.solve(cfg, problem)
    else:
        solution = solve(cfg, problem)

    scope = None if blocks is None else set(blocks)
    rewrites = 0
    for block in cfg:
        if scope is not None and block.label not in scope:
            continue
        active: Dict[str, str] = {
            dst: src
            for dst, src in (pairs[i] for i in solution.inof[block.label])
        }
        block_rewrites = 0
        new_instrs: List[Assign] = []
        for instr in block.instrs:
            new_expr = _substitute(instr.expr, active)
            if new_expr != instr.expr:
                block_rewrites += 1
                new_instrs.append(Assign(instr.target, new_expr))
            else:
                new_instrs.append(instr)
            target = instr.target
            active = {
                d: s for d, s in active.items() if d != target and s != target
            }
            if isinstance(new_expr, Var) and new_expr.name != target:
                active[target] = new_expr.name
        if block_rewrites:
            block.instrs[:] = new_instrs
        term = block.terminator
        if isinstance(term, CondBranch) and isinstance(term.cond, Var):
            if term.cond.name in active:
                block.terminator = CondBranch(
                    Var(active[term.cond.name]),
                    term.then_target,
                    term.else_target,
                )
                block_rewrites += 1
                cfg.notify_terminator_changed()
        if block_rewrites:
            rewrites += block_rewrites
            if edited is not None:
                edited.append(block.label)
    return rewrites
