"""Whole-program dead code elimination.

Removes assignments whose target is overwritten before ever being read.
Under this library's execution model the final environment is
observable, so — unlike classic compiler DCE — variables are considered
live at the program exit by default; only *shadowed* stores are dead.
Passes that know better (e.g. the PRE engine cleaning up its own
temporaries, which are never observable) can narrow the observable set.

Right-hand sides in this IR are pure, so removal is always sound for a
dead target.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.analysis.liveness import compute_liveness
from repro.core.transform import _is_live_after
from repro.ir.cfg import CFG


def dead_code_elimination(
    cfg: CFG, observable: Optional[Iterable[str]] = None
) -> int:
    """Remove dead assignments from *cfg* in place; returns the count.

    Args:
        cfg: the program (mutated).
        observable: variables whose final value matters (live at exit).
            Defaults to every variable of the program — the
            conservative choice matching the interpreter's semantics.
    """
    live_at_exit = (
        sorted(cfg.variables()) if observable is None else sorted(set(observable))
    )
    removed = 0
    changed = True
    while changed:
        changed = False
        liveness = compute_liveness(cfg, live_at_exit=live_at_exit)
        for block in cfg:
            keep: List = []
            for i, instr in enumerate(block.instrs):
                if not _is_live_after(cfg, liveness, block.label, i, instr.target):
                    removed += 1
                    changed = True
                else:
                    keep.append(instr)
            if len(keep) != len(block.instrs):
                block.instrs[:] = keep
    return removed
