"""Whole-program dead code elimination.

Removes assignments whose target is overwritten before ever being read.
Under this library's execution model the final environment is
observable, so — unlike classic compiler DCE — variables are considered
live at the program exit by default; only *shadowed* stores are dead.
Passes that know better (e.g. the PRE engine cleaning up its own
temporaries, which are never observable) can narrow the observable set.

Right-hand sides in this IR are pure, so removal is always sound for a
dead target.

Liveness is solved **once** per call (through the
:class:`~repro.obs.manager.AnalysisManager` memo tier when a manager is
given) and then patched incrementally between fixpoint rounds by
:class:`~repro.dataflow.incremental.IncrementalLiveness` — the
re-solve-the-world-per-round loop this pass shipped with is gone.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.dataflow.incremental import IncrementalLiveness
from repro.ir.cfg import CFG
from repro.obs.manager import AnalysisManager, notify_cfg_edited


def dead_code_elimination(
    cfg: CFG,
    observable: Optional[Iterable[str]] = None,
    manager: Optional[AnalysisManager] = None,
    blocks: Optional[Iterable[str]] = None,
    edited: Optional[List[str]] = None,
) -> int:
    """Remove dead assignments from *cfg* in place; returns the count.

    Args:
        cfg: the program (mutated).
        observable: variables whose final value matters (live at exit).
            Defaults to every variable of the program — the
            conservative choice matching the interpreter's semantics.
            Names the program never mentions are honoured, not dropped:
            an assignment to an observable-but-otherwise-unused name is
            kept.
        manager: optional :class:`~repro.obs.manager.AnalysisManager`;
            the single full liveness solve routes through its memo
            tiers and shares its dense plan.
        blocks: restrict the removal sweep to these labels.  Liveness
            is a backward analysis, so scoping is exact whenever
            *blocks* covers the edited blocks and everything that can
            reach them; between rounds the scope grows by the backward
            closure of this call's own removals, since a removal can
            only expose new dead stores at or upstream of itself.
        edited: when given, labels of blocks actually changed are
            appended (possibly repeatedly across rounds).
    """
    live_at_exit = (
        sorted(cfg.variables()) if observable is None else sorted(set(observable))
    )
    if manager is None:
        engine = IncrementalLiveness(cfg, live_at_exit=live_at_exit)
    else:
        engine = manager.liveness(cfg, live_at_exit=live_at_exit)
    engine.solve()
    scope = None if blocks is None else set(blocks)
    removed = 0
    changed = True
    while changed:
        changed = False
        round_edited: List[str] = []
        for block in cfg:
            if scope is not None and block.label not in scope:
                continue
            keep: List = []
            for i, instr in enumerate(block.instrs):
                if not engine.is_live_after(block.label, i, instr.target):
                    removed += 1
                    changed = True
                else:
                    keep.append(instr)
            if len(keep) != len(block.instrs):
                block.instrs[:] = keep
                round_edited.append(block.label)
        if round_edited:
            # Every block in a round decides against the same fixpoint
            # (the old per-round re-solve semantics); the incremental
            # patch lands at the round boundary.
            notify_cfg_edited(cfg, round_edited)
            if manager is None:
                engine.blocks_edited(round_edited)
            if scope is not None:
                scope |= cfg.reaching(round_edited)
            if edited is not None:
                edited.extend(round_edited)
    return removed
