"""Expression canonicalisation: make equal values syntactically equal.

PRE reasons about *syntactic* expression identity, so ``a + b`` and
``b + a`` are different candidates even though they always compute the
same value.  Canonicalisation widens PRE's reach by rewriting every
expression into a normal form:

* operands of commutative operators (``+ * & | ^ == != min max``) are
  sorted (constants first, then variables by name);
* ``>`` and ``>=`` comparisons are flipped into ``<`` / ``<=`` with
  swapped operands, merging the two spellings of the same test.

The rewrite never changes values (the interpreter's semantics for the
affected operators are symmetric under the transformation), so it can
run before any analysis; the ablation benchmark measures how many
additional redundancies it exposes.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.ir.cfg import CFG
from repro.ir.expr import Atom, BinExpr, Const, Expr
from repro.ir.instr import Assign

#: Operators where operand order does not affect the value.
COMMUTATIVE = frozenset({"+", "*", "&", "|", "^", "==", "!=", "min", "max"})

#: Comparisons rewritten into their mirrored form.
MIRROR = {">": "<", ">=": "<="}


def _atom_key(atom: Atom) -> Tuple[int, object]:
    if isinstance(atom, Const):
        return (0, atom.value)
    return (1, atom.name)


def canonicalize_expr(expr: Expr) -> Expr:
    """The canonical form of one expression."""
    if not isinstance(expr, BinExpr):
        return expr
    op, left, right = expr.op, expr.left, expr.right
    if op in MIRROR:
        op, left, right = MIRROR[op], right, left
    if op in COMMUTATIVE and _atom_key(right) < _atom_key(left):
        left, right = right, left
    if (op, left, right) == (expr.op, expr.left, expr.right):
        return expr
    return BinExpr(op, left, right)


def canonicalize(
    cfg: CFG,
    blocks: Optional[Iterable[str]] = None,
    edited: Optional[List[str]] = None,
) -> int:
    """Canonicalise every expression of *cfg* in place; returns rewrites.

    The rewrite is purely block-local, so *blocks* (when given) scopes
    it exactly: only those blocks are visited.  Labels of blocks
    actually changed are appended to *edited* when given.
    """
    scope = None if blocks is None else set(blocks)
    rewrites = 0
    for block in cfg:
        if scope is not None and block.label not in scope:
            continue
        block_rewrites = 0
        new_instrs = []
        for instr in block.instrs:
            expr = canonicalize_expr(instr.expr)
            if expr is not instr.expr:
                block_rewrites += 1
                new_instrs.append(Assign(instr.target, expr))
            else:
                new_instrs.append(instr)
        if block_rewrites:
            block.instrs[:] = new_instrs
            rewrites += block_rewrites
            if edited is not None:
                edited.append(block.label)
    return rewrites
