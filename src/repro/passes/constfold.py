"""Constant folding and forward constant propagation.

Two cooperating rewrites, iterated to a local fixed point:

* **folding** — an operator expression whose operands are all literal
  constants is evaluated at compile time (with the interpreter's own
  total arithmetic, so runtime and compile time always agree);
* **propagation** — a forward dataflow over the constant lattice
  (⊥ unseen / known value / ⊤ varying) replaces variable operands that
  are provably constant at their use.

Branch conditions are rewritten too, but branches are *not* folded
here — that is :mod:`repro.passes.simplify`'s job, keeping each pass
single-purpose.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional

from repro.dataflow.order import reverse_postorder
from repro.interp.machine import eval_expr
from repro.ir.cfg import CFG
from repro.ir.expr import Atom, BinExpr, Const, Expr, UnaryExpr, Var
from repro.ir.instr import Assign, CondBranch

#: Lattice: absent = bottom (unseen), int = known, TOP = varying.
TOP = object()


def _meet(a, b):
    if a is TOP or b is TOP:
        return TOP
    if a is None:
        return b
    if b is None:
        return a
    return a if a == b else TOP


def _try_fold(expr: Expr) -> Expr:
    """Fold *expr* to a constant if all operands are literals."""
    if isinstance(expr, (BinExpr, UnaryExpr)):
        operands = (
            (expr.operand,)
            if isinstance(expr, UnaryExpr)
            else (expr.left, expr.right)
        )
        if all(isinstance(op, Const) for op in operands):
            return Const(eval_expr(expr, {}))
    return expr


def _substitute_consts(expr: Expr, env: Dict[str, object]) -> Expr:
    def sub(atom: Atom) -> Atom:
        if isinstance(atom, Var):
            value = env.get(atom.name)
            if isinstance(value, int):
                return Const(value)
        return atom

    if isinstance(expr, Var):
        return sub(expr)
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, UnaryExpr):
        return UnaryExpr(expr.op, sub(expr.operand))
    if isinstance(expr, BinExpr):
        return BinExpr(expr.op, sub(expr.left), sub(expr.right))
    return expr


def _block_out(env: Dict[str, object], block) -> Dict[str, object]:
    """Abstractly execute *block* from the entry environment *env*."""
    out = dict(env)
    for instr in block.instrs:
        expr = _try_fold(_substitute_consts(instr.expr, out))
        if isinstance(expr, Const):
            out[instr.target] = expr.value
        else:
            out[instr.target] = TOP
    return out


def _solve_entry_envs(cfg: CFG) -> Dict[str, Dict[str, object]]:
    """The block-entry constant environments, by worklist iteration.

    Chaotic iteration of a monotone system from a fixed start converges
    to the unique least fixpoint regardless of visit order, so this
    priority-worklist solver (reverse postorder, with per-block output
    environments cached and recomputed only when the entry environment
    changes) computes exactly the environments the naive
    sweep-until-stable loop did — without re-executing every block's
    transfer function on every sweep.
    """
    order = reverse_postorder(cfg)
    position = {label: i for i, label in enumerate(order)}
    entry_env: Dict[str, Dict[str, object]] = {
        label: {} for label in cfg.labels
    }
    entry_env[cfg.entry] = {name: TOP for name in cfg.variables()}
    out_env: Dict[str, Dict[str, object]] = {}

    pending = [(position[label], label) for label in order]
    heapq.heapify(pending)
    queued = set(order)
    while pending:
        _, label = heapq.heappop(pending)
        queued.discard(label)
        out = _block_out(entry_env[label], cfg.block(label))
        if out == out_env.get(label):
            continue
        out_env[label] = out
        for succ in cfg.succs(label):
            if succ == cfg.entry:
                continue  # the entry environment is fixed (all ⊤)
            merged: Optional[Dict[str, object]] = None
            for pred in cfg.preds(succ):
                pout = out_env.get(pred)
                if pout is None:
                    pout = _block_out(entry_env[pred], cfg.block(pred))
                    out_env[pred] = pout
                if merged is None:
                    merged = dict(pout)
                else:
                    keys = set(merged) | set(pout)
                    merged = {
                        k: _meet(merged.get(k), pout.get(k)) for k in keys
                    }
            env = merged or {}
            if env != entry_env[succ]:
                entry_env[succ] = env
                if succ not in queued and succ in position:
                    heapq.heappush(pending, (position[succ], succ))
                    queued.add(succ)
    return entry_env


def fold_constants(
    cfg: CFG,
    blocks: Optional[Iterable[str]] = None,
    edited: Optional[List[str]] = None,
) -> int:
    """Fold/propagate constants through *cfg* in place; returns rewrites.

    Every variable may carry an arbitrary *input* value when the
    program starts (this library's execution model), so the entry
    environment maps all variables to ⊤; a variable is only treated as
    constant at a point when every path to that point assigns it that
    constant.

    Args:
        cfg: the program (mutated).
        blocks: restrict the *rewrite sweep* to these labels.  The
            dataflow fixpoint is always solved globally, so scoping is
            exact whenever *blocks* covers every block whose content or
            entry environment changed since the last run (the dirty
            region the pass pipeline tracks).
        edited: when given, the labels of blocks this call actually
            changed are appended — the caller's input for invalidation
            and dirty-region scheduling.
    """
    entry_env = _solve_entry_envs(cfg)

    # Rewrite with the solved environments.
    scope = None if blocks is None else set(blocks)
    rewrites = 0
    for block in cfg:
        if scope is not None and block.label not in scope:
            continue
        env = dict(entry_env[block.label])
        block_rewrites = 0
        new_instrs = []
        for instr in block.instrs:
            expr = _try_fold(_substitute_consts(instr.expr, env))
            if expr != instr.expr:
                block_rewrites += 1
                new_instrs.append(Assign(instr.target, expr))
            else:
                new_instrs.append(instr)
            env[instr.target] = expr.value if isinstance(expr, Const) else TOP
        if block_rewrites:
            block.instrs[:] = new_instrs
        term = block.terminator
        if isinstance(term, CondBranch) and isinstance(term.cond, Var):
            value = env.get(term.cond.name)
            if isinstance(value, int):
                block.terminator = CondBranch(
                    Const(value), term.then_target, term.else_target
                )
                block_rewrites += 1
                cfg.notify_terminator_changed()
        if block_rewrites:
            rewrites += block_rewrites
            if edited is not None:
                edited.append(block.label)
    return rewrites
