"""Constant folding and forward constant propagation.

Two cooperating rewrites, iterated to a local fixed point:

* **folding** — an operator expression whose operands are all literal
  constants is evaluated at compile time (with the interpreter's own
  total arithmetic, so runtime and compile time always agree);
* **propagation** — a forward dataflow over the constant lattice
  (⊥ unseen / known value / ⊤ varying) replaces variable operands that
  are provably constant at their use.

Branch conditions are rewritten too, but branches are *not* folded
here — that is :mod:`repro.passes.simplify`'s job, keeping each pass
single-purpose.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.dataflow.order import reverse_postorder
from repro.interp.machine import eval_expr
from repro.ir.cfg import CFG
from repro.ir.expr import Atom, BinExpr, Const, Expr, UnaryExpr, Var
from repro.ir.instr import Assign, CondBranch

#: Lattice: absent = bottom (unseen), int = known, TOP = varying.
TOP = object()


def _meet(a, b):
    if a is TOP or b is TOP:
        return TOP
    if a is None:
        return b
    if b is None:
        return a
    return a if a == b else TOP


def _try_fold(expr: Expr) -> Expr:
    """Fold *expr* to a constant if all operands are literals."""
    if isinstance(expr, (BinExpr, UnaryExpr)):
        operands = (
            (expr.operand,)
            if isinstance(expr, UnaryExpr)
            else (expr.left, expr.right)
        )
        if all(isinstance(op, Const) for op in operands):
            return Const(eval_expr(expr, {}))
    return expr


def _substitute_consts(expr: Expr, env: Dict[str, object]) -> Expr:
    def sub(atom: Atom) -> Atom:
        if isinstance(atom, Var):
            value = env.get(atom.name)
            if isinstance(value, int):
                return Const(value)
        return atom

    if isinstance(expr, Var):
        return sub(expr)
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, UnaryExpr):
        return UnaryExpr(expr.op, sub(expr.operand))
    if isinstance(expr, BinExpr):
        return BinExpr(expr.op, sub(expr.left), sub(expr.right))
    return expr


def _block_out(env: Dict[str, object], block) -> Dict[str, object]:
    """Abstractly execute *block* from the entry environment *env*."""
    out = dict(env)
    for instr in block.instrs:
        expr = _try_fold(_substitute_consts(instr.expr, out))
        if isinstance(expr, Const):
            out[instr.target] = expr.value
        else:
            out[instr.target] = TOP
    return out


def fold_constants(cfg: CFG) -> int:
    """Fold/propagate constants through *cfg* in place; returns rewrites.

    Every variable may carry an arbitrary *input* value when the
    program starts (this library's execution model), so the entry
    environment maps all variables to ⊤; a variable is only treated as
    constant at a point when every path to that point assigns it that
    constant.
    """
    order = reverse_postorder(cfg)

    # Fixpoint over block-entry environments.
    entry_env: Dict[str, Dict[str, object]] = {
        label: {} for label in cfg.labels
    }
    entry_env[cfg.entry] = {name: TOP for name in cfg.variables()}
    changed = True
    while changed:
        changed = False
        for label in order:
            if label == cfg.entry:
                env = entry_env[cfg.entry]
            else:
                env: Dict[str, object] = {}
                merged: Optional[Dict[str, object]] = None
                for pred in cfg.preds(label):
                    out = _block_out(entry_env[pred], cfg.block(pred))
                    if merged is None:
                        merged = dict(out)
                    else:
                        keys = set(merged) | set(out)
                        merged = {
                            k: _meet(merged.get(k), out.get(k)) for k in keys
                        }
                env = merged or {}
            if env != entry_env[label]:
                entry_env[label] = env
                changed = True

    # Rewrite with the solved environments.
    rewrites = 0
    for block in cfg:
        env = dict(entry_env[block.label])
        new_instrs = []
        for instr in block.instrs:
            expr = _try_fold(_substitute_consts(instr.expr, env))
            if expr != instr.expr:
                rewrites += 1
            new_instrs.append(Assign(instr.target, expr))
            env[instr.target] = expr.value if isinstance(expr, Const) else TOP
        block.instrs[:] = new_instrs
        term = block.terminator
        if isinstance(term, CondBranch) and isinstance(term.cond, Var):
            value = env.get(term.cond.name)
            if isinstance(value, int):
                block.terminator = CondBranch(
                    Const(value), term.then_target, term.else_target
                )
                rewrites += 1
                cfg.notify_terminator_changed()
    return rewrites
