"""JSON serialisation of CFGs.

Lets programs cross process boundaries — cached compilation artefacts,
golden files, the CLI's ``--emit json``.  The format is versioned and
self-describing; :func:`cfg_from_dict` validates shape and raises
:class:`SerializeError` with a path-like message on malformed input.

Round-tripping is exact: ``cfg_from_dict(cfg_to_dict(g))`` reproduces
the graph, including block order, terminators and edge weights (a
hypothesis property test pins this on random programs).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.ir.block import BasicBlock
from repro.ir.cfg import CFG
from repro.ir.expr import Atom, BinExpr, Const, Expr, UnaryExpr, Var
from repro.ir.instr import Assign, CondBranch, Halt, Jump, Terminator

FORMAT_VERSION = 1


class SerializeError(ValueError):
    """Raised on malformed serialised input."""


# -- expressions ------------------------------------------------------------

def expr_to_dict(expr: Expr) -> Dict[str, Any]:
    if isinstance(expr, Const):
        return {"kind": "const", "value": expr.value}
    if isinstance(expr, Var):
        return {"kind": "var", "name": expr.name}
    if isinstance(expr, UnaryExpr):
        return {
            "kind": "unary",
            "op": expr.op,
            "operand": expr_to_dict(expr.operand),
        }
    if isinstance(expr, BinExpr):
        return {
            "kind": "binary",
            "op": expr.op,
            "left": expr_to_dict(expr.left),
            "right": expr_to_dict(expr.right),
        }
    raise SerializeError(f"not an expression: {expr!r}")


def _atom_from_dict(data: Dict[str, Any], where: str) -> Atom:
    expr = expr_from_dict(data, where)
    if not isinstance(expr, (Const, Var)):
        raise SerializeError(f"{where}: expected an atomic operand")
    return expr


def expr_from_dict(data: Any, where: str = "expr") -> Expr:
    if not isinstance(data, dict) or "kind" not in data:
        raise SerializeError(f"{where}: expected an expression object")
    kind = data["kind"]
    try:
        if kind == "const":
            return Const(int(data["value"]))
        if kind == "var":
            return Var(str(data["name"]))
        if kind == "unary":
            return UnaryExpr(
                data["op"], _atom_from_dict(data["operand"], f"{where}.operand")
            )
        if kind == "binary":
            return BinExpr(
                data["op"],
                _atom_from_dict(data["left"], f"{where}.left"),
                _atom_from_dict(data["right"], f"{where}.right"),
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializeError(f"{where}: {exc}") from exc
    raise SerializeError(f"{where}: unknown expression kind {kind!r}")


# -- terminators ------------------------------------------------------------

def _terminator_to_dict(term: Terminator) -> Dict[str, Any]:
    if isinstance(term, Jump):
        return {"kind": "jump", "target": term.target}
    if isinstance(term, CondBranch):
        return {
            "kind": "branch",
            "cond": expr_to_dict(term.cond),
            "then": term.then_target,
            "else": term.else_target,
        }
    if isinstance(term, Halt):
        return {"kind": "halt"}
    raise SerializeError(f"unknown terminator {term!r}")


def _terminator_from_dict(data: Any, where: str) -> Terminator:
    if not isinstance(data, dict) or "kind" not in data:
        raise SerializeError(f"{where}: expected a terminator object")
    kind = data["kind"]
    try:
        if kind == "jump":
            return Jump(str(data["target"]))
        if kind == "branch":
            return CondBranch(
                _atom_from_dict(data["cond"], f"{where}.cond"),
                str(data["then"]),
                str(data["else"]),
            )
        if kind == "halt":
            return Halt()
    except (KeyError, TypeError) as exc:
        raise SerializeError(f"{where}: {exc}") from exc
    raise SerializeError(f"{where}: unknown terminator kind {kind!r}")


# -- blocks -----------------------------------------------------------------

def block_to_dict(block: BasicBlock) -> Dict[str, Any]:
    """Serialise one basic block (label, instructions, terminator).

    The per-block payload of :func:`cfg_to_dict`, exposed separately so
    content digests (:mod:`repro.obs.fingerprint`) can hash blocks
    individually without re-serialising the whole graph.
    """
    if block.terminator is None:
        raise SerializeError(
            f"block {block.label!r} is unterminated; validate first"
        )
    return {
        "label": block.label,
        "instrs": [
            {"target": i.target, "expr": expr_to_dict(i.expr)}
            for i in block.instrs
        ],
        "terminator": _terminator_to_dict(block.terminator),
    }


# -- whole graphs -----------------------------------------------------------

def cfg_to_dict(cfg: CFG) -> Dict[str, Any]:
    """Serialise *cfg* to plain JSON-compatible data."""
    blocks: List[Dict[str, Any]] = [block_to_dict(block) for block in cfg]
    weights = [
        {"src": src, "dst": dst, "weight": cfg.weight((src, dst))}
        for src, dst in cfg.edges()
        if cfg.weight((src, dst)) != 1
    ]
    return {
        "format": "repro-cfg",
        "version": FORMAT_VERSION,
        "entry": cfg.entry,
        "exit": cfg.exit,
        "blocks": blocks,
        "weights": weights,
    }


def cfg_from_dict(data: Any) -> CFG:
    """Deserialise a CFG from :func:`cfg_to_dict` output."""
    if not isinstance(data, dict) or data.get("format") != "repro-cfg":
        raise SerializeError("not a repro-cfg document")
    if data.get("version") != FORMAT_VERSION:
        raise SerializeError(
            f"unsupported format version {data.get('version')!r}"
        )
    cfg = CFG(entry=str(data["entry"]), exit=str(data["exit"]))
    blocks = data.get("blocks")
    if not isinstance(blocks, list):
        raise SerializeError("blocks: expected a list")
    for i, bdata in enumerate(blocks):
        where = f"blocks[{i}]"
        if not isinstance(bdata, dict) or "label" not in bdata:
            raise SerializeError(f"{where}: expected a block object")
        block = BasicBlock(str(bdata["label"]))
        for j, idata in enumerate(bdata.get("instrs", ())):
            iwhere = f"{where}.instrs[{j}]"
            if not isinstance(idata, dict):
                raise SerializeError(f"{iwhere}: expected an instruction")
            block.append(
                Assign(
                    str(idata["target"]),
                    expr_from_dict(idata.get("expr"), f"{iwhere}.expr"),
                )
            )
        block.terminator = _terminator_from_dict(
            bdata.get("terminator"), f"{where}.terminator"
        )
        cfg.add_block(block)
    for k, wdata in enumerate(data.get("weights", ())):
        try:
            cfg.set_weight(
                (str(wdata["src"]), str(wdata["dst"])), int(wdata["weight"])
            )
        except (KeyError, TypeError) as exc:
            raise SerializeError(f"weights[{k}]: {exc}") from exc
    return cfg


def cfg_to_json(cfg: CFG, indent: int = 2) -> str:
    """Serialise *cfg* to a JSON string."""
    return json.dumps(cfg_to_dict(cfg), indent=indent)


def cfg_from_json(text: str) -> CFG:
    """Parse a CFG from :func:`cfg_to_json` output."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializeError(f"invalid JSON: {exc}") from exc
    return cfg_from_dict(data)
