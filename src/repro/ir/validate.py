"""Structural validation of CFGs.

The Lazy Code Motion setting makes several structural assumptions; this
module checks them all so downstream analyses can rely on them:

* there is exactly one entry and one exit block, both present;
* the entry block is empty and has no predecessors; the exit block is
  empty, halts, and has no successors;
* every terminator targets an existing block;
* every block is reachable from the entry and reaches the exit
  ("every block lies on some path from ENTRY to EXIT");
* branch conditions are atomic.
"""

from __future__ import annotations

from typing import List, Set

from repro.ir.cfg import CFG
from repro.ir.instr import CondBranch, Halt


class ValidationError(ValueError):
    """Raised when a CFG violates the structural assumptions."""


def _reachable_forward(cfg: CFG) -> Set[str]:
    seen: Set[str] = set()
    stack = [cfg.entry]
    while stack:
        label = stack.pop()
        if label in seen:
            continue
        seen.add(label)
        stack.extend(cfg.succs(label))
    return seen

def _reachable_backward(cfg: CFG) -> Set[str]:
    seen: Set[str] = set()
    stack = [cfg.exit]
    while stack:
        label = stack.pop()
        if label in seen:
            continue
        seen.add(label)
        stack.extend(cfg.preds(label))
    return seen


def validate_cfg(cfg: CFG, require_empty_entry_exit: bool = True) -> None:
    """Raise :class:`ValidationError` if *cfg* is structurally invalid."""
    problems: List[str] = []

    if cfg.entry not in cfg:
        raise ValidationError(f"missing entry block {cfg.entry!r}")
    if cfg.exit not in cfg:
        raise ValidationError(f"missing exit block {cfg.exit!r}")

    for block in cfg:
        if block.terminator is None:
            problems.append(f"block {block.label!r} is unterminated")
            continue
        if isinstance(block.terminator, Halt) and block.label != cfg.exit:
            problems.append(f"only the exit block may halt, {block.label!r} does")
        for succ in block.successors():
            if succ not in cfg:
                problems.append(
                    f"block {block.label!r} targets missing block {succ!r}"
                )
        if isinstance(block.terminator, CondBranch):
            if block.terminator.then_target == block.terminator.else_target:
                problems.append(
                    f"block {block.label!r} branches to the same target twice; "
                    "use an unconditional jump"
                )

    if problems:
        raise ValidationError("; ".join(problems))

    exit_block = cfg.block(cfg.exit)
    if not isinstance(exit_block.terminator, Halt):
        raise ValidationError("exit block must halt")
    if require_empty_entry_exit:
        if not cfg.block(cfg.entry).is_empty:
            raise ValidationError("entry block must be empty")
        if not exit_block.is_empty:
            raise ValidationError("exit block must be empty")
    if cfg.preds(cfg.entry):
        raise ValidationError("entry block must have no predecessors")

    fwd = _reachable_forward(cfg)
    unreachable = set(cfg.labels) - fwd
    if unreachable:
        raise ValidationError(
            f"blocks unreachable from entry: {sorted(unreachable)}"
        )
    bwd = _reachable_backward(cfg)
    stuck = set(cfg.labels) - bwd
    if stuck:
        raise ValidationError(f"blocks that cannot reach exit: {sorted(stuck)}")
