"""A fluent builder for constructing CFGs in tests, examples and figures.

Example::

    b = CFGBuilder()
    b.block("n1", "x = a + b").jump("n2")
    b.block("n2", "y = a + b").branch("y", "n1", "exit")
    cfg = b.build()

Instruction strings are parsed with the tiny single-operator expression
parser; callers may also pass :class:`~repro.ir.instr.Assign` objects
directly.  The builder creates the empty ``entry``/``exit`` blocks
automatically; the first user block becomes the entry's target unless an
explicit ``entry_to`` is given.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.ir.block import BasicBlock
from repro.ir.cfg import CFG, CFGError
from repro.ir.expr import Const, Var, parse_expr
from repro.ir.instr import Assign, CondBranch, Halt, Jump

InstrLike = Union[str, Assign]


def parse_assign(text: str) -> Assign:
    """Parse ``"x = a + b"`` into an :class:`Assign`."""
    if "=" not in text:
        raise CFGError(f"not an assignment: {text!r}")
    # Split on the first '=' that is not part of ==, <=, >=, !=.
    idx = None
    for i, ch in enumerate(text):
        if ch == "=" and (i == 0 or text[i - 1] not in "<>!=") and (
            i + 1 >= len(text) or text[i + 1] != "="
        ):
            idx = i
            break
    if idx is None:
        raise CFGError(f"not an assignment: {text!r}")
    target = text[:idx].strip()
    rhs = text[idx + 1 :].strip()
    if not target.isidentifier():
        raise CFGError(f"bad assignment target in {text!r}")
    return Assign(target, parse_expr(rhs))


def _coerce(instr: InstrLike) -> Assign:
    if isinstance(instr, Assign):
        return instr
    return parse_assign(instr)


class _BlockHandle:
    """Chainable handle returned by :meth:`CFGBuilder.block`."""

    def __init__(self, builder: "CFGBuilder", block: BasicBlock) -> None:
        self._builder = builder
        self._block = block

    def add(self, *instrs: InstrLike) -> "_BlockHandle":
        """Append instructions to the block."""
        for instr in instrs:
            self._block.append(_coerce(instr))
        return self

    def jump(self, target: str) -> "CFGBuilder":
        """Terminate with an unconditional jump."""
        self._block.terminator = Jump(target)
        return self._builder

    def branch(self, cond: str, then_target: str, else_target: str) -> "CFGBuilder":
        """Terminate with a two-way branch on variable/constant *cond*."""
        atom = Const(int(cond)) if cond.lstrip("-").isdigit() else Var(cond)
        self._block.terminator = CondBranch(atom, then_target, else_target)
        return self._builder

    def to_exit(self) -> "CFGBuilder":
        """Terminate with a jump to the exit block."""
        self._block.terminator = Jump(self._builder.cfg.exit)
        return self._builder


class CFGBuilder:
    """Incrementally construct a :class:`CFG` with auto entry/exit blocks."""

    def __init__(self, entry: str = "entry", exit: str = "exit") -> None:
        self.cfg = CFG(entry, exit)
        self.cfg.add_block(BasicBlock(entry))
        self.cfg.add_block(BasicBlock(exit, [], Halt()))
        self._first_user_block: Optional[str] = None

    def block(self, label: str, *instrs: InstrLike) -> _BlockHandle:
        """Create block *label* with the given instructions."""
        blk = self.cfg.add_block(BasicBlock(label))
        if self._first_user_block is None:
            self._first_user_block = label
        for instr in instrs:
            blk.append(_coerce(instr))
        return _BlockHandle(self, blk)

    def entry_to(self, label: str) -> "CFGBuilder":
        """Point the entry block at *label* (defaults to the first block)."""
        self.cfg.block(self.cfg.entry).terminator = Jump(label)
        self.cfg.notify_terminator_changed()
        return self

    def weight(self, src: str, dst: str, w: int) -> "CFGBuilder":
        """Attach an execution frequency to the edge ``src -> dst``."""
        self.cfg.set_weight((src, dst), w)
        return self

    def build(self, validate: bool = True) -> CFG:
        """Finish construction; wires entry if needed and validates."""
        entry_block = self.cfg.block(self.cfg.entry)
        if entry_block.terminator is None:
            if self._first_user_block is None:
                entry_block.terminator = Jump(self.cfg.exit)
            else:
                entry_block.terminator = Jump(self._first_user_block)
            self.cfg.notify_terminator_changed()
        if validate:
            from repro.ir.validate import validate_cfg

            validate_cfg(self.cfg)
        return self.cfg


def cfg_from_edges(
    edges: Sequence[tuple],
    instrs: Optional[dict] = None,
    entry: str = "entry",
    exit: str = "exit",
) -> CFG:
    """Build a CFG from an edge list plus an optional label->instrs map.

    Blocks with two out-edges get a synthetic branch on a fresh variable
    ``p_<label>`` (treated as an opaque predicate).  Useful for the random
    graph generators, where only the shape matters.
    """
    instrs = instrs or {}
    cfg = CFG(entry, exit)
    labels: List[str] = []
    for src, dst in edges:
        for lbl in (src, dst):
            if lbl not in cfg:
                cfg.add_block(BasicBlock(lbl))
                labels.append(lbl)
    if entry not in cfg:
        cfg.add_block(BasicBlock(entry))
    if exit not in cfg:
        cfg.add_block(BasicBlock(exit))

    succs: dict = {}
    for src, dst in edges:
        succs.setdefault(src, [])
        if dst not in succs[src]:
            succs[src].append(dst)

    for label in cfg.labels:
        block = cfg.block(label)
        for text in instrs.get(label, []):
            block.append(_coerce(text))
        targets = succs.get(label, [])
        if label == exit:
            block.terminator = Halt()
        elif len(targets) == 0:
            block.terminator = Jump(exit) if label != exit else Halt()
        elif len(targets) == 1:
            block.terminator = Jump(targets[0])
        elif len(targets) == 2:
            block.terminator = CondBranch(Var(f"p_{label}"), targets[0], targets[1])
        else:
            raise CFGError(
                f"block {label!r} has {len(targets)} successors; at most 2 supported"
            )
    cfg.notify_terminator_changed()
    return cfg
