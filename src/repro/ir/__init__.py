"""Intermediate representation: expressions, instructions, blocks, CFGs.

This package provides the program representation that the whole
reproduction is built on.  It mirrors the setting of the Lazy Code Motion
paper (Knoop, Ruething & Steffen, PLDI 1992):

* programs are flow graphs of basic blocks,
* every statement has the three-address form ``v = e`` where ``e`` is a
  single-operator expression,
* the flow graph has a unique, empty ENTRY block and a unique, empty EXIT
  block, and every block lies on a path from ENTRY to EXIT.

The public surface re-exported here is everything a user of the library
needs to construct and manipulate programs.
"""

from repro.ir.expr import (
    BinExpr,
    Const,
    Expr,
    UnaryExpr,
    Var,
    expr_key,
    parse_expr,
)
from repro.ir.instr import (
    Assign,
    CondBranch,
    Halt,
    Instr,
    Jump,
    Terminator,
)
from repro.ir.block import BasicBlock
from repro.ir.cfg import CFG, CFGError, Edge
from repro.ir.builder import CFGBuilder
from repro.ir.edgesplit import split_critical_edges, critical_edges
from repro.ir.validate import validate_cfg, ValidationError
from repro.ir.pretty import pretty_cfg, pretty_block
from repro.ir.dot import cfg_to_dot

__all__ = [
    "Assign",
    "BasicBlock",
    "BinExpr",
    "CFG",
    "CFGBuilder",
    "CFGError",
    "CondBranch",
    "Const",
    "Edge",
    "Expr",
    "Halt",
    "Instr",
    "Jump",
    "Terminator",
    "UnaryExpr",
    "ValidationError",
    "Var",
    "cfg_to_dot",
    "critical_edges",
    "expr_key",
    "parse_expr",
    "pretty_block",
    "pretty_cfg",
    "split_critical_edges",
    "validate_cfg",
]
