"""Basic blocks: straight-line instruction sequences with one terminator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Set, Tuple

from repro.ir.expr import Expr
from repro.ir.instr import Assign, Halt, Terminator


@dataclass
class BasicBlock:
    """A labelled basic block.

    Attributes:
        label: unique block name within its CFG.
        instrs: the straight-line ``v = e`` statements, executed in order.
        terminator: how control leaves the block.  ``None`` while a block
            is under construction; a valid CFG requires every block to be
            terminated.
    """

    label: str
    instrs: List[Assign] = field(default_factory=list)
    terminator: Optional[Terminator] = None

    def append(self, instr: Assign) -> None:
        """Add an instruction to the end of the block body."""
        if not isinstance(instr, Assign):
            raise TypeError(f"blocks hold Assign instructions, got {instr!r}")
        self.instrs.append(instr)

    def successors(self) -> Tuple[str, ...]:
        """Labels this block transfers control to (empty for EXIT)."""
        if self.terminator is None:
            return ()
        return self.terminator.successors()

    @property
    def is_empty(self) -> bool:
        """True if the block contains no instructions (ENTRY/EXIT style)."""
        return not self.instrs

    def computations(self) -> Iterator[Tuple[int, Expr]]:
        """Yield ``(index, expr)`` for every PRE candidate in the block."""
        for i, instr in enumerate(self.instrs):
            if instr.is_computation:
                yield i, instr.expr

    def defs(self) -> Set[str]:
        """The set of variables assigned anywhere in the block."""
        return {instr.target for instr in self.instrs}

    def uses(self) -> Set[str]:
        """The set of variables read anywhere in the block (incl. branch)."""
        used: Set[str] = set()
        for instr in self.instrs:
            used.update(instr.uses())
        if self.terminator is not None:
            used.update(self.terminator.uses())
        return used

    def copy(self) -> "BasicBlock":
        """Return a block with a fresh instruction list (instrs are frozen)."""
        return BasicBlock(self.label, list(self.instrs), self.terminator)

    def __str__(self) -> str:
        lines = [f"{self.label}:"]
        lines.extend(f"  {instr}" for instr in self.instrs)
        if self.terminator is not None and not isinstance(self.terminator, Halt):
            lines.append(f"  {self.terminator}")
        elif isinstance(self.terminator, Halt):
            lines.append("  halt")
        return "\n".join(lines)
