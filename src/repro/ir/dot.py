"""Graphviz (DOT) export of CFGs, for inspecting examples and figures."""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Set

from repro.ir.cfg import CFG, Edge


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\l")


def cfg_to_dot(
    cfg: CFG,
    name: str = "cfg",
    highlight_blocks: Optional[Set[str]] = None,
    highlight_edges: Optional[Set[Edge]] = None,
    annotate: Optional[Callable[[str], Iterable[str]]] = None,
) -> str:
    """Render *cfg* as a DOT digraph string.

    Highlighted blocks/edges are drawn in red — the benchmarks use this to
    visualise insertion points chosen by the different transformations.
    """
    highlight_blocks = highlight_blocks or set()
    highlight_edges = highlight_edges or set()
    lines = [f"digraph {name} {{", "  node [shape=box, fontname=monospace];"]
    for block in cfg:
        body = [f"{block.label}:"]
        if annotate is not None:
            body.extend(f";; {note}" for note in annotate(block.label))
        body.extend(str(instr) for instr in block.instrs)
        label = _escape("\n".join(body)) + "\\l"
        color = ', color=red, penwidth=2' if block.label in highlight_blocks else ""
        lines.append(f'  "{block.label}" [label="{label}"{color}];')
    for src, dst in cfg.edges():
        attrs = ' [color=red, penwidth=2]' if (src, dst) in highlight_edges else ""
        lines.append(f'  "{src}" -> "{dst}"{attrs};')
    lines.append("}")
    return "\n".join(lines)
