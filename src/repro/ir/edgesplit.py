"""Critical-edge detection and splitting.

A control flow edge is *critical* when its source has more than one
successor and its target has more than one predecessor.  Node-based code
motion cannot place code on such an edge without either executing it on
unrelated paths (unsafe/pessimising) or duplicating it.  The edge-based
LCM formulation sidesteps the issue by inserting on edges directly, but
the classical presentation — and the node-level KRS formulation — first
splits every critical edge with a fresh empty block.

Splitting preserves program semantics exactly: the new blocks are empty
and jump unconditionally to the original target.
"""

from __future__ import annotations

from typing import Dict, List

from repro.ir.cfg import CFG, Edge
from repro.obs.trace import span


def critical_edges(cfg: CFG) -> List[Edge]:
    """Return all critical edges of *cfg* in deterministic order."""
    result: List[Edge] = []
    for src, dst in cfg.edges():
        if len(cfg.succs(src)) > 1 and len(cfg.preds(dst)) > 1:
            result.append((src, dst))
    return result


def split_critical_edges(cfg: CFG, label_stem: str = "split") -> Dict[Edge, str]:
    """Split every critical edge of *cfg* in place.

    Returns a map from each original critical edge to the label of the
    synthetic block now sitting on it.
    """
    mapping: Dict[Edge, str] = {}
    with span("edgesplit", kind="critical") as sp:
        for src, dst in critical_edges(cfg):
            block = cfg.split_edge(src, dst, f"{label_stem}_{src}_{dst}")
            mapping[(src, dst)] = block.label
        sp.set(splits=len(mapping))
    return mapping


def join_edges(cfg: CFG) -> List[Edge]:
    """All edges whose target has more than one predecessor."""
    return [
        (src, dst) for src, dst in cfg.edges() if len(cfg.preds(dst)) > 1
    ]


def split_join_edges(cfg: CFG, label_stem: str = "split") -> Dict[Edge, str]:
    """Put *cfg* into **edge-split form**: split every edge into a join.

    The node-level formulation places ``t = e`` at node *entries*, so a
    join block's entry is shared by all incoming paths.  For node
    insertion to be as expressive as edge insertion — which the
    optimality theorems require — every edge into a multi-predecessor
    block needs a dedicated landing node, not only the *critical* ones:
    an edge from a single-successor block into a join can host an
    insertion no other node position expresses (its source may end with
    a kill, its target's other predecessors may already carry the
    value).  This subsumes critical-edge splitting.
    """
    mapping: Dict[Edge, str] = {}
    with span("edgesplit", kind="join") as sp:
        for src, dst in join_edges(cfg):
            block = cfg.split_edge(src, dst, f"{label_stem}_{src}_{dst}")
            mapping[(src, dst)] = block.label
        sp.set(splits=len(mapping))
    return mapping
