"""Instructions and block terminators.

A basic block consists of a sequence of :class:`Assign` instructions
followed by exactly one terminator (:class:`Jump`, :class:`CondBranch` or
:class:`Halt`).  Branch conditions are restricted to atomic operands —
the language front-end materialises ``if a < b`` as ``t = a < b; branch t``
— so all PRE candidate computations live in assignments, matching the
paper's ``v = e`` statement form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

from repro.ir.expr import Atom, Const, Expr, Var, expr_vars, is_computation


class InstrError(ValueError):
    """Raised for malformed instructions."""


@dataclass(frozen=True)
class Assign:
    """The three-address statement ``target = expr``."""

    target: str
    expr: Expr

    def __post_init__(self) -> None:
        if not self.target or not isinstance(self.target, str):
            raise InstrError(f"bad assignment target {self.target!r}")

    @property
    def is_computation(self) -> bool:
        """True if the right-hand side is a PRE candidate computation."""
        return is_computation(self.expr)

    def uses(self) -> Tuple[str, ...]:
        """Variable names read by this instruction (with multiplicity)."""
        return expr_vars(self.expr)

    def defines(self) -> str:
        """The variable written by this instruction."""
        return self.target

    def __str__(self) -> str:
        return f"{self.target} = {self.expr}"


Instr = Assign


@dataclass(frozen=True)
class Jump:
    """Unconditional transfer to *target*."""

    target: str

    def uses(self) -> Tuple[str, ...]:
        return ()

    def successors(self) -> Tuple[str, ...]:
        return (self.target,)

    def __str__(self) -> str:
        return f"goto {self.target}"


@dataclass(frozen=True)
class CondBranch:
    """Two-way branch on an atomic condition.

    Control transfers to *then_target* when the condition is non-zero and
    to *else_target* otherwise.
    """

    cond: Atom
    then_target: str
    else_target: str

    def __post_init__(self) -> None:
        if not isinstance(self.cond, (Var, Const)):
            raise InstrError(
                "branch conditions must be atomic (materialise the "
                f"comparison into a temp first), got {self.cond!r}"
            )

    def uses(self) -> Tuple[str, ...]:
        if isinstance(self.cond, Var):
            return (self.cond.name,)
        return ()

    def successors(self) -> Tuple[str, ...]:
        return (self.then_target, self.else_target)

    def __str__(self) -> str:
        return f"if {self.cond} goto {self.then_target} else {self.else_target}"


@dataclass(frozen=True)
class Halt:
    """Terminator of the EXIT block; execution stops here."""

    def uses(self) -> Tuple[str, ...]:
        return ()

    def successors(self) -> Tuple[str, ...]:
        return ()

    def __str__(self) -> str:
        return "halt"


Terminator = Union[Jump, CondBranch, Halt]
