"""The control flow graph.

A :class:`CFG` is a set of labelled basic blocks with a distinguished
entry and exit.  Following the paper, the entry and exit blocks are empty
and every block is assumed to lie on some path from entry to exit
(enforced by :func:`repro.ir.validate.validate_cfg`).

Edges are implicit in block terminators: the CFG keeps predecessor and
successor maps in sync with the blocks and offers graph surgery used by
the transformation engine (edge splitting for insertions on edges).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.ir.block import BasicBlock
from repro.ir.instr import Assign, CondBranch, Jump, Terminator

#: A control flow edge, as a (source label, target label) pair.
Edge = Tuple[str, str]


class CFGError(ValueError):
    """Raised for structurally invalid CFG operations."""


class CFG:
    """A control flow graph of basic blocks.

    Blocks are kept in insertion order, which also serves as the default
    iteration order for deterministic output.  Predecessor/successor maps
    are recomputed lazily after mutations.
    """

    def __init__(self, entry: str = "entry", exit: str = "exit") -> None:
        self._blocks: Dict[str, BasicBlock] = {}
        self.entry = entry
        self.exit = exit
        self._preds: Optional[Dict[str, List[str]]] = None
        self._weights: Dict[Edge, int] = {}

    # ------------------------------------------------------------------
    # Block management
    # ------------------------------------------------------------------

    def add_block(self, block: BasicBlock) -> BasicBlock:
        """Insert *block*; its label must be fresh."""
        if block.label in self._blocks:
            raise CFGError(f"duplicate block label {block.label!r}")
        self._blocks[block.label] = block
        self._dirty()
        return block

    def new_block(self, label: str) -> BasicBlock:
        """Create, insert and return an empty block named *label*."""
        return self.add_block(BasicBlock(label))

    def remove_block(self, label: str) -> None:
        """Remove the block *label*.  Callers must fix dangling edges."""
        if label in (self.entry, self.exit):
            raise CFGError(f"cannot remove the {label!r} block")
        if label not in self._blocks:
            raise CFGError(f"no block named {label!r}")
        del self._blocks[label]
        self._dirty()

    def block(self, label: str) -> BasicBlock:
        """Return the block named *label*."""
        try:
            return self._blocks[label]
        except KeyError:
            raise CFGError(f"no block named {label!r}") from None

    def __contains__(self, label: str) -> bool:
        return label in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self._blocks.values())

    @property
    def labels(self) -> List[str]:
        """All block labels in insertion order."""
        return list(self._blocks.keys())

    @property
    def blocks(self) -> List[BasicBlock]:
        """All blocks in insertion order."""
        return list(self._blocks.values())

    def fresh_label(self, stem: str) -> str:
        """Return a label derived from *stem* that is not yet in use."""
        if stem not in self._blocks:
            return stem
        i = 1
        while f"{stem}.{i}" in self._blocks:
            i += 1
        return f"{stem}.{i}"

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------

    def _dirty(self) -> None:
        self._preds = None

    def notify_terminator_changed(self) -> None:
        """Invalidate cached edge maps after a terminator was mutated."""
        self._dirty()

    def set_terminator(self, label: str, term: Terminator) -> None:
        """Set the terminator of block *label* and refresh edge caches."""
        self.block(label).terminator = term
        self._dirty()

    def succs(self, label: str) -> Tuple[str, ...]:
        """Successor labels of *label*, in branch order."""
        return self.block(label).successors()

    def preds(self, label: str) -> List[str]:
        """Predecessor labels of *label*, in deterministic block order."""
        if self._preds is None:
            preds: Dict[str, List[str]] = {name: [] for name in self._blocks}
            for block in self._blocks.values():
                for succ in block.successors():
                    if succ not in preds:
                        raise CFGError(
                            f"block {block.label!r} targets missing block {succ!r}"
                        )
                    preds[succ].append(block.label)
            self._preds = preds
        return list(self._preds[label])

    def edges(self) -> List[Edge]:
        """All control flow edges in deterministic order."""
        result: List[Edge] = []
        for block in self._blocks.values():
            seen: Set[str] = set()
            for succ in block.successors():
                if succ not in seen:  # parallel edges collapse to one
                    result.append((block.label, succ))
                    seen.add(succ)
        return result

    def has_edge(self, src: str, dst: str) -> bool:
        """True if control can transfer directly from *src* to *dst*."""
        return dst in self.block(src).successors()

    # ------------------------------------------------------------------
    # Weights (execution frequencies; optional, used by profiling tools)
    # ------------------------------------------------------------------

    def set_weight(self, edge: Edge, weight: int) -> None:
        """Attach a (positive) execution frequency to *edge*."""
        if weight <= 0:
            raise CFGError(
                "classic PRE assumes all edges have non-zero frequency "
                f"(Assumption 2); got weight {weight} for {edge}"
            )
        self._weights[edge] = weight

    def weight(self, edge: Edge, default: int = 1) -> int:
        """The execution frequency of *edge* (defaults to 1)."""
        return self._weights.get(edge, default)

    # ------------------------------------------------------------------
    # Surgery
    # ------------------------------------------------------------------

    def retarget(self, src: str, old_dst: str, new_dst: str) -> None:
        """Redirect every edge ``src -> old_dst`` to ``src -> new_dst``."""
        block = self.block(src)
        term = block.terminator
        if term is None:
            raise CFGError(f"block {src!r} has no terminator")
        if isinstance(term, Jump):
            if term.target != old_dst:
                raise CFGError(f"no edge {src!r} -> {old_dst!r}")
            block.terminator = Jump(new_dst)
        elif isinstance(term, CondBranch):
            then_t = new_dst if term.then_target == old_dst else term.then_target
            else_t = new_dst if term.else_target == old_dst else term.else_target
            if (then_t, else_t) == (term.then_target, term.else_target):
                raise CFGError(f"no edge {src!r} -> {old_dst!r}")
            block.terminator = CondBranch(term.cond, then_t, else_t)
        else:
            raise CFGError(f"block {src!r} has no outgoing edges")
        self._dirty()

    def split_edge(self, src: str, dst: str, label: Optional[str] = None) -> BasicBlock:
        """Insert a fresh empty block on the edge ``src -> dst``.

        Returns the new block, which jumps unconditionally to *dst*.  Used
        both for critical-edge splitting and to realise insertions on
        edges (``INSERT(m, n)`` of the transformation).
        """
        if not self.has_edge(src, dst):
            raise CFGError(f"no edge {src!r} -> {dst!r} to split")
        new_label = self.fresh_label(label or f"{src}__{dst}")
        new_block = BasicBlock(new_label, [], Jump(dst))
        self._blocks[new_label] = new_block
        self.retarget(src, dst, new_label)
        weight = self._weights.pop((src, dst), None)
        if weight is not None:
            self._weights[(src, new_label)] = weight
            self._weights[(new_label, dst)] = weight
        self._dirty()
        return new_block

    # ------------------------------------------------------------------
    # Region closures (dirty-set bookkeeping for scoped passes)
    # ------------------------------------------------------------------

    def reachable_from(self, labels) -> Set[str]:
        """Blocks reachable from *labels* along successor edges.

        Inclusive of the seeds themselves; labels not (or no longer)
        in the graph are skipped.  This is the forward closure a
        forward dataflow pass must revisit after the seed blocks were
        edited: facts can only change at the edits and downstream of
        them.
        """
        seen: Set[str] = set()
        stack = [label for label in labels if label in self._blocks]
        while stack:
            label = stack.pop()
            if label in seen:
                continue
            seen.add(label)
            for succ in self._blocks[label].successors():
                if succ not in seen and succ in self._blocks:
                    stack.append(succ)
        return seen

    def reaching(self, labels) -> Set[str]:
        """Blocks that can reach *labels* along predecessor edges.

        Inclusive of the seeds; the backward counterpart of
        :meth:`reachable_from`, bounding where a backward analysis
        (liveness) can change after the seed blocks were edited.
        """
        seen: Set[str] = set()
        stack = [label for label in labels if label in self._blocks]
        while stack:
            label = stack.pop()
            if label in seen:
                continue
            seen.add(label)
            for pred in self.preds(label):
                if pred not in seen:
                    stack.append(pred)
        return seen

    # ------------------------------------------------------------------
    # Whole-graph queries and copies
    # ------------------------------------------------------------------

    def variables(self) -> Set[str]:
        """Every variable name defined or used anywhere in the graph."""
        names: Set[str] = set()
        for block in self:
            names.update(block.defs())
            names.update(block.uses())
        return names

    def instructions(self) -> Iterator[Tuple[str, int, Assign]]:
        """Yield ``(block label, index, instruction)`` over the graph."""
        for block in self:
            for i, instr in enumerate(block.instrs):
                yield block.label, i, instr

    def static_computation_count(self) -> int:
        """Number of operator-expression occurrences in the whole graph."""
        return sum(1 for _, _, instr in self.instructions() if instr.is_computation)

    def copy(self) -> "CFG":
        """Deep-copy the graph (instructions are immutable and shared)."""
        clone = CFG(self.entry, self.exit)
        for block in self:
            clone._blocks[block.label] = block.copy()
        clone._weights = dict(self._weights)
        return clone

    def __str__(self) -> str:
        return "\n".join(str(self.block(label)) for label in self.labels)
