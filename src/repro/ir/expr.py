"""Expression language for the three-address IR.

The Lazy Code Motion setting restricts right-hand sides to *single
operator* expressions: a constant, a variable, or one operator applied to
atomic operands.  This module defines those expression forms as small,
immutable, hashable value objects, plus helpers to inspect and parse them.

Expression identity (structural equality) is what partial redundancy
elimination reasons about: two occurrences of ``a + b`` are "the same
computation" precisely when the :class:`Expr` values compare equal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple, Union


#: Operators supported by :class:`BinExpr`, with their evaluation semantics.
BINARY_OPS = ("+", "-", "*", "/", "%", "<", "<=", ">", ">=", "==", "!=", "&", "|", "^", "<<", ">>", "min", "max")

#: Operators supported by :class:`UnaryExpr`.
UNARY_OPS = ("-", "!", "~", "abs")


class ExprError(ValueError):
    """Raised for malformed expressions (unknown operator, bad operand)."""


@dataclass(frozen=True)
class Const:
    """An integer literal operand."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Var:
    """A named program variable operand."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ExprError("variable name must be non-empty")

    def __str__(self) -> str:
        return self.name


#: Atomic operands allowed inside an operator expression.
Atom = Union[Const, Var]


def _check_atom(value: Atom, role: str) -> None:
    if not isinstance(value, (Const, Var)):
        raise ExprError(
            f"{role} must be a Const or Var (single-operator IR), got {value!r}"
        )


@dataclass(frozen=True)
class UnaryExpr:
    """A single unary operator applied to an atomic operand, e.g. ``-a``."""

    op: str
    operand: Atom

    def __post_init__(self) -> None:
        if self.op not in UNARY_OPS:
            raise ExprError(f"unknown unary operator {self.op!r}")
        _check_atom(self.operand, "unary operand")

    def __str__(self) -> str:
        if self.op.isalpha():
            return f"{self.op}({self.operand})"
        return f"{self.op}{self.operand}"


@dataclass(frozen=True)
class BinExpr:
    """A single binary operator applied to atomic operands, e.g. ``a + b``."""

    op: str
    left: Atom
    right: Atom

    def __post_init__(self) -> None:
        if self.op not in BINARY_OPS:
            raise ExprError(f"unknown binary operator {self.op!r}")
        _check_atom(self.left, "left operand")
        _check_atom(self.right, "right operand")

    def __str__(self) -> str:
        if self.op.isalpha():
            return f"{self.op}({self.left}, {self.right})"
        return f"{self.left} {self.op} {self.right}"


#: Any right-hand side of an assignment.
Expr = Union[Const, Var, UnaryExpr, BinExpr]


def is_computation(expr: Expr) -> bool:
    """Return True if *expr* is a PRE candidate.

    Only operator expressions are candidates: bare constants and variable
    copies involve no computation, so there is nothing to eliminate.
    """
    return isinstance(expr, (UnaryExpr, BinExpr))


def expr_vars(expr: Expr) -> Tuple[str, ...]:
    """Return the names of the variables *expr* reads, in syntactic order.

    Duplicates are preserved (``a + a`` reads ``a`` twice) so callers that
    need multiplicity keep it; use ``set(expr_vars(e))`` otherwise.
    """
    if isinstance(expr, Const):
        return ()
    if isinstance(expr, Var):
        return (expr.name,)
    if isinstance(expr, UnaryExpr):
        return expr_vars(expr.operand)
    if isinstance(expr, BinExpr):
        return expr_vars(expr.left) + expr_vars(expr.right)
    raise ExprError(f"not an expression: {expr!r}")


def expr_atoms(expr: Expr) -> Iterator[Atom]:
    """Yield the atomic operands of *expr* in syntactic order."""
    if isinstance(expr, (Const, Var)):
        yield expr
    elif isinstance(expr, UnaryExpr):
        yield expr.operand
    elif isinstance(expr, BinExpr):
        yield expr.left
        yield expr.right
    else:
        raise ExprError(f"not an expression: {expr!r}")


def expr_key(expr: Expr) -> str:
    """Return a short, deterministic, human-readable key for *expr*.

    Used to name the temporaries introduced by code motion (``t_a_plus_b``)
    and to index analysis results.  Distinct expressions map to distinct
    keys.
    """
    op_names = {
        "+": "plus", "-": "minus", "*": "times", "/": "div", "%": "mod",
        "<": "lt", "<=": "le", ">": "gt", ">=": "ge", "==": "eq",
        "!=": "ne", "&": "and", "|": "or", "^": "xor", "<<": "shl",
        ">>": "shr", "!": "not", "~": "inv", "min": "min", "max": "max",
        "abs": "abs",
    }

    def atom_key(atom: Atom) -> str:
        if isinstance(atom, Const):
            return f"c{atom.value}".replace("-", "neg")
        return atom.name

    if isinstance(expr, Const):
        return atom_key(expr)
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, UnaryExpr):
        return f"{op_names[expr.op]}_{atom_key(expr.operand)}"
    if isinstance(expr, BinExpr):
        return f"{atom_key(expr.left)}_{op_names[expr.op]}_{atom_key(expr.right)}"
    raise ExprError(f"not an expression: {expr!r}")


# ---------------------------------------------------------------------------
# A tiny expression parser, so tests and examples can write "a + b" instead
# of BinExpr("+", Var("a"), Var("b")).  The full language front-end lives in
# repro.lang; this parser handles only single-operator right-hand sides.
# ---------------------------------------------------------------------------

def _parse_atom(token: str) -> Atom:
    token = token.strip()
    if not token:
        raise ExprError("empty operand")
    if token.lstrip("-").isdigit():
        return Const(int(token))
    if token.isidentifier():
        return Var(token)
    raise ExprError(f"cannot parse atom {token!r}")


def parse_expr(text: str) -> Expr:
    """Parse a single-operator expression like ``"a + b"`` or ``"-x"``.

    Supports the operator inventory of :data:`BINARY_OPS` and
    :data:`UNARY_OPS`, atoms (``"a"``, ``"42"``) and the function-call
    forms ``min(a, b)``, ``max(a, b)`` and ``abs(a)``.
    """
    text = text.strip()
    if not text:
        raise ExprError("empty expression")

    # Function-call forms: min(a,b), max(a,b), abs(a).
    for fn in ("min", "max", "abs"):
        if text.startswith(fn + "(") and text.endswith(")"):
            inner = text[len(fn) + 1 : -1]
            parts = [p.strip() for p in inner.split(",")]
            if fn == "abs":
                if len(parts) != 1:
                    raise ExprError(f"abs takes one operand, got {inner!r}")
                return UnaryExpr("abs", _parse_atom(parts[0]))
            if len(parts) != 2:
                raise ExprError(f"{fn} takes two operands, got {inner!r}")
            return BinExpr(fn, _parse_atom(parts[0]), _parse_atom(parts[1]))

    # Binary operators, longest first so "<=" wins over "<".
    symbolic = [op for op in BINARY_OPS if not op.isalpha()]
    for op in sorted(symbolic, key=len, reverse=True):
        # Search from position 1 so a leading unary minus is not mistaken
        # for a binary operator.
        idx = text.find(op, 1)
        while idx != -1:
            left, right = text[:idx], text[idx + len(op) :]
            # Guard against splitting "a <= b" at "<" or "-5" at "-".
            if left.strip() and right.strip():
                try:
                    return BinExpr(op, _parse_atom(left), _parse_atom(right))
                except ExprError:
                    pass
            idx = text.find(op, idx + 1)

    # Unary prefix operators.  "-5" stays a negative constant; "-x" is a
    # unary negation of the variable x.
    for op in UNARY_OPS:
        if not op.isalpha() and text.startswith(op):
            rest = text[len(op) :].strip()
            if rest and not (op == "-" and rest.isdigit()):
                return UnaryExpr(op, _parse_atom(rest))

    return _parse_atom(text)
