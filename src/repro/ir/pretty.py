"""Human-readable rendering of blocks and CFGs.

Rendering is deterministic (insertion order) so it can be used in golden
tests and example output.  ``pretty_cfg`` optionally annotates each block
with analysis facts, which the examples use to visualise the LCM
predicates next to the code they describe.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Optional

from repro.ir.block import BasicBlock
from repro.ir.cfg import CFG


def pretty_block(
    block: BasicBlock,
    annotations: Optional[Iterable[str]] = None,
    indent: str = "  ",
) -> str:
    """Render one block, optionally with annotation lines under the label."""
    lines = [f"{block.label}:"]
    if annotations:
        for note in annotations:
            lines.append(f"{indent};; {note}")
    for instr in block.instrs:
        lines.append(f"{indent}{instr}")
    if block.terminator is not None:
        lines.append(f"{indent}{block.terminator}")
    return "\n".join(lines)


def pretty_cfg(
    cfg: CFG,
    annotate: Optional[Callable[[str], Iterable[str]]] = None,
) -> str:
    """Render the whole graph.

    Args:
        cfg: the graph to render.
        annotate: optional callback mapping a block label to annotation
            strings printed under that block's label, e.g. analysis facts.
    """
    chunks = []
    for label in cfg.labels:
        notes = list(annotate(label)) if annotate is not None else None
        chunks.append(pretty_block(cfg.block(label), notes))
    return "\n".join(chunks)


def facts_annotator(facts: Mapping[str, Mapping[str, object]]) -> Callable[[str], Iterable[str]]:
    """Build an annotator from ``{fact name: {label: value}}`` tables."""

    def annotate(label: str):
        for name, table in facts.items():
            if label in table:
                yield f"{name} = {table[label]}"

    return annotate
