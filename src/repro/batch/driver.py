"""The corpus driver: optimize many programs with per-item fault isolation.

One ``optimize`` call processes one graph; real PRE deployments run
over whole translation-unit corpora.  :func:`iter_batch` takes a list
of :class:`WorkItem` (built from any corpus source — directories,
archives, manifests, seeded generation — via :mod:`repro.corpus`, or
from in-memory graphs with :func:`items_from_cfgs`) and streams one
:class:`~repro.batch.report.ItemResult` per item as it completes;
:func:`run_batch` is a thin collector on top that folds the stream
into the input-ordered, deterministic
:class:`~repro.batch.report.BatchReport`.  Work runs on a
:class:`~repro.batch.supervisor.Supervisor` — long-lived worker
processes owned over ``multiprocessing`` pipes — which provides:

* **fault isolation** — an item that raises anywhere (parse error,
  validation failure, transform bug) produces a structured
  ``ItemResult(status="error")`` record carrying the message and
  traceback; the rest of the batch is unaffected;
* **airtight timeouts** — with ``BatchConfig.timeout`` set, a
  Python-level hang is interrupted in the worker (SIGALRM, so the
  worker stays warm); an item stuck in an *uninterruptible C call* is
  killed from the parent (SIGKILL after ``timeout + grace``) and the
  worker respawned — either way a clean ``status="timeout"`` record;
* **single-item crash attribution** — one item runs per worker at a
  time, so a worker lost to a segfault/OOM kill produces exactly one
  ``worker lost`` error record; other items transparently reschedule
  onto the respawned worker;
* **worker recycling** — ``max_tasks_per_worker`` retires workers
  after N items to bound memory growth over long corpora;
* **early exit** — ``stop_after_failures`` and ``deadline_s`` cancel
  the remainder of a batch; unfinished items are recorded (and
  streamed) as ``status="skipped"``;
* **bounded retry** — ``BatchConfig.retries`` re-runs failed items up
  to N extra times, for transient failures;
* **warm workers** — each worker process keeps one
  :class:`~repro.obs.manager.AnalysisManager` for its whole lifetime,
  so items with identical content hit the dataflow-solution cache, and
  runs each item under its own :class:`~repro.obs.trace.Tracer` whose
  summary/counters travel back in the item record;
* **a shared persistent cache** — with ``BatchConfig.store_path`` set,
  every worker's manager is backed by one on-disk
  :class:`~repro.obs.store.SolutionStore` (the CLI's ``--cache-dir``;
  see ``docs/CACHING.md``);
* **determinism** — :func:`run_batch` reports in input order
  regardless of completion order, and the optimised IR per program is
  bit-identical whatever ``jobs`` is (workers share no mutable state);
* **longest-processing-time scheduling** — the supervisor dispatches
  items in descending predicted-cost order (:attr:`WorkItem.cost`),
  the classic LPT heuristic.  Scheduling only reorders *execution*;
  the collected report stays input-ordered.

Batches scale out two ways: :func:`shard_items` deterministically
partitions a corpus by a stable hash of item *names* (``repro batch
--shard i/n``; per-shard reports recombine byte-identically with
:func:`repro.batch.report.merge_report_dicts`), and
``BatchConfig.differential`` turns a batch into a differential fuzzer
that executes each program before and after optimization on seeded
random inputs (:mod:`repro.batch.differential`), flagging miscompiles
as ``status="divergent"`` records.

``jobs=1`` runs serially in-process through the *same* item code path
(no worker processes), which is both the baseline for throughput
comparisons and the debug mode — breakpoints and pdb work.  Serial
mode keeps the soft SIGALRM timeout but has no parent to kill a
C-call hang; hard isolation needs ``jobs >= 2``.
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
import traceback as traceback_module
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.batch.report import (
    STATUS_DIVERGENT,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_SKIPPED,
    STATUS_TIMEOUT,
    BatchReport,
    ItemResult,
)
from repro.batch.supervisor import COUNTER_SKIPPED, Supervisor
from repro.ir.cfg import CFG
from repro.obs import trace
from repro.obs.manager import AnalysisManager
from repro.obs.store import SolutionStore
from repro.obs.trace import Tracer, tracing

#: File suffixes a corpus directory is scanned for.
CORPUS_SUFFIXES = (".mini", ".json")


@dataclass(frozen=True)
class WorkItem:
    """One program to optimize, in a transportable (picklable) form.

    Kinds:

    ``path``
        *payload* is a filesystem path; the **worker** reads and parses
        it, so unreadable/malformed files become error records.
    ``source``
        *payload* is mini-language source text.
    ``json``
        *payload* is a serialised CFG (``cfg_to_json``).
    ``call``
        *payload* is a ``"module.path:function"`` reference resolved in
        the worker; the function must return a :class:`CFG`.  This is
        the extension point for custom loaders (and what the
        fault-injection payloads in :mod:`repro.batch.testing` use).
    ``generated``
        *payload* is a ``(seed, GeneratorConfig)`` spec
        (:func:`repro.corpus.generate.spec_payload`); the worker mints
        the program on demand, so whole corpora travel as seeds.

    *cost* is a relative work prediction (any nonnegative scale) used
    by the supervisor's LPT scheduling; 0 means unknown, and equal
    costs keep input order.
    """

    name: str
    kind: str
    payload: str
    cost: float = 0.0


def items_from_dir(
    directory: str,
    suffixes: Sequence[str] = CORPUS_SUFFIXES,
    recursive: bool = False,
) -> List[WorkItem]:
    """Scan *directory* for corpus files, sorted by name (deterministic).

    Suffix matching is case-insensitive, *recursive* walks the whole
    tree, and item names are derived from the path relative to the
    root (so equal stems in different subdirectories stay distinct).
    Raises ``ValueError`` when the directory does not exist or holds no
    matching files — an empty batch is almost always a wrong path.
    (Thin alias of :func:`repro.corpus.sources.scan_directory`, kept
    for callers that predate the corpus subsystem.)
    """
    from repro.corpus.sources import scan_directory

    return scan_directory(directory, suffixes=suffixes, recursive=recursive)


def stable_hash(name: str) -> int:
    """A platform/process-independent 64-bit hash of an item name.

    Used for shard assignment and per-item differential input seeding;
    must never change, or shards from different builds stop agreeing.
    """
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def shard_of(name: str, total: int) -> int:
    """The 0-based shard (of *total*) owning item *name*."""
    return stable_hash(name) % total


def shard_items(
    items: Sequence[WorkItem], index: int, total: int
) -> List[WorkItem]:
    """The subsequence of *items* belonging to shard *index* of *total*.

    Assignment hashes the item **name** (:func:`shard_of`), not the
    list position, so membership survives corpus insertions and
    deletions and is identical however the caller ordered the list.
    Relative order within the shard is preserved.  *index* is 0-based
    here; the CLI's ``--shard i/n`` is 1-based and subtracts one.
    """
    if total < 1:
        raise ValueError(f"shard count must be >= 1, got {total}")
    if not 0 <= index < total:
        raise ValueError(
            f"shard index {index} out of range for {total} shard"
            f"{'s' if total != 1 else ''}"
        )
    return [item for item in items if shard_of(item.name, total) == index]


def items_from_cfgs(
    cfgs: Iterable[CFG],
    names: Optional[Sequence[str]] = None,
) -> List[WorkItem]:
    """Wrap in-memory graphs as work items (serialised for transport)."""
    from repro.ir.serialize import cfg_to_json

    items = []
    for i, cfg in enumerate(cfgs):
        name = names[i] if names is not None else f"cfg{i}"
        cost = float(len(cfg) * max(1, cfg.static_computation_count()))
        items.append(WorkItem(name, "json", cfg_to_json(cfg), cost=cost))
    return items


@dataclass(frozen=True)
class BatchConfig:
    """Knobs for :func:`run_batch` / :func:`iter_batch`.

    Attributes:
        pass_: the registered optimisation pass to run per program.
        pipeline: run the full standard pass pipeline instead.
        jobs: worker processes; 1 means serial in-process.
        timeout: per-item wall-clock budget in seconds (None: none).
        grace: extra seconds past *timeout* the supervisor waits for
            the in-worker soft timeout to fire before SIGKILLing the
            worker — the hard deadline is ``timeout + grace``.
        retries: extra attempts for items that error or time out.
        max_tasks_per_worker: recycle (retire and respawn) a worker
            after it served this many items, bounding per-process
            memory growth (None: workers live for the whole batch).
        stop_after_failures: cancel the rest of the batch once this
            many items failed; unfinished items are recorded as
            ``status="skipped"`` (None: never).
        deadline_s: whole-batch wall-clock budget; on expiry the
            remainder is cancelled as ``skipped`` (None: none).
        cache: whether worker analysis managers memoize (the CLI's
            ``--no-cache`` turns this off).
        store_path: directory of a shared on-disk
            :class:`~repro.obs.store.SolutionStore` every worker's
            manager consults and writes through (None: memory-only).
            Safe to share across concurrent batches and invocations.
        keep_ir: carry the optimised program (serialised JSON) in each
            ok item record — bulky, but what differential checks need.
        analyze: run the LCM analysis stack instead of transforming;
            ok records carry the :meth:`repro.api.AnalyzeOutcome.to_dict`
            payload in their ``analysis`` field (what the ``repro
            serve`` daemon's ``analyze`` op dispatches).
        differential: after optimizing, execute the original and the
            transformed program on ``diff_runs`` seeded random inputs
            and compare observable behaviour
            (:mod:`repro.batch.differential`); a mismatch turns the
            record into ``status="divergent"`` with a structured
            ``differential`` block.  Incompatible with ``analyze``
            (there is no transformed program to compare).
        diff_runs: input environments per item in differential mode.
        diff_seed: base seed for differential inputs; each item mixes
            in a stable hash of its *name*, so shard and unsharded
            runs draw identical decks.
        diff_max_steps: interpreter step budget per differential run
            (generated loops can iterate; runs where the *original*
            exhausts the budget are skipped, not failed).
    """

    pass_: str = "lcm"
    pipeline: bool = False
    jobs: int = 1
    timeout: Optional[float] = None
    grace: float = 1.0
    retries: int = 0
    max_tasks_per_worker: Optional[int] = None
    stop_after_failures: Optional[int] = None
    deadline_s: Optional[float] = None
    cache: bool = True
    store_path: Optional[str] = None
    keep_ir: bool = False
    analyze: bool = False
    differential: bool = False
    diff_runs: int = 8
    diff_seed: int = 0
    diff_max_steps: int = 2_000_000

    def __post_init__(self) -> None:
        if self.differential and self.analyze:
            raise ValueError(
                "differential mode compares optimized execution; it "
                "cannot be combined with analyze=True"
            )


# ---------------------------------------------------------------------------
# Worker side.  One warm AnalysisManager per process, installed by the
# supervisor's worker entry point; the serial path calls the
# initializer itself so jobs=1 exercises the identical item code path.
# ---------------------------------------------------------------------------

_WORKER_MANAGER: Optional[AnalysisManager] = None


def _init_worker(cache_enabled: bool, store_path: Optional[str] = None) -> None:
    """Create this process's warm analysis manager.

    With *store_path*, the manager gets the shared on-disk tier — each
    worker opens its own :class:`SolutionStore` handle on the common
    directory (the store's atomic writes make that safe).
    """
    global _WORKER_MANAGER
    store = SolutionStore(store_path) if store_path else None
    _WORKER_MANAGER = AnalysisManager(enabled=cache_enabled, store=store)


class _ItemTimeout(Exception):
    """Raised inside a worker when an item exceeds its time budget."""


def _raise_timeout(signum, frame):
    raise _ItemTimeout()


def _load_item(item: WorkItem) -> CFG:
    """Materialise the item's CFG (inside the worker, so failures are
    per-item records)."""
    from repro import api

    if item.kind in api.KINDS:
        return api.load_cfg(item.payload, item.kind)
    if item.kind == "call":
        import importlib

        module_name, _, attr = item.payload.partition(":")
        fn = getattr(importlib.import_module(module_name), attr)
        return fn()
    raise ValueError(f"unknown work-item kind {item.kind!r}")


def _execute_item(cfg: CFG, config: BatchConfig, manager: AnalysisManager):
    """One unit of work through the :mod:`repro.api` facade."""
    from repro import api

    if config.analyze:
        return api.analyze_cfg(cfg, manager=manager)
    return api.optimize_cfg(
        cfg,
        config.pass_,
        pipeline=config.pipeline,
        manager=manager,
        keep_ir=config.keep_ir,
    )


def _diff_item(item, cfg, outcome, config: BatchConfig):
    """The differential block for one optimised item.

    The input deck is seeded from ``diff_seed`` mixed with the stable
    hash of the item *name* — never its batch position — so shard runs
    and the unsharded run execute identical environments and their
    records stay byte-comparable.  For ``generated`` items the minting
    seed and generator config ride along, making a divergence
    reproducible from the report alone.  Pipeline runs skip the
    branch-decision comparison (branch folding legitimately removes
    decisions); single-pass code motion must preserve them exactly.
    """
    from repro.batch.differential import diff_cfgs

    deck_seed = (config.diff_seed + stable_hash(item.name)) % 2**63
    block = diff_cfgs(
        cfg,
        outcome.cfg,
        runs=config.diff_runs,
        seed=deck_seed,
        max_steps=config.diff_max_steps,
        compare_decisions=not config.pipeline,
    )
    block["input_seed"] = deck_seed
    if item.kind == "generated":
        try:
            from repro.corpus.generate import parse_spec

            seed, generator = parse_spec(item.payload)
        except ValueError:  # pragma: no cover - payload already loaded
            pass
        else:
            block["seed"] = seed
            block["generator"] = generator.to_dict()
    return block


def _run_item(index: int, item: WorkItem, config: BatchConfig) -> ItemResult:
    """Execute one work item; never raises — every outcome is a record."""
    global _WORKER_MANAGER
    if _WORKER_MANAGER is None:  # process without initializer (not ours)
        _init_worker(config.cache, config.store_path)
    manager = _WORKER_MANAGER
    hits_before = manager.stats.hits
    misses_before = manager.stats.misses
    disk_hits_before = manager.stats.disk_hits
    disk_misses_before = manager.stats.disk_misses
    disk_writes_before = manager.stats.disk_writes

    tracer = Tracer()
    use_alarm = config.timeout is not None and hasattr(signal, "SIGALRM")
    previous_handler = None
    start = time.perf_counter()
    status, message, trace_back = STATUS_OK, "", ""
    outcome = None
    cfg = None
    differential = None
    try:
        if use_alarm:
            previous_handler = signal.signal(signal.SIGALRM, _raise_timeout)
            signal.setitimer(signal.ITIMER_REAL, config.timeout)
        with tracing(tracer):
            cfg = _load_item(item)
            outcome = _execute_item(cfg, config, manager)
            if config.differential and not config.analyze:
                differential = _diff_item(item, cfg, outcome, config)
    except _ItemTimeout:
        status = STATUS_TIMEOUT
        message = f"exceeded {config.timeout}s budget"
    except Exception as exc:  # fault isolation: record, don't propagate
        status = STATUS_ERROR
        message = f"{type(exc).__name__}: {exc}"
        trace_back = traceback_module.format_exc()
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous_handler)
    duration_ms = (time.perf_counter() - start) * 1000.0
    if status == STATUS_OK and differential and differential["divergences"]:
        status = STATUS_DIVERGENT
        first = differential["divergences"][0]
        count = len(differential["divergences"])
        message = (
            f"{count} of {differential['runs']} differential run"
            f"{'s' if count != 1 else ''} diverged: {first['detail']}"
        )

    record = ItemResult(
        index=index,
        name=item.name,
        status=status,
        message=message,
        traceback=trace_back,
        duration_ms=duration_ms,
        cache={
            "hits": manager.stats.hits - hits_before,
            "misses": manager.stats.misses - misses_before,
            "disk_hits": manager.stats.disk_hits - disk_hits_before,
            "disk_misses": manager.stats.disk_misses - disk_misses_before,
            "disk_writes": manager.stats.disk_writes - disk_writes_before,
        },
        counters=dict(tracer.counters),
        summary=tracer.summary(),
        pid=os.getpid(),
    )
    if status in (STATUS_OK, STATUS_DIVERGENT):
        record.fingerprint = outcome.fingerprint
        if config.analyze:
            record.static_before = cfg.static_computation_count()
            record.static_after = record.static_before
            record.analysis = outcome.to_dict()
        else:
            record.static_before = outcome.static_before
            record.static_after = outcome.static_after
            record.ir = outcome.ir
        record.differential = differential
    return record


# ---------------------------------------------------------------------------
# Driver side.
# ---------------------------------------------------------------------------


def _skipped_record(
    index: int, item: WorkItem, reason: str, stats: Dict[str, int]
) -> ItemResult:
    stats[COUNTER_SKIPPED] = stats.get(COUNTER_SKIPPED, 0) + 1
    trace.count(COUNTER_SKIPPED)
    return ItemResult(
        index=index,
        name=item.name,
        status=STATUS_SKIPPED,
        message=f"cancelled: {reason}",
        attempts=0,
    )


def _iter_serial(
    items: Sequence[WorkItem], config: BatchConfig, stats: Dict[str, int]
) -> Iterator[ItemResult]:
    """The jobs=1 path: in-process, input order, same early-exit
    policies as the supervisor (but no hard kill — no parent)."""
    _init_worker(config.cache, config.store_path)
    deadline = (
        time.monotonic() + config.deadline_s
        if config.deadline_s is not None
        else None
    )
    failures = 0
    stop_reason = None
    for index, item in enumerate(items):
        if stop_reason is None and deadline is not None:
            if time.monotonic() >= deadline:
                stop_reason = f"batch deadline {config.deadline_s}s exceeded"
        if stop_reason is not None:
            yield _skipped_record(index, item, stop_reason, stats)
            continue
        record = _run_item(index, item, config)
        for attempt in range(2, config.retries + 2):
            if record.ok:
                break
            record = _run_item(index, item, config)
            record.attempts = attempt
        if not record.ok:
            failures += 1
            if (
                config.stop_after_failures is not None
                and failures >= config.stop_after_failures
            ):
                stop_reason = (
                    f"stopped after {failures} failed "
                    f"item{'s' if failures != 1 else ''}"
                )
        yield record


def iter_batch(
    items: Sequence[WorkItem],
    config: Optional[BatchConfig] = None,
    stats: Optional[Dict[str, int]] = None,
) -> Iterator[ItemResult]:
    """Stream one final :class:`ItemResult` per item, in completion order.

    Every submitted index is yielded exactly once; records carry
    :attr:`~repro.batch.report.ItemResult.index` so callers can
    reassemble input order (:func:`run_batch` does exactly that).
    Early-exit policies (``stop_after_failures``, ``deadline_s``)
    cancel the remainder as ``status="skipped"`` records, which are
    streamed too — the stream is always complete.

    *stats*, when given, is filled with supervision counters
    (``batch.worker.respawn``, ``batch.item.killed``, …) as the run
    progresses; :func:`run_batch` surfaces them as
    :attr:`BatchReport.supervisor`.  Abandoning the iterator early
    (``break``, ``.close()``) shuts the workers down — no orphans.
    """
    config = config if config is not None else BatchConfig()
    stats = stats if stats is not None else {}
    jobs = max(1, config.jobs)
    if jobs == 1 or len(items) <= 1:
        yield from _iter_serial(items, config, stats)
    else:
        supervisor = Supervisor(
            list(items), config, min(jobs, len(items)), stats
        )
        yield from supervisor.run()


def collect_report(
    results: Iterable[ItemResult],
    config: BatchConfig,
    wall_time_s: float = 0.0,
    supervisor: Optional[Dict[str, int]] = None,
) -> BatchReport:
    """Fold streamed records into the input-ordered :class:`BatchReport`
    (what :func:`run_batch` returns; the CLI's ``--stream`` uses this
    to finish with a report identical to the non-streaming run)."""
    ordered = sorted(results, key=lambda record: record.index)
    store_stats = (
        SolutionStore(config.store_path).stats() if config.store_path else None
    )
    return BatchReport(
        items=ordered,
        jobs=max(1, config.jobs),
        wall_time_s=wall_time_s,
        pass_=config.pass_,
        pipeline=config.pipeline,
        store=store_stats,
        supervisor=dict(supervisor) if supervisor else None,
    )


def run_batch(
    items: Sequence[WorkItem],
    config: Optional[BatchConfig] = None,
) -> BatchReport:
    """Optimize every item; always returns a complete, input-ordered report.

    The report's :attr:`~repro.batch.report.BatchReport.ok` is False as
    soon as any item errored, timed out or was skipped — callers
    deciding an exit code should use it — but every item, failed or
    not, has a record.
    """
    config = config if config is not None else BatchConfig()
    stats: Dict[str, int] = {}
    start = time.perf_counter()
    results = list(iter_batch(items, config, stats))
    wall = time.perf_counter() - start
    return collect_report(results, config, wall, stats)
