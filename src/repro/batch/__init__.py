"""Supervised corpus optimization with per-program fault isolation.

The throughput layer on top of :func:`repro.core.pipeline.optimize`:
a batch driver that pushes whole corpora of programs through a
supervised pool of long-lived worker processes
(:mod:`repro.batch.supervisor`), isolates per-program failures as
structured records, enforces airtight per-item deadlines (soft SIGALRM
in the worker, hard SIGKILL from the parent for C-call hangs),
recycles workers to bound memory, streams results as they complete,
and merges per-item observability (trace summaries, counters, cache
hit rates) into one report.

::

    from repro.batch import BatchConfig, items_from_dir, run_batch

    items = items_from_dir("tests/corpus")
    report = run_batch(items, BatchConfig(jobs=4, timeout=10.0))
    assert report.ok, report.tally
    print(report.render_table())
    print(report.to_json())

Streaming, with early exit::

    from repro.batch import iter_batch

    config = BatchConfig(jobs=4, timeout=10.0, stop_after_failures=3)
    for record in iter_batch(items, config):
        print(record.index, record.name, record.status)

Scale-out: ``repro batch DIR --shard i/n`` runs a deterministic
name-hash partition of the corpus (:func:`shard_items`) and ``repro
batch merge`` recombines the per-shard reports byte-identically
(:func:`merge_report_dicts`); ``--differential`` turns the batch into
a differential fuzzer (:mod:`repro.batch.differential`) that flags
miscompiles as ``divergent`` records.

CLI: ``repro batch DIR --jobs N --timeout S --stream --max-failures N
--recycle-after N --emit json|table``.  See ``docs/BATCH.md`` for the
supervisor architecture, the streaming protocol and the report schema,
and ``docs/CORPUS.md`` for corpus sources and generation.
"""

from repro.batch.driver import (
    CORPUS_SUFFIXES,
    BatchConfig,
    WorkItem,
    collect_report,
    items_from_cfgs,
    items_from_dir,
    iter_batch,
    run_batch,
    shard_items,
    shard_of,
    stable_hash,
)
from repro.batch.report import (
    REPORT_FORMAT,
    REPORT_VERSION,
    STATUS_DIVERGENT,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_SKIPPED,
    STATUS_TIMEOUT,
    BatchReport,
    ItemResult,
    merge_report_dicts,
    stable_report_json,
)
from repro.batch.supervisor import Supervisor, WorkerPool

__all__ = [
    "BatchConfig",
    "BatchReport",
    "CORPUS_SUFFIXES",
    "ItemResult",
    "REPORT_FORMAT",
    "REPORT_VERSION",
    "STATUS_DIVERGENT",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_SKIPPED",
    "STATUS_TIMEOUT",
    "Supervisor",
    "WorkItem",
    "WorkerPool",
    "collect_report",
    "items_from_cfgs",
    "items_from_dir",
    "iter_batch",
    "merge_report_dicts",
    "run_batch",
    "shard_items",
    "shard_of",
    "stable_hash",
    "stable_report_json",
]
