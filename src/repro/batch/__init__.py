"""Parallel corpus optimization with per-program fault isolation.

The throughput layer on top of :func:`repro.core.pipeline.optimize`:
a batch driver that pushes whole corpora of programs through a worker
pool, isolates per-program failures as structured records, enforces
per-item timeouts, and merges per-item observability (trace summaries,
counters, cache hit rates) into one report.

::

    from repro.batch import BatchConfig, items_from_dir, run_batch

    items = items_from_dir("tests/corpus")
    report = run_batch(items, BatchConfig(jobs=4, timeout=10.0))
    assert report.ok, report.tally
    print(report.render_table())
    print(report.to_json())

CLI: ``repro batch DIR --jobs N --timeout S --emit json|table``.
See ``docs/BATCH.md`` for the driver API and the report schema.
"""

from repro.batch.driver import (
    CORPUS_SUFFIXES,
    BatchConfig,
    WorkItem,
    items_from_cfgs,
    items_from_dir,
    run_batch,
)
from repro.batch.report import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    BatchReport,
    ItemResult,
)

__all__ = [
    "BatchConfig",
    "BatchReport",
    "CORPUS_SUFFIXES",
    "ItemResult",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_TIMEOUT",
    "WorkItem",
    "items_from_cfgs",
    "items_from_dir",
    "run_batch",
]
