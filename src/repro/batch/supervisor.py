"""The worker supervisor: hard isolation for the batch driver.

The pooled driver used to lean on ``ProcessPoolExecutor`` plus
in-worker SIGALRM timeouts.  That combination has two structural
holes:

* SIGALRM only fires between bytecodes — an item stuck inside a
  long-running C call (a pathological regex, a huge builtin reduction)
  never sees the alarm and hangs the worker, and with it the batch;
* a worker lost to a hard crash (segfault, OOM kill) breaks the whole
  pool, so *every* in-flight item came back as an error record even
  though only one item was responsible.

The :class:`Supervisor` closes both by owning its workers directly,
pebble-style.  Each worker is a long-lived ``multiprocessing`` process
connected over a duplex pipe; the **parent** is the enforcement point:

* **deadlines** — while an item runs, the supervisor tracks a
  wall-clock deadline of ``timeout + grace``.  The in-worker SIGALRM
  remains the first line (it interrupts Python-level loops and keeps
  the worker warm); if it cannot fire, the supervisor SIGKILLs the
  whole worker, records a clean ``timeout`` item and respawns a fresh
  process — even a C-call hang costs one worker, never the batch;
* **crash attribution** — exactly one item runs per worker at a time,
  so a dead pipe is attributed to that single item (``worker lost:``
  error record); everything else queued merely reschedules onto the
  respawned worker;
* **recycling** — after ``max_tasks_per_worker`` items a worker is
  retired and (when work remains) replaced, bounding memory growth of
  long corpora;
* **streaming** — results are handed out in *completion* order as they
  arrive, which is what :func:`repro.batch.driver.iter_batch` yields;
  every record carries its ``index`` for reassembly;
* **early exit** — ``stop_after_failures`` and ``deadline_s`` cancel
  the remainder of the batch: in-flight workers are killed and every
  unfinished item is recorded as ``status="skipped"``.

Supervisor events are observable twice: in the ``stats`` mapping the
driver folds into :attr:`repro.batch.report.BatchReport.supervisor`,
and as trace counters (``batch.worker.respawn``, ``batch.item.killed``,
``batch.worker.recycled``, ``batch.item.skipped``) on the active
:mod:`repro.obs.trace` tracer.

The protocol over each pipe is tiny: the parent sends
``("run", index, item, config)`` or ``("stop",)``; the worker answers
one pickled :class:`~repro.batch.report.ItemResult` per ``run``.
Workers are daemonic, so even an abandoned supervisor cannot leak
processes past interpreter exit; orderly shutdown happens in a
``finally`` and is exercised by tests and the CI kill-resilience smoke.

Two front-ends drive the same worker machinery:

* :class:`Supervisor` — batch mode: a fixed item list, LPT scheduling,
  completion-order streaming, early-exit policies;
* :class:`WorkerPool` — request mode: ad-hoc items dispatched one at a
  time onto warm workers (what the ``repro serve`` daemon
  multiplexes), with the identical two-tier deadline and
  kill/respawn/recycle behaviour per request.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import threading
import time
from collections import deque
from multiprocessing.connection import wait as _connection_wait
from typing import TYPE_CHECKING, Deque, Dict, Iterator, List, Optional

from repro.batch.report import (
    STATUS_ERROR,
    STATUS_SKIPPED,
    STATUS_TIMEOUT,
    ItemResult,
)
from repro.obs import trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.batch.driver import BatchConfig, WorkItem

#: Seconds an idle worker gets to honour a graceful ``("stop",)``
#: before the supervisor falls back to SIGKILL.
_STOP_JOIN_S = 2.0

#: Trace counter names (also the keys of ``BatchReport.supervisor``).
COUNTER_RESPAWN = "batch.worker.respawn"
COUNTER_KILLED = "batch.item.killed"
COUNTER_RECYCLED = "batch.worker.recycled"
COUNTER_SKIPPED = "batch.item.skipped"


def _timeout_result(
    index: int, name: str, config: "BatchConfig", pid: Optional[int]
) -> ItemResult:
    """The record manufactured for a hard-deadline kill (parent side)."""
    return ItemResult(
        index=index,
        name=name,
        status=STATUS_TIMEOUT,
        message=(
            f"killed: exceeded {config.timeout}s budget "
            f"(+{config.grace}s grace, uninterruptible worker)"
        ),
        pid=pid,
    )


def _lost_result(index: int, name: str, worker: "_Worker") -> ItemResult:
    """The record manufactured when a worker dies mid-item."""
    worker.proc.join(_STOP_JOIN_S)
    code = worker.proc.exitcode
    return ItemResult(
        index=index,
        name=name,
        status=STATUS_ERROR,
        message=f"worker lost: exited with code {code} mid-item",
        pid=worker.proc.pid,
    )


def _mp_context():
    """The multiprocessing context workers are spawned from.

    Fork keeps parity with the previous ``ProcessPoolExecutor`` driver
    (workers inherit imported modules, which the ``call`` work-item
    kind relies on in tests); platforms without fork fall back to the
    default start method.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        return multiprocessing.get_context()


def _worker_main(conn, cache_enabled: bool, store_path: Optional[str]) -> None:
    """Worker process entry point: serve items off the pipe until told
    to stop (or the pipe dies with the parent)."""
    from repro.batch.driver import _init_worker, _run_item

    _init_worker(cache_enabled, store_path)
    try:
        while True:
            message = conn.recv()
            if message[0] == "stop":
                break
            _, index, item, config = message
            conn.send(_run_item(index, item, config))
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover - already torn down
            pass


class _Worker:
    """Parent-side handle of one long-lived worker process."""

    __slots__ = ("proc", "conn", "tasks_done", "index", "deadline")

    def __init__(self, ctx, config: "BatchConfig") -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.conn = parent_conn
        self.proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, config.cache, config.store_path),
            daemon=True,
        )
        self.proc.start()
        child_conn.close()
        self.tasks_done = 0
        #: Index of the in-flight item (None when idle).
        self.index: Optional[int] = None
        #: Hard wall-clock deadline of the in-flight item (monotonic).
        self.deadline: Optional[float] = None

    @property
    def busy(self) -> bool:
        return self.index is not None

    def assign(self, index: int, item: "WorkItem",
               config: "BatchConfig") -> None:
        self.conn.send(("run", index, item, config))
        self.index = index
        self.deadline = (
            time.monotonic() + config.timeout + config.grace
            if config.timeout is not None
            else None
        )

    def clear(self) -> None:
        self.index = None
        self.deadline = None
        self.tasks_done += 1

    def _close_conn(self) -> None:
        try:
            self.conn.close()
        except OSError:  # already closed (repeated stop/kill is legal)
            pass

    def kill(self) -> None:
        """SIGKILL the process — the only interruption that always works."""
        if self.proc.is_alive():
            self.proc.kill()
        self.proc.join()
        self._close_conn()

    def stop(self) -> None:
        """Graceful shutdown; falls back to :meth:`kill` on a timeout."""
        try:
            self.conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        self.proc.join(_STOP_JOIN_S)
        if self.proc.is_alive():  # pragma: no cover - stuck despite stop
            self.proc.kill()
            self.proc.join()
        self._close_conn()


class Supervisor:
    """Drives one batch over owned worker processes, streaming results.

    Single-threaded: :meth:`run` is a generator that multiplexes every
    worker pipe with :func:`multiprocessing.connection.wait`, enforcing
    per-item deadlines and the batch-level early-exit policies between
    wakeups.  ``stats`` (a plain counter mapping, shared with the
    caller) accumulates supervision events.
    """

    def __init__(
        self,
        items: "List[WorkItem]",
        config: "BatchConfig",
        jobs: int,
        stats: Dict[str, int],
    ) -> None:
        self.items = items
        self.config = config
        self.jobs = jobs
        self.stats = stats
        self.ctx = _mp_context()
        self.attempts: Dict[int, int] = {}

    # -- bookkeeping ----------------------------------------------------

    def _count(self, name: str, n: int = 1) -> None:
        self.stats[name] = self.stats.get(name, 0) + n
        trace.count(name, n)

    def _spawn(self) -> _Worker:
        return _Worker(self.ctx, self.config)

    def _respawn(self, workers: List[_Worker], dead: _Worker) -> None:
        workers[workers.index(dead)] = self._spawn()
        self._count(COUNTER_RESPAWN)

    # -- records the parent manufactures --------------------------------

    def _timeout_record(self, index: int, worker: _Worker) -> ItemResult:
        return _timeout_result(
            index, self.items[index].name, self.config, worker.proc.pid
        )

    def _lost_record(self, index: int, worker: _Worker) -> ItemResult:
        return _lost_result(index, self.items[index].name, worker)

    def _skipped_record(self, index: int, reason: str) -> ItemResult:
        self._count(COUNTER_SKIPPED)
        return ItemResult(
            index=index,
            name=self.items[index].name,
            status=STATUS_SKIPPED,
            message=f"cancelled: {reason}",
            attempts=self.attempts.get(index, 0),
        )

    # -- the loop --------------------------------------------------------

    def run(self) -> Iterator[ItemResult]:
        """Yield one final record per item, in completion order."""
        config = self.config
        # LPT: predicted-heavy items first (ties keep input order).
        pending: Deque[int] = deque(
            sorted(
                range(len(self.items)),
                key=lambda index: (-self.items[index].cost, index),
            )
        )
        batch_deadline = (
            time.monotonic() + config.deadline_s
            if config.deadline_s is not None
            else None
        )
        workers = [self._spawn() for _ in range(self.jobs)]
        completed = 0
        failures = 0
        stop_reason: Optional[str] = None
        try:
            while completed < len(self.items) and stop_reason is None:
                for worker in workers:
                    if not worker.busy and pending:
                        index = pending.popleft()
                        self.attempts[index] = self.attempts.get(index, 0) + 1
                        worker.assign(index, self.items[index], config)
                busy = [worker for worker in workers if worker.busy]
                if not busy:  # pragma: no cover - defensive
                    break
                ready = set(
                    _connection_wait(
                        [worker.conn for worker in busy],
                        self._wait_timeout(busy, batch_deadline),
                    )
                )
                now = time.monotonic()
                for worker in busy:
                    record = None
                    survived = True
                    if worker.conn in ready:
                        try:
                            record = worker.conn.recv()
                        except (EOFError, OSError):
                            # The pipe died mid-item: exactly one item
                            # was running here, so the crash is its and
                            # its alone.
                            record = self._lost_record(worker.index, worker)
                            survived = False
                    elif worker.deadline is not None and now >= worker.deadline:
                        # SIGALRM never fired — the worker is stuck
                        # somewhere uninterruptible.  Kill the process.
                        worker.kill()
                        record = self._timeout_record(worker.index, worker)
                        self._count(COUNTER_KILLED)
                        survived = False
                    if record is None:
                        continue
                    index = worker.index
                    worker.clear()
                    if not survived:
                        self._respawn(workers, worker)
                    record.attempts = self.attempts[index]
                    if not record.ok and self.attempts[index] <= config.retries:
                        pending.append(index)
                        continue
                    completed += 1
                    if not record.ok:
                        failures += 1
                    yield record
                    if (
                        config.stop_after_failures is not None
                        and failures >= config.stop_after_failures
                    ):
                        stop_reason = (
                            f"stopped after {failures} failed "
                            f"item{'s' if failures != 1 else ''}"
                        )
                        break
                    if survived and self._should_recycle(worker):
                        self._recycle(workers, worker)
                if (
                    stop_reason is None
                    and batch_deadline is not None
                    and time.monotonic() >= batch_deadline
                ):
                    stop_reason = f"batch deadline {config.deadline_s}s exceeded"
            if stop_reason is not None:
                # Cancel everything unfinished: kill in-flight workers,
                # drain the queue, record all of it as skipped.
                unfinished = sorted(
                    [worker.index for worker in workers if worker.busy]
                    + list(pending)
                )
                for worker in workers:
                    if worker.busy:
                        worker.kill()
                for index in unfinished:
                    yield self._skipped_record(index, stop_reason)
        finally:
            self._shutdown(workers)

    def _wait_timeout(
        self, busy: List[_Worker], batch_deadline: Optional[float]
    ) -> Optional[float]:
        deadlines = [
            worker.deadline for worker in busy if worker.deadline is not None
        ]
        if batch_deadline is not None:
            deadlines.append(batch_deadline)
        if not deadlines:
            return None  # block until a result arrives
        return max(0.0, min(deadlines) - time.monotonic())

    def _should_recycle(self, worker: _Worker) -> bool:
        return (
            self.config.max_tasks_per_worker is not None
            and worker.tasks_done >= self.config.max_tasks_per_worker
        )

    def _recycle(self, workers: List[_Worker], worker: _Worker) -> None:
        """Retire a worker that served its quota and replace it with a
        fresh process (retries may still route work to its slot)."""
        worker.stop()
        self._count(COUNTER_RECYCLED)
        self._respawn(workers, worker)

    def _shutdown(self, workers: List[_Worker]) -> None:
        for worker in workers:
            if worker.proc.is_alive() and worker.busy:
                worker.kill()  # still running an item: no graceful exit
            elif worker.proc.is_alive():
                worker.stop()
            else:
                worker.proc.join()
                try:
                    worker.conn.close()
                except OSError:  # pragma: no cover
                    pass


class WorkerPool:
    """Request-level dispatch: ad-hoc items onto warm, owned workers.

    Where :class:`Supervisor` drives one fixed batch to completion,
    the pool serves *requests*: :meth:`run` blocks until an idle worker
    is free, dispatches exactly one item, enforces the same two-tier
    deadline (in-worker SIGALRM soft timeout from the per-request
    config, parent-side SIGKILL at ``timeout + grace``) and hands back
    the :class:`~repro.batch.report.ItemResult` — a clean ``timeout``
    or ``worker lost`` record when the worker had to die, with a fresh
    process respawned into the pool either way.  This is what the
    ``repro serve`` daemon multiplexes its connections onto.

    Thread-safe: many threads may :meth:`run` concurrently (the daemon
    dedicates one dispatcher thread per in-flight request); each worker
    serves one item at a time.  ``stats`` accumulates the same
    supervision counters the batch supervisor emits
    (``batch.worker.respawn`` / ``batch.item.killed`` /
    ``batch.worker.recycled``), and ``config.max_tasks_per_worker``
    recycles long-lived workers exactly as in batch mode.
    """

    def __init__(
        self,
        config: "BatchConfig",
        size: int,
        stats: Optional[Dict[str, int]] = None,
    ) -> None:
        self.config = config
        self.size = max(1, size)
        self.stats = stats if stats is not None else {}
        self.ctx = _mp_context()
        self._idle: "queue_module.Queue[_Worker]" = queue_module.Queue()
        self._live: List[_Worker] = []
        self._lock = threading.Lock()
        self._closed = False
        for _ in range(self.size):
            self._idle.put(self._spawn())

    # -- bookkeeping ----------------------------------------------------

    def _count(self, name: str, n: int = 1) -> None:
        with self._lock:
            self.stats[name] = self.stats.get(name, 0) + n
        trace.count(name, n)

    def _spawn(self) -> _Worker:
        with self._lock:
            if self._closed:
                raise RuntimeError("worker pool is closed")
            worker = _Worker(self.ctx, self.config)
            self._live.append(worker)
        return worker

    def _retire(self, worker: _Worker) -> None:
        with self._lock:
            if worker in self._live:
                self._live.remove(worker)

    @property
    def idle(self) -> int:
        """Workers currently waiting for a request (approximate)."""
        return self._idle.qsize()

    # -- dispatch -------------------------------------------------------

    def run(
        self,
        item: "WorkItem",
        *,
        config: Optional["BatchConfig"] = None,
        index: int = 0,
    ) -> ItemResult:
        """Run one item on the next idle worker; blocks until done.

        *config* overrides the pool's base config for this request
        (the daemon substitutes the per-request timeout).  Every
        outcome is a record — worker crashes and deadline kills
        included; the pool never raises for an item's sake.
        """
        config = config if config is not None else self.config
        worker = self._idle.get()
        if worker is None:
            # Shutdown sentinel: re-post it so every other blocked
            # dispatcher wakes up too, then refuse the request.
            self._idle.put(None)
            raise RuntimeError("worker pool is closed")
        if self._closed:
            self._idle.put(worker)
            self._drain_idle()
            raise RuntimeError("worker pool is closed")
        record, survived = self._dispatch(worker, index, item, config)
        replacement: Optional[_Worker] = worker
        if survived and self._recyclable(worker):
            worker.stop()
            self._retire(worker)
            self._count(COUNTER_RECYCLED)
            replacement = None
        elif not survived:
            self._retire(worker)
            replacement = None
        if replacement is None:
            try:
                replacement = self._spawn()
                self._count(COUNTER_RESPAWN)
            except RuntimeError:  # closed mid-request: pool is draining
                replacement = None
        if replacement is not None:
            self._idle.put(replacement)
            if self._closed:
                # close() may have missed a worker in transit; it is
                # idle by construction here, so a stop cannot block.
                self._drain_idle()
        return record

    def _dispatch(
        self,
        worker: _Worker,
        index: int,
        item: "WorkItem",
        config: "BatchConfig",
    ):
        budget = (
            config.timeout + config.grace
            if config.timeout is not None
            else None
        )
        try:
            worker.assign(index, item, config)
            if worker.conn.poll(budget):
                record = worker.conn.recv()
                worker.clear()
                return record, True
        except (BrokenPipeError, EOFError, OSError):
            # The pipe died mid-item (crash, OOM kill, pool shutdown):
            # one item was running here, the loss is its alone.
            record = _lost_result(index, item.name, worker)
            worker.kill()
            return record, False
        # Deadline: the soft in-worker SIGALRM never fired, so the
        # worker is stuck somewhere uninterruptible.  SIGKILL it.
        worker.kill()
        self._count(COUNTER_KILLED)
        return _timeout_result(index, item.name, config, worker.proc.pid), False

    def _recyclable(self, worker: _Worker) -> bool:
        return (
            self.config.max_tasks_per_worker is not None
            and worker.tasks_done >= self.config.max_tasks_per_worker
        )

    # -- shutdown -------------------------------------------------------

    def _drain_idle(self) -> None:
        while True:
            try:
                worker = self._idle.get_nowait()
            except queue_module.Empty:
                break
            if worker is None:
                continue
            self._retire(worker)
            worker.stop()
        if self._closed:
            # Leave a sentinel so dispatchers blocked on the idle
            # queue wake up and observe the shutdown.
            self._idle.put(None)

    def close(self) -> None:
        """Stop every worker: graceful when idle, SIGKILL when busy.

        Dispatcher threads blocked on a busy worker observe the killed
        pipe and return a ``worker lost`` record; no process outlives
        the pool.  Idempotent.
        """
        with self._lock:
            self._closed = True
            workers = list(self._live)
            self._live = []
        for worker in workers:
            if worker.busy:
                worker.kill()
            else:
                worker.stop()
        self._drain_idle()
