"""Differential testing of transforms inside the batch driver.

The batch pipeline already proves that a pass *ran* on every corpus
program; this module proves it ran *correctly*.  In differential mode
the worker executes each program on a deck of seeded random input
environments (:mod:`repro.interp.random_inputs`) twice — once on the
original graph, once on the optimised one — and compares what the
source program can observe:

* the final value of every variable the *original* program mentions
  (temporaries a transform introduces are its own business);
* whether execution reached the exit under the step budget;
* for single-pass runs, the exact branch-decision sequence — code
  motion never touches branches, so a decision flip is a miscompile.
  Pipeline runs fold branches away legitimately, so there the decision
  comparison is skipped (mirroring
  :func:`repro.core.optimality.check_equivalence`).

A mismatch on any run makes the item **divergent**: the batch record
keeps ``status="divergent"`` plus a structured ``differential`` block
carrying the run index, the offending input environment and a one-line
detail — and, for ``generated`` corpus items, the minting ``seed`` and
generator config, so one failing fuzz run reproduces from the report
alone (``repro corpus generate --seed-range S:S+1 …``).

Input decks are seeded from the batch ``diff_seed`` mixed with a
stable hash of the item *name* — never its batch position — so shard
and unsharded runs exercise identical environments and their reports
stay byte-comparable.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.interp.machine import run
from repro.interp.random_inputs import random_envs
from repro.ir.cfg import CFG


def diff_cfgs(
    original: CFG,
    transformed: CFG,
    runs: int = 8,
    seed: int = 0,
    max_steps: int = 2_000_000,
    compare_decisions: bool = True,
) -> Dict[str, Any]:
    """Execute both graphs on *runs* seeded inputs; report divergences.

    Returns the JSON-ready ``differential`` block of an item record::

        {"runs": 8, "compared": 8, "divergences": [
            {"run": 3, "env": {...}, "detail": "variable 'x': 7 != 0"}
        ]}

    ``compared`` counts the runs where the original reached the exit
    (a run the *original* itself cannot finish under the step budget
    proves nothing and is skipped).  An empty ``divergences`` list
    means the transform is observationally correct on this deck.
    """
    source_vars = sorted(original.variables())
    divergences: List[Dict[str, Any]] = []
    compared = 0
    for i, env in enumerate(random_envs(original, runs, seed)):
        before = run(original, env, max_steps=max_steps)
        if not before.reached_exit:
            continue
        compared += 1
        after = run(transformed, env, max_steps=max_steps)
        detail = None
        if not after.reached_exit:
            detail = "transformed program diverged (no exit)"
        elif (
            compare_decisions
            and before.decisions_taken != after.decisions_taken
        ):
            detail = "branch decisions differ"
        else:
            for name in source_vars:
                got = after.env.get(name, 0)
                want = before.env.get(name, 0)
                if got != want:
                    detail = f"variable {name!r}: {want} != {got}"
                    break
        if detail is not None:
            divergences.append({"run": i, "env": dict(env), "detail": detail})
    return {"runs": runs, "compared": compared, "divergences": divergences}
