"""Structured results for batch runs: per-item records and the report.

The batch driver (:mod:`repro.batch.driver`) optimizes many programs,
possibly across a process pool, and each unit of work produces exactly
one :class:`ItemResult` — whether it succeeded, raised, or timed out.
The driver folds them (in *input* order, regardless of completion
order) into a :class:`BatchReport`, which merges the per-item trace
summaries and counters (:func:`repro.obs.trace.merge_summaries`) so a
whole corpus run has the same observability surface as a single
``optimize`` call: wall time, per-item timings, cache hit rates and an
error tally.

The JSON schema is versioned (``repro-batch-report`` version 3) and
documented in ``docs/BATCH.md``.  Version 2 added the ``skipped``
item status (early-exit policies cancelling the tail of a batch) and
the optional top-level ``supervisor`` block of worker-supervision
counters; version-1 consumers that only switch on the original three
statuses should treat ``skipped`` as a failure.  Version 3 added the
``divergent`` item status (differential mode found a semantic
mismatch — also a failure to older consumers), the per-item
``differential`` block, and the optional top-level ``shard`` block of
sharded runs; :func:`merge_report_dicts` recombines per-shard reports
into the unsharded report.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.trace import merge_counters, merge_summaries

#: The five terminal states of one work item.
STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_TIMEOUT = "timeout"
#: The item never ran (or its run was abandoned): an early-exit policy
#: — ``stop_after_failures`` / ``deadline_s`` — cancelled the batch
#: before the item could complete.
STATUS_SKIPPED = "skipped"
#: Differential mode executed the item before and after optimization
#: and the observable behaviour did not match — the transformation
#: miscompiled this program.  The record's ``differential`` block
#: carries the divergences and (for generated items) the minting seed.
STATUS_DIVERGENT = "divergent"

REPORT_FORMAT = "repro-batch-report"
REPORT_VERSION = 3


@dataclass
class ItemResult:
    """The outcome of optimising one program of the batch.

    Attributes:
        index: the item's position in the submitted batch (results are
            always reported in this order).  Sharded runs remap it to
            the item's position in the *whole* corpus, so merged
            reports line up with the unsharded run.
        name: the item's display name (relative path without suffix
            for corpus files, or a caller-given label for in-memory
            programs).
        status: ``"ok"``, ``"error"``, ``"timeout"``, ``"skipped"``
            or ``"divergent"``.
        message: one-line failure description (empty when ok).
        traceback: the full formatted traceback for errors (empty
            otherwise) — timeouts carry no traceback, the work was
            interrupted, not failed.
        attempts: how many times the item ran (> 1 only with retries;
            0 for a ``skipped`` item that never started).
        duration_ms: wall time of the final attempt, measured in the
            worker.
        fingerprint: content fingerprint of the optimised graph
            (``None`` unless ok) — two runs that agree here produced
            bit-identical IR.
        ir: the optimised program as serialised JSON, when the batch
            was configured with ``keep_ir`` (``None`` otherwise).
        analysis: the :meth:`repro.api.AnalyzeOutcome.to_dict` payload
            for analyze-mode work (``None`` for optimize runs).
        differential: the differential-mode check outcome (``None``
            outside differential mode): random-input runs compared,
            divergences found, and — for generated items — the
            minting ``seed``/``generator`` spec that reproduces the
            program (see :mod:`repro.batch.differential`).
        static_before / static_after: operator-expression counts of the
            input and optimised graphs.
        cache: the worker manager's per-tier delta for this item:
            ``{"hits", "misses", "disk_hits", "disk_misses",
            "disk_writes"}`` (disk fields are 0 without a store).
        counters: the item's trace counters (``cache.hit`` …).
        summary: the item's :meth:`~repro.obs.trace.Tracer.summary`.
        pid: the worker process id (useful when auditing pool spread).
    """

    index: int
    name: str
    status: str
    message: str = ""
    traceback: str = ""
    attempts: int = 1
    duration_ms: float = 0.0
    fingerprint: Optional[str] = None
    ir: Optional[str] = None
    analysis: Optional[Dict[str, Any]] = None
    differential: Optional[Dict[str, Any]] = None
    static_before: Optional[int] = None
    static_after: Optional[int] = None
    cache: Dict[str, int] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    summary: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    pid: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "index": self.index,
            "name": self.name,
            "status": self.status,
            "attempts": self.attempts,
            "duration_ms": round(self.duration_ms, 3),
        }
        if self.message:
            payload["message"] = self.message
        if self.traceback:
            payload["traceback"] = self.traceback
        if self.fingerprint is not None:
            payload["fingerprint"] = self.fingerprint
        if self.ir is not None:
            payload["ir"] = self.ir
        if self.analysis is not None:
            payload["analysis"] = dict(self.analysis)
        if self.differential is not None:
            payload["differential"] = dict(self.differential)
        if self.static_before is not None:
            payload["static_before"] = self.static_before
            payload["static_after"] = self.static_after
        payload["cache"] = dict(self.cache)
        payload["counters"] = dict(self.counters)
        return payload


@dataclass
class BatchReport:
    """The merged outcome of one batch run.

    ``items`` is in input order.  ``ok`` is True only when every item
    succeeded — the CLI exits nonzero otherwise, but the report is
    always *complete*: failed items are records, not absences.
    """

    items: List[ItemResult]
    jobs: int
    wall_time_s: float
    pass_: str = "lcm"
    pipeline: bool = False
    #: `SolutionStore.stats()` of the shared on-disk cache after the
    #: run, when the batch was configured with a ``store_path``.
    store: Optional[Dict[str, Any]] = None
    #: Supervision counters of the pooled run (``batch.worker.respawn``,
    #: ``batch.item.killed``, ``batch.worker.recycled``,
    #: ``batch.item.skipped``), when any fired.  None for serial runs
    #: and uneventful pooled runs.
    supervisor: Optional[Dict[str, int]] = None
    #: ``{"index": i, "total": n, "universe": N}`` when this report
    #: covers shard ``i/n`` of an N-item corpus (item indexes are the
    #: corpus positions, not 0..k); None for unsharded runs.
    shard: Optional[Dict[str, int]] = None

    @property
    def ok(self) -> bool:
        return all(item.ok for item in self.items)

    @property
    def tally(self) -> Dict[str, int]:
        """Item count per status, e.g. ``{"ok": 48, "error": 2}``."""
        tally: Dict[str, int] = {}
        for item in self.items:
            tally[item.status] = tally.get(item.status, 0) + 1
        return tally

    @property
    def error_count(self) -> int:
        """Items that did not succeed (errors + timeouts + skipped)."""
        return sum(1 for item in self.items if not item.ok)

    def merged_counters(self) -> Dict[str, int]:
        return merge_counters(item.counters for item in self.items)

    def merged_summary(self) -> Dict[str, Dict[str, Any]]:
        return merge_summaries(item.summary for item in self.items)

    def cache_stats(self) -> Dict[str, Any]:
        """Batch-wide cache traffic per tier, plus the overall hit rate.

        ``hit_rate`` counts a lookup served by *either* tier as a hit —
        the fraction of lookups that did no solver work.
        """
        hits = sum(item.cache.get("hits", 0) for item in self.items)
        misses = sum(item.cache.get("misses", 0) for item in self.items)
        disk_hits = sum(item.cache.get("disk_hits", 0) for item in self.items)
        disk_misses = sum(item.cache.get("disk_misses", 0) for item in self.items)
        disk_writes = sum(item.cache.get("disk_writes", 0) for item in self.items)
        lookups = hits + disk_hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "disk_hits": disk_hits,
            "disk_misses": disk_misses,
            "disk_writes": disk_writes,
            "hit_rate": round((hits + disk_hits) / lookups, 4) if lookups else 0.0,
        }

    # -- export ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        payload = {
            "format": REPORT_FORMAT,
            "version": REPORT_VERSION,
            "pass": self.pass_,
            "pipeline": self.pipeline,
            "jobs": self.jobs,
            "wall_time_s": round(self.wall_time_s, 6),
            "items_total": len(self.items),
            "tally": self.tally,
            "cache": self.cache_stats(),
            "counters": self.merged_counters(),
            "summary": self.merged_summary(),
            "items": [item.to_dict() for item in self.items],
        }
        if self.store is not None:
            payload["store"] = dict(self.store)
        if self.supervisor is not None:
            payload["supervisor"] = dict(self.supervisor)
        if self.shard is not None:
            payload["shard"] = dict(self.shard)
        return payload

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def render_table(self) -> str:
        """A plain-text per-item table plus a one-line batch footer."""
        from repro.bench.harness import Table

        mode = "pipeline" if self.pipeline else self.pass_
        table = Table(
            ["program", "status", "ms", "static", "attempts", "detail"],
            title=f"batch: {len(self.items)} programs, {mode}, "
            f"jobs={self.jobs}",
        )
        for item in self.items:
            static = (
                f"{item.static_before}->{item.static_after}"
                if item.static_before is not None
                else ""
            )
            table.add_row(
                item.name,
                item.status,
                f"{item.duration_ms:.1f}",
                static,
                item.attempts,
                item.message,
            )
        cache = self.cache_stats()
        tally = ", ".join(f"{k}={v}" for k, v in sorted(self.tally.items()))
        footer = (
            f"wall {self.wall_time_s:.3f}s  {tally}  "
            f"cache hit rate {cache['hit_rate']:.0%}"
        )
        if self.store is not None:
            footer += (
                f"  disk hits {cache['disk_hits']}  "
                f"store entries {self.store.get('entries', 0)}"
            )
        if self.supervisor is not None:
            respawns = self.supervisor.get("batch.worker.respawn", 0)
            if respawns:
                footer += f"  worker respawns {respawns}"
        return f"{table.render()}\n{footer}"


# ---------------------------------------------------------------------------
# Shard-report recombination.  Operates on *report dicts* (the JSON the
# CLI emits), because that is what `repro batch merge R1.json R2.json`
# has in hand; the merged dict reproduces BatchReport.to_dict() key
# order exactly, so it is byte-identical to the unsharded run's report
# once timing fields are set aside (see stable_report_json).
# ---------------------------------------------------------------------------


def _cache_stats_of(items: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """The report-level ``cache`` block recomputed from item records —
    the dict-level twin of :meth:`BatchReport.cache_stats`."""
    totals = {k: 0 for k in
              ("hits", "misses", "disk_hits", "disk_misses", "disk_writes")}
    for item in items:
        cache = item.get("cache", {})
        for key in totals:
            totals[key] += cache.get(key, 0)
    lookups = totals["hits"] + totals["disk_hits"] + totals["misses"]
    totals["hit_rate"] = (
        round((totals["hits"] + totals["disk_hits"]) / lookups, 4)
        if lookups else 0.0
    )
    return totals


def merge_report_dicts(reports: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Recombine per-shard report dicts into the unsharded report.

    Every input must be a ``repro-batch-report`` of the same version,
    pass, pipeline flag and job count (shards of one logical run).
    Item records concatenate and sort by their corpus ``index`` (the
    sharded CLI remaps indexes before reporting); indexes must be
    unique across shards.  Tallies, the ``cache`` block and the
    top-level ``counters`` are recomputed from the merged items, and
    shard ``summary``/``supervisor`` blocks are folded with the same
    aggregation the driver applies per item — so the merged report
    matches a run that never sharded, modulo wall-clock fields (which
    sum) and, with a shared store, the point-in-time ``store`` snapshot
    (the largest is kept).
    """
    if not reports:
        raise ValueError("nothing to merge: no reports given")
    head = reports[0]
    for i, report in enumerate(reports):
        if report.get("format") != REPORT_FORMAT:
            raise ValueError(f"report {i}: not a {REPORT_FORMAT} document")
        if report.get("version") != REPORT_VERSION:
            raise ValueError(
                f"report {i}: schema version {report.get('version')!r}; "
                f"this build merges version {REPORT_VERSION}"
            )
        for key in ("pass", "pipeline", "jobs"):
            if report.get(key) != head.get(key):
                raise ValueError(
                    f"report {i}: {key}={report.get(key)!r} does not match "
                    f"report 0 ({head.get(key)!r}); shards must come from "
                    f"one configuration"
                )
    items: List[Dict[str, Any]] = []
    for report in reports:
        items.extend(report.get("items", []))
    items.sort(key=lambda item: item["index"])
    indexes = [item["index"] for item in items]
    if len(set(indexes)) != len(indexes):
        duplicated = sorted({i for i in indexes if indexes.count(i) > 1})
        raise ValueError(
            f"overlapping shards: item index(es) {duplicated[:5]} appear "
            f"more than once"
        )
    universes = {
        report["shard"]["universe"]
        for report in reports
        if isinstance(report.get("shard"), dict)
        and "universe" in report["shard"]
    }
    if len(universes) > 1:
        raise ValueError(
            f"shards disagree on corpus size: {sorted(universes)}"
        )
    if universes and len(items) != universes.pop():
        raise ValueError(
            f"incomplete merge: {len(items)} items of a "
            f"{[r['shard']['universe'] for r in reports if r.get('shard')][0]}"
            f"-item corpus; are all shards present?"
        )
    tally: Dict[str, int] = {}
    for item in items:
        tally[item["status"]] = tally.get(item["status"], 0) + 1
    merged: Dict[str, Any] = {
        "format": REPORT_FORMAT,
        "version": REPORT_VERSION,
        "pass": head.get("pass"),
        "pipeline": head.get("pipeline"),
        "jobs": head.get("jobs"),
        "wall_time_s": round(
            sum(report.get("wall_time_s", 0.0) for report in reports), 6
        ),
        "items_total": len(items),
        "tally": tally,
        "cache": _cache_stats_of(items),
        "counters": merge_counters(
            item.get("counters", {}) for item in items
        ),
        "summary": merge_summaries(
            report.get("summary", {}) for report in reports
        ),
        "items": items,
    }
    stores = [report["store"] for report in reports if report.get("store")]
    if stores:
        merged["store"] = dict(
            max(stores, key=lambda stats: stats.get("entries", 0))
        )
    supervisors = [
        report["supervisor"] for report in reports if report.get("supervisor")
    ]
    if supervisors:
        merged["supervisor"] = merge_counters(supervisors)
    return merged


def stable_report_json(data: Dict[str, Any]) -> str:
    """A canonical projection of a report dict for equality checks.

    Drops the fields that legitimately differ between runs of the same
    corpus — wall clock, per-item durations, per-span total
    milliseconds — and serialises with sorted keys.  Two runs (or a
    shard merge and its unsharded twin) that optimised identically
    compare equal here; used by the parity tests and the CI shard
    smoke.
    """
    data = json.loads(json.dumps(data))  # deep copy
    data.pop("wall_time_s", None)
    for item in data.get("items", []):
        item.pop("duration_ms", None)
    for entry in data.get("summary", {}).values():
        entry.pop("total_ms", None)
    return json.dumps(data, sort_keys=True)
