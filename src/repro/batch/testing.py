"""Fault-injection payloads for isolation tests and CI smoke runs.

Each function here is a ``call``-kind work-item target
(``WorkItem(name, "call", "repro.batch.testing:<fn>")``) that
misbehaves in a specific, reproducible way.  They live in the package
— not in the test tree — so CI smoke steps and operators reproducing
an incident can use them against an installed ``repro`` without a
checkout.

The interesting distinction is *where* each hang can be interrupted:

* :func:`busy_loop_py` spins in Python bytecode, so the in-worker
  SIGALRM soft timeout interrupts it and the worker survives, warm;
* :func:`busy_loop_c` blocks inside one single C call
  (``sum(itertools.repeat(1))``) — CPython only runs signal handlers
  between bytecodes, so no alarm can ever fire and only the
  supervisor's hard deadline (SIGKILL from the parent) gets rid of it.

That second shape is exactly the pathological-input class the lospre
literature warns about, and what the kill-resilience CI smoke pins.
"""

from __future__ import annotations

import itertools
import os
import signal


def ok_cfg():
    """A well-formed program: a diamond with one partially redundant
    expression (the canonical LCM example)."""
    from repro.lang import compile_program

    return compile_program(
        "x = a + b; if (p) { y = a + b; } else { y = 0; } z = a + b;"
    )


def crash():
    """Raise — an ordinary per-item error record."""
    raise RuntimeError("injected crash")


def busy_loop_py():
    """Hang in Python bytecode: interruptible by the worker's SIGALRM."""
    while True:
        pass


def busy_loop_c():
    """Hang inside a single C call: *uninterruptible* by any signal
    handler; only a parent-side SIGKILL ends it."""
    return sum(itertools.repeat(1))


def sleep_forever():
    """Occupy a worker without burning CPU.  ``time.sleep`` is
    interrupted by signals, so the soft SIGALRM timeout ends it — the
    polite way to keep a worker busy in admission-control tests."""
    import time

    time.sleep(3600)


def kill_self():
    """Die the way a segfault or the OOM killer looks from outside:
    SIGKILL to our own process, mid-item, with no cleanup."""
    os.kill(os.getpid(), signal.SIGKILL)


# ---------------------------------------------------------------------------
# Deliberate miscompilation, for the differential fuzzer.
# ---------------------------------------------------------------------------


def _register_miscompile() -> None:
    """Register the ``miscompile-dce`` pass (idempotent).

    A deliberately *wrong* transformation: it drops the last
    instruction of the last non-empty block — for generator programs
    that is the final ``result = a OP b`` store, a silent wrong-code
    bug no structural check notices (the graph stays valid, the pass
    "succeeds").  Exactly the fault class differential mode exists to
    catch; the fuzz smoke in CI runs a corpus through it and must see
    every item come back ``divergent`` with its minting seed attached.

    Registered on import of this module — deliberately NOT from the
    CLI, so ``repro batch --strategy`` never offers it; tests and CI
    reach it through the Python API (batch workers inherit the
    registration, since the supervisor forks).
    """
    from repro.core.pipeline import register_pass
    from repro.core.transform import TransformResult

    @register_pass(
        "miscompile-dce",
        "BROKEN on purpose: drops a live store",
        hidden=True,
    )
    def _miscompile(cfg, ctx) -> TransformResult:
        work = cfg.copy()
        for block in reversed(work.blocks):
            if block.instrs:
                block.instrs.pop()
                break
        return TransformResult(
            original=cfg, cfg=work, placements=[], temps=set()
        )


try:
    _register_miscompile()
except ValueError:  # pragma: no cover - module imported twice
    pass
