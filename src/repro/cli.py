"""Command-line interface: compile, optimise, run and audit programs.

Usage (also via ``python -m repro``)::

    repro compile prog.mini                  # lower to IR and print it
    repro opt prog.mini --strategy lcm       # optimise, print the result
    repro opt prog.mini --pipeline           # full pass pipeline
    repro opt prog.mini --emit json          # machine-readable output
    repro opt prog.mini --emit dot           # Graphviz
    repro run prog.mini -i n=5 -i a=3        # execute, print final env
    repro run prog.mini --optimized          # ... the optimised program
    repro audit prog.mini --expr "a + b"     # per-block analysis facts
    repro report prog.mini                   # strategy comparison table
    repro batch tests/corpus --jobs 4        # whole-corpus parallel driver
    repro batch DIR --stream --max-failures 3   # NDJSON stream, early exit
    repro batch DIR --shard 2/3 --emit json  # deterministic corpus shard
    repro batch merge r1.json r2.json r3.json   # recombine shard reports
    repro batch corpus.ndjson --differential    # fuzz: compare before/after
    repro corpus generate --seed-range 0:200 --profile loopy --out DIR
    repro serve --jobs 4 --timeout 10        # long-lived request daemon
    repro --trace out.json opt prog.mini     # + JSON trace of all analyses
    repro --no-cache audit prog.mini --full  # disable solution memoization
    repro --cache-dir .repro-cache opt p.mini   # persistent on-disk cache
    repro cache stats --cache-dir .repro-cache  # inspect / gc / clear it
    repro cache gc --cache-dir D --max-bytes N  # LRU-evict to a size budget

Input files hold mini-language source (see :mod:`repro.lang`); files
ending in ``.json`` are read as serialised CFGs instead.  Program
loading and the optimize/analyze operations themselves go through the
:mod:`repro.api` facade — the same entry points the batch workers and
the serve daemon use.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence

from repro import api
from repro.bench.harness import Table
from repro.bench.metrics import measure_strategy
from repro.core.pipeline import available_strategies
from repro.interp.machine import run
from repro.ir.cfg import CFG
from repro.ir.dot import cfg_to_dot
from repro.ir.expr import parse_expr
from repro.ir.pretty import pretty_cfg
from repro.ir.serialize import cfg_to_json
from repro.obs.manager import AnalysisManager
from repro.obs.store import SolutionStore
from repro.obs.trace import Tracer, activate, deactivate


class CliError(Exception):
    """User-facing failure (bad arguments, bad input file)."""


def load_program(path: str) -> CFG:
    """Read a program: mini-language source, or a ``.json`` CFG dump."""
    try:
        return api.load_cfg(path, kind=api.KIND_PATH)
    except api.SourceError as exc:
        raise CliError(str(exc)) from exc


def _emit(cfg: CFG, fmt: str, out) -> None:
    if fmt == "text":
        print(pretty_cfg(cfg), file=out)
    elif fmt == "json":
        print(cfg_to_json(cfg), file=out)
    elif fmt == "dot":
        print(cfg_to_dot(cfg), file=out)
    else:
        raise CliError(f"unknown emit format {fmt!r}")


def _parse_bindings(pairs: Sequence[str]) -> Dict[str, int]:
    env: Dict[str, int] = {}
    for pair in pairs:
        if "=" not in pair:
            raise CliError(f"bad input binding {pair!r}; expected name=value")
        name, _, value = pair.partition("=")
        try:
            env[name.strip()] = int(value)
        except ValueError as exc:
            raise CliError(f"bad input binding {pair!r}: {exc}") from exc
    return env


# -- subcommands -------------------------------------------------------------

def cmd_compile(args, out) -> int:
    cfg = load_program(args.file)
    _emit(cfg, args.emit, out)
    return 0


def cmd_opt(args, out) -> int:
    cfg = load_program(args.file)
    outcome = api.optimize_cfg(
        cfg, args.strategy, pipeline=args.pipeline, manager=args.manager
    )
    transformed = outcome.cfg
    if args.pipeline:
        print(f"; {outcome.description}", file=out)
        compare_decisions = False  # the pipeline may fold branches
    else:
        if args.emit == "text":
            for line in outcome.description.splitlines():
                print(f"; {line}", file=out)
        compare_decisions = True  # strategies never touch branches
    _emit(transformed, args.emit, out)
    if args.verify:
        from repro.core.verify import verify_transformation

        expect_safe = not args.pipeline and args.strategy != "licm"
        verdict = verify_transformation(
            cfg,
            transformed,
            compare_decisions=compare_decisions,
            expect_safe=expect_safe,
        )
        for line in verdict.describe().splitlines():
            print(f"; {line}", file=out)
        if not verdict.ok:
            return 1
    return 0


def cmd_run(args, out) -> int:
    cfg = load_program(args.file)
    if args.optimized:
        cfg = api.optimize_cfg(cfg, args.strategy, manager=args.manager).cfg
    env = _parse_bindings(args.input or [])
    result = run(cfg, env, max_steps=args.max_steps)
    if not result.reached_exit:
        print(f"program did not finish within {args.max_steps} steps", file=out)
        return 1
    for name in sorted(result.env):
        print(f"{name} = {result.env[name]}", file=out)
    print(f"; {result.total_evaluations} expression evaluations", file=out)
    return 0


def cmd_audit(args, out) -> int:
    cfg = load_program(args.file)
    if args.full:
        from repro.core.report import optimization_report

        print(
            optimization_report(
                cfg,
                strategy=args.strategy,
                title=args.file,
                manager=args.manager,
            ),
            file=out,
        )
        return 0
    outcome = api.analyze_cfg(cfg, manager=args.manager)
    if args.expr:
        wanted = str(parse_expr(args.expr))
        if wanted not in outcome.placements:
            known = ", ".join(outcome.expressions)
            raise CliError(
                f"{args.expr!r} does not occur in the program; "
                f"candidates: {known or '(none)'}"
            )
        exprs = [wanted]
    else:
        exprs = list(outcome.expressions)
    for expr in exprs:
        decision = outcome.placements[expr]
        inserts = decision["insert_edges"]
        deletes = decision["delete_blocks"]
        print(f"{expr}:", file=out)
        print(f"  INSERT on edges : {', '.join(inserts) or '(none)'}", file=out)
        print(f"  DELETE in blocks: {', '.join(deletes) or '(none)'}", file=out)
    return 0


def _parse_shard(spec: str):
    """``--shard i/n`` (1-based) -> 0-based ``(index, total)``."""
    head, sep, tail = spec.partition("/")
    try:
        if not sep:
            raise ValueError("missing '/'")
        index, total = int(head), int(tail)
    except ValueError as exc:
        raise CliError(
            f"bad shard spec {spec!r}; expected i/n, e.g. 2/3"
        ) from exc
    if total < 1 or not 1 <= index <= total:
        raise CliError(
            f"bad shard spec {spec!r}: index must be in 1..n"
        )
    return index - 1, total


def _cmd_batch_merge(args, out) -> int:
    """``repro batch merge R1.json R2.json ...``: recombine shard reports."""
    from repro.batch import merge_report_dicts

    if not args.reports:
        raise CliError("merge needs at least one report file")
    reports = []
    for path in args.reports:
        try:
            with open(path) as handle:
                reports.append(json.load(handle))
        except (OSError, ValueError) as exc:
            raise CliError(f"cannot read report {path}: {exc}") from exc
    try:
        merged = merge_report_dicts(reports)
    except ValueError as exc:
        raise CliError(str(exc)) from exc
    print(json.dumps(merged, indent=2), file=out)
    bad = {k: v for k, v in merged["tally"].items() if k != "ok"}
    if bad:
        total = sum(bad.values())
        print(
            f"error: {total}/{merged['items_total']} items failed: "
            + ", ".join(f"{v} {k}" for k, v in sorted(bad.items())),
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_batch(args, out) -> int:
    import time as time_module

    from repro.batch import (
        BatchConfig,
        collect_report,
        iter_batch,
        run_batch,
        shard_items,
    )
    from repro.corpus import load_corpus

    if args.dir == "merge":
        return _cmd_batch_merge(args, out)
    if args.reports:
        raise CliError(
            "unexpected extra arguments: "
            + " ".join(args.reports)
            + " (report files are only accepted after 'merge')"
        )
    try:
        items = load_corpus(
            args.dir, recursive=args.recursive, allow_call=args.allow_call
        )
    except ValueError as exc:
        raise CliError(str(exc)) from exc
    shard = None
    positions = {item.name: i for i, item in enumerate(items)}
    universe = len(items)
    if args.shard:
        index, total = _parse_shard(args.shard)
        shard = {"index": index + 1, "total": total, "universe": universe}
        items = shard_items(items, index, total)
    try:
        config = BatchConfig(
            pass_=args.strategy,
            pipeline=args.pipeline,
            jobs=args.jobs,
            timeout=args.timeout,
            retries=args.retries,
            max_tasks_per_worker=args.recycle_after,
            stop_after_failures=args.max_failures,
            deadline_s=args.deadline,
            cache=not args.no_cache,
            store_path=args.cache_dir,
            keep_ir=args.keep_ir,
            differential=args.differential,
            diff_runs=args.diff_runs,
            diff_seed=args.diff_seed,
        )
    except ValueError as exc:
        raise CliError(str(exc)) from exc
    if args.stream:
        # NDJSON: one compact item record per line, in completion
        # order, flushed as it happens — then the collected report
        # (identical to the non-streaming run, modulo timings).  The
        # record shapes come from the shared protocol codec, so the
        # stream and the serve daemon cannot drift apart.
        from repro.service import protocol

        stats: Dict[str, int] = {}
        results = []
        start = time_module.perf_counter()
        for record in iter_batch(items, config, stats):
            # Shard runs remap record indexes to positions in the full
            # corpus, so shard reports merge back seamlessly.
            record.index = positions[record.name]
            print(json.dumps(protocol.item_record(record)), file=out,
                  flush=True)
            results.append(record)
        wall = time_module.perf_counter() - start
        report = collect_report(results, config, wall, stats)
    else:
        report = run_batch(items, config)
        for record in report.items:
            record.index = positions[record.name]
    report.shard = shard
    if args.stream and args.emit == "json":
        # Keep stdout line-oriented: the report is the final NDJSON
        # line, recognisable by its "format" key.
        from repro.service import protocol

        print(json.dumps(protocol.report_record(report)), file=out,
              flush=True)
    elif args.emit == "json":
        print(report.to_json(), file=out)
    else:
        print(report.render_table(), file=out)
    if not report.ok:
        failed = [i.name for i in report.items if not i.ok]
        print(
            f"error: {report.error_count}/{len(report.items)} items failed: "
            f"{', '.join(failed)}",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_corpus(args, out) -> int:
    from repro.corpus import (
        generated_items,
        parse_seed_range,
        profile_config,
        read_manifest,
        regenerate_corpus,
        write_corpus,
        write_manifest,
    )

    if args.action != "generate":
        raise CliError(f"unknown corpus action {args.action!r}")
    try:
        if args.from_manifest:
            if not args.out:
                raise ValueError(
                    "--from-manifest regenerates files; pass --out DIR"
                )
            written = regenerate_corpus(args.from_manifest, args.out)
            items = read_manifest(args.from_manifest)
        else:
            if not args.seed_range:
                raise ValueError(
                    "corpus generate needs --seed-range A:B "
                    "(or --from-manifest FILE)"
                )
            seeds = parse_seed_range(args.seed_range)
            config = profile_config(
                args.profile,
                statements=args.size,
                max_depth=args.max_depth,
            )
            items = generated_items(seeds, config, prefix=args.prefix)
            written = None
            if args.out:
                written = write_corpus(items, args.out)
            if args.manifest:
                write_manifest(items, args.manifest)
            if not args.out and not args.manifest:
                raise ValueError(
                    "nowhere to write: pass --out DIR and/or "
                    "--manifest FILE"
                )
    except ValueError as exc:
        raise CliError(str(exc)) from exc
    if written is not None:
        print(
            f"wrote {written['files']} programs + manifest to "
            f"{written['dir']}",
            file=out,
        )
    if not args.from_manifest and args.manifest:
        print(f"wrote {len(items)}-item manifest to {args.manifest}",
              file=out)
    return 0


def cmd_cache(args, out) -> int:
    if not args.cache_dir:
        raise CliError(
            "cache needs a store directory; pass --cache-dir DIR"
        )
    store = SolutionStore(args.cache_dir)
    if args.action == "stats":
        stats = store.stats()
        if args.emit == "json":
            print(json.dumps(stats, indent=2), file=out)
        else:
            print(f"store        : {stats['path']}", file=out)
            print(f"code version : {stats['code_version']}", file=out)
            print(
                f"entries      : {stats['entries']} "
                f"({stats['bytes']} bytes)",
                file=out,
            )
            print(
                f"stale entries: {stats['stale_entries']} "
                f"({stats['stale_bytes']} bytes, other code versions; "
                f"reclaim with `repro cache gc`)",
                file=out,
            )
            print(
                f"evictions    : {stats['evicted_entries']} entries "
                f"({stats['evicted_bytes']} bytes, cumulative, by "
                f"`gc --max-bytes` LRU sweeps)",
                file=out,
            )
        return 0
    if args.action == "gc":
        removed = store.gc(max_bytes=args.max_bytes)
        print(
            f"gc: removed {removed['removed_entries']} stale entries, "
            f"reclaimed {removed['reclaimed_bytes']} bytes",
            file=out,
        )
        if args.max_bytes is not None:
            print(
                f"gc: evicted {removed['evicted_entries']} "
                f"least-recently-used entries "
                f"({removed['evicted_bytes']} bytes) to fit the "
                f"{args.max_bytes}-byte budget",
                file=out,
            )
        return 0
    if args.action == "clear":
        removed = store.clear()
        print(
            f"clear: removed {removed['removed_entries']} entries, "
            f"reclaimed {removed['reclaimed_bytes']} bytes",
            file=out,
        )
        return 0
    raise CliError(f"unknown cache action {args.action!r}")


def cmd_serve(args, out) -> int:
    from repro.service import ReproServer, ServeConfig
    from repro.service.protocol import encode, listening_record

    config = ServeConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        timeout=args.timeout,
        queue_limit=args.queue_limit,
        cache_size=args.response_cache,
        store_path=args.cache_dir,
        cache=not args.no_cache,
        max_tasks_per_worker=args.recycle_after,
        allow_call=args.allow_call,
    )
    server = ReproServer(config)

    def announce(host: str, port: int) -> None:
        # The readiness line: scripts wait for it, then parse the port.
        out.write(encode(listening_record(host, port)).decode("utf-8"))
        out.flush()

    server.on_listening = announce
    try:
        server.run()
    except KeyboardInterrupt:
        pass
    return 0


def cmd_report(args, out) -> int:
    cfg = load_program(args.file)
    headers = ["strategy", "static", "dynamic", "temps", "live pts",
               "pressure", "bv ops", "blocks"]
    table = Table(headers, title=f"strategy comparison for {args.file}")
    for strategy in args.strategies.split(","):
        metrics = measure_strategy(cfg, strategy.strip(), runs=args.runs)
        table.add_mapping(metrics.as_row())
    print(table.render(), file=out)
    return 0


# -- entry point -------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    strategies = [s.name for s in available_strategies()]
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Lazy Code Motion reproduction: compile, optimise, "
        "run and audit mini-language programs.",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="write a structured JSON trace of every analysis/transform "
        "span to FILE (see docs/OBSERVABILITY.md)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the AnalysisManager memoization of dataflow solutions",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="directory of a persistent, shareable on-disk solution store "
        "consulted before solving and written through on misses "
        "(see docs/CACHING.md)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser("compile", help="lower source to IR")
    p_compile.add_argument("file")
    p_compile.add_argument("--emit", choices=("text", "json", "dot"),
                           default="text")
    p_compile.set_defaults(handler=cmd_compile)

    p_opt = sub.add_parser("opt", help="optimise a program")
    p_opt.add_argument("file")
    p_opt.add_argument("--strategy", choices=strategies, default="lcm")
    p_opt.add_argument("--pipeline", action="store_true",
                       help="run the full pass pipeline instead of one strategy")
    p_opt.add_argument("--emit", choices=("text", "json", "dot"), default="text")
    p_opt.add_argument("--verify", action="store_true",
                       help="verify semantics + per-path safety afterwards")
    p_opt.set_defaults(handler=cmd_opt)

    p_run = sub.add_parser("run", help="execute a program")
    p_run.add_argument("file")
    p_run.add_argument("-i", "--input", action="append", metavar="NAME=VALUE")
    p_run.add_argument("--optimized", action="store_true",
                       help="optimise before running")
    p_run.add_argument("--strategy", choices=strategies, default="lcm")
    p_run.add_argument("--max-steps", type=int, default=1_000_000)
    p_run.set_defaults(handler=cmd_run)

    p_audit = sub.add_parser("audit", help="show LCM decisions per expression")
    p_audit.add_argument("file")
    p_audit.add_argument("--expr", help="restrict to one expression, e.g. 'a + b'")
    p_audit.add_argument("--full", action="store_true",
                         help="full report: universe, placements, metrics, verdict")
    p_audit.add_argument("--strategy", choices=strategies, default="lcm")
    p_audit.set_defaults(handler=cmd_audit)

    p_batch = sub.add_parser(
        "batch",
        help="optimise a whole corpus across a worker pool "
        "(or 'merge' per-shard reports)",
    )
    p_batch.add_argument(
        "dir",
        help="corpus to run: a directory of .mini/.json programs, a "
        ".zip/.tar archive, or a manifest file — or the word 'merge' "
        "to recombine per-shard report files",
    )
    p_batch.add_argument(
        "reports", nargs="*", metavar="REPORT",
        help="with 'merge': the per-shard JSON report files "
        "(merge always emits the recombined JSON report)",
    )
    p_batch.add_argument("--jobs", type=int, default=1,
                         help="worker processes (1: serial in-process)")
    p_batch.add_argument("--recursive", action="store_true",
                         help="scan corpus directories recursively "
                         "(item names carry the relative path)")
    p_batch.add_argument("--shard", metavar="I/N", default=None,
                         help="run only shard I of N (1-based); items "
                         "partition by a stable hash of their names, and "
                         "per-shard reports recombine with 'repro batch "
                         "merge'")
    p_batch.add_argument("--differential", action="store_true",
                         help="differential fuzzing: execute each program "
                         "before and after optimization on seeded random "
                         "inputs; mismatches become 'divergent' records")
    p_batch.add_argument("--diff-runs", type=int, default=8, metavar="N",
                         help="input environments per item in "
                         "differential mode")
    p_batch.add_argument("--diff-seed", type=int, default=0, metavar="S",
                         help="base seed for differential input decks")
    p_batch.add_argument("--allow-call", action="store_true",
                         help="honour kind='call' manifest items "
                         "(arbitrary module:function loaders; tests only)")
    p_batch.add_argument("--timeout", type=float, default=None, metavar="S",
                         help="per-item wall-clock budget in seconds")
    p_batch.add_argument("--retries", type=int, default=0,
                         help="extra attempts for items that error/time out")
    p_batch.add_argument("--stream", action="store_true",
                         help="emit one NDJSON item record per line as "
                         "results complete (completion order; the collected "
                         "report follows)")
    p_batch.add_argument("--max-failures", type=int, default=None,
                         metavar="N",
                         help="cancel the rest of the batch after N failed "
                         "items (the remainder is recorded as 'skipped')")
    p_batch.add_argument("--recycle-after", type=int, default=None,
                         metavar="N",
                         help="retire and respawn each worker after it "
                         "served N items (bounds worker memory growth)")
    p_batch.add_argument("--deadline", type=float, default=None, metavar="S",
                         help="whole-batch wall-clock budget in seconds; "
                         "on expiry the remainder is 'skipped'")
    p_batch.add_argument("--strategy", choices=strategies, default="lcm")
    p_batch.add_argument("--pipeline", action="store_true",
                         help="run the full pass pipeline per program")
    p_batch.add_argument("--emit", choices=("table", "json"), default="table")
    p_batch.add_argument("--keep-ir", action="store_true",
                         help="include each optimised program's JSON IR "
                         "in the report")
    # Accepted after the subcommand too (`repro batch DIR --cache-dir X`);
    # SUPPRESS keeps an omitted flag from clobbering the global value.
    p_batch.add_argument("--cache-dir", metavar="DIR",
                         default=argparse.SUPPRESS,
                         help="shared on-disk solution store for all workers")
    p_batch.set_defaults(handler=cmd_batch)

    p_corpus = sub.add_parser(
        "corpus",
        help="mint reproducible program corpora from seed ranges "
        "(see docs/CORPUS.md)",
    )
    p_corpus.add_argument("action", choices=("generate",),
                          help="generate: mint programs from "
                          "--seed-range + profile knobs")
    p_corpus.add_argument("--seed-range", metavar="A:B", default=None,
                          help="half-open seed range, e.g. 0:200 "
                          "(one program per seed)")
    p_corpus.add_argument("--profile", choices=("mixed", "loopy", "branchy"),
                          default="mixed",
                          help="generator bias: loop-heavy, branch-heavy, "
                          "or the mixed default")
    p_corpus.add_argument("--size", type=int, default=12, metavar="N",
                          help="statements per program")
    p_corpus.add_argument("--max-depth", type=int, default=3, metavar="N",
                          help="maximum control-flow nesting depth")
    p_corpus.add_argument("--prefix", default="gen-",
                          help="item/file name prefix (default 'gen-')")
    p_corpus.add_argument("--out", metavar="DIR", default=None,
                          help="materialise NAME.mini files plus "
                          "manifest.ndjson under DIR")
    p_corpus.add_argument("--manifest", metavar="FILE", default=None,
                          help="write the manifest alone (.ndjson for the "
                          "line-oriented encoding) — workers mint programs "
                          "on demand")
    p_corpus.add_argument("--from-manifest", metavar="FILE", default=None,
                          help="regenerate a materialised corpus "
                          "bit-identically from an existing manifest "
                          "(requires --out)")
    p_corpus.set_defaults(handler=cmd_corpus)

    p_cache = sub.add_parser(
        "cache",
        help="inspect or maintain an on-disk solution store",
    )
    p_cache.add_argument("action", choices=("stats", "gc", "clear"),
                         help="stats: entry/size summary; gc: drop entries "
                         "of other code versions; clear: drop everything")
    p_cache.add_argument("--cache-dir", metavar="DIR",
                         default=argparse.SUPPRESS,
                         help="the store directory (also accepted globally)")
    p_cache.add_argument("--max-bytes", type=int, default=None, metavar="N",
                         help="with gc: after the stale sweep, evict "
                         "least-recently-used current entries until the "
                         "store is at most N bytes")
    p_cache.add_argument("--emit", choices=("text", "json"), default="text")
    p_cache.set_defaults(handler=cmd_cache)

    p_serve = sub.add_parser(
        "serve",
        help="long-lived optimization daemon: NDJSON requests over TCP, "
        "multiplexed onto a warm worker pool (see docs/SERVE.md)",
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (loopback by default)")
    p_serve.add_argument("--port", type=int, default=0,
                         help="bind port; 0 picks a free one (announced "
                         "in the readiness line)")
    p_serve.add_argument("--jobs", type=int, default=2,
                         help="pool worker processes")
    p_serve.add_argument("--timeout", type=float, default=None, metavar="S",
                         help="default per-request wall-clock budget; a "
                         "request's own 'timeout' field overrides it")
    p_serve.add_argument("--queue-limit", type=int, default=8, metavar="N",
                         help="work requests allowed to wait beyond the "
                         "JOBS already running; more are rejected")
    p_serve.add_argument("--response-cache", type=int, default=256,
                         metavar="N",
                         help="response-cache entries held in memory "
                         "(LRU; 0 disables response caching)")
    p_serve.add_argument("--recycle-after", type=int, default=None,
                         metavar="N",
                         help="retire and respawn each worker after it "
                         "served N requests")
    p_serve.add_argument("--allow-call", action="store_true",
                         help="honour kind='call' requests (arbitrary "
                         "module:function loaders; tests only)")
    p_serve.add_argument("--cache-dir", metavar="DIR",
                         default=argparse.SUPPRESS,
                         help="shared on-disk store: the workers' "
                         "solution cache and the response cache's "
                         "persistent tier")
    p_serve.set_defaults(handler=cmd_serve)

    p_report = sub.add_parser("report", help="strategy comparison table")
    p_report.add_argument("file")
    p_report.add_argument("--strategies", default="none,gcse,mr,bcm,lcm")
    p_report.add_argument("--runs", type=int, default=10)
    p_report.set_defaults(handler=cmd_report)

    return parser


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    # A disabled manager (not None): handlers that default a missing
    # manager to a fresh one must stay uncached under --no-cache.
    store = (
        SolutionStore(args.cache_dir)
        if args.cache_dir and not args.no_cache
        else None
    )
    args.manager = AnalysisManager(enabled=not args.no_cache, store=store)
    tracer = Tracer() if args.trace else None
    if tracer is not None:
        activate(tracer)
    try:
        code = args.handler(args, out)
    except CliError as exc:
        print(f"error: {exc}", file=sys.stderr)
        code = 2
    finally:
        if tracer is not None:
            deactivate()
    if tracer is not None:
        try:
            tracer.write(args.trace)
        except OSError as exc:
            print(f"error: cannot write trace {args.trace}: {exc}",
                  file=sys.stderr)
            code = code or 2
    return code


if __name__ == "__main__":
    sys.exit(main())
