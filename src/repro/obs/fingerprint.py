"""Content fingerprints for CFGs.

The cache key of the :class:`~repro.obs.manager.AnalysisManager`: a
SHA-256 digest over the canonical JSON serialisation of the graph
(block order, instructions, terminators, entry/exit, edge weights).
Two graphs with the same fingerprint have identical dataflow facts, so
a memoized :class:`~repro.dataflow.solver.Solution` can be reused
bit-for-bit.

The digest deliberately goes through :func:`repro.ir.serialize.cfg_to_dict`
rather than ``str(cfg)``: the serialiser is versioned, round-trip exact
and covers edge weights, which pretty-printing omits.
"""

from __future__ import annotations

import hashlib
import json

from repro.ir.cfg import CFG
from repro.ir.serialize import cfg_to_dict


def cfg_fingerprint(cfg: CFG) -> str:
    """A stable hex digest of *cfg*'s full content."""
    payload = json.dumps(cfg_to_dict(cfg), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
