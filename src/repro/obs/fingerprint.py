"""Content fingerprints for CFGs, maintained incrementally.

The cache key of the :class:`~repro.obs.manager.AnalysisManager`: a
SHA-256 digest over the graph's content (block order, instructions,
terminators, entry/exit, edge weights).  Two graphs with the same
fingerprint have identical dataflow facts, so a memoized
:class:`~repro.dataflow.solver.Solution` can be reused bit-for-bit.

The digest is built in two layers:

* :func:`block_fingerprint` hashes one block's canonical JSON payload
  (:func:`repro.ir.serialize.block_to_dict` — versioned, round-trip
  exact);
* :func:`combine_fingerprints` folds the per-block digests, in block
  order, together with the entry/exit labels and the non-default edge
  weights into the graph digest.

``cfg_fingerprint`` composes the two for a from-scratch digest.  The
point of the split is :class:`FingerprintState`: a per-CFG-object cache
of the block digests that the manager keeps current through the
``notify_cfg_edited`` / ``notify_cfg_mutated`` hooks, so an
instruction-level edit re-hashes one block and re-combines — instead of
re-serialising the whole graph.  The two paths are counter-pinned as
``fingerprint.full`` (whole-graph hash) vs ``fingerprint.incr``
(dirty-block refresh); both run under a ``fingerprint`` span.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Iterable, Optional

from repro.ir.block import BasicBlock
from repro.ir.cfg import CFG
from repro.ir.serialize import block_to_dict
from repro.obs import trace

#: Bumped whenever the digest construction changes shape, so digests
#: from different code versions never collide in a shared store.
COMBINE_VERSION = 2

_JSON_ARGS = {"sort_keys": True, "separators": (",", ":")}


def block_fingerprint(block: BasicBlock) -> str:
    """A stable hex digest of one block's content (incl. its label)."""
    payload = json.dumps(block_to_dict(block), **_JSON_ARGS)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def combine_fingerprints(cfg: CFG, digests: Dict[str, str]) -> str:
    """Fold per-block *digests* into the graph digest of *cfg*.

    *digests* must contain an entry for every block label of *cfg*; any
    extra entries (blocks since removed) are ignored.  The combination
    walks ``cfg.labels`` — block *order* is part of the content, the
    iteration order of *digests* is not.  Entry/exit labels and
    non-default edge weights (over the current edges, mirroring
    :func:`~repro.ir.serialize.cfg_to_dict`) are folded in as well.
    """
    hasher = hashlib.sha256()
    header = json.dumps(
        {"v": COMBINE_VERSION, "entry": cfg.entry, "exit": cfg.exit},
        **_JSON_ARGS,
    )
    hasher.update(header.encode("utf-8"))
    for label in cfg.labels:
        hasher.update(
            json.dumps([label, digests[label]], **_JSON_ARGS).encode("utf-8")
        )
    weights = [
        [src, dst, cfg.weight((src, dst))]
        for src, dst in cfg.edges()
        if cfg.weight((src, dst)) != 1
    ]
    hasher.update(json.dumps(weights, **_JSON_ARGS).encode("utf-8"))
    return hasher.hexdigest()


def cfg_fingerprint(cfg: CFG) -> str:
    """A stable hex digest of *cfg*'s full content (from scratch)."""
    with trace.span("fingerprint", mode="full", blocks=len(cfg)):
        digests = {block.label: block_fingerprint(block) for block in cfg}
        value = combine_fingerprints(cfg, digests)
    trace.count("fingerprint.full")
    return value


class FingerprintState:
    """The incrementally maintained fingerprint of one CFG object.

    Holds the per-block digests of the graph as last hashed, the
    combined graph digest, and the set of labels edited since — marked
    through :meth:`mark_edited` by the manager's notification hooks.
    :meth:`current` refreshes lazily: dirty blocks (and blocks added
    since the last hash) are re-hashed, digests of removed blocks are
    pruned, and the combination is re-folded.  A refresh costs
    O(edited region + combine), not O(graph serialisation), and bumps
    ``fingerprint.incr``; only the initial :meth:`of` pays the
    whole-graph ``fingerprint.full`` hash.

    :meth:`derive` seeds the state of a *copied* graph from its base's
    digests — the transformation engine copies the input, edits a known
    set of blocks, and derives, so the copy's first fingerprint lookup
    is already incremental.
    """

    __slots__ = ("value", "blocks", "dirty")

    def __init__(
        self,
        value: Optional[str],
        blocks: Dict[str, str],
        dirty: Iterable[str] = (),
    ) -> None:
        self.value = value
        self.blocks = blocks
        self.dirty = set(dirty)

    @classmethod
    def of(cls, cfg: CFG) -> "FingerprintState":
        """Hash *cfg* from scratch (the ``fingerprint.full`` path)."""
        with trace.span("fingerprint", mode="full", blocks=len(cfg)):
            digests = {block.label: block_fingerprint(block) for block in cfg}
            value = combine_fingerprints(cfg, digests)
        trace.count("fingerprint.full")
        return cls(value, digests)

    def mark_edited(self, labels: Iterable[str]) -> None:
        """Record that the blocks named *labels* changed content."""
        self.dirty.update(labels)

    def current(self, cfg: CFG) -> str:
        """The up-to-date graph digest, refreshing dirty blocks lazily."""
        if self.dirty or self.value is None:
            self.refresh(cfg)
        return self.value

    def refresh(self, cfg: CFG) -> str:
        """Re-hash dirty/added blocks, prune removed ones, re-combine."""
        current_labels = set(cfg.labels)
        stale = {label for label in self.dirty if label in current_labels}
        stale |= current_labels - self.blocks.keys()
        with trace.span("fingerprint", mode="incr", blocks=len(stale)):
            for label in stale:
                self.blocks[label] = block_fingerprint(cfg.block(label))
            for label in list(self.blocks.keys() - current_labels):
                del self.blocks[label]
            self.value = combine_fingerprints(cfg, self.blocks)
        self.dirty.clear()
        trace.count("fingerprint.incr")
        return self.value

    def derive(self, edited: Iterable[str]) -> "FingerprintState":
        """State for a copy of this state's graph with *edited* blocks.

        The copy shares the base's clean block digests; edited (or
        newly added) labels are pending, plus anything already dirty on
        the base.  The combined value is left unset — the first lookup
        on the derived graph runs the incremental refresh.
        """
        return FingerprintState(
            None, dict(self.blocks), self.dirty | set(edited)
        )
