"""Observability and caching: tracing, metrics and memoized analyses.

The cross-cutting layer behind the reproduction's cost claims:

* :mod:`repro.obs.trace` — spans, counters and gauges with a structured
  JSON exporter; free when no tracer is installed;
* :mod:`repro.obs.fingerprint` — content fingerprints of CFGs, the
  cache key;
* :mod:`repro.obs.manager` — the :class:`AnalysisManager`, which
  memoizes dataflow solutions and analysis bundles and is invalidated
  through :func:`notify_cfg_mutated` when graphs mutate in place;
* :mod:`repro.obs.store` — the :class:`SolutionStore`, a
  content-addressed on-disk second tier shared across processes and
  invocations (what makes the batch cache persistent).

See ``docs/OBSERVABILITY.md`` for the trace schema and span-name
inventory, and ``docs/CACHING.md`` for the two-tier cache story.
"""

from repro.obs.trace import (
    SpanEvent,
    Tracer,
    activate,
    count,
    current,
    deactivate,
    gauge,
    is_active,
    merge_counters,
    merge_summaries,
    snapshot,
    span,
    tracing,
)
from repro.obs.fingerprint import cfg_fingerprint
from repro.obs.manager import (
    AnalysisManager,
    CacheStats,
    notify_cfg_derived,
    notify_cfg_edited,
    notify_cfg_mutated,
)
from repro.obs.store import JSONRecord, SolutionStore, default_code_version

__all__ = [
    "AnalysisManager",
    "CacheStats",
    "JSONRecord",
    "SolutionStore",
    "SpanEvent",
    "Tracer",
    "activate",
    "cfg_fingerprint",
    "count",
    "current",
    "deactivate",
    "default_code_version",
    "gauge",
    "is_active",
    "merge_counters",
    "merge_summaries",
    "notify_cfg_derived",
    "notify_cfg_edited",
    "notify_cfg_mutated",
    "snapshot",
    "span",
    "tracing",
]
