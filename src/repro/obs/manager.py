"""The analysis manager: memoized dataflow solutions with invalidation.

The paper's cost argument is that LCM's four unidirectional analyses
are cheap; this module makes them cheap *in practice* by never solving
the same problem on the same program twice.  An :class:`AnalysisManager`
memoizes :class:`~repro.dataflow.solver.Solution` objects (and whole
analysis bundles such as :class:`~repro.core.lcm.LCMAnalysis`) keyed by

    (CFG content fingerprint, computation key)

so repeated pipeline runs, strategy comparisons and report generation
over an unchanged graph hit the cache and return the *same* object —
bit-identical facts, zero solver work.

Because the fingerprint is content-based, caching is sound even across
distinct CFG objects with equal content.  The only subtlety is in-place
mutation: fingerprints are themselves cached per CFG *object* (hashing
a big graph on every lookup would defeat the purpose), so code that
mutates a graph in place must call :func:`notify_cfg_mutated` — the
transformation engine (:mod:`repro.core.transform`) and the pass
pipeline (:mod:`repro.passes.pipeline`) do.  Cached solutions are never
dropped by invalidation: they stay valid for any graph that hashes to
their fingerprint; invalidation only forces the fingerprint itself to
be recomputed.

A manager can additionally be given a
:class:`~repro.obs.store.SolutionStore`, which turns the cache into two
tiers: in-memory hit first, then disk, then solve-and-write.  The disk
tier is shared across processes and invocations (batch workers point at
one ``--cache-dir``); a disk hit is promoted into the memory tier, so
repeated lookups pay the deserialisation once.  Values the store has no
codec for stay memory-only — the disk tier is transparent, never
load-bearing.

Cache traffic is observable: hits, misses and invalidations bump the
``cache.hit`` / ``cache.miss`` / ``cache.invalidate`` counters on the
installed tracer (see :mod:`repro.obs.trace`), the disk tier bumps
``cache.disk.hit`` / ``cache.disk.miss`` / ``cache.disk.write``, and
both tiers are tallied separately in :attr:`AnalysisManager.stats` —
so ``repro cache stats``, batch reports and trace counters agree.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Tuple

from repro.obs import trace
from repro.obs.fingerprint import cfg_fingerprint
from repro.ir.cfg import CFG

#: Every live manager, so module-level mutation hooks can reach them all.
_LIVE_MANAGERS: "weakref.WeakSet" = weakref.WeakSet()


def notify_cfg_mutated(cfg: CFG) -> None:
    """Invalidate *cfg*'s cached fingerprint in every live manager.

    The hook mutating code must call after changing a graph in place.
    Cheap when no managers exist or none has seen the graph.  This is
    the *coarse* hook — any incremental liveness engines held for *cfg*
    drop all their facts; code making instruction-level edits to
    existing blocks should call :func:`notify_cfg_edited` instead so
    engines can patch rather than rebuild.
    """
    for manager in list(_LIVE_MANAGERS):
        manager.invalidate(cfg)


def notify_cfg_edited(cfg: CFG, labels) -> None:
    """Signal instruction-level edits to existing blocks of *cfg*.

    The edit-granular sibling of :func:`notify_cfg_mutated`: *labels*
    names the blocks whose instruction lists changed in place (inserts,
    deletes, replacements — not structural changes like added blocks or
    rewritten terminators, which need the coarse hook).  Every live
    manager drops its stale fingerprint for *cfg* exactly as for a
    coarse mutation, but its incremental liveness engines
    (:class:`repro.dataflow.incremental.IncrementalLiveness`) keep their
    fixpoints and mark just those blocks dirty, so the next query pays
    for a region update instead of a global re-solve.
    """
    for manager in list(_LIVE_MANAGERS):
        manager.notify_edited(cfg, labels)


@dataclass
class CacheStats:
    """Hit/miss/invalidation tallies for one manager, split by tier.

    ``hits`` are in-memory hits and ``misses`` are full misses (the
    solver actually ran); the disk tier is counted separately so batch
    reports and ``repro cache stats`` can tell "served from a previous
    process" apart from "already warm in this one":

    * ``disk_hits`` — lookups served by deserialising a store entry;
    * ``disk_misses`` — lookups where the store was consulted and had
      nothing usable (every full miss with a store attached);
    * ``disk_writes`` — solutions persisted after a full miss.

    The dense solver backend adds two memory-only tallies —
    ``plan_hits``/``plan_misses`` for the per-fingerprint plan caches
    (:class:`~repro.dataflow.dense.DenseGraph` solve plans and the
    fused :class:`~repro.dataflow.fused.LCMPlan` tier share the
    columns; kept out of the hit/miss tallies above so cache-rate
    assertions stay about *solutions*) — and ``backends``, a
    per-backend count of the solves this manager actually ran
    (``{"dense": ..., "reference": ...}``, plus ``"fused"`` counting
    whole-cascade runs of :mod:`repro.dataflow.fused`).
    """

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    disk_hits: int = 0
    disk_misses: int = 0
    disk_writes: int = 0
    plan_hits: int = 0
    plan_misses: int = 0
    backends: Dict[str, int] = field(default_factory=dict)

    @property
    def lookups(self) -> int:
        return self.hits + self.disk_hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served without solving (either tier)."""
        return (self.hits + self.disk_hits) / self.lookups if self.lookups else 0.0


class AnalysisManager:
    """Memoizes analysis results keyed by CFG content fingerprint.

    Args:
        enabled: with False, every lookup recomputes (the CLI's
            ``--no-cache``); stats still record the misses, and the
            disk tier is bypassed entirely.
        store: an optional :class:`~repro.obs.store.SolutionStore`
            consulted between the memory tier and a fresh solve, and
            written through on misses (the CLI's ``--cache-dir``).
    """

    def __init__(self, enabled: bool = True, store=None) -> None:
        self.enabled = enabled
        self.store = store
        self.stats = CacheStats()
        self._store: Dict[Tuple[str, str], Any] = {}
        self._plans: Dict[str, Any] = {}
        self._fingerprints: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        self._engines: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        _LIVE_MANAGERS.add(self)

    # -- keys -----------------------------------------------------------

    def fingerprint(self, cfg: CFG) -> str:
        """The content fingerprint of *cfg*, cached per object."""
        try:
            return self._fingerprints[cfg]
        except KeyError:
            fp = cfg_fingerprint(cfg)
            self._fingerprints[cfg] = fp
            return fp

    # -- lookups --------------------------------------------------------

    def cached(self, cfg: CFG, key: str, compute: Callable[[], Any]) -> Any:
        """Return the memoized value for (*cfg* content, *key*).

        Tiers, in order: memory, then the attached disk store (a hit is
        promoted into memory), then *compute* — whose result goes into
        memory and, when the store has a codec for it, onto disk.  The
        stored object is returned as-is on later hits — callers must
        treat it as immutable.
        """
        if not self.enabled:
            self.stats.misses += 1
            trace.count("cache.miss")
            return compute()
        fingerprint = self.fingerprint(cfg)
        full_key = (fingerprint, key)
        try:
            value = self._store[full_key]
        except KeyError:
            pass
        else:
            self.stats.hits += 1
            trace.count("cache.hit")
            return value
        if self.store is not None:
            value = self.store.load(fingerprint, key, cfg=cfg)
            if value is not None:
                self.stats.disk_hits += 1
                self._store[full_key] = value
                return value
            self.stats.disk_misses += 1
        self.stats.misses += 1
        trace.count("cache.miss")
        value = compute()
        self._store[full_key] = value
        if self.store is not None and self.store.save(fingerprint, key, value):
            self.stats.disk_writes += 1
        return value

    def dense_plan(self, cfg: CFG):
        """The dense solve plan for *cfg*, memoized by content fingerprint.

        Plans (:class:`~repro.dataflow.dense.DenseGraph`) are pure
        functions of graph content, so one compilation serves all four
        LCM solves plus liveness on the same graph — and any other
        graph with equal content.  The cache is memory-only (plans cost
        less to recompile than to deserialise) with its own
        ``plan_hits``/``plan_misses`` stats, so solution hit rates are
        unaffected.  With caching disabled, every call recompiles.
        """
        from repro.dataflow.dense import compile_plan

        if not self.enabled:
            self.stats.plan_misses += 1
            return compile_plan(cfg)
        fingerprint = self.fingerprint(cfg)
        try:
            plan = self._plans[fingerprint]
        except KeyError:
            self.stats.plan_misses += 1
            plan = compile_plan(cfg)
            self._plans[fingerprint] = plan
        else:
            self.stats.plan_hits += 1
        return plan

    def lcm_plan(self, cfg: CFG, local):
        """The fused LCM plan for *cfg*, memoized by content fingerprint.

        Plans (:class:`~repro.dataflow.fused.LCMPlan`) bundle the dense
        graph with the LCM local predicate rows lowered to raw ints, so
        the whole earliest/later/insert/replace cascade
        (:mod:`repro.dataflow.fused`) runs with zero per-call lowering.
        The underlying :class:`~repro.dataflow.dense.DenseGraph` comes
        from :meth:`dense_plan`, so fused and staged solves on one graph
        share a single id mapping.  Only sound when *local* was derived
        from *cfg*'s own default universe (the same caveat as the
        solution memo); callers with an explicit universe compile their
        own plan.  The cache is memory-only, keyed next to the dense
        plans, sharing the ``plan_hits``/``plan_misses`` stats and
        bumping the ``fused.plan.hit``/``fused.plan.miss`` counters.
        """
        from repro.dataflow.fused import compile_lcm_plan

        if not self.enabled:
            self.stats.plan_misses += 1
            trace.count("fused.plan.miss")
            return compile_lcm_plan(cfg, local)
        key = f"fused:{self.fingerprint(cfg)}"
        try:
            plan = self._plans[key]
        except KeyError:
            self.stats.plan_misses += 1
            trace.count("fused.plan.miss")
            plan = compile_lcm_plan(cfg, local, graph=self.dense_plan(cfg))
            self._plans[key] = plan
        else:
            self.stats.plan_hits += 1
            trace.count("fused.plan.hit")
        return plan

    def solve(self, cfg: CFG, problem, strategy: str = "auto"):
        """Memoized :func:`repro.dataflow.solver.solve`.

        The key includes the problem name, the vector width and the
        solver strategy; pass problems whose universe is derived from
        the graph content (the default everywhere) so equal fingerprints
        imply equal problems.  Actual solves (cache misses) share this
        manager's dense plan for the graph, and the backend that ran is
        tallied in ``stats.backends``.
        """
        from repro.dataflow.solver import solve as _solve

        key = f"solve:{problem.name}:w{problem.width}:{strategy}"

        def compute():
            solution = _solve(
                cfg, problem, strategy=strategy, plan=self.dense_plan(cfg)
            )
            backend = solution.stats.backend or "reference"
            self.stats.backends[backend] = (
                self.stats.backends.get(backend, 0) + 1
            )
            return solution

        return self.cached(cfg, key, compute)

    # -- incremental engines --------------------------------------------

    def liveness(self, cfg: CFG, live_at_exit=()):
        """The incremental liveness engine for (*cfg*, *live_at_exit*).

        One :class:`repro.dataflow.incremental.IncrementalLiveness` per
        (CFG object, observable set) — held weakly, so engines die with
        their graph.  The engine's global solves route back through
        :meth:`cached` (same fingerprint + key tiers as a direct
        :func:`~repro.analysis.liveness.liveness_of`), and it is kept
        current by the notification hooks: :meth:`notify_edited` marks
        blocks dirty for an O(affected-region) patch,
        :meth:`invalidate` (the coarse path) drops its facts entirely.
        """
        from repro.dataflow.incremental import IncrementalLiveness

        exit_names = tuple(sorted(set(live_at_exit)))
        engines = self._engines.get(cfg)
        if engines is None:
            engines = {}
            self._engines[cfg] = engines
        engine = engines.get(exit_names)
        if engine is None:
            engine = IncrementalLiveness(cfg, live_at_exit=exit_names, manager=self)
            engines[exit_names] = engine
        return engine

    # -- invalidation ---------------------------------------------------

    def _drop_fingerprint(self, cfg: CFG) -> None:
        if self._fingerprints.pop(cfg, None) is not None:
            self.stats.invalidations += 1
            trace.count("cache.invalidate")

    def invalidate(self, cfg: CFG) -> None:
        """Forget *cfg*'s cached fingerprint (it was mutated in place).

        The coarse path: any incremental engines held for *cfg* also
        drop their facts and plans, since an unspecified mutation may
        have changed the graph's structure.
        """
        self._drop_fingerprint(cfg)
        engines = self._engines.get(cfg)
        if engines:
            for engine in engines.values():
                engine.structure_changed()

    def notify_edited(self, cfg: CFG, labels) -> None:
        """Record instruction-level edits to *cfg*'s *labels* blocks.

        The fingerprint is dropped exactly as for :meth:`invalidate`
        (the content changed), but incremental engines keep their
        fixpoints and mark just the edited blocks dirty.
        """
        self._drop_fingerprint(cfg)
        engines = self._engines.get(cfg)
        if engines:
            for engine in engines.values():
                engine.blocks_edited(labels)

    def clear(self) -> None:
        """Drop every memoized result, plan, fingerprint and engine."""
        self._store.clear()
        self._plans.clear()
        self._fingerprints = weakref.WeakKeyDictionary()
        self._engines = weakref.WeakKeyDictionary()

    def __len__(self) -> int:
        return len(self._store)
