"""The analysis manager: memoized dataflow solutions with invalidation.

The paper's cost argument is that LCM's four unidirectional analyses
are cheap; this module makes them cheap *in practice* by never solving
the same problem on the same program twice.  An :class:`AnalysisManager`
memoizes :class:`~repro.dataflow.solver.Solution` objects (and whole
analysis bundles such as :class:`~repro.core.lcm.LCMAnalysis`) keyed by

    (CFG content fingerprint, computation key)

so repeated pipeline runs, strategy comparisons and report generation
over an unchanged graph hit the cache and return the *same* object —
bit-identical facts, zero solver work.

Because the fingerprint is content-based, caching is sound even across
distinct CFG objects with equal content.  The only subtlety is in-place
mutation: fingerprints are themselves cached per CFG *object* — as
incrementally maintained :class:`~repro.obs.fingerprint.FingerprintState`
holders of per-block digests — so code that mutates a graph in place
must call :func:`notify_cfg_edited` (instruction-level edits, naming
the touched blocks) or :func:`notify_cfg_mutated` (structural changes)
— the transformation engine (:mod:`repro.core.transform`) and the pass
pipeline (:mod:`repro.passes.pipeline`) do.  An edit marks just those
blocks dirty, so the next fingerprint lookup re-hashes the edited
region instead of re-serialising the graph; only an unattributed
structural mutation forces a from-scratch hash.  Code that *copies* a
graph and edits a known set of blocks can call
:func:`notify_cfg_derived` to seed the copy's state from its base, so
even the copy's first lookup is incremental.  Cached solutions are
never dropped by invalidation: they stay valid for any graph that
hashes to their fingerprint; invalidation only forces the fingerprint
itself to be refreshed.

A manager can additionally be given a
:class:`~repro.obs.store.SolutionStore`, which turns the cache into two
tiers: in-memory hit first, then disk, then solve-and-write.  The disk
tier is shared across processes and invocations (batch workers point at
one ``--cache-dir``); a disk hit is promoted into the memory tier, so
repeated lookups pay the deserialisation once.  Values the store has no
codec for stay memory-only — the disk tier is transparent, never
load-bearing.

Cache traffic is observable: hits, misses and invalidations bump the
``cache.hit`` / ``cache.miss`` / ``cache.invalidate`` counters on the
installed tracer (see :mod:`repro.obs.trace`), the disk tier bumps
``cache.disk.hit`` / ``cache.disk.miss`` / ``cache.disk.write``, and
both tiers are tallied separately in :attr:`AnalysisManager.stats` —
so ``repro cache stats``, batch reports and trace counters agree.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Tuple

from repro.obs import trace
from repro.obs.fingerprint import FingerprintState
from repro.ir.cfg import CFG

#: Every live manager, so module-level mutation hooks can reach them all.
_LIVE_MANAGERS: "weakref.WeakSet" = weakref.WeakSet()


def notify_cfg_mutated(cfg: CFG, labels=None) -> None:
    """Invalidate cached facts about *cfg* in every live manager.

    The hook mutating code must call after changing a graph's
    *structure* in place (blocks added/removed, edges retargeted).
    Cheap when no managers exist or none has seen the graph.  Any
    incremental liveness engines held for *cfg* drop all their facts.

    With *labels* (the surviving blocks whose content changed), the
    cached fingerprint state is patched instead of dropped: those
    blocks are marked dirty, and the incremental refresh reconciles
    added/removed blocks on its own.  Without *labels* the fingerprint
    is dropped and recomputed from scratch.  Code making
    instruction-level edits to existing blocks should call
    :func:`notify_cfg_edited` instead so liveness engines can patch
    rather than rebuild.
    """
    for manager in list(_LIVE_MANAGERS):
        manager.invalidate(cfg, labels)


def notify_cfg_edited(cfg: CFG, labels) -> None:
    """Signal instruction-level edits to existing blocks of *cfg*.

    The edit-granular sibling of :func:`notify_cfg_mutated`: *labels*
    names the blocks whose content changed in place without altering
    the graph's structure — instruction inserts/deletes/replacements,
    or a branch-condition rewrite that preserves the successor targets.
    (Anything that adds/removes blocks or changes edges needs the
    coarse hook.)  Every live manager marks just those blocks dirty in
    its cached fingerprint state (an O(region) re-hash at the next
    lookup), and its incremental liveness engines
    (:class:`repro.dataflow.incremental.IncrementalLiveness`) keep
    their fixpoints and patch the affected region instead of
    re-solving globally.
    """
    for manager in list(_LIVE_MANAGERS):
        manager.notify_edited(cfg, labels)


def notify_cfg_derived(new_cfg: CFG, base_cfg: CFG, labels) -> None:
    """Seed fingerprint state for a copy of *base_cfg* edited at *labels*.

    For code that copies a graph and then mutates the copy (the
    transformation engine, local CSE): every live manager that already
    holds fingerprint state for *base_cfg* derives state for *new_cfg*
    from it, with *labels* — every block whose content differs from the
    base, including freshly added ones — pending.  The copy's first
    fingerprint lookup is then an incremental refresh rather than a
    whole-graph hash.  Purely an optimisation: managers that never saw
    the base simply skip, and *new_cfg* is hashed from scratch on
    first use.
    """
    for manager in list(_LIVE_MANAGERS):
        manager.derive_fingerprint(new_cfg, base_cfg, labels)


@dataclass
class CacheStats:
    """Hit/miss/invalidation tallies for one manager, split by tier.

    ``hits`` are in-memory hits and ``misses`` are full misses (the
    solver actually ran); the disk tier is counted separately so batch
    reports and ``repro cache stats`` can tell "served from a previous
    process" apart from "already warm in this one":

    * ``disk_hits`` — lookups served by deserialising a store entry;
    * ``disk_misses`` — lookups where the store was consulted and had
      nothing usable (every full miss with a store attached);
    * ``disk_writes`` — solutions persisted after a full miss.

    The dense solver backend adds two memory-only tallies —
    ``plan_hits``/``plan_misses`` for the per-fingerprint plan caches
    (:class:`~repro.dataflow.dense.DenseGraph` solve plans and the
    fused :class:`~repro.dataflow.fused.LCMPlan` tier share the
    columns; kept out of the hit/miss tallies above so cache-rate
    assertions stay about *solutions*) — and ``backends``, a
    per-backend count of the solves this manager actually ran
    (``{"dense": ..., "reference": ...}``, plus ``"fused"`` counting
    whole-cascade runs of :mod:`repro.dataflow.fused`).
    """

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    disk_hits: int = 0
    disk_misses: int = 0
    disk_writes: int = 0
    plan_hits: int = 0
    plan_misses: int = 0
    backends: Dict[str, int] = field(default_factory=dict)

    @property
    def lookups(self) -> int:
        return self.hits + self.disk_hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served without solving (either tier)."""
        return (self.hits + self.disk_hits) / self.lookups if self.lookups else 0.0


class AnalysisManager:
    """Memoizes analysis results keyed by CFG content fingerprint.

    Args:
        enabled: with False, every lookup recomputes (the CLI's
            ``--no-cache``); stats still record the misses, and the
            disk tier is bypassed entirely.
        store: an optional :class:`~repro.obs.store.SolutionStore`
            consulted between the memory tier and a fresh solve, and
            written through on misses (the CLI's ``--cache-dir``).
        incremental_fingerprints: with False, every notification drops
            the cached fingerprint outright and the next lookup hashes
            the whole graph — the pre-incremental behaviour, kept as a
            benchmark baseline.
    """

    def __init__(
        self,
        enabled: bool = True,
        store=None,
        incremental_fingerprints: bool = True,
    ) -> None:
        self.enabled = enabled
        self.store = store
        self.incremental_fingerprints = incremental_fingerprints
        self.stats = CacheStats()
        self._store: Dict[Tuple[str, str], Any] = {}
        self._plans: Dict[str, Any] = {}
        self._fingerprints: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        self._engines: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        _LIVE_MANAGERS.add(self)

    # -- keys -----------------------------------------------------------

    def fingerprint(self, cfg: CFG) -> str:
        """The content fingerprint of *cfg*, cached per object.

        The per-object cache holds a
        :class:`~repro.obs.fingerprint.FingerprintState`; blocks marked
        dirty by :meth:`notify_edited` / :meth:`invalidate` are
        re-hashed lazily here, so a lookup after an instruction-level
        edit pays O(edited region), not O(graph).
        """
        state = self._fingerprints.get(cfg)
        if state is None:
            state = FingerprintState.of(cfg)
            self._fingerprints[cfg] = state
            return state.value
        return state.current(cfg)

    def derive_fingerprint(self, new_cfg: CFG, base_cfg: CFG, labels) -> None:
        """Seed *new_cfg*'s fingerprint state from *base_cfg*'s digests.

        *labels* must cover every block of *new_cfg* whose content
        differs from *base_cfg* (including freshly added blocks); they
        are marked pending, so the first lookup on *new_cfg* refreshes
        incrementally.  A no-op when the base was never fingerprinted
        here, or when incremental fingerprints are disabled.
        """
        if not self.enabled or not self.incremental_fingerprints:
            return
        base = self._fingerprints.get(base_cfg)
        if base is None:
            return
        self._fingerprints[new_cfg] = base.derive(labels)

    # -- lookups --------------------------------------------------------

    def cached(self, cfg: CFG, key: str, compute: Callable[[], Any]) -> Any:
        """Return the memoized value for (*cfg* content, *key*).

        Tiers, in order: memory, then the attached disk store (a hit is
        promoted into memory), then *compute* — whose result goes into
        memory and, when the store has a codec for it, onto disk.  The
        stored object is returned as-is on later hits — callers must
        treat it as immutable.
        """
        if not self.enabled:
            self.stats.misses += 1
            trace.count("cache.miss")
            return compute()
        fingerprint = self.fingerprint(cfg)
        full_key = (fingerprint, key)
        try:
            value = self._store[full_key]
        except KeyError:
            pass
        else:
            self.stats.hits += 1
            trace.count("cache.hit")
            return value
        if self.store is not None:
            value = self.store.load(fingerprint, key, cfg=cfg)
            if value is not None:
                self.stats.disk_hits += 1
                self._store[full_key] = value
                return value
            self.stats.disk_misses += 1
        self.stats.misses += 1
        trace.count("cache.miss")
        value = compute()
        self._store[full_key] = value
        if self.store is not None and self.store.save(fingerprint, key, value):
            self.stats.disk_writes += 1
        return value

    def dense_plan(self, cfg: CFG):
        """The dense solve plan for *cfg*, memoized by content fingerprint.

        Plans (:class:`~repro.dataflow.dense.DenseGraph`) are pure
        functions of graph content, so one compilation serves all four
        LCM solves plus liveness on the same graph — and any other
        graph with equal content.  The cache is memory-only (plans cost
        less to recompile than to deserialise) with its own
        ``plan_hits``/``plan_misses`` stats, so solution hit rates are
        unaffected.  With caching disabled, every call recompiles.
        """
        from repro.dataflow.dense import compile_plan

        if not self.enabled:
            self.stats.plan_misses += 1
            return compile_plan(cfg)
        fingerprint = self.fingerprint(cfg)
        try:
            plan = self._plans[fingerprint]
        except KeyError:
            self.stats.plan_misses += 1
            plan = compile_plan(cfg)
            self._plans[fingerprint] = plan
        else:
            self.stats.plan_hits += 1
        return plan

    def lcm_plan(self, cfg: CFG, local):
        """The fused LCM plan for *cfg*, memoized by content fingerprint.

        Plans (:class:`~repro.dataflow.fused.LCMPlan`) bundle the dense
        graph with the LCM local predicate rows lowered to raw ints, so
        the whole earliest/later/insert/replace cascade
        (:mod:`repro.dataflow.fused`) runs with zero per-call lowering.
        The underlying :class:`~repro.dataflow.dense.DenseGraph` comes
        from :meth:`dense_plan`, so fused and staged solves on one graph
        share a single id mapping.  Only sound when *local* was derived
        from *cfg*'s own default universe (the same caveat as the
        solution memo); callers with an explicit universe compile their
        own plan.  The cache is memory-only, keyed next to the dense
        plans, sharing the ``plan_hits``/``plan_misses`` stats and
        bumping the ``fused.plan.hit``/``fused.plan.miss`` counters.
        """
        from repro.dataflow.fused import compile_lcm_plan

        if not self.enabled:
            self.stats.plan_misses += 1
            trace.count("fused.plan.miss")
            return compile_lcm_plan(cfg, local)
        key = f"fused:{self.fingerprint(cfg)}"
        try:
            plan = self._plans[key]
        except KeyError:
            self.stats.plan_misses += 1
            trace.count("fused.plan.miss")
            plan = compile_lcm_plan(cfg, local, graph=self.dense_plan(cfg))
            self._plans[key] = plan
        else:
            self.stats.plan_hits += 1
            trace.count("fused.plan.hit")
        return plan

    def solve(self, cfg: CFG, problem, strategy: str = "auto"):
        """Memoized :func:`repro.dataflow.solver.solve`.

        The key includes the problem name, the vector width and the
        solver strategy; pass problems whose universe is derived from
        the graph content (the default everywhere) so equal fingerprints
        imply equal problems.  Actual solves (cache misses) share this
        manager's dense plan for the graph, and the backend that ran is
        tallied in ``stats.backends``.
        """
        from repro.dataflow.solver import solve as _solve

        key = f"solve:{problem.name}:w{problem.width}:{strategy}"

        def compute():
            solution = _solve(
                cfg, problem, strategy=strategy, plan=self.dense_plan(cfg)
            )
            backend = solution.stats.backend or "reference"
            self.stats.backends[backend] = (
                self.stats.backends.get(backend, 0) + 1
            )
            return solution

        return self.cached(cfg, key, compute)

    # -- incremental engines --------------------------------------------

    def liveness(self, cfg: CFG, live_at_exit=()):
        """The incremental liveness engine for (*cfg*, *live_at_exit*).

        One :class:`repro.dataflow.incremental.IncrementalLiveness` per
        (CFG object, observable set) — held weakly, so engines die with
        their graph.  The engine's global solves route back through
        :meth:`cached` (same fingerprint + key tiers as a direct
        :func:`~repro.analysis.liveness.liveness_of`), and it is kept
        current by the notification hooks: :meth:`notify_edited` marks
        blocks dirty for an O(affected-region) patch,
        :meth:`invalidate` (the coarse path) drops its facts entirely.
        """
        from repro.dataflow.incremental import IncrementalLiveness

        exit_names = tuple(sorted(set(live_at_exit)))
        engines = self._engines.get(cfg)
        if engines is None:
            engines = {}
            self._engines[cfg] = engines
        engine = engines.get(exit_names)
        if engine is None:
            engine = IncrementalLiveness(cfg, live_at_exit=exit_names, manager=self)
            engines[exit_names] = engine
        return engine

    # -- invalidation ---------------------------------------------------

    def _drop_fingerprint(self, cfg: CFG) -> None:
        if self._fingerprints.pop(cfg, None) is not None:
            self.stats.invalidations += 1
            trace.count("cache.invalidate")

    def _mark_dirty(self, cfg: CFG, labels) -> None:
        """Mark *labels* pending in *cfg*'s fingerprint state.

        An invalidation is tallied the first time a clean, computed
        fingerprint goes stale — the same once-per-computed-value
        accounting the drop path uses.
        """
        state = self._fingerprints.get(cfg)
        if state is None:
            return
        if state.value is not None and not state.dirty:
            self.stats.invalidations += 1
            trace.count("cache.invalidate")
        state.mark_edited(labels)

    def invalidate(self, cfg: CFG, labels=None) -> None:
        """Note a structural mutation of *cfg* (the coarse path).

        Any incremental engines held for *cfg* drop their facts, since
        the graph's structure may have changed.  The fingerprint state
        is patched when *labels* (the surviving blocks whose content
        changed) are given — the incremental refresh reconciles
        added/removed blocks itself — and dropped otherwise.
        """
        if labels is None or not self.incremental_fingerprints:
            self._drop_fingerprint(cfg)
        else:
            self._mark_dirty(cfg, labels)
        engines = self._engines.get(cfg)
        if engines:
            for engine in engines.values():
                engine.structure_changed()

    def notify_edited(self, cfg: CFG, labels) -> None:
        """Record instruction-level edits to *cfg*'s *labels* blocks.

        The edited blocks are marked dirty in the fingerprint state
        (re-hashed at the next lookup), and incremental engines keep
        their fixpoints, marking just those blocks for patching.
        """
        if self.incremental_fingerprints:
            self._mark_dirty(cfg, labels)
        else:
            self._drop_fingerprint(cfg)
        engines = self._engines.get(cfg)
        if engines:
            for engine in engines.values():
                engine.blocks_edited(labels)

    def clear(self) -> None:
        """Drop every memoized result, plan, fingerprint and engine."""
        self._store.clear()
        self._plans.clear()
        self._fingerprints = weakref.WeakKeyDictionary()
        self._engines = weakref.WeakKeyDictionary()

    def __len__(self) -> int:
        return len(self._store)
