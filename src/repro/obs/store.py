"""The persistent tier: a content-addressed on-disk solution store.

The :class:`~repro.obs.manager.AnalysisManager` makes repeat solves
free *within one process*; this module makes them free *across*
processes and invocations.  A :class:`SolutionStore` is a directory of
serialised analysis results addressed by

    (cfg_fingerprint, computation_key, code_version)

so batch workers sharing one ``--cache-dir`` — or entirely separate
``repro`` invocations days apart — reuse each other's dataflow
solutions bit-for-bit.  The manager consults it as a second tier:
in-memory hit first, then disk, then solve-and-write.

Design points:

* **Content addressing.**  The fingerprint is the same SHA-256 content
  digest the in-memory tier uses (:func:`repro.obs.fingerprint.cfg_fingerprint`),
  so a disk entry is valid for *any* graph with that content — no
  path/mtime heuristics, no false sharing.
* **Versioned, compact serialisation.**  Entries are JSON documents
  (format ``repro-store-entry``, version 1) holding bit vectors as
  plain integers keyed by block label; the block set is pinned by the
  fingerprint, so decoding against any content-equal graph reproduces
  the facts exactly.  Codecs exist for :class:`~repro.dataflow.solver.Solution`,
  :class:`~repro.core.lcm.LCMAnalysis` and
  :class:`~repro.core.krs.KRSAnalysis` bundles,
  :class:`~repro.analysis.liveness.LivenessResult` and opaque
  :class:`JSONRecord` payloads (the ``repro serve`` response cache);
  values of other types simply stay memory-only.
* **Crash/concurrency safety.**  Writes go to a temporary file in the
  entry's directory followed by an atomic ``os.replace``, under a
  store-level advisory lock (``fcntl.flock`` where available), so
  concurrent batch workers sharing one directory can never observe a
  torn entry and duplicate solves of the same program collapse to one
  file.  A corrupted or unreadable entry is treated as a miss — the
  caller re-solves and the next write heals the file.
* **Upgrade invalidation.**  Entries live under a ``code_version``
  segment derived from the installed package version plus the store
  format version; upgrading the package strands old entries (never
  misreads them), and ``SolutionStore.gc()`` / ``repro cache gc``
  reclaims them.
* **Size budgeting.**  ``gc(max_bytes=...)`` (the CLI's ``repro cache
  gc --max-bytes``) additionally evicts *current* entries,
  least-recently-used first, until the store fits the budget.  The
  store maintains its own recency (an explicit touch on every hit, so
  ``relatime``/``noatime`` mounts cannot starve it) and keeps
  cumulative eviction totals in a small meta file that
  :meth:`SolutionStore.stats` reports.

Disk traffic is observable: lookups and writes bump the
``cache.disk.hit`` / ``cache.disk.miss`` / ``cache.disk.write`` (and,
for unusable entries, ``cache.disk.corrupt``; for budget evictions,
``cache.disk.evict``) counters on the installed tracer, mirroring the
in-memory tier's ``cache.hit`` / ``cache.miss``.
See ``docs/CACHING.md`` for the full two-tier story.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.obs import trace

try:  # POSIX advisory locking; the store degrades gracefully without.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

#: Bumped whenever the entry layout or a codec changes shape.
STORE_FORMAT_VERSION = 1

ENTRY_FORMAT = "repro-store-entry"

_SAFE_KEY = re.compile(r"[^A-Za-z0-9._-]")


def default_code_version() -> str:
    """The salt separating incompatible store generations.

    Derived from the installed package version and the store format
    version, so both a package upgrade and a serialisation change move
    new entries to a fresh namespace instead of misreading old ones.
    """
    try:
        from repro import __version__
    except ImportError:  # pragma: no cover - partial-import edge case
        __version__ = "unknown"
    return f"{__version__}-f{STORE_FORMAT_VERSION}"


# ---------------------------------------------------------------------------
# Codecs.  Each persistable value type encodes to a plain-JSON payload
# and decodes against a content-equal CFG (the store never stores the
# graph itself; the fingerprint pins the block set).  Imports are
# deferred: repro.core imports repro.obs, not the other way around.
# ---------------------------------------------------------------------------


def _encode_stats(stats) -> Dict[str, Any]:
    return {
        "sweeps": stats.sweeps,
        "node_visits": stats.node_visits,
        "bitvec_ops": dict(stats.bitvec_ops),
    }


def _decode_stats(data: Dict[str, Any]):
    from repro.dataflow.stats import SolverStats

    return SolverStats(
        sweeps=int(data["sweeps"]),
        node_visits=int(data["node_visits"]),
        bitvec_ops={str(k): int(v) for k, v in data["bitvec_ops"].items()},
    )


def _encode_vecmap(vecs) -> Dict[str, int]:
    return {label: vec.bits for label, vec in vecs.items()}


def _decode_vecmap(data: Dict[str, Any], width: int):
    from repro.dataflow.bitvec import BitVector

    return {str(label): BitVector(width, int(bits)) for label, bits in data.items()}


def _encode_edgemap(vecs) -> List[List[Any]]:
    return [[m, n, vec.bits] for (m, n), vec in vecs.items()]


def _decode_edgemap(data: List[Any], width: int):
    from repro.dataflow.bitvec import BitVector

    return {
        (str(m), str(n)): BitVector(width, int(bits)) for m, n, bits in data
    }


def _encode_solution(value) -> Dict[str, Any]:
    width = 0
    for vec in value.inof.values():
        width = vec.width
        break
    return {
        "problem": value.problem,
        "width": width,
        "inof": _encode_vecmap(value.inof),
        "outof": _encode_vecmap(value.outof),
        "stats": _encode_stats(value.stats),
    }


def _decode_solution(payload: Dict[str, Any], cfg):
    from repro.dataflow.solver import Solution

    width = int(payload["width"])
    return Solution(
        problem=str(payload["problem"]),
        inof=_decode_vecmap(payload["inof"], width),
        outof=_decode_vecmap(payload["outof"], width),
        stats=_decode_stats(payload["stats"]),
    )


def _encode_lcm_analysis(value) -> Dict[str, Any]:
    from repro.ir.serialize import expr_to_dict

    return {
        "universe": [expr_to_dict(expr) for expr in value.universe],
        "antloc": _encode_vecmap(value.local.antloc),
        "comp": _encode_vecmap(value.local.comp),
        "transp": _encode_vecmap(value.local.transp),
        "antin": _encode_vecmap(value.antin),
        "antout": _encode_vecmap(value.antout),
        "avin": _encode_vecmap(value.avin),
        "avout": _encode_vecmap(value.avout),
        "earliest": _encode_edgemap(value.earliest),
        "laterin": _encode_vecmap(value.laterin),
        "later": _encode_edgemap(value.later),
        "insert": _encode_edgemap(value.insert),
        "delete": _encode_vecmap(value.delete),
        "stats": _encode_stats(value.stats),
    }


def _decode_lcm_analysis(payload: Dict[str, Any], cfg):
    if cfg is None:
        raise StoreDecodeError("lcm-analysis entries decode against a CFG")
    from repro.analysis.local import LocalProperties
    from repro.analysis.universe import ExprUniverse
    from repro.core.lcm import LCMAnalysis
    from repro.ir.serialize import expr_from_dict

    universe = ExprUniverse(
        expr_from_dict(e, f"universe[{i}]")
        for i, e in enumerate(payload["universe"])
    )
    width = universe.width
    local = LocalProperties(
        universe=universe,
        antloc=_decode_vecmap(payload["antloc"], width),
        comp=_decode_vecmap(payload["comp"], width),
        transp=_decode_vecmap(payload["transp"], width),
    )
    return LCMAnalysis(
        cfg=cfg,
        local=local,
        antin=_decode_vecmap(payload["antin"], width),
        antout=_decode_vecmap(payload["antout"], width),
        avin=_decode_vecmap(payload["avin"], width),
        avout=_decode_vecmap(payload["avout"], width),
        earliest=_decode_edgemap(payload["earliest"], width),
        laterin=_decode_vecmap(payload["laterin"], width),
        later=_decode_edgemap(payload["later"], width),
        insert=_decode_edgemap(payload["insert"], width),
        delete=_decode_vecmap(payload["delete"], width),
        stats=_decode_stats(payload["stats"]),
    )


def _encode_krs_analysis(value) -> Dict[str, Any]:
    from repro.ir.serialize import expr_to_dict

    return {
        "universe": [expr_to_dict(expr) for expr in value.universe],
        "antloc": _encode_vecmap(value.local.antloc),
        "comp": _encode_vecmap(value.local.comp),
        "transp": _encode_vecmap(value.local.transp),
        "dsafe": _encode_vecmap(value.dsafe),
        "usafe": _encode_vecmap(value.usafe),
        "earliest": _encode_vecmap(value.earliest),
        "delay": _encode_vecmap(value.delay),
        "latest": _encode_vecmap(value.latest),
        "isolated": _encode_vecmap(value.isolated),
        "stats": _encode_stats(value.stats),
    }


def _decode_krs_analysis(payload: Dict[str, Any], cfg):
    if cfg is None:
        raise StoreDecodeError("krs-analysis entries decode against a CFG")
    from repro.analysis.local import LocalProperties
    from repro.analysis.universe import ExprUniverse
    from repro.core.krs import KRSAnalysis
    from repro.ir.serialize import expr_from_dict

    universe = ExprUniverse(
        expr_from_dict(e, f"universe[{i}]")
        for i, e in enumerate(payload["universe"])
    )
    width = universe.width
    local = LocalProperties(
        universe=universe,
        antloc=_decode_vecmap(payload["antloc"], width),
        comp=_decode_vecmap(payload["comp"], width),
        transp=_decode_vecmap(payload["transp"], width),
    )
    return KRSAnalysis(
        cfg=cfg,
        local=local,
        dsafe=_decode_vecmap(payload["dsafe"], width),
        usafe=_decode_vecmap(payload["usafe"], width),
        earliest=_decode_vecmap(payload["earliest"], width),
        delay=_decode_vecmap(payload["delay"], width),
        latest=_decode_vecmap(payload["latest"], width),
        isolated=_decode_vecmap(payload["isolated"], width),
        stats=_decode_stats(payload["stats"]),
    )


def _encode_liveness(value) -> Dict[str, Any]:
    return {
        "variables": list(value.variables),
        "livein": _encode_vecmap(value.livein),
        "liveout": _encode_vecmap(value.liveout),
        "stats": _encode_stats(value.stats),
    }


def _decode_liveness(payload: Dict[str, Any], cfg):
    from repro.analysis.liveness import LivenessResult

    variables = [str(v) for v in payload["variables"]]
    width = len(variables)
    return LivenessResult(
        variables=variables,
        index={var: i for i, var in enumerate(variables)},
        livein=_decode_vecmap(payload["livein"], width),
        liveout=_decode_vecmap(payload["liveout"], width),
        stats=_decode_stats(payload["stats"]),
    )


class StoreDecodeError(ValueError):
    """An entry exists but cannot be turned back into a value."""


@dataclass(frozen=True)
class JSONRecord:
    """An opaque plain-JSON payload persisted verbatim.

    The escape hatch for callers whose values are already wire-shaped
    dictionaries — the ``repro serve`` daemon stores its response
    cache through this kind, keyed by a request digest instead of a
    CFG fingerprint.  The payload must be JSON-serialisable; decoding
    needs no CFG.
    """

    payload: Dict[str, Any]


def _encode_json_record(value: "JSONRecord") -> Dict[str, Any]:
    return dict(value.payload)


def _decode_json_record(payload: Dict[str, Any], cfg) -> "JSONRecord":
    if not isinstance(payload, dict):
        raise StoreDecodeError("json-record payload must be an object")
    return JSONRecord(payload)


def _kind_of(value) -> Optional[str]:
    """The codec kind for *value*, or None when it is memory-only."""
    from repro.analysis.liveness import LivenessResult
    from repro.core.krs import KRSAnalysis
    from repro.core.lcm import LCMAnalysis
    from repro.dataflow.solver import Solution

    if isinstance(value, Solution):
        return "solution"
    if isinstance(value, LCMAnalysis):
        return "lcm-analysis"
    if isinstance(value, KRSAnalysis):
        return "krs-analysis"
    if isinstance(value, LivenessResult):
        return "liveness"
    if isinstance(value, JSONRecord):
        return "json-record"
    return None


_ENCODERS = {
    "solution": _encode_solution,
    "lcm-analysis": _encode_lcm_analysis,
    "krs-analysis": _encode_krs_analysis,
    "liveness": _encode_liveness,
    "json-record": _encode_json_record,
}

_DECODERS = {
    "solution": _decode_solution,
    "lcm-analysis": _decode_lcm_analysis,
    "krs-analysis": _decode_krs_analysis,
    "liveness": _decode_liveness,
    "json-record": _decode_json_record,
}


# ---------------------------------------------------------------------------
# The store.
# ---------------------------------------------------------------------------


class SolutionStore:
    """A shared, persistent directory of serialised analysis results.

    Args:
        root: the store directory (created on first use).  Many
            processes may share one root concurrently.
        code_version: the namespace segment entries live under;
            defaults to :func:`default_code_version`.  Entries written
            under a different code version are invisible to lookups
            (and reclaimable with :meth:`gc`).
    """

    def __init__(self, root, code_version: Optional[str] = None) -> None:
        self.root = Path(root)
        self.code_version = (
            code_version if code_version is not None else default_code_version()
        )
        self._version_dir = self.root / _SAFE_KEY.sub("_", self.code_version)

    # -- paths and locking ---------------------------------------------

    def _entry_path(self, fingerprint: str, key: str) -> Path:
        safe = _SAFE_KEY.sub("_", key)
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:8]
        shard = self._version_dir / fingerprint[:2]
        return shard / f"{fingerprint}--{safe}.{digest}.json"

    @contextmanager
    def _locked(self) -> Iterator[None]:
        """Hold the store-level advisory lock for the block.

        Serialises writers (and maintenance) across processes sharing
        the root.  Readers never take it: entries are only ever
        installed by atomic rename, so a reader sees either a complete
        entry or none.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        self.root.mkdir(parents=True, exist_ok=True)
        with open(self.root / ".lock", "a+b") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    # -- lookups --------------------------------------------------------

    def load(self, fingerprint: str, key: str, cfg=None) -> Optional[Any]:
        """The stored value for (*fingerprint*, *key*), or None.

        Decoding happens against *cfg* for bundle kinds that carry
        per-graph structure (``lcm-analysis``); the caller guarantees
        *cfg*'s content hashes to *fingerprint*.  Every failure mode —
        missing file, torn/corrupted JSON, unknown kind, stale format —
        is a miss, never an exception: the caller re-solves and the
        subsequent write repairs the entry.
        """
        path = self._entry_path(fingerprint, key)
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except OSError:
            trace.count("cache.disk.miss")
            return None
        try:
            document = json.loads(raw)
            if (
                not isinstance(document, dict)
                or document.get("format") != ENTRY_FORMAT
                or document.get("version") != STORE_FORMAT_VERSION
                or document.get("code_version") != self.code_version
                or document.get("fingerprint") != fingerprint
                or document.get("key") != key
            ):
                raise StoreDecodeError("entry header mismatch")
            decoder = _DECODERS.get(document.get("kind"))
            if decoder is None:
                raise StoreDecodeError(
                    f"unknown entry kind {document.get('kind')!r}"
                )
            value = decoder(document["payload"], cfg)
        except Exception:
            # Graceful fall-through: a bad entry must never sink the
            # run.  Count it so operators can see corruption happening.
            trace.count("cache.disk.corrupt")
            trace.count("cache.disk.miss")
            return None
        try:
            # Recency for the LRU budget sweep: filesystem atime is
            # unreliable (relatime/noatime), so the store touches
            # entries itself on every hit.
            os.utime(path)
        except OSError:  # pragma: no cover - read-only store
            pass
        trace.count("cache.disk.hit")
        return value

    def save(self, fingerprint: str, key: str, value: Any) -> bool:
        """Persist *value* if a codec exists for it; report success.

        The write is atomic (temp file + ``os.replace``) and serialised
        by the store lock, so concurrent workers racing on the same
        entry leave exactly one complete file.  Values without a codec
        are skipped (False) — they stay in the memory tier only.  I/O
        failures (read-only store, disk full) are swallowed: the cache
        is an optimisation, never a correctness dependency.
        """
        kind = _kind_of(value)
        if kind is None:
            return False
        try:
            document = {
                "format": ENTRY_FORMAT,
                "version": STORE_FORMAT_VERSION,
                "code_version": self.code_version,
                "fingerprint": fingerprint,
                "key": key,
                "kind": kind,
                "payload": _ENCODERS[kind](value),
            }
            body = json.dumps(document, separators=(",", ":")).encode("utf-8")
            path = self._entry_path(fingerprint, key)
            with self._locked():
                path.parent.mkdir(parents=True, exist_ok=True)
                fd, tmp = tempfile.mkstemp(
                    prefix=".tmp-", suffix=".json", dir=str(path.parent)
                )
                try:
                    with os.fdopen(fd, "wb") as handle:
                        handle.write(body)
                    os.replace(tmp, path)
                except BaseException:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
                    raise
        except Exception:
            return False
        trace.count("cache.disk.write")
        return True

    # -- maintenance ----------------------------------------------------

    def _iter_entries(self) -> Iterator[Tuple[Path, bool]]:
        """Yield ``(path, is_current_version)`` for every entry file."""
        if not self.root.is_dir():
            return
        for version_dir in sorted(self.root.iterdir()):
            if not version_dir.is_dir():
                continue
            current = version_dir == self._version_dir
            for path in sorted(version_dir.rglob("*.json")):
                if path.name.startswith(".tmp-"):
                    continue
                yield path, current

    def stats(self) -> Dict[str, Any]:
        """Entry counts and sizes, split current vs. stale code versions,
        plus the cumulative LRU-eviction totals of this store root."""
        entries = stale_entries = 0
        size = stale_size = 0
        for path, current in self._iter_entries():
            try:
                nbytes = path.stat().st_size
            except OSError:
                continue
            if current:
                entries += 1
                size += nbytes
            else:
                stale_entries += 1
                stale_size += nbytes
        meta = self._read_meta()
        return {
            "path": str(self.root),
            "code_version": self.code_version,
            "entries": entries,
            "bytes": size,
            "stale_entries": stale_entries,
            "stale_bytes": stale_size,
            "evicted_entries": meta["evicted_entries"],
            "evicted_bytes": meta["evicted_bytes"],
        }

    # -- eviction bookkeeping -------------------------------------------

    @property
    def _meta_path(self) -> Path:
        return self.root / ".meta.json"

    def _read_meta(self) -> Dict[str, int]:
        """Cumulative eviction totals (zeros for a fresh/corrupt meta)."""
        try:
            with open(self._meta_path) as handle:
                document = json.load(handle)
            return {
                "evicted_entries": int(document["evicted_entries"]),
                "evicted_bytes": int(document["evicted_bytes"]),
            }
        except (OSError, ValueError, KeyError, TypeError):
            return {"evicted_entries": 0, "evicted_bytes": 0}

    def _bump_meta(self, evicted_entries: int, evicted_bytes: int) -> None:
        """Fold an eviction sweep into the totals (caller holds the lock)."""
        meta = self._read_meta()
        meta["evicted_entries"] += evicted_entries
        meta["evicted_bytes"] += evicted_bytes
        try:
            body = json.dumps(meta, separators=(",", ":")).encode("utf-8")
            fd, tmp = tempfile.mkstemp(
                prefix=".tmp-", suffix=".json", dir=str(self.root)
            )
            with os.fdopen(fd, "wb") as handle:
                handle.write(body)
            os.replace(tmp, self._meta_path)
        except OSError:  # pragma: no cover - read-only store
            pass

    def _remove(self, stale_only: bool) -> Dict[str, int]:
        removed = reclaimed = 0
        with self._locked():
            for path, current in list(self._iter_entries()):
                if stale_only and current:
                    continue
                try:
                    nbytes = path.stat().st_size
                    path.unlink()
                except OSError:
                    continue
                removed += 1
                reclaimed += nbytes
            # Prune now-empty shard/version directories (best effort).
            if self.root.is_dir():
                for directory in sorted(
                    self.root.rglob("*"), key=lambda p: -len(p.parts)
                ):
                    if directory.is_dir():
                        try:
                            directory.rmdir()
                        except OSError:
                            pass
        return {"removed_entries": removed, "reclaimed_bytes": reclaimed}

    def _evict_lru(self, max_bytes: int) -> Dict[str, int]:
        """Evict least-recently-used current entries past *max_bytes*.

        Recency is the entry file's mtime, which :meth:`load` bumps on
        every hit — so the order is true LRU regardless of how the
        filesystem handles atime.  Runs under the store lock; a file
        that vanishes mid-sweep (concurrent gc) is simply skipped.
        """
        evicted = reclaimed = 0
        with self._locked():
            entries: List[Tuple[float, int, Path]] = []
            total = 0
            for path, current in self._iter_entries():
                if not current:
                    continue
                try:
                    stat = path.stat()
                except OSError:
                    continue
                entries.append((stat.st_mtime, stat.st_size, path))
                total += stat.st_size
            entries.sort(key=lambda entry: (entry[0], str(entry[2])))
            for _, nbytes, path in entries:
                if total <= max_bytes:
                    break
                try:
                    path.unlink()
                except OSError:
                    continue
                total -= nbytes
                evicted += 1
                reclaimed += nbytes
            if evicted:
                self._bump_meta(evicted, reclaimed)
        if evicted:
            trace.count("cache.disk.evict", evicted)
        return {"evicted_entries": evicted, "evicted_bytes": reclaimed}

    def gc(self, max_bytes: Optional[int] = None) -> Dict[str, int]:
        """Reclaim space: stale code versions always, then (with
        *max_bytes*) evict current entries LRU-first to fit the budget.

        Returns ``removed_entries`` / ``reclaimed_bytes`` for the stale
        sweep plus ``evicted_entries`` / ``evicted_bytes`` for the
        budget sweep (zeros when no budget was given).
        """
        outcome = self._remove(stale_only=True)
        if max_bytes is not None:
            outcome.update(self._evict_lru(max_bytes))
        else:
            outcome.update({"evicted_entries": 0, "evicted_bytes": 0})
        return outcome

    def clear(self) -> Dict[str, int]:
        """Delete every entry, current version included."""
        return self._remove(stale_only=False)

    def __len__(self) -> int:
        """Entry count for the current code version."""
        return sum(1 for _, current in self._iter_entries() if current)
