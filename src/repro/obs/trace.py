"""Lightweight tracing: spans, counters and gauges with a JSON exporter.

The observability layer the whole stack reports into.  Every dataflow
solve, every LCM phase, every transformation and every pipeline pass
opens a *span* — a named, timed region with arbitrary key/value
attributes (sweep counts, node visits, bit-vector operation tallies).
Spans nest; the recorded events keep parent links so a trace can be
reconstructed as a tree.

Tracing is **off by default and free when off**: the module-level
:func:`span` helper returns a reusable null context when no tracer is
installed, so instrumented code pays one global read and one attribute
call per region.  Install a tracer for a region of code with::

    from repro.obs import Tracer, tracing

    with tracing() as tracer:
        optimize(cfg, "lcm")
    tracer.write("out.json")          # structured JSON trace

or process-wide with :func:`activate` / :func:`deactivate` (the CLI's
``--trace FILE`` and the benchmark suite do this).

The export format is versioned (``repro-trace`` version 1) and described
in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional


@dataclass
class SpanEvent:
    """One completed span, as recorded in a trace."""

    id: int
    name: str
    parent: Optional[int]
    start_ms: float
    duration_ms: float
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "span",
            "id": self.id,
            "name": self.name,
            "parent": self.parent,
            "start_ms": round(self.start_ms, 6),
            "duration_ms": round(self.duration_ms, 6),
            "attrs": self.attrs,
        }


class Span:
    """A live span handle; annotate it with :meth:`set` while open."""

    __slots__ = ("id", "name", "parent", "attrs", "_start")

    def __init__(
        self, id: int, name: str, parent: Optional[int], attrs: Dict[str, Any],
        start: float,
    ) -> None:
        self.id = id
        self.name = name
        self.parent = parent
        self.attrs = attrs
        self._start = start

    def set(self, **attrs: Any) -> None:
        """Attach (or overwrite) attributes on the open span."""
        self.attrs.update(attrs)


class _NullSpan:
    """Accepts annotations and discards them (tracing off)."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects span events, counters and gauges for one trace."""

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self.events: List[SpanEvent] = []
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self._stack: List[Span] = []
        self._next_id = 0

    # -- spans ----------------------------------------------------------

    def begin(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> Span:
        """Open a span; prefer the :meth:`span` context manager."""
        parent = self._stack[-1].id if self._stack else None
        opened = Span(
            self._next_id, name, parent, dict(attrs or {}), time.perf_counter()
        )
        self._next_id += 1
        self._stack.append(opened)
        return opened

    def end(self, span: Span) -> SpanEvent:
        """Close *span* and record its event."""
        now = time.perf_counter()
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        event = SpanEvent(
            id=span.id,
            name=span.name,
            parent=span.parent,
            start_ms=(span._start - self._epoch) * 1000.0,
            duration_ms=(now - span._start) * 1000.0,
            attrs=span.attrs,
        )
        self.events.append(event)
        return event

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a span for the duration of the ``with`` block."""
        opened = self.begin(name, attrs)
        try:
            yield opened
        finally:
            self.end(opened)

    # -- counters and gauges --------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        """Add *n* to the monotonically increasing counter *name*."""
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Record the latest value of gauge *name*."""
        self.gauges[name] = value

    # -- queries --------------------------------------------------------

    def spans(self, name: Optional[str] = None, **attrs: Any) -> List[SpanEvent]:
        """Recorded spans, optionally filtered by name and attributes."""
        found = []
        for event in self.events:
            if name is not None and event.name != name:
                continue
            if any(event.attrs.get(k) != v for k, v in attrs.items()):
                continue
            found.append(event)
        return found

    def summary(self) -> Dict[str, Dict[str, Any]]:
        """Aggregate spans by name (split by the ``problem`` attribute).

        Each entry has ``count``, ``total_ms`` and the sum of every
        numeric attribute — e.g. total sweeps, node visits and
        bit-vector operations per analysis.
        """
        summary: Dict[str, Dict[str, Any]] = {}
        for event in self.events:
            key = event.name
            problem = event.attrs.get("problem")
            if problem is not None:
                key = f"{event.name}[{problem}]"
            entry = summary.setdefault(key, {"count": 0, "total_ms": 0.0})
            entry["count"] += 1
            entry["total_ms"] = round(entry["total_ms"] + event.duration_ms, 6)
            for attr, value in event.attrs.items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                entry[attr] = entry.get(attr, 0) + value
        return summary

    # -- export ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": "repro-trace",
            "version": 1,
            "events": [event.to_dict() for event in self.events],
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "summary": self.summary(),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def write(self, path: str) -> None:
        """Write the JSON trace to *path*."""
        with open(path, "w") as handle:
            handle.write(self.to_json())
            handle.write("\n")


# ---------------------------------------------------------------------------
# Summary merging.  Multi-run drivers (the batch driver, benchmark
# sweeps) collect one Tracer.summary() / counter map per unit of work,
# possibly in different processes, and fold them into one aggregate.
# ---------------------------------------------------------------------------


def merge_summaries(
    summaries: "Iterable[Dict[str, Dict[str, Any]]]",
) -> Dict[str, Dict[str, Any]]:
    """Fold many :meth:`Tracer.summary` dictionaries into one.

    Entries with the same key have their ``count``, ``total_ms`` and
    every other numeric attribute summed — the same aggregation
    :meth:`Tracer.summary` applies to individual spans, lifted to whole
    summaries.  The inputs are not modified.
    """
    merged: Dict[str, Dict[str, Any]] = {}
    for summary in summaries:
        for key, entry in summary.items():
            target = merged.setdefault(key, {"count": 0, "total_ms": 0.0})
            for attr, value in entry.items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                if attr == "total_ms":
                    target[attr] = round(target.get(attr, 0.0) + value, 6)
                else:
                    target[attr] = target.get(attr, 0) + value
    return merged


def merge_counters(counter_maps: "Iterable[Dict[str, int]]") -> Dict[str, int]:
    """Sum many counter maps (as in :attr:`Tracer.counters`) key-wise."""
    merged: Dict[str, int] = {}
    for counters in counter_maps:
        for name, value in counters.items():
            merged[name] = merged.get(name, 0) + value
    return merged


# ---------------------------------------------------------------------------
# The installed tracer.  One global slot: tracing is a per-process
# concern (a CLI invocation, a benchmark session, a test block).
# ---------------------------------------------------------------------------

_ACTIVE: Optional[Tracer] = None


def current() -> Optional[Tracer]:
    """The installed tracer, or None when tracing is off."""
    return _ACTIVE


def is_active() -> bool:
    """True when a tracer is installed."""
    return _ACTIVE is not None


def activate(tracer: Optional[Tracer] = None) -> Tracer:
    """Install *tracer* (or a fresh one) process-wide and return it."""
    global _ACTIVE
    _ACTIVE = tracer if tracer is not None else Tracer()
    return _ACTIVE


def deactivate() -> Optional[Tracer]:
    """Uninstall and return the current tracer (no-op when off)."""
    global _ACTIVE
    tracer, _ACTIVE = _ACTIVE, None
    return tracer


@contextmanager
def tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Install a tracer for the ``with`` block; restores the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    installed = tracer if tracer is not None else Tracer()
    _ACTIVE = installed
    try:
        yield installed
    finally:
        _ACTIVE = previous


class _SpanContext:
    """Context manager for :func:`span`; null when tracing is off."""

    __slots__ = ("_name", "_attrs", "_tracer", "_span")

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self._name = name
        self._attrs = attrs
        self._tracer: Optional[Tracer] = None
        self._span: Optional[Span] = None

    def __enter__(self):
        tracer = _ACTIVE
        if tracer is None:
            return _NULL_SPAN
        self._tracer = tracer
        self._span = tracer.begin(self._name, self._attrs)
        return self._span

    def __exit__(self, *exc) -> bool:
        if self._tracer is not None:
            self._tracer.end(self._span)
        return False


class _NullSpanContext:
    """Reusable no-op context manager for :func:`span`, tracing off."""

    __slots__ = ()

    def __enter__(self):
        return _NULL_SPAN

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN_CONTEXT = _NullSpanContext()


def span(name: str, **attrs: Any):
    """Open a span on the installed tracer (a true no-op when tracing is off).

    With no tracer installed this returns a shared null context —
    nothing is allocated per call beyond the keyword dict, so
    per-pass/per-block instrumentation stays free in untraced runs.  A
    tracer installed *between* the call and ``__enter__`` is
    deliberately ignored; spans never straddle activation.
    """
    if _ACTIVE is None:
        return _NULL_SPAN_CONTEXT
    return _SpanContext(name, attrs)


def count(name: str, n: int = 1) -> None:
    """Bump a counter on the installed tracer (no-op when tracing is off)."""
    if _ACTIVE is not None:
        _ACTIVE.count(name, n)


def gauge(name: str, value: float) -> None:
    """Record a gauge on the installed tracer (no-op when tracing is off)."""
    if _ACTIVE is not None:
        _ACTIVE.gauge(name, value)


def snapshot(tracer: Optional[Tracer] = None) -> Dict[str, Any]:
    """A point-in-time copy of a tracer's counters and gauges.

    Long-lived processes (the ``repro serve`` daemon's stats endpoint)
    read their counters *live*, while spans keep accumulating; this
    returns plain copies that are safe to serialise.  With no *tracer*
    argument the installed tracer is snapshotted; when tracing is off
    the snapshot is empty, never an error.
    """
    target = tracer if tracer is not None else _ACTIVE
    if target is None:
        return {"counters": {}, "gauges": {}}
    return {"counters": dict(target.counters), "gauges": dict(target.gauges)}
