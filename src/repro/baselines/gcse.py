"""Global common-subexpression elimination (full redundancies only).

The weaker classical optimisation PRE subsumes: an upwards-exposed
occurrence is replaced only when the expression is *fully* available —
computed on **every** entry path — and nothing is ever inserted.
Partial redundancies (available on some paths only) and loop invariants
are left in place, which is exactly the gap the paper's introduction
motivates; benchmark C2/C3 measure it.
"""

from __future__ import annotations

from typing import List

from repro.analysis.availability import compute_availability
from repro.analysis.local import compute_local_properties
from repro.core.pipeline import register_pass
from repro.core.placement import Placement
from repro.core.transform import TransformResult, apply_placements
from repro.ir.cfg import CFG


def gcse_placements(cfg: CFG) -> List[Placement]:
    """DELETE = ANTLOC ∧ AVIN; no insertions."""
    local = compute_local_properties(cfg)
    av = compute_availability(cfg, local)
    universe = local.universe
    placements: List[Placement] = []
    for idx, expr in universe.enumerate():
        deletes = frozenset(
            label
            for label in cfg.labels
            if idx in local.antloc[label] and idx in av.avin[label]
        )
        placements.append(
            Placement(expr, universe.temp_name(expr), frozenset(), frozenset(), deletes)
        )
    return placements


def gcse_transform(cfg: CFG) -> TransformResult:
    """Apply full-redundancy elimination to *cfg*."""
    return apply_placements(cfg, gcse_placements(cfg))


@register_pass("gcse", "Global CSE: full-redundancy elimination only")
def _gcse_pass(cfg: CFG, ctx) -> TransformResult:
    return gcse_transform(cfg)
