"""Baseline redundancy-elimination algorithms the paper compares against.

* :mod:`repro.baselines.morel_renvoise` — the 1979 bidirectional PRE
  the paper improves on (same eliminations in most programs, but
  bidirectional solving cost and no lifetime control);
* :mod:`repro.baselines.gcse` — classic global common-subexpression
  elimination, which removes only *fully* redundant computations;
* :mod:`repro.baselines.licm` — naive loop-invariant code motion, which
  hoists speculatively and therefore violates classic PRE's safety on
  some paths (demonstrated by the safety benchmark).
"""

from repro.baselines.morel_renvoise import (
    MorelRenvoiseAnalysis,
    analyze_morel_renvoise,
    morel_renvoise_placements,
    morel_renvoise_transform,
)
from repro.baselines.gcse import gcse_placements, gcse_transform
from repro.baselines.licm import licm_transform, loop_invariant_exprs

__all__ = [
    "MorelRenvoiseAnalysis",
    "analyze_morel_renvoise",
    "gcse_placements",
    "gcse_transform",
    "licm_transform",
    "loop_invariant_exprs",
    "morel_renvoise_placements",
    "morel_renvoise_transform",
]
