"""Naive loop-invariant code motion (speculative hoisting baseline).

The classic pre-PRE treatment of loop invariants: find natural loops,
give each a preheader, and hoist every invariant computation there.
Hoisting is *speculative* — the computation runs once per loop entry
even on iterations-zero paths where the original program never
evaluated it — so this baseline violates classic PRE's safety
discipline.  The safety benchmark (T3) demonstrates the violation
paths, and C2/C3 show LCM achieving the same loop-invariant motion
without them (by only hoisting where down-safe).

Because the IR's arithmetic is total and expressions are pure,
speculation never changes program results, only evaluation counts; the
baseline is still semantics-preserving.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.analysis.loops import LoopNest
from repro.core.pipeline import register_pass
from repro.core.transform import TransformResult
from repro.ir.block import BasicBlock
from repro.ir.cfg import CFG
from repro.ir.expr import Expr, Var, expr_vars, is_computation
from repro.ir.instr import Assign, Jump


def loop_invariant_exprs(cfg: CFG, body: Set[str]) -> List[Expr]:
    """Expressions computed in *body* with no operand assigned in it."""
    defined: Set[str] = set()
    for label in body:
        defined.update(cfg.block(label).defs())
    found: List[Expr] = []
    seen: Set[Expr] = set()
    for label in sorted(body):
        for instr in cfg.block(label).instrs:
            expr = instr.expr
            if (
                is_computation(expr)
                and expr not in seen
                and not (set(expr_vars(expr)) & defined)
            ):
                seen.add(expr)
                found.append(expr)
    return found


def _ensure_preheader(cfg: CFG, header: str, body: Set[str]) -> str:
    """Insert (or reuse) a preheader: sole non-loop predecessor of header."""
    outside_preds = [m for m in cfg.preds(header) if m not in body]
    if (
        len(outside_preds) == 1
        and len(cfg.succs(outside_preds[0])) == 1
        and outside_preds[0] != cfg.entry
    ):
        return outside_preds[0]
    label = cfg.fresh_label(f"preheader_{header}")
    pre = BasicBlock(label, [], Jump(header))
    cfg.add_block(pre)
    for m in outside_preds:
        cfg.retarget(m, header, label)
    return label


def licm_transform(cfg: CFG) -> TransformResult:
    """Hoist invariant computations of every natural loop of *cfg*."""
    work = cfg.copy()
    temps: Set[str] = set()
    hoists: List[Tuple[str, Expr]] = []

    existing = work.variables()
    counter = 0
    # Outer loops first (larger bodies), so inner invariants can cascade
    # out through repeated application by the caller if desired.
    for loop in LoopNest.compute(work).outermost_first():
        header, body = loop.header, loop.body
        invariants = loop_invariant_exprs(work, body)
        if not invariants:
            continue
        pre_label = _ensure_preheader(work, header, body)
        pre = work.block(pre_label)
        for expr in invariants:
            while f"h{counter}.licm" in existing:
                counter += 1
            temp = f"h{counter}.licm"
            counter += 1
            temps.add(temp)
            pre.append(Assign(temp, expr))
            hoists.append((pre_label, expr))
            for label in sorted(body):
                block = work.block(label)
                block.instrs[:] = [
                    Assign(instr.target, Var(temp))
                    if instr.expr == expr
                    else instr
                    for instr in block.instrs
                ]
    return TransformResult(
        original=cfg,
        cfg=work,
        placements=[],
        temps=temps,
        copies_added=[],
        copies_collapsed=[],
        insertions_dropped=[],
    )


@register_pass("licm", "Naive loop-invariant code motion (speculative baseline)")
def _licm_pass(cfg: CFG, ctx) -> TransformResult:
    return licm_transform(cfg)
