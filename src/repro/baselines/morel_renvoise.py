"""Morel & Renvoise's partial redundancy elimination (CACM 1979).

The historical baseline Lazy Code Motion was designed to improve on.
Its characteristic feature is the *bidirectional* "placement possible"
system: ``PPIN`` of a block depends on the ``PPOUT`` of its
predecessors *and* of the block itself, while ``PPOUT`` depends on the
``PPIN`` of the successors — so neither a purely forward nor a purely
backward pass suffices, and the system is iterated as a whole (here
with :func:`repro.dataflow.bidirectional.solve_system`).

Equations (greatest fixpoint; ∅ at entry/exit):

.. code-block:: text

    PPIN(n)  = PAVIN(n) ∧ (ANTLOC(n) ∨ (TRANSP(n) ∧ PPOUT(n)))
               ∧ ∏_{m ∈ pred(n)} (PPOUT(m) ∨ AVOUT(m))          n ≠ entry
    PPOUT(n) = ∏_{s ∈ succ(n)} PPIN(s)                          n ≠ exit

    INSERT(n) = PPOUT(n) ∧ ¬AVOUT(n) ∧ (¬PPIN(n) ∨ ¬TRANSP(n))
    DELETE(n) = ANTLOC(n) ∧ PPIN(n)

Insertions go at the *end of blocks* (``t = e`` before the terminator),
the original Morel–Renvoise discipline; this is what prevents the
algorithm from removing all redundancies in graphs whose optimal
insertion points are edges, and what can move computations further up
than needed (longer temporary lifetimes) — both effects measured by the
benchmark suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.availability import compute_availability
from repro.analysis.local import LocalProperties, compute_local_properties
from repro.analysis.partial import compute_partial_availability
from repro.analysis.universe import ExprUniverse
from repro.core.pipeline import register_pass
from repro.core.placement import Placement
from repro.core.transform import TransformResult, apply_placements
from repro.dataflow.bidirectional import EquationSystem, solve_system
from repro.dataflow.bitvec import BitVector
from repro.dataflow.stats import SolverStats
from repro.ir.cfg import CFG


@dataclass
class MorelRenvoiseAnalysis:
    """The fixpoint of the Morel–Renvoise system plus derived sets."""

    cfg: CFG
    local: LocalProperties
    ppin: Dict[str, BitVector]
    ppout: Dict[str, BitVector]
    insert: Dict[str, BitVector]
    delete: Dict[str, BitVector]
    stats: SolverStats

    @property
    def universe(self) -> ExprUniverse:
        return self.local.universe


def analyze_morel_renvoise(cfg: CFG) -> MorelRenvoiseAnalysis:
    """Solve the Morel–Renvoise equations on *cfg*."""
    local = compute_local_properties(cfg)
    width = local.universe.width
    av = compute_availability(cfg, local)
    pav = compute_partial_availability(cfg, local)
    stats = av.stats.merged(pav.stats)

    empty = BitVector.empty(width)
    full = BitVector.full(width)

    def ppin_rule(label: str, state) -> BitVector:
        if label == cfg.entry:
            return empty
        value = pav.inof[label] & (
            local.antloc[label] | (local.transp[label] & state["ppout"][label])
        )
        for m in cfg.preds(label):
            value = value & (state["ppout"][m] | av.avout[m])
        return value

    def ppout_rule(label: str, state) -> BitVector:
        if label == cfg.exit:
            return empty
        value = full
        for s in cfg.succs(label):
            value = value & state["ppin"][s]
        return value

    system = EquationSystem(
        width=width,
        variables=("ppin", "ppout"),
        equations=(("ppout", ppout_rule), ("ppin", ppin_rule)),
        init={"ppin": full, "ppout": full},
    )
    state, sys_stats = solve_system(cfg, system)
    stats = stats.merged(sys_stats)
    ppin, ppout = state["ppin"], state["ppout"]
    # The greatest fixpoint is computed with full initial values; the
    # boundary rules force entry/exit to ∅ on the first sweep.

    insert: Dict[str, BitVector] = {}
    delete: Dict[str, BitVector] = {}
    for label in cfg.labels:
        insert[label] = (ppout[label] - av.avout[label]) & (
            ~ppin[label] | ~local.transp[label]
        )
        delete[label] = local.antloc[label] & ppin[label]

    return MorelRenvoiseAnalysis(cfg, local, ppin, ppout, insert, delete, stats)


def morel_renvoise_placements(analysis: MorelRenvoiseAnalysis) -> List[Placement]:
    """One placement per expression from the INSERT/DELETE vectors."""
    universe = analysis.universe
    placements: List[Placement] = []
    for idx, expr in universe.enumerate():
        exits = frozenset(
            label for label in analysis.cfg.labels if idx in analysis.insert[label]
        )
        deletes = frozenset(
            label for label in analysis.cfg.labels if idx in analysis.delete[label]
        )
        placements.append(
            Placement(
                expr,
                universe.temp_name(expr),
                insert_edges=frozenset(),
                insert_entries=frozenset(),
                delete_blocks=deletes,
                insert_exits=exits,
            )
        )
    return placements


def morel_renvoise_transform(cfg: CFG) -> TransformResult:
    """Apply Morel–Renvoise PRE to *cfg*."""
    analysis = analyze_morel_renvoise(cfg)
    return apply_placements(cfg, morel_renvoise_placements(analysis))


@register_pass("mr", "Morel-Renvoise bidirectional PRE (1979 baseline)")
def _mr_pass(cfg: CFG, ctx) -> TransformResult:
    return morel_renvoise_transform(cfg)
