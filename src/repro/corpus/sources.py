"""Corpus sources: one loader behind ``repro batch``, many shapes.

:func:`load_corpus` is the single entry point the batch CLI uses to
turn a path into work items.  It dispatches on what the path is:

* a **directory** — scanned for ``.mini``/``.json`` programs
  (:func:`scan_directory`): case-insensitive suffix match, optionally
  recursive, item names derived from the path *relative to the root*
  (so ``a/prog.mini`` and ``b/prog.mini`` stay distinct once corpora
  nest), ``manifest.*`` files skipped (they describe the corpus, they
  are not members of it);
* a **zip/tar archive** (:func:`items_from_archive`) — members are
  matched like directory entries and inlined as ``source``/``json``
  payloads, so a million-file corpus ships as one artifact;
* a **manifest** (:func:`repro.corpus.manifest.read_manifest`) — the
  versioned per-item record format, including ``generated`` items that
  workers mint from ``(seed, config)`` on demand.

Every source sorts items by name, so batches are deterministic however
the filesystem or archive orders entries.
"""

from __future__ import annotations

import tarfile
import zipfile
from pathlib import Path, PurePosixPath
from typing import List, Sequence

from repro.batch.driver import CORPUS_SUFFIXES, WorkItem

#: Archive suffixes :func:`load_corpus` recognises.
ARCHIVE_SUFFIXES = (
    ".zip", ".tar", ".tar.gz", ".tgz", ".tar.bz2", ".tar.xz",
)


def is_archive_path(name: str) -> bool:
    """Whether *name* looks like a corpus archive."""
    lowered = name.lower()
    return any(lowered.endswith(suffix) for suffix in ARCHIVE_SUFFIXES)


def _member_name(relative: str) -> str:
    """Item name from a root-relative member path: strip the suffix,
    keep the directories (posix separators)."""
    return str(PurePosixPath(relative).with_suffix(""))


def _wanted_suffix(name: str, suffixes: Sequence[str]) -> bool:
    lowered = name.lower()
    return any(lowered.endswith(suffix.lower()) for suffix in suffixes)


def _is_manifest_file(name: str) -> bool:
    return PurePosixPath(name).name.lower().startswith("manifest.")


def scan_directory(
    directory: str,
    suffixes: Sequence[str] = CORPUS_SUFFIXES,
    recursive: bool = False,
) -> List[WorkItem]:
    """Scan *directory* for corpus files, sorted by item name.

    Suffix matching is case-insensitive (``PROG.MINI`` loads), and with
    *recursive* the whole tree is walked — item names then carry the
    relative path (``sub/prog``), which keeps equal stems in different
    subdirectories distinct.  ``manifest.*`` files are skipped.  Raises
    ``ValueError`` when the directory does not exist or holds no
    matching files — an empty batch is almost always a wrong path.
    """
    root = Path(directory)
    if not root.is_dir():
        raise ValueError(f"not a directory: {directory}")
    candidates = root.rglob("*") if recursive else root.iterdir()
    found = []
    for path in candidates:
        if not path.is_file():
            continue
        if _is_manifest_file(path.name):
            continue
        if not _wanted_suffix(path.name, suffixes):
            continue
        name = _member_name(path.relative_to(root).as_posix())
        found.append((name, path))
    if not found:
        wanted = "/".join(suffixes)
        where = f"{directory} (recursively)" if recursive else directory
        raise ValueError(f"no {wanted} files in {where}")
    found.sort(key=lambda entry: entry[0])
    return [
        WorkItem(name, "path", str(path), cost=float(path.stat().st_size))
        for name, path in found
    ]


def _payload_kind(name: str) -> str:
    return "json" if name.lower().endswith(".json") else "source"


def items_from_archive(
    archive: str,
    suffixes: Sequence[str] = CORPUS_SUFFIXES,
) -> List[WorkItem]:
    """Load a zip or tar archive as a corpus.

    Member paths are matched like directory scans (case-insensitive
    suffix, ``manifest.*`` skipped) and their *contents* become the
    item payloads — ``source`` for programs, ``json`` for serialised
    CFGs — so workers need no access to the archive itself.  Cost is
    the uncompressed size.
    """
    path = Path(archive)
    if not path.is_file():
        raise ValueError(f"no such archive: {archive}")
    found = []
    if archive.lower().endswith(".zip"):
        with zipfile.ZipFile(path) as handle:
            for info in handle.infolist():
                if info.is_dir():
                    continue
                member = info.filename.lstrip("./")
                if _is_manifest_file(member) or not _wanted_suffix(
                    member, suffixes
                ):
                    continue
                payload = handle.read(info).decode("utf-8")
                found.append(
                    WorkItem(
                        _member_name(member),
                        _payload_kind(member),
                        payload,
                        cost=float(info.file_size),
                    )
                )
    else:
        try:
            handle = tarfile.open(path)
        except tarfile.TarError as exc:
            raise ValueError(f"cannot read archive {archive}: {exc}") from exc
        with handle:
            for info in handle.getmembers():
                if not info.isfile():
                    continue
                member = info.name.lstrip("./")
                if _is_manifest_file(member) or not _wanted_suffix(
                    member, suffixes
                ):
                    continue
                extracted = handle.extractfile(info)
                if extracted is None:  # pragma: no cover - defensive
                    continue
                payload = extracted.read().decode("utf-8")
                found.append(
                    WorkItem(
                        _member_name(member),
                        _payload_kind(member),
                        payload,
                        cost=float(info.size),
                    )
                )
    if not found:
        wanted = "/".join(suffixes)
        raise ValueError(f"no {wanted} members in {archive}")
    found.sort(key=lambda item: item.name)
    names = [item.name for item in found]
    duplicates = sorted({n for n in names if names.count(n) > 1})
    if duplicates:
        raise ValueError(
            f"{archive}: duplicate item names after suffix strip: "
            f"{', '.join(duplicates[:5])}"
        )
    return found


def load_corpus(
    path: str,
    suffixes: Sequence[str] = CORPUS_SUFFIXES,
    recursive: bool = False,
    allow_call: bool = False,
) -> List[WorkItem]:
    """Turn *path* — directory, archive, or manifest — into work items.

    The single loader behind ``repro batch``.  *recursive* applies to
    directory scans; *allow_call* gates ``call``-kind manifest items
    (arbitrary loaders) exactly like the serve daemon's ``--allow-call``.
    """
    from repro.corpus.manifest import read_manifest

    target = Path(path)
    if target.is_dir():
        return scan_directory(path, suffixes=suffixes, recursive=recursive)
    if not target.is_file():
        raise ValueError(f"no such corpus: {path}")
    if is_archive_path(target.name):
        return items_from_archive(path, suffixes=suffixes)
    return read_manifest(path, allow_call=allow_call)
