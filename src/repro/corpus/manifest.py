"""The versioned corpus-manifest format.

A manifest is the portable description of a corpus: one record per
work item carrying ``name``/``kind``/``payload``/``cost``/``options``,
under a versioned header.  Two encodings of the same schema:

* **JSON** (``*.json``): one document —
  ``{"format": "repro-corpus-manifest", "version": 1, "items": [...]}``
* **NDJSON** (``*.ndjson`` or anything else): the header object on the
  first line, then one item object per line — appendable and
  streamable, the shape huge minted corpora use.

Item records:

``{"name": "gen-00000007", "kind": "generated",
   "options": {"seed": 7, "config": {...}}, "cost": 12.0}``

For ``generated`` items the human-auditable ``options`` object *is*
the payload (it is re-encoded canonically on load, so a hand-edited
manifest still yields deterministic items).  Other kinds (``path``,
``source``, ``json``, ``call``) carry their payload verbatim in
``payload``; ``options`` is reserved for forward-compatible per-item
settings and round-trips untouched.

``repro batch MANIFEST`` loads manifests through
:func:`repro.corpus.sources.load_corpus`; ``repro corpus generate
--manifest`` writes them.  Schema documented in ``docs/CORPUS.md``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Sequence

from repro.batch.driver import WorkItem
from repro.corpus.generate import (
    KIND_GENERATED,
    GeneratorConfig,
    parse_spec,
    spec_payload,
)

MANIFEST_FORMAT = "repro-corpus-manifest"
MANIFEST_VERSION = 1

#: Work-item kinds a manifest may carry.  ``call`` resolves arbitrary
#: ``module:function`` references in the worker, so loaders reject it
#: unless explicitly allowed (mirrors the serve daemon's --allow-call).
MANIFEST_KINDS = ("path", "source", "json", "call", KIND_GENERATED)


def _header() -> Dict[str, Any]:
    return {"format": MANIFEST_FORMAT, "version": MANIFEST_VERSION}


def item_to_record(item: WorkItem) -> Dict[str, Any]:
    """The manifest record of one work item."""
    record: Dict[str, Any] = {"name": item.name, "kind": item.kind}
    if item.kind == KIND_GENERATED:
        seed, config = parse_spec(item.payload)
        record["options"] = {"seed": seed, "config": config.to_dict()}
    else:
        record["payload"] = item.payload
    if item.cost:
        record["cost"] = item.cost
    return record


def record_to_item(record: Dict[str, Any], where: str) -> WorkItem:
    """Validate one manifest record and build its work item."""
    if not isinstance(record, dict):
        raise ValueError(f"{where}: item record must be an object")
    name = record.get("name")
    kind = record.get("kind")
    if not isinstance(name, str) or not name:
        raise ValueError(f"{where}: item needs a non-empty 'name'")
    if kind not in MANIFEST_KINDS:
        raise ValueError(
            f"{where}: unknown kind {kind!r} for {name!r}; expected one "
            f"of: {', '.join(MANIFEST_KINDS)}"
        )
    cost = record.get("cost", 0.0)
    if not isinstance(cost, (int, float)) or isinstance(cost, bool):
        raise ValueError(f"{where}: bad cost {cost!r} for {name!r}")
    if kind == KIND_GENERATED:
        options = record.get("options")
        if options is None and "payload" in record:
            # Also accept the raw payload spelling: re-encode through
            # parse_spec so the item payload is canonical either way.
            seed, config = parse_spec(record["payload"])
        elif isinstance(options, dict) and "seed" in options:
            seed = options["seed"]
            if not isinstance(seed, int) or isinstance(seed, bool):
                raise ValueError(
                    f"{where}: generated item {name!r} seed must be an "
                    f"integer"
                )
            config_data = options.get("config", {})
            if not isinstance(config_data, dict):
                raise ValueError(
                    f"{where}: generated item {name!r} 'config' must be "
                    f"an object"
                )
            config = GeneratorConfig.from_dict(config_data)
        else:
            raise ValueError(
                f"{where}: generated item {name!r} needs options "
                f"{{'seed': ..., 'config': {{...}}}}"
            )
        payload = spec_payload(seed, config)
    else:
        payload = record.get("payload")
        if not isinstance(payload, str):
            raise ValueError(
                f"{where}: {kind} item {name!r} needs a string 'payload'"
            )
    return WorkItem(name, kind, payload, cost=float(cost))


def items_to_manifest(items: Iterable[WorkItem]) -> Dict[str, Any]:
    """The one-document (JSON) manifest of *items*."""
    doc = _header()
    doc["items"] = [item_to_record(item) for item in items]
    return doc


def manifest_to_items(
    doc: Dict[str, Any], where: str = "manifest", allow_call: bool = False
) -> List[WorkItem]:
    """Validate a parsed manifest document and build its work items."""
    if not isinstance(doc, dict) or doc.get("format") != MANIFEST_FORMAT:
        raise ValueError(
            f"{where}: not a corpus manifest (missing "
            f"format={MANIFEST_FORMAT!r})"
        )
    version = doc.get("version")
    if version != MANIFEST_VERSION:
        raise ValueError(
            f"{where}: unsupported manifest version {version!r} "
            f"(this build reads version {MANIFEST_VERSION})"
        )
    records = doc.get("items")
    if not isinstance(records, list) or not records:
        raise ValueError(f"{where}: manifest has no items")
    items = [
        record_to_item(record, f"{where} item {i}")
        for i, record in enumerate(records)
    ]
    if not allow_call:
        callers = [item.name for item in items if item.kind == "call"]
        if callers:
            shown = ", ".join(callers[:3]) + (
                "…" if len(callers) > 3 else ""
            )
            raise ValueError(
                f"{where}: 'call' items ({shown}) run arbitrary "
                f"module:function loaders; pass allow_call=True "
                f"(CLI: --allow-call) to accept them"
            )
    seen: Dict[str, int] = {}
    for i, item in enumerate(items):
        if item.name in seen:
            raise ValueError(
                f"{where}: duplicate item name {item.name!r} "
                f"(items {seen[item.name]} and {i})"
            )
        seen[item.name] = i
    return items


def write_manifest(items: Sequence[WorkItem], path: str) -> None:
    """Write *items* as a manifest file.

    ``*.ndjson`` paths get the line-oriented encoding (header line,
    then one record per line); everything else the single JSON
    document.  Output is deterministic for equal item lists.
    """
    if path.endswith(".ndjson"):
        lines = [json.dumps(_header(), sort_keys=True)]
        lines.extend(
            json.dumps(item_to_record(item), sort_keys=True)
            for item in items
        )
        text = "\n".join(lines) + "\n"
    else:
        text = json.dumps(items_to_manifest(items), indent=2) + "\n"
    with open(path, "w") as handle:
        handle.write(text)


def read_manifest(path: str, allow_call: bool = False) -> List[WorkItem]:
    """Read a manifest file (either encoding, detected by content)."""
    try:
        with open(path) as handle:
            text = handle.read()
    except OSError as exc:
        raise ValueError(f"cannot read manifest {path}: {exc}") from exc
    stripped = text.strip()
    if not stripped:
        raise ValueError(f"{path}: empty manifest")
    try:
        doc = json.loads(stripped)
    except ValueError:
        # Not one document: try NDJSON (header line + record lines).
        lines = [line for line in stripped.splitlines() if line.strip()]
        try:
            head = json.loads(lines[0])
            records = [json.loads(line) for line in lines[1:]]
        except ValueError as exc:
            raise ValueError(
                f"{path}: malformed manifest JSON: {exc}"
            ) from exc
        doc = dict(head) if isinstance(head, dict) else {}
        doc["items"] = records
    return manifest_to_items(doc, where=path, allow_call=allow_call)
