"""Corpus scale-out: seeded generation, manifests, and loaders.

The workload axis of the project.  Three cooperating modules:

* :mod:`repro.corpus.generate` — mint reproducible corpora from seed
  ranges and generator profiles; every item reproduces from its
  ``(seed, GeneratorConfig)`` spec alone.
* :mod:`repro.corpus.manifest` — the versioned per-item record format
  (JSON or NDJSON) that describes a corpus portably.
* :mod:`repro.corpus.sources` — :func:`load_corpus`, the single loader
  behind ``repro batch``: directories (optionally recursive), zip/tar
  archives, and manifests.

CLI: ``repro corpus generate --seed-range A:B --profile loopy --out
DIR`` and ``repro batch DIR|ARCHIVE|MANIFEST``.  See ``docs/CORPUS.md``.
"""

from repro.corpus.generate import (
    KIND_GENERATED,
    PROFILES,
    generate_source,
    generated_items,
    item_name,
    item_seed,
    load_generated,
    parse_seed_range,
    parse_spec,
    profile_config,
    regenerate_corpus,
    spec_payload,
    write_corpus,
)
from repro.corpus.manifest import (
    MANIFEST_FORMAT,
    MANIFEST_VERSION,
    items_to_manifest,
    manifest_to_items,
    read_manifest,
    write_manifest,
)
from repro.corpus.sources import (
    ARCHIVE_SUFFIXES,
    items_from_archive,
    load_corpus,
    scan_directory,
)

__all__ = [
    "ARCHIVE_SUFFIXES",
    "KIND_GENERATED",
    "MANIFEST_FORMAT",
    "MANIFEST_VERSION",
    "PROFILES",
    "generate_source",
    "generated_items",
    "item_name",
    "item_seed",
    "items_from_archive",
    "items_to_manifest",
    "load_corpus",
    "load_generated",
    "manifest_to_items",
    "parse_seed_range",
    "parse_spec",
    "profile_config",
    "read_manifest",
    "regenerate_corpus",
    "scan_directory",
    "spec_payload",
    "write_corpus",
    "write_manifest",
]
