"""Seeded corpus minting: whole corpora a command away.

:mod:`repro.bench.generators` produces one reproducible random program
per ``(seed, GeneratorConfig)``; this module scales that into corpora.
A *generated* work item carries exactly that pair as its payload — a
compact canonical-JSON spec — so a 100k-program corpus is a seed range
plus one config, not 100k files, and any item (including a fuzzer
divergence) reproduces locally from its spec alone.

Three deployment shapes, all equivalent:

* **manifest-only** (:func:`generated_items` +
  :func:`repro.corpus.manifest.write_manifest`): the corpus exists
  only as ``(seed, config)`` records; workers mint each program on
  demand.  This is what the CI differential-fuzz smoke uses.
* **materialised** (:func:`write_corpus`): each program is unparsed to
  a ``NAME.mini`` file next to a ``manifest.ndjson`` recording how it
  was minted; the directory batch-loads like any other corpus.
* **regenerated** (:func:`regenerate_corpus`): re-materialise the
  files from a manifest — bit-identical to the original minting,
  pinned by ``tests/test_corpus_generate.py``.

Profiles bias the generator toward the control-flow phenomena a
placement policy needs stressed: ``loopy`` (deep, frequent loops —
hot-loop hoisting), ``branchy`` (wide joins and cold branches —
speculation cost) and ``mixed`` (the generator defaults).
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.batch.driver import WorkItem
from repro.bench.generators import GeneratorConfig, random_program
from repro.ir.cfg import CFG
from repro.lang.lower import lower_program
from repro.lang.unparse import unparse

#: Work-item kind for programs minted from ``(seed, config)`` specs.
KIND_GENERATED = "generated"

#: The three generator biases `repro corpus generate --profile` offers.
PROFILES = ("mixed", "loopy", "branchy")


def profile_config(
    profile: str = "mixed",
    statements: int = 12,
    max_depth: int = 3,
) -> GeneratorConfig:
    """The :class:`GeneratorConfig` for one named profile.

    *statements* scales program size, *max_depth* the nesting bound —
    the two knobs `repro corpus generate --size/--max-depth` exposes.
    """
    base = GeneratorConfig(statements=statements, max_depth=max_depth)
    if profile == "mixed":
        return base
    if profile == "loopy":
        return replace(
            base,
            loop_probability=0.45,
            branch_probability=0.15,
            max_loop_iterations=6,
        )
    if profile == "branchy":
        return replace(
            base,
            loop_probability=0.05,
            branch_probability=0.55,
        )
    raise ValueError(
        f"unknown profile {profile!r}; expected one of: {', '.join(PROFILES)}"
    )


def spec_payload(seed: int, config: GeneratorConfig) -> str:
    """The canonical payload of one generated item.

    Compact, key-sorted JSON: byte-stable for equal specs, so item
    payloads (and therefore manifests) are deterministic.
    """
    return json.dumps(
        {"seed": seed, "config": config.to_dict()},
        sort_keys=True,
        separators=(",", ":"),
    )


def parse_spec(payload: str) -> Tuple[int, GeneratorConfig]:
    """Decode a generated-item payload back into ``(seed, config)``."""
    try:
        spec = json.loads(payload)
    except ValueError as exc:
        raise ValueError(f"malformed generated-item payload: {exc}") from exc
    if not isinstance(spec, dict) or "seed" not in spec:
        raise ValueError("generated-item payload needs a 'seed' field")
    seed = spec["seed"]
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise ValueError(
            f"generated-item seed must be an integer, got {seed!r}"
        )
    config_data = spec.get("config", {})
    if not isinstance(config_data, dict):
        raise ValueError("generated-item 'config' must be an object")
    return seed, GeneratorConfig.from_dict(config_data)


def generate_source(seed: int, config: GeneratorConfig) -> str:
    """The mini-language source text of one generated program.

    This is *the* canonical byte form: corpus files are written with
    exactly this content, and determinism tests pin its hash.
    """
    return unparse(random_program(seed, config))


def load_generated(payload: str) -> CFG:
    """Materialise the CFG of a generated work item (worker side)."""
    seed, config = parse_spec(payload)
    return lower_program(random_program(seed, config))


def item_seed(payload: str) -> Optional[int]:
    """The minting seed of a generated payload, or None if unreadable.

    Failure-tolerant on purpose: divergence reporting attaches the
    seed opportunistically and must never mask the real record.
    """
    try:
        return parse_spec(payload)[0]
    except ValueError:
        return None


def item_name(seed: int, prefix: str = "gen-") -> str:
    """The canonical item/file name for one seed (zero-padded, sortable)."""
    return f"{prefix}{seed:08d}"


def generated_items(
    seeds: Iterable[int],
    config: Optional[GeneratorConfig] = None,
    prefix: str = "gen-",
) -> List[WorkItem]:
    """One generated work item per seed, batch-ready.

    The predicted cost is the statement budget — uniform within a
    corpus minted from one config, which keeps LPT scheduling a no-op
    (input order) rather than noise.
    """
    config = config if config is not None else GeneratorConfig()
    return [
        WorkItem(
            item_name(seed, prefix),
            KIND_GENERATED,
            spec_payload(seed, config),
            cost=float(config.statements),
        )
        for seed in seeds
    ]


def parse_seed_range(text: str) -> range:
    """Parse the CLI's ``A:B`` half-open seed range (``B`` exclusive)."""
    head, sep, tail = text.partition(":")
    try:
        if not sep:
            raise ValueError
        lo, hi = int(head), int(tail)
    except ValueError:
        raise ValueError(
            f"bad seed range {text!r}; expected A:B (half-open, e.g. 0:200)"
        ) from None
    if hi <= lo:
        raise ValueError(f"empty seed range {text!r}")
    return range(lo, hi)


def write_corpus(
    items: Sequence[WorkItem],
    out_dir: str,
) -> Dict[str, Any]:
    """Materialise generated *items* as ``.mini`` files plus a manifest.

    Every item must be ``generated``-kind.  Files land as
    ``NAME.mini`` under *out_dir* (created if missing); the minting
    specs are recorded in ``out_dir/manifest.ndjson`` so the corpus can
    be regenerated bit-identically (corpus scans skip ``manifest.*``
    files).  Returns a small summary dict.
    """
    from repro.corpus.manifest import write_manifest

    root = Path(out_dir)
    root.mkdir(parents=True, exist_ok=True)
    written = 0
    for item in items:
        if item.kind != KIND_GENERATED:
            raise ValueError(
                f"write_corpus needs generated items; {item.name!r} is "
                f"kind {item.kind!r}"
            )
        seed, config = parse_spec(item.payload)
        path = root / f"{item.name}.mini"
        path.write_text(generate_source(seed, config))
        written += 1
    manifest_path = root / "manifest.ndjson"
    write_manifest(items, str(manifest_path))
    return {
        "files": written,
        "dir": str(root),
        "manifest": str(manifest_path),
    }


def regenerate_corpus(manifest_path: str, out_dir: str) -> Dict[str, Any]:
    """Re-materialise a corpus from its manifest, bit-identically."""
    from repro.corpus.manifest import read_manifest

    return write_corpus(read_manifest(manifest_path), out_dir)
