"""The public facade: typed entry points every front-end routes through.

The CLI, the batch workers and the ``repro serve`` daemon all need the
same two operations — *optimize this program* and *analyze this
program* — yet each used to hand-roll its own mix of ``compile_program``
/ ``optimize`` / ``analyze_lcm`` calls and its own result plumbing.
This module is the single seam: the front-ends parse their transport
(argv, pipe messages, NDJSON requests) into plain arguments, call
:func:`optimize_source` / :func:`analyze_source` (or the ``*_cfg``
variants when they already hold a graph), and get back a structured,
JSON-ready outcome object.

Entry points:

* :func:`load_cfg` — materialise a program from source text, a
  serialised-CFG JSON document, or a filesystem path;
* :func:`optimize_source` / :func:`optimize_cfg` — run one registered
  pass (or the full pipeline) and return an :class:`OptimizeOutcome`;
* :func:`analyze_source` / :func:`analyze_cfg` — run the LCM analysis
  stack without transforming and return an :class:`AnalyzeOutcome`.

Outcomes carry the live objects (the transformed :class:`~repro.ir.cfg.CFG`,
the :class:`~repro.core.lcm.LCMAnalysis` bundle) for in-process callers
*and* a :meth:`to_dict` projection of plain-JSON fields for the wire
(the batch report and the serve protocol embed exactly that shape).

Bad input is one exception type: :exc:`SourceError` wraps parse,
validation and load failures so transports can map it to their own
error record without enumerating parser internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.pipeline import OptimizeConfig, optimize
from repro.ir.cfg import CFG
from repro.obs.fingerprint import cfg_fingerprint

def _fingerprint(cfg: CFG, manager=None) -> str:
    """Content fingerprint of *cfg*, through *manager* when given.

    The manager keeps per-block digest state, so fingerprinting a graph
    it has watched evolve re-hashes only the edited blocks instead of
    serialising the whole CFG again.
    """
    if manager is not None:
        return manager.fingerprint(cfg)
    return cfg_fingerprint(cfg)


#: Payload kinds :func:`load_cfg` accepts.
KIND_SOURCE = "source"
KIND_JSON = "json"
KIND_PATH = "path"
#: A ``(seed, GeneratorConfig)`` spec minted by :mod:`repro.corpus` —
#: the program is generated on demand, so a corpus item is reproducible
#: from its payload alone.
KIND_GENERATED = "generated"
KINDS = (KIND_SOURCE, KIND_JSON, KIND_PATH, KIND_GENERATED)


class SourceError(ValueError):
    """A program could not be loaded (parse error, bad file, bad kind)."""


def load_cfg(payload: str, kind: str = KIND_SOURCE) -> CFG:
    """Materialise a program from *payload*.

    Kinds: ``source`` (mini-language text), ``json`` (a serialised CFG
    document), ``path`` (a filesystem path; ``.json`` files are read
    as serialised CFGs, everything else as source) and ``generated``
    (a ``(seed, config)`` spec minted from the corpus generator — see
    :mod:`repro.corpus.generate`).  Every failure — unreadable file,
    parse error, malformed JSON — raises :exc:`SourceError` with a
    one-line message.
    """
    from repro.ir.serialize import cfg_from_json
    from repro.lang import compile_program

    if kind == KIND_PATH:
        try:
            with open(payload) as handle:
                text = handle.read()
        except OSError as exc:
            raise SourceError(f"cannot read {payload}: {exc}") from exc
        kind = KIND_JSON if payload.endswith(".json") else KIND_SOURCE
        payload = text
    if kind not in (KIND_SOURCE, KIND_JSON, KIND_GENERATED):
        raise SourceError(f"unknown payload kind {kind!r}")
    try:
        if kind == KIND_JSON:
            return cfg_from_json(payload)
        if kind == KIND_GENERATED:
            from repro.corpus.generate import load_generated

            return load_generated(payload)
        return compile_program(payload)
    except SourceError:
        raise
    except Exception as exc:
        raise SourceError(f"{type(exc).__name__}: {exc}") from exc


@dataclass
class OptimizeOutcome:
    """The structured result of one optimize request.

    ``transform`` is the live
    :class:`~repro.core.transform.TransformResult` (or
    :class:`~repro.passes.pipeline.PassResult` for pipeline runs) for
    in-process callers; :meth:`to_dict` projects the plain-JSON fields
    the batch report and serve protocol embed.
    """

    pass_: str
    pipeline: bool
    #: Content fingerprint of the *input* graph — the request cache key.
    source_fingerprint: str
    #: Content fingerprint of the optimised graph — two runs that agree
    #: here produced bit-identical IR.
    fingerprint: str
    static_before: int
    static_after: int
    description: str
    #: Serialised optimised IR, when requested with ``keep_ir``.
    ir: Optional[str] = None
    transform: Any = None

    @property
    def cfg(self) -> CFG:
        """The optimised graph."""
        return self.transform.cfg

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "pass": self.pass_,
            "pipeline": self.pipeline,
            "source_fingerprint": self.source_fingerprint,
            "fingerprint": self.fingerprint,
            "static_before": self.static_before,
            "static_after": self.static_after,
            "description": self.description,
        }
        if self.ir is not None:
            payload["ir"] = self.ir
        return payload


@dataclass
class AnalyzeOutcome:
    """The structured result of one analyze request.

    ``placements`` maps each universe expression (as text) to its LCM
    decision: the edges gaining an initialisation and the blocks whose
    original computation becomes a temporary read.  ``analysis`` is the
    live :class:`~repro.core.lcm.LCMAnalysis` bundle for in-process
    callers; :meth:`to_dict` is the wire projection.
    """

    fingerprint: str
    expressions: List[str]
    #: expression text -> {"insert_edges": [...], "delete_blocks": [...]}
    placements: Dict[str, Dict[str, List[str]]] = field(default_factory=dict)
    analysis: Any = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "expressions": list(self.expressions),
            "placements": {
                expr: {
                    "insert_edges": list(decision["insert_edges"]),
                    "delete_blocks": list(decision["delete_blocks"]),
                }
                for expr, decision in self.placements.items()
            },
        }


def optimize_cfg(
    cfg: CFG,
    pass_: str = "lcm",
    *,
    pipeline: bool = False,
    manager=None,
    config: Optional[OptimizeConfig] = None,
    keep_ir: bool = False,
) -> OptimizeOutcome:
    """Optimise an in-memory graph and return the structured outcome.

    With ``pipeline=True`` the full standard pass pipeline runs instead
    of the single registered pass named *pass_*.  The input graph is
    never mutated.
    """
    from repro.passes import standard_pipeline

    source_fingerprint = _fingerprint(cfg, manager)
    if pipeline:
        result = standard_pipeline(cfg, manager=manager)
    else:
        result = optimize(cfg, pass_, config=config, manager=manager)
    ir = None
    if keep_ir:
        from repro.ir.serialize import cfg_to_json

        ir = cfg_to_json(result.cfg)
    return OptimizeOutcome(
        pass_=pass_,
        pipeline=pipeline,
        source_fingerprint=source_fingerprint,
        fingerprint=_fingerprint(result.cfg, manager),
        static_before=cfg.static_computation_count(),
        static_after=result.cfg.static_computation_count(),
        description=result.describe(),
        ir=ir,
        transform=result,
    )


def optimize_source(
    payload: str,
    pass_: str = "lcm",
    *,
    kind: str = KIND_SOURCE,
    pipeline: bool = False,
    manager=None,
    config: Optional[OptimizeConfig] = None,
    keep_ir: bool = False,
) -> OptimizeOutcome:
    """Load a program (see :func:`load_cfg`) and optimise it."""
    return optimize_cfg(
        load_cfg(payload, kind),
        pass_,
        pipeline=pipeline,
        manager=manager,
        config=config,
        keep_ir=keep_ir,
    )


def analyze_cfg(cfg: CFG, *, manager=None) -> AnalyzeOutcome:
    """Run the LCM analysis stack on *cfg* without transforming it."""
    from repro.core.lcm import analyze_lcm

    analysis = analyze_lcm(cfg, manager=manager)
    universe = analysis.universe
    placements: Dict[str, Dict[str, List[str]]] = {}
    for expr in universe:
        idx = universe.index_of(expr)
        placements[str(expr)] = {
            "insert_edges": sorted(
                f"{m}->{n}"
                for (m, n), vec in analysis.insert.items()
                if idx in vec
            ),
            "delete_blocks": sorted(
                label for label, vec in analysis.delete.items() if idx in vec
            ),
        }
    return AnalyzeOutcome(
        fingerprint=_fingerprint(cfg, manager),
        expressions=[str(expr) for expr in universe],
        placements=placements,
        analysis=analysis,
    )


def analyze_source(
    payload: str, *, kind: str = KIND_SOURCE, manager=None
) -> AnalyzeOutcome:
    """Load a program (see :func:`load_cfg`) and analyze it."""
    return analyze_cfg(load_cfg(payload, kind), manager=manager)
