"""repro — a faithful reproduction of *Lazy Code Motion* (PLDI 1992).

Knoop, Ruething & Steffen's Lazy Code Motion (LCM) is the classic
formulation of partial redundancy elimination as four unidirectional
bit-vector dataflow analyses, producing placements that are both
computationally optimal (no safe placement evaluates an expression less
often on any path) and lifetime optimal (the introduced temporaries are
live as briefly as possible).

Quickstart::

    from repro import CFGBuilder, optimize

    b = CFGBuilder()
    b.block("cond", "p = a < b").branch("p", "left", "right")
    b.block("left", "x = a + b").jump("join")
    b.block("right").jump("join")
    b.block("join", "y = a + b").to_exit()
    cfg = b.build()

    result = optimize(cfg, "lcm")
    print(result.describe())   # where t = a + b was inserted / replaced
    print(result.cfg)          # the optimised program

Starting from *source text* instead of a built graph, use the
:mod:`repro.api` facade — :func:`optimize_source` /
:func:`analyze_source` return typed, JSON-ready outcomes (what the
CLI, the batch workers and the ``repro serve`` daemon call).

The package layout follows DESIGN.md: :mod:`repro.ir` (program
representation), :mod:`repro.lang` (text front-end),
:mod:`repro.dataflow` (bit-vector engine), :mod:`repro.analysis`
(local + global analyses), :mod:`repro.core` (BCM/ALCM/LCM and the
optimality machinery), :mod:`repro.baselines` (Morel–Renvoise, GCSE,
naive LICM), :mod:`repro.interp` (counting interpreter) and
:mod:`repro.bench` (workloads, figures, metrics, harness).
"""

from repro.ir import (
    CFG,
    BasicBlock,
    BinExpr,
    CFGBuilder,
    CondBranch,
    Const,
    Halt,
    Jump,
    UnaryExpr,
    Var,
    parse_expr,
    pretty_cfg,
    split_critical_edges,
    validate_cfg,
)
from repro.ir.instr import Assign
from repro.analysis import (
    ExprUniverse,
    compute_anticipability,
    compute_availability,
    compute_liveness,
    compute_local_properties,
)
from repro.core import (
    LCMAnalysis,
    OptimizeConfig,
    Placement,
    TransformResult,
    analyze_krs,
    analyze_lcm,
    apply_placements,
    available_strategies,
    bcm_placements,
    lcm_placements,
    measure_lifetimes,
    optimize,
    register_pass,
)
from repro.obs import AnalysisManager, Tracer, tracing
from repro.core.optimality import check_equivalence, compare_per_path
from repro.core.verify import verify_transformation
from repro.interp import run as run_program
from repro.api import (
    AnalyzeOutcome,
    OptimizeOutcome,
    SourceError,
    analyze_source,
    load_cfg,
    optimize_source,
)

__version__ = "1.0.0"

__all__ = [
    "AnalysisManager",
    "AnalyzeOutcome",
    "Assign",
    "BasicBlock",
    "BinExpr",
    "CFG",
    "CFGBuilder",
    "CondBranch",
    "Const",
    "ExprUniverse",
    "OptimizeOutcome",
    "SourceError",
    "Halt",
    "Jump",
    "LCMAnalysis",
    "OptimizeConfig",
    "Placement",
    "Tracer",
    "TransformResult",
    "UnaryExpr",
    "Var",
    "analyze_krs",
    "analyze_lcm",
    "analyze_source",
    "apply_placements",
    "available_strategies",
    "bcm_placements",
    "check_equivalence",
    "compare_per_path",
    "compute_anticipability",
    "compute_availability",
    "compute_liveness",
    "compute_local_properties",
    "lcm_placements",
    "load_cfg",
    "measure_lifetimes",
    "optimize",
    "optimize_source",
    "parse_expr",
    "pretty_cfg",
    "register_pass",
    "run_program",
    "split_critical_edges",
    "tracing",
    "validate_cfg",
    "verify_transformation",
]
