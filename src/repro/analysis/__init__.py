"""Program analyses: local predicates and global bit-vector properties.

The local predicates (ANTLOC/COMP/TRANSP) summarise each basic block per
candidate expression; the global analyses are the unidirectional
bit-vector problems the paper composes into Lazy Code Motion:

* availability (up-safety) — forward, all paths;
* anticipability (down-safety) — backward, all paths;
* partial availability / partial anticipability — the some-path variants
  (used by the Morel–Renvoise baseline and the speculative discussion);
* variable liveness — backward, some path (used for lifetime metrics).
"""

from repro.analysis.universe import ExprUniverse
from repro.analysis.local import LocalProperties, compute_local_properties
from repro.analysis.availability import AvailabilityResult, compute_availability
from repro.analysis.anticipability import (
    AnticipabilityResult,
    compute_anticipability,
)
from repro.analysis.partial import (
    compute_partial_availability,
    compute_partial_anticipability,
)
from repro.analysis.liveness import LivenessResult, compute_liveness
from repro.analysis.dominators import compute_dominators, dominance_frontier
from repro.analysis.frequency import (
    Profile,
    block_frequencies,
    expected_evaluations,
    profile_from_runs,
)
from repro.analysis.loops import Loop, LoopNest
from repro.analysis.reaching import (
    DefUseChains,
    ReachingResult,
    compute_reaching_definitions,
    def_use_chains,
)

__all__ = [
    "AnticipabilityResult",
    "AvailabilityResult",
    "DefUseChains",
    "ExprUniverse",
    "LivenessResult",
    "LocalProperties",
    "Loop",
    "LoopNest",
    "Profile",
    "ReachingResult",
    "block_frequencies",
    "compute_anticipability",
    "compute_availability",
    "compute_dominators",
    "compute_liveness",
    "compute_local_properties",
    "compute_partial_anticipability",
    "compute_partial_availability",
    "compute_reaching_definitions",
    "def_use_chains",
    "dominance_frontier",
    "expected_evaluations",
    "profile_from_runs",
]
