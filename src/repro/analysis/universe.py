"""The expression universe: the index space of all bit-vector analyses.

PRE reasons about every *operator expression* occurring on a right-hand
side anywhere in the program.  The universe assigns each such expression
a stable bit index, translates between expressions and bit vectors, and
names the temporary introduced for each expression by the code motion
transformation.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.dataflow.bitvec import BitVector
from repro.ir.cfg import CFG
from repro.ir.expr import Expr, expr_key, expr_vars, is_computation


class ExprUniverse:
    """An indexed set of candidate expressions.

    Indices are assigned in first-occurrence order over the CFG's
    deterministic block/instruction order, so analyses and printouts are
    reproducible run to run.
    """

    def __init__(self, exprs: Iterable[Expr] = ()) -> None:
        self._index: Dict[Expr, int] = {}
        self._exprs: List[Expr] = []
        for expr in exprs:
            self.add(expr)

    @classmethod
    def of_cfg(cls, cfg: CFG) -> "ExprUniverse":
        """Collect every PRE candidate expression of *cfg*."""
        universe = cls()
        for _, _, instr in cfg.instructions():
            if instr.is_computation:
                universe.add(instr.expr)
        return universe

    def add(self, expr: Expr) -> int:
        """Insert *expr* (a computation) and return its index."""
        if not is_computation(expr):
            raise ValueError(f"not a candidate computation: {expr!r}")
        if expr not in self._index:
            self._index[expr] = len(self._exprs)
            self._exprs.append(expr)
        return self._index[expr]

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._exprs)

    def __iter__(self) -> Iterator[Expr]:
        return iter(self._exprs)

    def __contains__(self, expr: Expr) -> bool:
        return expr in self._index

    @property
    def width(self) -> int:
        """The bit-vector width for this universe."""
        return len(self._exprs)

    def index_of(self, expr: Expr) -> int:
        """The bit index of *expr* (KeyError if absent)."""
        return self._index[expr]

    def expr_at(self, index: int) -> Expr:
        """The expression assigned to bit *index*."""
        return self._exprs[index]

    def enumerate(self) -> Iterator[Tuple[int, Expr]]:
        return enumerate(self._exprs)

    # ------------------------------------------------------------------

    def vector(self, exprs: Iterable[Expr]) -> BitVector:
        """A vector with the bits of the given expressions set."""
        return BitVector.of(self.width, (self._index[e] for e in exprs))

    def empty(self) -> BitVector:
        return BitVector.empty(self.width)

    def full(self) -> BitVector:
        return BitVector.full(self.width)

    def exprs_of(self, vec: BitVector) -> List[Expr]:
        """The expressions whose bits are set in *vec*."""
        if vec.width != self.width:
            raise ValueError(f"vector width {vec.width} != universe {self.width}")
        return [self._exprs[i] for i in vec]

    def invalidated_by(self, var: str) -> BitVector:
        """Expressions whose value may change when *var* is assigned."""
        return BitVector.of(
            self.width,
            (
                i
                for i, expr in enumerate(self._exprs)
                if var in expr_vars(expr)
            ),
        )

    # ------------------------------------------------------------------

    def temp_name(self, expr: Expr) -> str:
        """The canonical temporary name carrying *expr*'s value.

        The scheme ``t<index>.<key>`` cannot collide with source
        variables (identifiers cannot contain dots) and is unique per
        expression even when two expressions share a readable key.
        """
        return f"t{self.index_of(expr)}.{expr_key(expr)}"

    def describe(self, vec: Optional[BitVector] = None) -> str:
        """Readable listing, optionally restricted to the bits of *vec*."""
        items = (
            self.enumerate()
            if vec is None
            else ((i, self._exprs[i]) for i in vec)
        )
        return "{" + ", ".join(f"{i}:{e}" for i, e in items) + "}"
