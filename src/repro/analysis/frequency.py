"""Execution-frequency profiles over CFG edges and blocks.

The paper models programs as *weighted* flow graphs: every edge carries
an execution frequency, subject to flow conservation (what enters a
block leaves it — the paper's Assumption 1), and classic PRE assumes
all frequencies are positive (Assumption 2).  This module makes those
profiles concrete:

* :func:`profile_from_runs` — edge profiling: execute the program on a
  set of inputs and count actual edge traversals (how real compilers
  obtain profiles);
* :func:`block_frequencies` — block counts derived from edge weights;
* :func:`check_conservation` — verify Assumption 1;
* :func:`expected_evaluations` — the profile-weighted static estimate
  of dynamic expression evaluations, the objective function that
  *speculative* PRE optimises and that classic PRE's optimality is
  independent of.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional

from repro.interp.machine import run
from repro.ir.cfg import CFG, Edge


class Profile:
    """Edge and block execution counts for one CFG."""

    def __init__(self, cfg: CFG, edge_counts: Mapping[Edge, int]) -> None:
        self.cfg = cfg
        self.edge_counts: Dict[Edge, int] = dict(edge_counts)

    def edge(self, edge: Edge) -> int:
        return self.edge_counts.get(edge, 0)

    def block(self, label: str) -> int:
        """Executions of *label* (inflow; the entry counts its outflow)."""
        if label == self.cfg.entry:
            return sum(
                self.edge((label, s)) for s in self.cfg.succs(label)
            )
        return sum(self.edge((p, label)) for p in self.cfg.preds(label))

    def attach(self, minimum: int = 0) -> None:
        """Store the counts as the CFG's edge weights.

        Classic PRE assumes positive frequencies (Assumption 2); edges
        never seen in the profile get ``minimum`` if positive, else are
        left unweighted (defaulting to 1 when read back).
        """
        for edge in self.cfg.edges():
            count = self.edge(edge)
            if count > 0:
                self.cfg.set_weight(edge, count)
            elif minimum > 0:
                self.cfg.set_weight(edge, minimum)


def profile_from_runs(
    cfg: CFG,
    inputs: Iterable[Mapping[str, int]],
    max_steps: int = 200_000,
) -> Profile:
    """Edge-profile *cfg* by executing it on every environment given."""
    counts: Dict[Edge, int] = {}
    for env in inputs:
        result = run(cfg, env, max_steps=max_steps)
        trace = result.block_trace
        for src, dst in zip(trace, trace[1:]):
            counts[(src, dst)] = counts.get((src, dst), 0) + 1
    return Profile(cfg, counts)


def block_frequencies(cfg: CFG, default: int = 1) -> Dict[str, int]:
    """Block execution counts implied by the CFG's edge weights."""
    freq: Dict[str, int] = {}
    for label in cfg.labels:
        if label == cfg.entry:
            freq[label] = sum(
                cfg.weight((label, s), default) for s in cfg.succs(label)
            )
        else:
            freq[label] = sum(
                cfg.weight((p, label), default) for p in cfg.preds(label)
            )
    return freq


def check_conservation(cfg: CFG, default: int = 1) -> List[str]:
    """Check Assumption 1 (flow conservation) for the CFG's weights.

    Returns human-readable violations; empty when inflow equals outflow
    at every interior block.  The entry (pure source) and exit (pure
    sink) are exempt.
    """
    problems: List[str] = []
    for label in cfg.labels:
        if label in (cfg.entry, cfg.exit):
            continue
        inflow = sum(cfg.weight((p, label), default) for p in cfg.preds(label))
        outflow = sum(cfg.weight((label, s), default) for s in cfg.succs(label))
        if inflow != outflow:
            problems.append(
                f"block {label!r}: inflow {inflow} != outflow {outflow}"
            )
    return problems


def expected_evaluations(
    cfg: CFG, frequencies: Optional[Mapping[str, int]] = None
) -> int:
    """Profile-weighted count of expression evaluations.

    ``sum over blocks of frequency(b) * computations_in(b)`` — the
    static estimate of how many operator evaluations a run following
    the profile performs.
    """
    freq = dict(frequencies) if frequencies is not None else block_frequencies(cfg)
    total = 0
    for block in cfg:
        computations = sum(1 for instr in block.instrs if instr.is_computation)
        total += freq.get(block.label, 0) * computations
    return total
