"""Reaching definitions and def-use chains.

The remaining classic bit-vector analysis: which definition sites can
supply the value a use reads?  Forward, some-path, over a universe of
definition sites ``(block, index)``.  On top of the solution,
:func:`def_use_chains` links every definition to the uses it can reach
and vice versa — the structure passes like copy propagation reason
about implicitly, exposed here as a first-class, queryable object (and
used by the CLI-facing audit tooling and several tests as an
independent oracle for the liveness machinery).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.dataflow.bitvec import BitVector
from repro.dataflow.problem import DataflowProblem
from repro.dataflow.solver import solve
from repro.dataflow.stats import SolverStats
from repro.ir.cfg import CFG

#: A definition site: (block label, instruction index).
DefSite = Tuple[str, int]

#: A use site: (block label, instruction index) — index ``len(instrs)``
#: denotes the terminator's use of the branch condition.
UseSite = Tuple[str, int]


@dataclass
class ReachingResult:
    """Reaching-definition vectors plus the site index space."""

    sites: List[DefSite]
    index: Dict[DefSite, int]
    reach_in: Dict[str, BitVector]
    reach_out: Dict[str, BitVector]
    stats: SolverStats

    def sites_of(self, vec: BitVector) -> List[DefSite]:
        return [self.sites[i] for i in vec]

    def reaching_entry(self, label: str, var: Optional[str] = None,
                       cfg: Optional[CFG] = None) -> List[DefSite]:
        """Definition sites reaching *label*'s entry (optionally of *var*)."""
        found = self.sites_of(self.reach_in[label])
        if var is None:
            return found
        if cfg is None:
            raise ValueError("filtering by variable needs the cfg")
        return [
            (b, i) for b, i in found if cfg.block(b).instrs[i].target == var
        ]


def compute_reaching_definitions(cfg: CFG) -> ReachingResult:
    """Solve reaching definitions for every assignment of *cfg*."""
    sites: List[DefSite] = [
        (label, i) for label, i, _ in cfg.instructions()
    ]
    index = {site: k for k, site in enumerate(sites)}
    width = len(sites)

    by_var: Dict[str, List[int]] = {}
    for k, (label, i) in enumerate(sites):
        by_var.setdefault(cfg.block(label).instrs[i].target, []).append(k)

    gen: Dict[str, BitVector] = {}
    keep: Dict[str, BitVector] = {}
    for block in cfg:
        g = BitVector.empty(width)
        k = BitVector.full(width)
        for i, instr in enumerate(block.instrs):
            killed = BitVector.of(width, by_var.get(instr.target, ()))
            g = g - killed
            k = k - killed
            g = g.with_bit(index[(block.label, i)])
        gen[block.label] = g
        keep[block.label] = k

    def transfer(label: str, fact: BitVector) -> BitVector:
        return gen[label] | (fact & keep[label])

    problem = DataflowProblem.forward_union("reaching-defs", width, transfer)
    solution = solve(cfg, problem)
    return ReachingResult(sites, index, solution.inof, solution.outof,
                          solution.stats)


@dataclass
class DefUseChains:
    """Bidirectional links between definition and use sites."""

    uses_of_def: Dict[DefSite, Set[UseSite]] = field(default_factory=dict)
    defs_of_use: Dict[Tuple[UseSite, str], Set[DefSite]] = field(
        default_factory=dict
    )

    def uses(self, site: DefSite) -> Set[UseSite]:
        return self.uses_of_def.get(site, set())

    def defs(self, use: UseSite, var: str) -> Set[DefSite]:
        return self.defs_of_use.get((use, var), set())

    def dead_defs(self) -> List[DefSite]:
        """Definition sites with no reachable use."""
        return sorted(site for site, uses in self.uses_of_def.items() if not uses)


def def_use_chains(cfg: CFG, reaching: Optional[ReachingResult] = None) -> DefUseChains:
    """Build def-use / use-def chains from a reaching-defs solution."""
    if reaching is None:
        reaching = compute_reaching_definitions(cfg)
    chains = DefUseChains()
    for site in reaching.sites:
        chains.uses_of_def[site] = set()

    for block in cfg:
        # Current reaching set, per variable, walking down the block.
        current: Dict[str, Set[DefSite]] = {}
        for k in reaching.reach_in[block.label]:
            b, i = reaching.sites[k]
            var = cfg.block(b).instrs[i].target
            current.setdefault(var, set()).add((b, i))
        for i, instr in enumerate(block.instrs):
            use_site: UseSite = (block.label, i)
            for var in set(instr.uses()):
                defs = current.get(var, set())
                chains.defs_of_use[(use_site, var)] = set(defs)
                for d in defs:
                    chains.uses_of_def[d].add(use_site)
            current[instr.target] = {(block.label, i)}
        if block.terminator is not None:
            term_site: UseSite = (block.label, len(block.instrs))
            for var in set(block.terminator.uses()):
                defs = current.get(var, set())
                chains.defs_of_use[(term_site, var)] = set(defs)
                for d in defs:
                    chains.uses_of_def[d].add(term_site)
    return chains
