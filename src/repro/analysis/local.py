"""Local (per-block) predicates: ANTLOC, COMP and TRANSP.

For each basic block ``n`` and candidate expression ``e``:

* ``ANTLOC(n, e)`` — ``e`` is *locally anticipatable* on entry to ``n``:
  the block contains an upwards-exposed computation of ``e`` (one not
  preceded, within the block, by an assignment to any of ``e``'s
  operands).
* ``COMP(n, e)`` — ``e`` is *locally available* on exit from ``n``: the
  block contains a downwards-exposed computation of ``e`` (one not
  followed, within the block, by an assignment to an operand of ``e`` —
  including by the computing statement itself, as in ``a = a + b``).
* ``TRANSP(n, e)`` — ``n`` is *transparent* for ``e``: no statement in
  the block assigns an operand of ``e``.

Note that ``ANTLOC`` and ``COMP`` may both hold with ``TRANSP`` false
only when the block contains two distinct occurrences of ``e`` separated
by a kill — the classic subtlety this module's tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.analysis.universe import ExprUniverse
from repro.dataflow.bitvec import BitVector
from repro.ir.cfg import CFG


@dataclass
class LocalProperties:
    """ANTLOC/COMP/TRANSP vectors per block, over a shared universe."""

    universe: ExprUniverse
    antloc: Dict[str, BitVector]
    comp: Dict[str, BitVector]
    transp: Dict[str, BitVector]

    def describe(self, label: str) -> str:
        """Readable summary of one block's local predicates."""
        u = self.universe
        return (
            f"ANTLOC={u.describe(self.antloc[label])} "
            f"COMP={u.describe(self.comp[label])} "
            f"TRANSP={u.describe(self.transp[label])}"
        )


def _block_locals(
    instrs,
    universe: ExprUniverse,
) -> Tuple[BitVector, BitVector, BitVector]:
    """Compute (antloc, comp, transp) for one instruction sequence."""
    width = universe.width
    killed_so_far = BitVector.empty(width)  # exprs with an operand defined above
    antloc = BitVector.empty(width)
    comp = BitVector.empty(width)
    transp = BitVector.full(width)

    for instr in instrs:
        if instr.is_computation and instr.expr in universe:
            idx = universe.index_of(instr.expr)
            # Upwards exposed iff no earlier statement killed the operands.
            if idx not in killed_so_far:
                antloc = antloc.with_bit(idx)
            # Tentatively downwards exposed; a later kill clears it below.
            comp = comp.with_bit(idx)
        kills = universe.invalidated_by(instr.target)
        if kills:
            killed_so_far = killed_so_far | kills
            transp = transp - kills
            # A kill wipes out local availability of the affected
            # expressions, including the one just computed (a = a + b).
            comp = comp - kills
    return antloc, comp, transp


def compute_local_properties(
    cfg: CFG, universe: Optional[ExprUniverse] = None
) -> LocalProperties:
    """Compute ANTLOC/COMP/TRANSP for every block of *cfg*.

    The universe defaults to every candidate expression of the graph;
    passing an explicit (possibly larger) universe lets callers keep
    indices stable across program transformations.
    """
    if universe is None:
        universe = ExprUniverse.of_cfg(cfg)
    antloc: Dict[str, BitVector] = {}
    comp: Dict[str, BitVector] = {}
    transp: Dict[str, BitVector] = {}
    for block in cfg:
        antloc[block.label], comp[block.label], transp[block.label] = _block_locals(
            block.instrs, universe
        )
    return LocalProperties(universe, antloc, comp, transp)
