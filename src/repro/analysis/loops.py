"""Natural-loop nest analysis.

Consolidates what the loop-oriented transformations (naive LICM, the
speculative and strength-reduction extensions) each need: natural
loops merged by header, nesting structure, per-block loop depth, exit
edges and preheader candidates — computed once per graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.analysis.dominators import back_edges, natural_loop
from repro.ir.cfg import CFG, Edge


@dataclass
class Loop:
    """One natural loop (all back edges to the same header merged)."""

    header: str
    body: Set[str]
    back_edges: List[Edge] = field(default_factory=list)
    parent: Optional[str] = None  # enclosing loop's header
    depth: int = 1

    def exits(self, cfg: CFG) -> List[Edge]:
        """Edges leaving the loop body."""
        return [
            (src, dst)
            for src in sorted(self.body)
            for dst in cfg.succs(src)
            if dst not in self.body
        ]

    def entry_edges(self, cfg: CFG) -> List[Edge]:
        """Edges entering the header from outside the body."""
        return [
            (pred, self.header)
            for pred in cfg.preds(self.header)
            if pred not in self.body
        ]


class LoopNest:
    """All natural loops of a CFG with their nesting relations."""

    def __init__(self, loops: Dict[str, Loop]) -> None:
        self.loops = loops

    @classmethod
    def compute(cls, cfg: CFG) -> "LoopNest":
        loops: Dict[str, Loop] = {}
        for back in back_edges(cfg):
            tail, header = back
            loop = loops.setdefault(header, Loop(header, set()))
            loop.body |= natural_loop(cfg, back)
            loop.back_edges.append(back)

        # Nesting: the parent of L is the smallest other loop strictly
        # containing L's body.
        for header, loop in loops.items():
            candidates = [
                other
                for other in loops.values()
                if other.header != header and loop.body < other.body
            ]
            if candidates:
                parent = min(candidates, key=lambda l: len(l.body))
                loop.parent = parent.header
        for loop in loops.values():
            depth = 1
            cursor = loop.parent
            while cursor is not None:
                depth += 1
                cursor = loops[cursor].parent
            loop.depth = depth
        return cls(loops)

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.loops)

    def __iter__(self):
        return iter(self.loops.values())

    def loop_of(self, header: str) -> Loop:
        return self.loops[header]

    def innermost_first(self) -> List[Loop]:
        """Loops ordered inner to outer (smaller bodies first)."""
        return sorted(self.loops.values(), key=lambda l: (len(l.body), l.header))

    def outermost_first(self) -> List[Loop]:
        """Loops ordered outer to inner (larger bodies first)."""
        return sorted(
            self.loops.values(), key=lambda l: (-len(l.body), l.header)
        )

    def depth_of(self, label: str) -> int:
        """How many loops contain *label* (0 outside all loops)."""
        return sum(1 for loop in self.loops.values() if label in loop.body)

    def top_level(self) -> List[Loop]:
        return [loop for loop in self.loops.values() if loop.parent is None]
