"""Partial availability and partial anticipability (some-path variants).

The *partial* properties replace the all-paths quantifier with a
some-path one (union confluence):

* ``e`` is partially available at a point when **some** entry path
  computes ``e`` last before the point — the defining condition of a
  *partially redundant* occurrence, and a core ingredient of the
  Morel–Renvoise baseline;
* ``e`` is partially anticipatable when **some** exit path computes it
  first — the speculation criterion that separates speculative PRE from
  the classic, fully-down-safe discipline of Lazy Code Motion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.local import LocalProperties
from repro.dataflow.bitvec import BitVector
from repro.dataflow.problem import DataflowProblem, GenKillTransfer
from repro.dataflow.solver import solve
from repro.dataflow.stats import SolverStats
from repro.ir.cfg import CFG


@dataclass
class PartialResult:
    """IN/OUT vectors per block for a some-path property."""

    inof: Dict[str, BitVector]
    outof: Dict[str, BitVector]
    stats: SolverStats


def compute_partial_availability(cfg: CFG, local: LocalProperties) -> PartialResult:
    """Forward, union: PAVIN/PAVOUT."""
    problem = DataflowProblem.forward_union(
        "partial-availability",
        local.universe.width,
        GenKillTransfer(gen=local.comp, keep=local.transp),
    )
    solution = solve(cfg, problem)
    return PartialResult(solution.inof, solution.outof, solution.stats)


def compute_partial_anticipability(cfg: CFG, local: LocalProperties) -> PartialResult:
    """Backward, union: PANTIN/PANTOUT."""
    problem = DataflowProblem.backward_union(
        "partial-anticipability",
        local.universe.width,
        GenKillTransfer(gen=local.antloc, keep=local.transp),
    )
    solution = solve(cfg, problem)
    return PartialResult(solution.inof, solution.outof, solution.stats)
