"""Global anticipability (*down-safety*): backward, all-paths.

An expression ``e`` is *anticipatable* at a program point when every
path from that point to the exit computes ``e`` before any assignment to
its operands.  Inserting ``t = e`` at such a point is *down-safe*: the
value is certain to be needed, so the insertion can never add a
computation to any execution path.  Down-safety is the load-bearing
safety notion of classic PRE — Lazy Code Motion only ever inserts at
down-safe points.

Equations (block form)::

    ANTOUT(n) = ∅                           if n = exit
              = ∏_{s ∈ succ(n)} ANTIN(s)    otherwise
    ANTIN(n)  = ANTLOC(n) ∪ (ANTOUT(n) ∩ TRANSP(n))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.local import LocalProperties
from repro.dataflow.bitvec import BitVector
from repro.dataflow.problem import DataflowProblem, GenKillTransfer
from repro.dataflow.solver import solve
from repro.dataflow.stats import SolverStats
from repro.ir.cfg import CFG


@dataclass
class AnticipabilityResult:
    """ANTIN/ANTOUT per block."""

    antin: Dict[str, BitVector]
    antout: Dict[str, BitVector]
    stats: SolverStats


def anticipability_problem(local: LocalProperties) -> DataflowProblem:
    """The anticipability instance over *local*'s universe."""
    return DataflowProblem.backward_intersect(
        "anticipability",
        local.universe.width,
        GenKillTransfer(gen=local.antloc, keep=local.transp),
    )


def compute_anticipability(
    cfg: CFG, local: LocalProperties, manager=None, plan=None
) -> AnticipabilityResult:
    """Solve global anticipability for *cfg*.

    Pass an :class:`~repro.obs.manager.AnalysisManager` to memoize the
    solution by graph content (only sound when *local* was derived from
    *cfg*'s own default universe).  Without a manager, a precompiled
    dense *plan* for *cfg* may be passed so consecutive analyses share
    one (managers cache plans themselves).
    """
    problem = anticipability_problem(local)
    if manager is not None:
        solution = manager.solve(cfg, problem)
    else:
        solution = solve(cfg, problem, plan=plan)
    return AnticipabilityResult(solution.inof, solution.outof, solution.stats)
