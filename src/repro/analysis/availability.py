"""Global availability (*up-safety*): forward, all-paths.

An expression ``e`` is *available* at a program point when every path
from the entry to that point computes ``e`` after the last assignment to
any of its operands.  At such points a recomputation of ``e`` is *fully
redundant*; availability is also called up-safety because inserting
``t = e`` there is safe with respect to everything that happened before.

Equations (block form)::

    AVIN(n)  = ∅                          if n = entry
             = ∏_{m ∈ pred(n)} AVOUT(m)   otherwise
    AVOUT(n) = COMP(n) ∪ (AVIN(n) ∩ TRANSP(n))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.local import LocalProperties
from repro.dataflow.bitvec import BitVector
from repro.dataflow.problem import DataflowProblem, GenKillTransfer
from repro.dataflow.solver import solve
from repro.dataflow.stats import SolverStats
from repro.ir.cfg import CFG


@dataclass
class AvailabilityResult:
    """AVIN/AVOUT per block."""

    avin: Dict[str, BitVector]
    avout: Dict[str, BitVector]
    stats: SolverStats


def availability_problem(local: LocalProperties) -> DataflowProblem:
    """The availability instance over *local*'s universe."""
    return DataflowProblem.forward_intersect(
        "availability",
        local.universe.width,
        GenKillTransfer(gen=local.comp, keep=local.transp),
    )


def compute_availability(
    cfg: CFG, local: LocalProperties, manager=None, plan=None
) -> AvailabilityResult:
    """Solve global availability for *cfg*.

    Pass an :class:`~repro.obs.manager.AnalysisManager` to memoize the
    solution by graph content (only sound when *local* was derived from
    *cfg*'s own default universe).  Without a manager, a precompiled
    dense *plan* for *cfg* may be passed so consecutive analyses share
    one (managers cache plans themselves).
    """
    problem = availability_problem(local)
    if manager is not None:
        solution = manager.solve(cfg, problem)
    else:
        solution = solve(cfg, problem, plan=plan)
    return AvailabilityResult(solution.inof, solution.outof, solution.stats)
