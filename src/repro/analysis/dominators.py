"""Dominator analysis (iterative), used by loop detection and LICM.

``dom(n)`` is the set of blocks that appear on *every* entry path to
``n``.  The naive-LICM baseline uses dominators to find natural loops
(back edges ``t -> h`` with ``h`` dominating ``t``), and the workload
generators use them to assert reducibility of generated graphs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.dataflow.order import reverse_postorder
from repro.ir.cfg import CFG


def compute_dominators(cfg: CFG) -> Dict[str, Set[str]]:
    """Return the full dominator sets ``{label: set of dominators}``."""
    labels = reverse_postorder(cfg)
    all_labels = set(labels)
    dom: Dict[str, Set[str]] = {label: set(all_labels) for label in labels}
    dom[cfg.entry] = {cfg.entry}

    changed = True
    while changed:
        changed = False
        for label in labels:
            if label == cfg.entry:
                continue
            preds = [p for p in cfg.preds(label) if p in dom]
            if not preds:
                continue
            new = set(all_labels)
            for pred in preds:
                new &= dom[pred]
            new.add(label)
            if new != dom[label]:
                dom[label] = new
                changed = True
    return dom


def immediate_dominators(cfg: CFG) -> Dict[str, Optional[str]]:
    """Return the immediate dominator of every block (entry has None)."""
    dom = compute_dominators(cfg)
    order = {label: i for i, label in enumerate(reverse_postorder(cfg))}
    idom: Dict[str, Optional[str]] = {cfg.entry: None}
    for label, doms in dom.items():
        if label == cfg.entry:
            continue
        strict = doms - {label}
        # The immediate dominator is the strict dominator closest in
        # reverse postorder (the one dominated by all the others).
        idom[label] = max(strict, key=lambda d: order[d]) if strict else None
    return idom


def dominance_frontier(cfg: CFG) -> Dict[str, Set[str]]:
    """Dominance frontiers per block (Cytron et al. construction)."""
    idom = immediate_dominators(cfg)
    frontier: Dict[str, Set[str]] = {label: set() for label in cfg.labels}
    for label in cfg.labels:
        preds = cfg.preds(label)
        if len(preds) < 2:
            continue
        for pred in preds:
            runner: Optional[str] = pred
            while runner is not None and runner != idom[label]:
                frontier[runner].add(label)
                runner = idom[runner]
    return frontier


def back_edges(cfg: CFG) -> List[Tuple[str, str]]:
    """Edges ``t -> h`` where ``h`` dominates ``t`` (natural loop backs)."""
    dom = compute_dominators(cfg)
    return [(src, dst) for src, dst in cfg.edges() if dst in dom[src]]


def natural_loop(cfg: CFG, back: Tuple[str, str]) -> Set[str]:
    """The body of the natural loop of back edge ``(tail, header)``.

    Standard worklist: start from the tail and walk predecessors, never
    expanding past the header — which also keeps self-loops
    (``tail == header``) from absorbing the header's outside
    predecessors.
    """
    tail, header = back
    body: Set[str] = {header}
    stack = [tail]
    while stack:
        label = stack.pop()
        if label in body:
            continue
        body.add(label)
        stack.extend(cfg.preds(label))
    return body
