"""Variable liveness: backward, some-path, over a variable universe.

Used by the lifetime-optimality experiments: after a code motion
transformation, the live range of each introduced temporary is measured
with this analysis, and the paper's theorem (LCM's temporaries are live
on a subset of the points where any other computationally optimal
placement's are) is checked on the results.

Equations::

    LIVEOUT(n) = ∪_{s ∈ succ(n)} LIVEIN(s)        (∅ at exit)
    LIVEIN(n)  = USE(n) ∪ (LIVEOUT(n) − DEF(n))

where ``USE(n)`` are the variables read in ``n`` before any definition
(branch conditions read at the end of the block) and ``DEF(n)`` the
variables assigned in ``n``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from repro.dataflow.bitvec import BitVector
from repro.dataflow.problem import DataflowProblem, GenKillTransfer
from repro.dataflow.solver import solve
from repro.dataflow.stats import SolverStats
from repro.ir.cfg import CFG


@dataclass
class LivenessResult:
    """LIVEIN/LIVEOUT per block plus the variable index space."""

    variables: List[str]
    index: Dict[str, int]
    livein: Dict[str, BitVector]
    liveout: Dict[str, BitVector]
    stats: SolverStats

    def live_in(self, label: str) -> Set[str]:
        """The names live on entry to *label*."""
        return {self.variables[i] for i in self.livein[label]}

    def live_out(self, label: str) -> Set[str]:
        """The names live on exit from *label*."""
        return {self.variables[i] for i in self.liveout[label]}

    def is_live_out(self, label: str, var: str) -> bool:
        idx = self.index.get(var)
        return idx is not None and idx in self.liveout[label]

    def is_live_in(self, label: str, var: str) -> bool:
        idx = self.index.get(var)
        return idx is not None and idx in self.livein[label]


def compute_liveness(cfg: CFG, live_at_exit=(), plan=None) -> LivenessResult:
    """Solve liveness for every variable of *cfg*.

    *live_at_exit* names variables considered observable after the
    program ends (live at the exit block).  The default — nothing live
    at exit — is the classic compiler-internal view; passes that must
    preserve the final environment (e.g. whole-program dead code
    elimination under this library's observable-state semantics) pass
    the observable set instead.

    The transfer is the standard gen/kill shape (``USE`` generates,
    ``DEF`` kills), so the solve lowers to the dense backend; pass a
    precompiled dense *plan* for *cfg* to share it across analyses.

    Names in *live_at_exit* that the program never mentions are kept in
    the universe (live on every path from their first absence of a
    definition — i.e. everywhere, since nothing assigns them), not
    silently dropped: a caller declaring a variable observable deserves
    a truthful answer to ``is_live_out(label, name)`` even when the
    program text never touches the name.
    """
    variables = sorted(set(cfg.variables()) | set(live_at_exit))
    index = {name: i for i, name in enumerate(variables)}
    width = len(variables)

    use: Dict[str, BitVector] = {}
    notdef: Dict[str, BitVector] = {}
    for block in cfg:
        upward: Set[str] = set()
        defined: Set[str] = set()
        for instr in block.instrs:
            upward.update(v for v in instr.uses() if v not in defined)
            defined.add(instr.target)
        if block.terminator is not None:
            upward.update(
                v for v in block.terminator.uses() if v not in defined
            )
        use[block.label] = BitVector.of(width, (index[v] for v in upward))
        notdef[block.label] = ~BitVector.of(width, (index[v] for v in defined))

    problem = DataflowProblem.backward_union(
        "liveness", width, GenKillTransfer(gen=use, keep=notdef)
    )
    boundary = BitVector.of(width, (index[v] for v in live_at_exit))
    if boundary:
        from dataclasses import replace

        problem = replace(problem, boundary=boundary)
    solution = solve(cfg, problem, plan=plan)
    return LivenessResult(
        variables, index, solution.inof, solution.outof, solution.stats
    )


def liveness_key(live_at_exit=()) -> str:
    """The :class:`~repro.obs.manager.AnalysisManager` computation key.

    ``"liveness"`` for the default (empty) exit set — compatible with
    store entries written by earlier versions — and a digest-tagged
    variant otherwise, so results for different observable sets never
    collide under one fingerprint.
    """
    names = tuple(sorted(set(live_at_exit)))
    if not names:
        return "liveness"
    import hashlib

    tag = hashlib.sha1("\x00".join(names).encode("utf-8")).hexdigest()[:12]
    return f"liveness:x{tag}"


def liveness_of(cfg: CFG, live_at_exit=(), manager=None) -> LivenessResult:
    """Liveness for *cfg*, memoized through *manager* when one is given.

    The shared front door for every full-fixpoint liveness lookup in
    the library: with a manager, the solve is keyed by content
    fingerprint + :func:`liveness_key` (memory → disk → solve) and
    shares the manager's dense plan with every other analysis of the
    same graph; without one, it is a plain :func:`compute_liveness`.
    Callers that query repeatedly between *edits* should use
    ``manager.liveness(cfg, live_at_exit)`` — the incremental engine —
    instead of re-fetching full results.
    """
    exit_names = tuple(sorted(set(live_at_exit)))
    if manager is None:
        return compute_liveness(cfg, live_at_exit=exit_names)
    return manager.cached(
        cfg,
        liveness_key(exit_names),
        lambda: compute_liveness(
            cfg, live_at_exit=exit_names, plan=manager.dense_plan(cfg)
        ),
    )
