"""Abstract syntax of the mini-language.

Statements only — expressions reuse the IR's own
:mod:`repro.ir.expr` value types directly, since the language's
right-hand sides are restricted to the same single-operator shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

from repro.ir.expr import Expr


@dataclass(frozen=True)
class AssignStmt:
    """``target = expr;``"""

    target: str
    expr: Expr
    line: int = 0


@dataclass(frozen=True)
class SkipStmt:
    """``skip;`` — does nothing (useful to force empty branches)."""

    line: int = 0


@dataclass(frozen=True)
class BreakStmt:
    """``break;`` — leave the innermost loop."""

    line: int = 0


@dataclass(frozen=True)
class ContinueStmt:
    """``continue;`` — next iteration of the innermost loop.

    In a ``while``/``repeat`` loop control returns to the test; in a
    ``do … while`` it jumps to the trailing condition evaluation.
    """

    line: int = 0


@dataclass(frozen=True)
class IfStmt:
    """``if (cond) { … } else { … }`` (else optional)."""

    cond: Expr
    then_body: Tuple["Stmt", ...]
    else_body: Tuple["Stmt", ...]
    line: int = 0


@dataclass(frozen=True)
class WhileStmt:
    """``while (cond) { … }`` — test before the body."""

    cond: Expr
    body: Tuple["Stmt", ...]
    line: int = 0


@dataclass(frozen=True)
class DoWhileStmt:
    """``do { … } while (cond);`` — body runs at least once."""

    cond: Expr
    body: Tuple["Stmt", ...]
    line: int = 0


@dataclass(frozen=True)
class RepeatStmt:
    """``repeat (count) { … }`` — a counted loop over a fresh counter.

    Syntactic sugar the lowering expands into a standard while loop with
    a compiler-generated induction variable.
    """

    count: Expr
    body: Tuple["Stmt", ...]
    line: int = 0


Stmt = Union[
    AssignStmt,
    SkipStmt,
    BreakStmt,
    ContinueStmt,
    IfStmt,
    WhileStmt,
    DoWhileStmt,
    RepeatStmt,
]


@dataclass(frozen=True)
class Program:
    """A whole source file: a statement sequence."""

    body: Tuple[Stmt, ...]
