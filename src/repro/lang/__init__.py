"""A small structured imperative language, lowered to the CFG IR.

The front-end exists so examples, tests and benchmark workloads can be
written as readable programs instead of hand-built graphs::

    from repro.lang import compile_program

    cfg = compile_program('''
        sum = 0;
        i = 0;
        while (i < n) {
            sum = sum + step;   # step is loop-invariant
            i = i + 1;
        }
        out = sum + step;
    ''')

Pipeline: :mod:`repro.lang.lexer` (tokens) → :mod:`repro.lang.parser`
(AST, :mod:`repro.lang.ast`) → :mod:`repro.lang.lower` (CFG).  The
language is deliberately tiny — assignments of single-operator
expressions, ``if``/``else``, ``while``, ``do … while`` and ``repeat`` —
because the IR restricts right-hand sides the same way the paper does.
"""

from repro.lang.errors import LangError, LexError, ParseError
from repro.lang.lexer import Token, tokenize
from repro.lang.parser import parse_program
from repro.lang.lower import compile_program, lower_program
from repro.lang.unparse import unparse, unparse_expr
from repro.lang import ast

__all__ = [
    "LangError",
    "LexError",
    "ParseError",
    "Token",
    "ast",
    "compile_program",
    "lower_program",
    "parse_program",
    "tokenize",
    "unparse",
    "unparse_expr",
]
