"""Front-end error types, all carrying source positions."""

from __future__ import annotations


class LangError(ValueError):
    """Base class for front-end errors."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(message + location)
        self.line = line
        self.column = column


class LexError(LangError):
    """Raised for unrecognised input characters."""


class ParseError(LangError):
    """Raised for grammatically invalid programs."""
