"""Unparsing: mini-language ASTs back to source text.

The inverse of :mod:`repro.lang.parser`, used to render generated
workloads readably and to property-test the front-end: for every AST,
``parse_program(unparse(ast)) == ast`` (the grammar is unambiguous, so
the round trip is exact).
"""

from __future__ import annotations

from typing import List

from repro.ir.expr import BinExpr, Const, Expr, UnaryExpr, Var
from repro.lang import ast


def unparse_expr(expr: Expr) -> str:
    """Render one single-operator expression as source text."""
    if isinstance(expr, Const):
        return str(expr.value)
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, UnaryExpr):
        if expr.op == "abs":
            return f"abs({unparse_expr(expr.operand)})"
        return f"{expr.op}{unparse_expr(expr.operand)}"
    if isinstance(expr, BinExpr):
        if expr.op in ("min", "max"):
            return (
                f"{expr.op}({unparse_expr(expr.left)}, "
                f"{unparse_expr(expr.right)})"
            )
        return (
            f"{unparse_expr(expr.left)} {expr.op} {unparse_expr(expr.right)}"
        )
    raise TypeError(f"not an expression: {expr!r}")


def _unparse_stmt(stmt: ast.Stmt, indent: int, lines: List[str]) -> None:
    pad = "    " * indent
    if isinstance(stmt, ast.AssignStmt):
        lines.append(f"{pad}{stmt.target} = {unparse_expr(stmt.expr)};")
    elif isinstance(stmt, ast.SkipStmt):
        lines.append(f"{pad}skip;")
    elif isinstance(stmt, ast.BreakStmt):
        lines.append(f"{pad}break;")
    elif isinstance(stmt, ast.ContinueStmt):
        lines.append(f"{pad}continue;")
    elif isinstance(stmt, ast.IfStmt):
        lines.append(f"{pad}if ({unparse_expr(stmt.cond)}) {{")
        for inner in stmt.then_body:
            _unparse_stmt(inner, indent + 1, lines)
        if stmt.else_body:
            lines.append(f"{pad}}} else {{")
            for inner in stmt.else_body:
                _unparse_stmt(inner, indent + 1, lines)
        lines.append(f"{pad}}}")
    elif isinstance(stmt, ast.WhileStmt):
        lines.append(f"{pad}while ({unparse_expr(stmt.cond)}) {{")
        for inner in stmt.body:
            _unparse_stmt(inner, indent + 1, lines)
        lines.append(f"{pad}}}")
    elif isinstance(stmt, ast.DoWhileStmt):
        lines.append(f"{pad}do {{")
        for inner in stmt.body:
            _unparse_stmt(inner, indent + 1, lines)
        lines.append(f"{pad}}} while ({unparse_expr(stmt.cond)});")
    elif isinstance(stmt, ast.RepeatStmt):
        lines.append(f"{pad}repeat ({unparse_expr(stmt.count)}) {{")
        for inner in stmt.body:
            _unparse_stmt(inner, indent + 1, lines)
        lines.append(f"{pad}}}")
    else:
        raise TypeError(f"unknown statement {stmt!r}")


def unparse(program: ast.Program) -> str:
    """Render a whole program; parses back to an equal AST."""
    lines: List[str] = []
    for stmt in program.body:
        _unparse_stmt(stmt, 0, lines)
    return "\n".join(lines) + ("\n" if lines else "")
