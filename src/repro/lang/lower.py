"""Lowering the mini-language AST to the CFG IR.

Control structure becomes explicit blocks; non-atomic branch conditions
are materialised into compiler temporaries (``c<N>.cond = a < b``
followed by a branch on the temporary), which keeps every PRE candidate
inside an assignment exactly as the paper's statement form requires.
Compiler-introduced names contain a dot, which source identifiers
cannot, so no collisions are possible.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.ir.block import BasicBlock
from repro.ir.cfg import CFG
from repro.ir.expr import Atom, BinExpr, Const, Expr, Var
from repro.ir.instr import Assign, CondBranch, Halt, Jump
from repro.ir.validate import validate_cfg
from repro.lang import ast
from repro.lang.parser import parse_program


class _Lowerer:
    def __init__(self) -> None:
        self.cfg = CFG("entry", "exit")
        self.cfg.add_block(BasicBlock("entry"))
        self.cfg.add_block(BasicBlock("exit", [], Halt()))
        self._counter = 0
        self._current: Optional[BasicBlock] = None
        # (continue target, break target) per enclosing loop.
        self._loop_stack: List[tuple] = []

    # -- plumbing ---------------------------------------------------------

    def _fresh_block(self, role: str) -> BasicBlock:
        self._counter += 1
        return self.cfg.add_block(BasicBlock(f"b{self._counter}_{role}"))

    def _fresh_var(self, stem: str) -> str:
        self._counter += 1
        return f"{stem}{self._counter}.L"

    def _emit(self, instr: Assign) -> None:
        assert self._current is not None
        self._current.append(instr)

    def _terminate(self, terminator) -> None:
        assert self._current is not None
        assert self._current.terminator is None
        self._current.terminator = terminator
        self._current = None
        # Keep predecessor queries (used by the lazy join/latch cleanup)
        # in sync with the freshly wired edge.
        self.cfg.notify_terminator_changed()

    def _switch_to(self, block: BasicBlock) -> None:
        self._current = block

    def _atomize(self, expr: Expr) -> Atom:
        """Return an atom for *expr*, materialising a temp if needed."""
        if isinstance(expr, (Var, Const)):
            return expr
        temp = self._fresh_var("c")
        self._emit(Assign(temp, expr))
        return Var(temp)

    # -- lowering ---------------------------------------------------------

    def lower(self, program: ast.Program) -> CFG:
        first = self._fresh_block("start")
        self.cfg.block("entry").terminator = Jump(first.label)
        self._switch_to(first)
        self._lower_body(program.body)
        if self._current is not None:
            self._terminate(Jump("exit"))
        self.cfg.notify_terminator_changed()
        validate_cfg(self.cfg)
        return self.cfg

    def _lower_body(self, body: Sequence[ast.Stmt]) -> None:
        for stmt in body:
            if self._current is None:
                # Unreachable statements after break/continue: dropped.
                return
            self._lower_stmt(stmt)

    def _lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.AssignStmt):
            self._emit(Assign(stmt.target, stmt.expr))
        elif isinstance(stmt, ast.SkipStmt):
            pass
        elif isinstance(stmt, ast.BreakStmt):
            if not self._loop_stack:
                from repro.lang.errors import LangError

                raise LangError("'break' outside a loop", stmt.line)
            self._terminate(Jump(self._loop_stack[-1][1]))
        elif isinstance(stmt, ast.ContinueStmt):
            if not self._loop_stack:
                from repro.lang.errors import LangError

                raise LangError("'continue' outside a loop", stmt.line)
            self._terminate(Jump(self._loop_stack[-1][0]))
        elif isinstance(stmt, ast.IfStmt):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.WhileStmt):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.DoWhileStmt):
            self._lower_do_while(stmt)
        elif isinstance(stmt, ast.RepeatStmt):
            self._lower_repeat(stmt)
        else:
            raise TypeError(f"unknown statement {stmt!r}")

    def _resume_at_join(self, join: BasicBlock) -> None:
        """Continue lowering at *join*, or drop it when nothing reaches it
        (e.g. both arms of an if break out of the loop)."""
        if self.cfg.preds(join.label):
            self._switch_to(join)
        else:
            self.cfg.remove_block(join.label)
            self._current = None

    def _lower_if(self, stmt: ast.IfStmt) -> None:
        cond = self._atomize(stmt.cond)
        then_block = self._fresh_block("then")
        join = self._fresh_block("join")
        if stmt.else_body:
            else_block = self._fresh_block("else")
            self._terminate(CondBranch(cond, then_block.label, else_block.label))
            self._switch_to(else_block)
            self._lower_body(stmt.else_body)
            if self._current is not None:
                self._terminate(Jump(join.label))
        else:
            self._terminate(CondBranch(cond, then_block.label, join.label))
        self._switch_to(then_block)
        self._lower_body(stmt.then_body)
        if self._current is not None:
            self._terminate(Jump(join.label))
        self._resume_at_join(join)

    def _lower_while(self, stmt: ast.WhileStmt) -> None:
        header = self._fresh_block("while")
        self._terminate(Jump(header.label))
        self._switch_to(header)
        cond = self._atomize(stmt.cond)
        body = self._fresh_block("loopbody")
        after = self._fresh_block("after")
        self._terminate(CondBranch(cond, body.label, after.label))
        self._switch_to(body)
        self._loop_stack.append((header.label, after.label))
        self._lower_body(stmt.body)
        self._loop_stack.pop()
        if self._current is not None:
            self._terminate(Jump(header.label))
        self._switch_to(after)

    def _lower_do_while(self, stmt: ast.DoWhileStmt) -> None:
        body = self._fresh_block("dobody")
        self._terminate(Jump(body.label))
        self._switch_to(body)
        # `continue` in a do-while proceeds to the trailing test, which
        # therefore needs its own block.
        latch = self._fresh_block("dolatch")
        after = self._fresh_block("after")
        self._loop_stack.append((latch.label, after.label))
        self._lower_body(stmt.body)
        self._loop_stack.pop()
        if self._current is not None:
            self._terminate(Jump(latch.label))
        if self.cfg.preds(latch.label):
            self._switch_to(latch)
            cond = self._atomize(stmt.cond)
            self._terminate(CondBranch(cond, body.label, after.label))
        else:
            # The body always breaks: the loop never repeats.
            self.cfg.remove_block(latch.label)
        self._resume_at_join(after)

    def _lower_repeat(self, stmt: ast.RepeatStmt) -> None:
        counter = self._fresh_var("r")
        bound = self._fresh_var("rb")
        self._emit(Assign(bound, stmt.count))
        self._emit(Assign(counter, Const(0)))
        header = self._fresh_block("repeat")
        self._terminate(Jump(header.label))
        self._switch_to(header)
        cond = self._fresh_var("c")
        self._emit(Assign(cond, BinExpr("<", Var(counter), Var(bound))))
        body = self._fresh_block("repeatbody")
        after = self._fresh_block("after")
        self._terminate(CondBranch(Var(cond), body.label, after.label))
        self._switch_to(body)
        # `continue` must still advance the counter: route it through a
        # dedicated latch block holding the increment.
        latch = self._fresh_block("replatch")
        self._loop_stack.append((latch.label, after.label))
        self._lower_body(stmt.body)
        self._loop_stack.pop()
        if self._current is not None:
            self._terminate(Jump(latch.label))
        if self.cfg.preds(latch.label):
            self._switch_to(latch)
            self._emit(Assign(counter, BinExpr("+", Var(counter), Const(1))))
            self._terminate(Jump(header.label))
        else:
            self.cfg.remove_block(latch.label)
        self._switch_to(after)


def lower_program(program: ast.Program) -> CFG:
    """Lower a parsed :class:`~repro.lang.ast.Program` to a CFG."""
    return _Lowerer().lower(program)


def compile_program(source: str) -> CFG:
    """Parse and lower *source* in one step."""
    return lower_program(parse_program(source))
