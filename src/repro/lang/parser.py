"""Recursive-descent parser for the mini-language.

Grammar (EBNF)::

    program   := stmt*
    stmt      := IDENT '=' expr ';'
               | 'skip' ';'
               | 'if' '(' expr ')' block ('else' block)?
               | 'while' '(' expr ')' block
               | 'do' block 'while' '(' expr ')' ';'
               | 'repeat' '(' expr ')' block
    block     := '{' stmt* '}'
    expr      := unop atom | atom (binop atom)? | fn '(' atom (',' atom)? ')'
    atom      := IDENT | NUMBER | '-' NUMBER

Expressions are single-operator by construction, matching the IR.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.ir.expr import (
    BINARY_OPS,
    Atom,
    BinExpr,
    Const,
    Expr,
    UnaryExpr,
    Var,
)
from repro.lang import ast
from repro.lang.errors import ParseError
from repro.lang.lexer import Token, tokenize

_BINARY = frozenset(op for op in BINARY_OPS if not op.isalpha())
_UNARY = frozenset({"-", "!", "~"})
_FUNCTIONS = frozenset({"min", "max", "abs"})


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing --------------------------------------------------

    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._cur
        if token.kind != "EOF":
            self._pos += 1
        return token

    def _expect(self, kind: str, text: str = "") -> Token:
        token = self._cur
        if token.kind != kind or (text and token.text != text):
            wanted = text or kind
            raise ParseError(
                f"expected {wanted!r}, found {token.text or 'end of input'!r}",
                token.line,
                token.column,
            )
        return self._advance()

    def _at(self, kind: str, text: str = "") -> bool:
        token = self._cur
        return token.kind == kind and (not text or token.text == text)

    # -- grammar ----------------------------------------------------------

    def program(self) -> ast.Program:
        body = []
        while not self._at("EOF"):
            body.append(self.statement())
        return ast.Program(tuple(body))

    def block(self) -> Tuple[ast.Stmt, ...]:
        self._expect("OP", "{")
        body = []
        while not self._at("OP", "}"):
            if self._at("EOF"):
                raise ParseError("unterminated block", self._cur.line, self._cur.column)
            body.append(self.statement())
        self._expect("OP", "}")
        return tuple(body)

    def statement(self) -> ast.Stmt:
        token = self._cur
        if token.kind == "KEYWORD":
            if token.text == "skip":
                self._advance()
                self._expect("OP", ";")
                return ast.SkipStmt(token.line)
            if token.text == "break":
                self._advance()
                self._expect("OP", ";")
                return ast.BreakStmt(token.line)
            if token.text == "continue":
                self._advance()
                self._expect("OP", ";")
                return ast.ContinueStmt(token.line)
            if token.text == "if":
                self._advance()
                self._expect("OP", "(")
                cond = self.expression()
                self._expect("OP", ")")
                then_body = self.block()
                else_body: Tuple[ast.Stmt, ...] = ()
                if self._at("KEYWORD", "else"):
                    self._advance()
                    else_body = self.block()
                return ast.IfStmt(cond, then_body, else_body, token.line)
            if token.text == "while":
                self._advance()
                self._expect("OP", "(")
                cond = self.expression()
                self._expect("OP", ")")
                return ast.WhileStmt(cond, self.block(), token.line)
            if token.text == "do":
                self._advance()
                body = self.block()
                self._expect("KEYWORD", "while")
                self._expect("OP", "(")
                cond = self.expression()
                self._expect("OP", ")")
                self._expect("OP", ";")
                return ast.DoWhileStmt(cond, body, token.line)
            if token.text == "repeat":
                self._advance()
                self._expect("OP", "(")
                count = self.expression()
                self._expect("OP", ")")
                return ast.RepeatStmt(count, self.block(), token.line)
            raise ParseError(
                f"unexpected keyword {token.text!r}", token.line, token.column
            )
        if token.kind == "IDENT":
            name = self._advance().text
            self._expect("OP", "=")
            expr = self.expression()
            self._expect("OP", ";")
            return ast.AssignStmt(name, expr, token.line)
        raise ParseError(
            f"unexpected {token.text or 'end of input'!r}", token.line, token.column
        )

    def atom(self) -> Atom:
        token = self._cur
        if token.kind == "NUMBER":
            self._advance()
            return Const(int(token.text))
        if token.kind == "OP" and token.text == "-" and (
            self._tokens[self._pos + 1].kind == "NUMBER"
        ):
            self._advance()
            number = self._advance()
            return Const(-int(number.text))
        if token.kind == "IDENT":
            if token.text in _FUNCTIONS:
                raise ParseError(
                    f"{token.text!r} is a function, not a variable",
                    token.line,
                    token.column,
                )
            self._advance()
            return Var(token.text)
        raise ParseError(
            f"expected an operand, found {token.text or 'end of input'!r}",
            token.line,
            token.column,
        )

    def expression(self) -> Expr:
        token = self._cur
        # Function call forms.
        if token.kind == "IDENT" and token.text in _FUNCTIONS:
            name = self._advance().text
            self._expect("OP", "(")
            first = self.atom()
            if name == "abs":
                self._expect("OP", ")")
                return UnaryExpr("abs", first)
            self._expect("OP", ",")
            second = self.atom()
            self._expect("OP", ")")
            return BinExpr(name, first, second)
        # Unary operators (negative literals handled inside atom()).
        if token.kind == "OP" and token.text in _UNARY:
            if not (
                token.text == "-" and self._tokens[self._pos + 1].kind == "NUMBER"
            ):
                op = self._advance().text
                return UnaryExpr(op, self.atom())
        left = self.atom()
        if self._at("OP") and self._cur.text in _BINARY:
            op = self._advance().text
            right = self.atom()
            return BinExpr(op, left, right)
        return left


def parse_program(source: str) -> ast.Program:
    """Parse *source* into an AST; raises :class:`ParseError` on errors."""
    return _Parser(tokenize(source)).program()
