"""Tokeniser for the mini-language.

Token kinds: ``IDENT``, ``NUMBER``, ``OP`` (operators and punctuation),
``KEYWORD`` (``if``, ``else``, ``while``, ``do``, ``repeat``, ``skip``)
and the synthetic ``EOF``.  ``#`` starts a comment to end of line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.lang.errors import LexError

KEYWORDS = frozenset(
    {"if", "else", "while", "do", "repeat", "skip", "break", "continue"}
)

#: Multi-character operators, longest first so matching is greedy.
_OPERATORS = (
    "<<", ">>", "<=", ">=", "==", "!=",
    "+", "-", "*", "/", "%", "<", ">", "&", "|", "^", "~", "!",
    "=", ";", "(", ")", "{", "}", ",",
)


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    kind: str
    text: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.kind}({self.text!r})"


def tokenize(source: str) -> List[Token]:
    """Tokenise *source*; raises :class:`LexError` on bad characters."""
    tokens: List[Token] = []
    line, column = 1, 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if ch == "#":
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch.isdigit():
            start = i
            while i < n and source[i].isdigit():
                i += 1
            tokens.append(Token("NUMBER", source[start:i], line, column))
            column += i - start
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = "KEYWORD" if text in KEYWORDS else "IDENT"
            tokens.append(Token(kind, text, line, column))
            column += i - start
            continue
        for op in _OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("OP", op, line, column))
                i += len(op)
                column += len(op)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line, column)
    tokens.append(Token("EOF", "", line, column))
    return tokens
