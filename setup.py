"""Setuptools shim so legacy editable installs work without `wheel`.

`pip install -e . --no-build-isolation` falls back to this script on
environments (like the offline reproduction container) where the wheel
package is unavailable; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
