"""T2 — lifetime optimality: LCM's temporaries live shortest.

Two measurements of the paper's second theorem:

* the *ladder series*: a parameterised graph where the distance between
  the earliest and latest insertion points grows; BCM's temporary live
  range grows linearly with the ladder height while LCM's stays
  constant (the register-pressure argument in its purest form);
* a *random sweep*: total temporary live points and peak extra
  pressure under the three KRS variants, checking the proven ordering
  LCM <= ALCM <= BCM on every program.
"""

from repro.bench.figures import lifetime_ladder
from repro.bench.generators import GeneratorConfig, random_cfg
from repro.bench.harness import Table, record_report
from repro.core.lifetime import measure_lifetimes
from repro.core.pipeline import optimize

SEEDS = range(10)


def ladder_series():
    rows = []
    for rungs in (1, 2, 4, 8, 16):
        cfg = lifetime_ladder(rungs)
        spans = {}
        for strategy in ("bcm", "lcm"):
            result = optimize(cfg, strategy)
            spans[strategy] = measure_lifetimes(
                result.cfg, result.temps
            ).total_live_points
        rows.append((rungs, spans["bcm"], spans["lcm"]))
    return rows


def test_theorem_lifetime_ladder(benchmark):
    rows = benchmark(ladder_series)
    table = Table(
        ["ladder height", "BCM live pts", "LCM live pts"],
        title="T2: temporary live range vs distance between earliest and latest",
    )
    for rungs, bcm_span, lcm_span in rows:
        table.add_row(rungs, bcm_span, lcm_span)
        assert lcm_span < bcm_span
    record_report("T2 lifetime ladder (BCM linear, LCM constant)", table)

    # BCM grows with the ladder; LCM does not.
    lcm_spans = [row[2] for row in rows]
    bcm_spans = [row[1] for row in rows]
    assert len(set(lcm_spans)) == 1
    assert bcm_spans == sorted(bcm_spans) and bcm_spans[0] < bcm_spans[-1]


def random_sweep():
    totals = {"krs-lcm": 0, "krs-alcm": 0, "krs-bcm": 0}
    pressure = {"krs-lcm": 0, "krs-alcm": 0, "krs-bcm": 0}
    for seed in SEEDS:
        cfg = random_cfg(seed, GeneratorConfig(statements=10))
        spans = {}
        for strategy in totals:
            result = optimize(cfg, strategy)
            report = measure_lifetimes(result.cfg, result.temps)
            spans[strategy] = report.total_live_points
            totals[strategy] += report.total_live_points
            pressure[strategy] = max(pressure[strategy], report.max_pressure)
        assert spans["krs-lcm"] <= spans["krs-alcm"] <= spans["krs-bcm"], seed
    return totals, pressure


def test_theorem_lifetime_random_sweep(benchmark):
    totals, pressure = benchmark.pedantic(random_sweep, rounds=1, iterations=1)
    table = Table(
        ["variant", "total live pts", "peak extra pressure"],
        title=f"T2: temporary lifetimes over {len(list(SEEDS))} random programs",
    )
    for strategy in ("krs-bcm", "krs-alcm", "krs-lcm"):
        table.add_row(strategy, totals[strategy], pressure[strategy])
    record_report("T2 lifetime ordering on random programs", table)
    assert totals["krs-lcm"] <= totals["krs-alcm"] <= totals["krs-bcm"]
