"""C1b — scaling behaviour of the dataflow machinery.

The paper's complexity remarks say the analyses are ordinary
unidirectional bit-vector problems: linear-size vectors, few sweeps
when iterated in the right order.  This benchmark pins the observed
scaling on three axes:

* **graph size** — sweeps to convergence and transfer evaluations as
  the block count grows (round-robin in reverse postorder should
  converge in a small constant number of sweeps on reducible graphs);
* **solver choice** — the worklist solver's node visits against the
  round-robin solver's on the same problems (same fixpoints, checked);
* **universe width** — wall-clock of the full LCM pipeline as the
  number of candidate expressions grows (Python ints as bit vectors
  keep per-operation cost nearly flat until very wide universes).
"""

import pytest

from repro.analysis.anticipability import anticipability_problem
from repro.analysis.availability import availability_problem
from repro.analysis.local import compute_local_properties
from repro.bench.generators import GeneratorConfig, random_cfg
from repro.bench.harness import Table, record_report
from repro.core.pipeline import optimize
from repro.dataflow.solver import solve
from repro.ir.builder import CFGBuilder


def wide_universe_cfg(width: int):
    """Two straight-line blocks computing `width` distinct expressions,
    the second fully redundant — a maximal-width PRE instance."""
    b = CFGBuilder()
    instrs = [f"x{i} = a{i} + b{i}" for i in range(width)]
    b.block("first", *instrs).jump("second")
    b.block("second", *[f"y{i} = a{i} + b{i}" for i in range(width)]).to_exit()
    return b.build()


def test_scaling_sweeps_vs_size(benchmark):
    def sweep():
        rows = []
        for statements in (10, 20, 40, 80, 160):
            cfg = random_cfg(statements, GeneratorConfig(statements=statements))
            local = compute_local_properties(cfg)
            av = solve(cfg, availability_problem(local))
            ant = solve(cfg, anticipability_problem(local))
            rows.append(
                (
                    statements,
                    len(cfg),
                    local.universe.width,
                    av.stats.sweeps,
                    ant.stats.sweeps,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table(
        ["statements", "blocks", "exprs", "avail sweeps", "ant sweeps"],
        title="C1b: round-robin sweeps to convergence vs graph size",
    )
    for row in rows:
        table.add_row(*row)
    record_report("C1b sweep counts", table)
    # The textbook bound: a handful of sweeps regardless of size.
    assert all(av <= 6 and ant <= 6 for _, _, _, av, ant in rows)


def test_scaling_worklist_vs_round_robin(benchmark):
    def sweep():
        rows = []
        for statements in (20, 80):
            cfg = random_cfg(statements + 1, GeneratorConfig(statements=statements))
            local = compute_local_properties(cfg)
            problem = availability_problem(local)
            rr = solve(cfg, problem)
            wl = solve(cfg, problem, strategy="worklist")
            assert rr.inof == wl.inof and rr.outof == wl.outof
            rows.append(
                (statements, len(cfg), rr.stats.node_visits, wl.stats.node_visits)
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table(
        ["statements", "blocks", "round-robin visits", "worklist visits"],
        title="C1b: transfer-function evaluations, round-robin vs worklist",
    )
    for row in rows:
        table.add_row(*row)
    record_report("C1b solver comparison (identical fixpoints)", table)


@pytest.mark.parametrize("width", [8, 64, 256])
def test_scaling_universe_width(benchmark, width):
    cfg = wide_universe_cfg(width)
    result = benchmark(optimize, cfg, "lcm")
    # Every one of the `width` expressions is eliminated in `second`.
    deleted = sum(len(p.delete_blocks) for p in result.placements)
    assert deleted == width
