"""C1b — scaling behaviour of the dataflow machinery.

The paper's complexity remarks say the analyses are ordinary
unidirectional bit-vector problems: linear-size vectors, few sweeps
when iterated in the right order.  This benchmark pins the observed
scaling on three axes:

* **graph size** — sweeps to convergence and transfer evaluations as
  the block count grows (round-robin in reverse postorder should
  converge in a small constant number of sweeps on reducible graphs);
* **solver choice** — the worklist solver's node visits against the
  round-robin solver's on the same problems (same fixpoints, checked);
* **universe width** — wall-clock of the full LCM pipeline as the
  number of candidate expressions grows (Python ints as bit vectors
  keep per-operation cost nearly flat until very wide universes);
* **solver backend** — wall-clock of the dense integer backend against
  the counted reference solver on the paper's four-analysis pipeline,
  with bit-identical fixpoints asserted and the measured ratio written
  to ``BENCH_solver.json`` (the repo's recorded perf trajectory);
* **fused plan** — wall-clock of the fused single-module LCM cascade
  (:func:`repro.dataflow.fused.run_fused_lcm`) against the staged dense
  quartet on the same graph, both arms with warm compiled plans,
  bit-identical bundles asserted and the ratio recorded to the
  ``fused`` block of ``BENCH_solver.json``.
"""

import json
import time

import pytest

from repro.analysis.anticipability import anticipability_problem
from repro.analysis.availability import availability_problem
from repro.analysis.local import compute_local_properties
from repro.bench.generators import GeneratorConfig, random_cfg
from repro.bench.harness import Table, record_report, write_json_report
from repro.core.krs import delay_problem, isolation_problem
from repro.core.lcm import run_staged_lcm
from repro.core.pipeline import optimize
from repro.dataflow.dense import compile_plan
from repro.dataflow.fused import compile_lcm_plan, run_fused_lcm
from repro.dataflow.solver import solve
from repro.ir.builder import CFGBuilder
from repro.obs.trace import activate, deactivate

SOLVER_REPORT = "BENCH_solver.json"


def _merge_solver_report(updates):
    """Read-modify-write ``BENCH_solver.json`` so the dense and fused
    benchmarks can each update their own keys without clobbering the
    other's numbers (the two tests run in either order, or alone)."""
    data = {}
    try:
        with open(SOLVER_REPORT) as handle:
            previous = json.load(handle)
        if (
            isinstance(previous, dict)
            and previous.get("format") == "repro-solver-bench"
        ):
            data = previous
    except (OSError, ValueError):
        pass
    data.update(updates)
    return write_json_report(SOLVER_REPORT, data)


def wide_universe_cfg(width: int):
    """Two straight-line blocks computing `width` distinct expressions,
    the second fully redundant — a maximal-width PRE instance."""
    b = CFGBuilder()
    instrs = [f"x{i} = a{i} + b{i}" for i in range(width)]
    b.block("first", *instrs).jump("second")
    b.block("second", *[f"y{i} = a{i} + b{i}" for i in range(width)]).to_exit()
    return b.build()


def test_scaling_sweeps_vs_size(benchmark):
    def sweep():
        rows = []
        for statements in (10, 20, 40, 80, 160):
            cfg = random_cfg(statements, GeneratorConfig(statements=statements))
            local = compute_local_properties(cfg)
            av = solve(cfg, availability_problem(local))
            ant = solve(cfg, anticipability_problem(local))
            rows.append(
                (
                    statements,
                    len(cfg),
                    local.universe.width,
                    av.stats.sweeps,
                    ant.stats.sweeps,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table(
        ["statements", "blocks", "exprs", "avail sweeps", "ant sweeps"],
        title="C1b: round-robin sweeps to convergence vs graph size",
    )
    for row in rows:
        table.add_row(*row)
    record_report("C1b sweep counts", table)
    # The textbook bound: a handful of sweeps regardless of size.
    assert all(av <= 6 and ant <= 6 for _, _, _, av, ant in rows)


def test_scaling_worklist_vs_round_robin(benchmark):
    def sweep():
        rows = []
        for statements in (20, 80):
            cfg = random_cfg(statements + 1, GeneratorConfig(statements=statements))
            local = compute_local_properties(cfg)
            problem = availability_problem(local)
            rr = solve(cfg, problem)
            wl = solve(cfg, problem, strategy="worklist")
            assert rr.inof == wl.inof and rr.outof == wl.outof
            rows.append(
                (statements, len(cfg), rr.stats.node_visits, wl.stats.node_visits)
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table(
        ["statements", "blocks", "round-robin visits", "worklist visits"],
        title="C1b: transfer-function evaluations, round-robin vs worklist",
    )
    for row in rows:
        table.add_row(*row)
    record_report("C1b solver comparison (identical fixpoints)", table)


@pytest.mark.parametrize("width", [8, 64, 256])
def test_scaling_universe_width(benchmark, width):
    cfg = wide_universe_cfg(width)
    result = benchmark(optimize, cfg, "lcm")
    # Every one of the `width` expressions is eliminated in `second`.
    deleted = sum(len(p.delete_blocks) for p in result.placements)
    assert deleted == width


def dense_bench_cfg(blocks: int, width: int):
    """A loopy chain of *blocks* blocks over a *width*-expression universe.

    Expressions are spread across the chain, every seventh block kills
    an operand (so transparency varies), and every fifth block branches
    back five blocks — the back edges force the all-paths solves through
    many sweeps, which is where solver cost actually lives.
    """
    b = CFGBuilder()
    b.entry_to("b0")
    e = 0
    per = max(1, (width + blocks - 1) // blocks)
    for i in range(blocks):
        instrs = []
        for _ in range(per):
            j = e % width
            instrs.append(f"t{j} = a{j} + b{j}")
            e += 1
        if i % 7 == 3:
            instrs.append(f"a{(i * 13) % width} = {i}")
        handle = b.block(f"b{i}", *instrs)
        if i + 1 == blocks:
            handle.to_exit()
        elif i % 5 == 4 and i > 5:
            handle.branch("p", f"b{i+1}", f"b{i-5}")
        else:
            handle.jump(f"b{i+1}")
    return b.build()


def test_scaling_dense_vs_reference(benchmark):
    """C1b: dense backend vs reference solver, four-analysis pipeline.

    Builds the paper's four dataflow problems (anticipability,
    availability, delayability, isolation) on one large graph, solves
    each with both backends, asserts bit-identical fixpoints and sweep
    counts, and records the wall-clock ratio to ``BENCH_solver.json``.
    The equivalence assertions are the gate; the speedup is recorded,
    not asserted, so the benchmark cannot flake on a loaded machine.
    """
    blocks, width = 200, 128
    cfg = dense_bench_cfg(blocks, width)
    local = compute_local_properties(cfg)
    plan = compile_plan(cfg)

    # Untimed setup: delay needs EARLIEST and isolation LATEST; any
    # fixed per-label vectors exercise the solver identically, so use
    # the natural down-safe-but-not-up-safe frontier.
    ant = solve(cfg, anticipability_problem(local), plan=plan)
    av = solve(cfg, availability_problem(local), plan=plan)
    earliest = {n: ant.inof[n] - av.inof[n] for n in cfg.labels}
    latest = {n: earliest[n] & local.antloc[n] for n in cfg.labels}
    problems = [
        anticipability_problem(local),
        availability_problem(local),
        delay_problem(local, earliest),
        isolation_problem(local, latest),
    ]

    def measure(strategy, rounds=5):
        best = float("inf")
        solutions = None
        for _ in range(rounds):
            start = time.perf_counter()
            solutions = [
                solve(cfg, p, strategy=strategy, plan=plan) for p in problems
            ]
            best = min(best, time.perf_counter() - start)
        return best, solutions

    def run():
        # Suspend the suite-wide tracer so both arms time the bare
        # solver, not span bookkeeping or the reference op counter.
        tracer = deactivate()
        try:
            ref_time, ref_solutions = measure("round-robin")
            dense_time, dense_solutions = measure("dense")
        finally:
            if tracer is not None:
                activate(tracer)
        return ref_time, ref_solutions, dense_time, dense_solutions

    ref_time, ref_solutions, dense_time, dense_solutions = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    for ref, dense in zip(ref_solutions, dense_solutions):
        assert dense.stats.backend == "dense"
        assert ref.inof == dense.inof and ref.outof == dense.outof
        assert ref.stats.sweeps == dense.stats.sweeps
        assert ref.stats.node_visits == dense.stats.node_visits

    speedup = ref_time / dense_time if dense_time else float("inf")
    table = Table(
        ["blocks", "width", "problems", "reference ms", "dense ms", "speedup"],
        title="C1b: dense integer backend vs reference solver",
    )
    table.add_row(
        len(cfg), width, len(problems), ref_time * 1e3, dense_time * 1e3, speedup
    )
    record_report("C1b dense backend speedup (identical fixpoints)", table)

    _merge_solver_report(
        {
            "format": "repro-solver-bench",
            "version": 1,
            "blocks": len(cfg),
            "width": width,
            "problems": [p.name for p in problems],
            "sweeps": [s.stats.sweeps for s in dense_solutions],
            "reference_ms": round(ref_time * 1e3, 3),
            "dense_ms": round(dense_time * 1e3, 3),
            "speedup": round(speedup, 2),
            "equivalent": True,
        }
    )


def test_scaling_fused_vs_staged(benchmark):
    """C1b: fused LCM plan vs the staged dense quartet.

    Times the complete earliest/later/insert/replace pipeline two ways
    on the same 200-block / 128-wide graph: the staged path (two dense
    solves + the BitVector LATER fixpoint,
    :func:`repro.core.lcm.run_staged_lcm`) against the fused
    single-module cascade (:func:`repro.dataflow.fused.run_fused_lcm`).
    Both arms get warm compiled plans — exactly the steady state behind
    an :class:`~repro.obs.manager.AnalysisManager`, which caches both
    plan kinds by content fingerprint — and shared precomputed local
    properties, so the measured ratio is the quartet pipeline itself.
    Bit-identical bundles (facts *and* sweep statistics) are the gate;
    the speedup lands in the ``fused`` block of ``BENCH_solver.json``.
    """
    blocks, width = 200, 128
    cfg = dense_bench_cfg(blocks, width)
    local = compute_local_properties(cfg)
    dense_plan = compile_plan(cfg)
    fused_plan = compile_lcm_plan(cfg, local, graph=dense_plan)

    def measure(run_once, rounds=5):
        best = float("inf")
        analysis = None
        for _ in range(rounds):
            start = time.perf_counter()
            analysis = run_once()
            best = min(best, time.perf_counter() - start)
        return best, analysis

    def run():
        # Suspend the suite-wide tracer so both arms time the bare
        # pipeline, not span bookkeeping.
        tracer = deactivate()
        try:
            staged_time, staged = measure(
                lambda: run_staged_lcm(cfg, local, plan=dense_plan)
            )
            fused_time, fused = measure(
                lambda: run_fused_lcm(cfg, fused_plan, local)
            )
        finally:
            if tracer is not None:
                activate(tracer)
        return staged_time, staged, fused_time, fused

    staged_time, staged, fused_time, fused = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    for field in (
        "antin", "antout", "avin", "avout",
        "earliest", "laterin", "later", "insert", "delete",
    ):
        assert getattr(staged, field) == getattr(fused, field), field
    assert staged.stats.sweeps == fused.stats.sweeps
    assert staged.stats.node_visits == fused.stats.node_visits
    assert fused.stats.backend == "fused"

    speedup = staged_time / fused_time if fused_time else float("inf")
    table = Table(
        ["blocks", "width", "sweeps", "staged ms", "fused ms", "speedup"],
        title="C1b: fused LCM plan vs staged dense quartet",
    )
    table.add_row(
        len(cfg), width, fused.stats.sweeps,
        staged_time * 1e3, fused_time * 1e3, speedup,
    )
    record_report("C1b fused plan speedup (identical bundles)", table)

    _merge_solver_report(
        {
            "fused": {
                "blocks": len(cfg),
                "width": width,
                "sweeps": fused.stats.sweeps,
                "node_visits": fused.stats.node_visits,
                "staged_ms": round(staged_time * 1e3, 3),
                "fused_ms": round(fused_time * 1e3, 3),
                "speedup": round(speedup, 2),
                "equivalent": True,
            }
        }
    )
