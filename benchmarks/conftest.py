"""Benchmark-suite plumbing: session tracing + end-of-run report tables.

Each benchmark module regenerates one table/figure/claim of the paper
(see DESIGN.md's experiment index) and records the rendered rows via
:func:`repro.bench.harness.record_report`; the terminal-summary hook
prints them after pytest's own output so they survive capturing.

The whole session additionally runs under an installed
:class:`repro.obs.trace.Tracer`, and the collected trace (per-analysis
wall time, sweep counts, bit-vector op tallies) is persisted as
``BENCH_TRACE.json`` in the invocation directory — CI asserts that the
file exists and is valid JSON.
"""

import os

from repro.bench.harness import drain_reports, write_trace_summary
from repro.obs.trace import Tracer, activate, deactivate

TRACE_FILENAME = "BENCH_TRACE.json"


def pytest_sessionstart(session):
    activate(Tracer())


def pytest_sessionfinish(session, exitstatus):
    tracer = deactivate()
    if tracer is None or not tracer.events:
        return
    path = os.path.join(str(session.config.invocation_params.dir),
                        TRACE_FILENAME)
    try:
        write_trace_summary(path, tracer, extra={"exitstatus": int(exitstatus)})
    except OSError:
        pass  # read-only invocation dir: the trace is best-effort


def pytest_terminal_summary(terminalreporter):
    reports = drain_reports()
    if not reports:
        return
    terminalreporter.write_sep("=", "paper reproduction reports")
    for report in reports:
        terminalreporter.write_line("")
        for line in report.splitlines():
            terminalreporter.write_line(line)
