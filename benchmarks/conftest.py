"""Benchmark-suite plumbing: print recorded report tables at the end.

Each benchmark module regenerates one table/figure/claim of the paper
(see DESIGN.md's experiment index) and records the rendered rows via
:func:`repro.bench.harness.record_report`; this hook prints them after
pytest's own benchmark timing table so they survive output capturing.
"""

from repro.bench.harness import drain_reports


def pytest_terminal_summary(terminalreporter):
    reports = drain_reports()
    if not reports:
        return
    terminalreporter.write_sep("=", "paper reproduction reports")
    for report in reports:
        terminalreporter.write_line("")
        for line in report.splitlines():
            terminalreporter.write_line(line)
