"""Beyond the paper — what a full pass pipeline adds around PRE.

LCM leaves residue by design: generator copies (``t = e; x = t``),
split blocks, and reads through copies that downstream passes can
tighten.  This benchmark measures the standard pipeline
(canonicalise → constant-fold → LCSE → LCM → {copyprop, constfold,
DCE, simplify}*) against LCM alone:

* static size (instructions, blocks) — the cleanup shrinks both;
* dynamic evaluations — never worse than LCM alone (the cleanup trio
  is evaluation-neutral or better, e.g. canonicalisation exposes
  commuted redundancies LCM alone misses);
* whole-program register pressure.
"""

from repro.bench.figures import FIGURES
from repro.bench.generators import GeneratorConfig, random_cfg
from repro.bench.harness import Table, record_report
from repro.bench.metrics import dynamic_evaluations
from repro.core.lifetime import program_pressure
from repro.core.pipeline import optimize
from repro.passes import standard_pipeline

SEEDS = range(6)


def instruction_count(cfg):
    return sum(len(block.instrs) for block in cfg)


def workloads():
    graphs = [(name, fn()) for name, fn in sorted(FIGURES.items())]
    graphs += [
        (f"random-{seed}", random_cfg(seed, GeneratorConfig(statements=12)))
        for seed in SEEDS
    ]
    return graphs


def sweep():
    rows = []
    for name, cfg in workloads():
        lcm = optimize(cfg, "lcm")
        full = standard_pipeline(cfg)
        lcm_dyn, _ = dynamic_evaluations(lcm.cfg, runs=10, seed=23, env_source=cfg)
        full_dyn, _ = dynamic_evaluations(full.cfg, runs=10, seed=23, env_source=cfg)
        rows.append(
            (
                name,
                instruction_count(lcm.cfg),
                instruction_count(full.cfg),
                lcm_dyn,
                full_dyn,
                program_pressure(lcm.cfg)[0],
                program_pressure(full.cfg)[0],
            )
        )
    return rows


def test_pipeline_vs_lcm_alone(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table(
        ["workload", "instrs lcm", "instrs pipe", "dyn lcm", "dyn pipe",
         "pressure lcm", "pressure pipe"],
        title="full pass pipeline vs LCM alone",
    )
    total_lcm_dyn = total_pipe_dyn = 0
    for row in rows:
        table.add_row(*row)
        total_lcm_dyn += row[3]
        total_pipe_dyn += row[4]
    record_report("Pipeline cleanup around PRE", table)

    # The cleanup never costs evaluations in aggregate, and typically
    # shrinks the program text.
    assert total_pipe_dyn <= total_lcm_dyn
    assert sum(r[2] for r in rows) <= sum(r[1] for r in rows)
