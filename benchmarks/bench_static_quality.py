"""C2 — static redundancy elimination quality across strategies.

For each workload (the reconstructed figures plus random programs),
counts the operator-expression occurrences in the program text after
each strategy.  Static size is *not* what LCM optimises — insertions
can offset deletions — but the paper's qualitative claims show up:
GCSE <= MR ~= LCM in eliminated occurrences, and LCM never bloats the
program the way busy placement can.
"""

from repro.bench.figures import FIGURES
from repro.bench.generators import GeneratorConfig, random_cfg
from repro.bench.harness import Table, record_report
from repro.core.pipeline import optimize

STRATEGIES = ("none", "gcse", "mr", "bcm", "lcm")
SEEDS = range(6)


def workloads():
    graphs = [(name, fn()) for name, fn in sorted(FIGURES.items())]
    graphs += [
        (f"random-{seed}", random_cfg(seed, GeneratorConfig(statements=12)))
        for seed in SEEDS
    ]
    return graphs


def sweep():
    rows = []
    for name, cfg in workloads():
        counts = {}
        for strategy in STRATEGIES:
            counts[strategy] = optimize(cfg, strategy).cfg.static_computation_count()
        rows.append((name, counts))
    return rows


def test_static_quality(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table(
        ["workload", *STRATEGIES],
        title="C2: static operator-expression occurrences after each strategy",
    )
    totals = {s: 0 for s in STRATEGIES}
    for name, counts in rows:
        table.add_row(name, *(counts[s] for s in STRATEGIES))
        for s in STRATEGIES:
            totals[s] += counts[s]
    table.add_row("TOTAL", *(totals[s] for s in STRATEGIES))
    record_report("C2 static computation counts", table)

    # GCSE only deletes, so it can never exceed the original statically.
    assert totals["gcse"] <= totals["none"]
