#!/usr/bin/env python
"""Post-run assertions for the CI smoke steps, in one reviewable place.

Every smoke step in ``.github/workflows/ci.yml`` follows the same
shape: run a ``repro`` command (or a benchmark) that writes a JSON
artifact, then assert the artifact's invariants.  The assertions used
to live as inline ``python - <<EOF`` heredocs scattered through the
workflow — unlintable, untestable, and easy to drift.  They now live
here as named checks::

    PYTHONPATH=src python benchmarks/ci_checks.py batch-report /tmp/b.json
    PYTHONPATH=src python benchmarks/ci_checks.py shard-merge full.json merged.json
    PYTHONPATH=src python benchmarks/ci_checks.py differential /tmp/fuzz.json 200

Each check prints a one-line ``<name> ok: ...`` summary on success and
raises ``SystemExit`` with a reason on failure (so the CI step fails
loudly).  The fuzz checks additionally append a human-readable section
to ``$GITHUB_STEP_SUMMARY`` when the variable is set — divergent seeds
land in the job summary with a copy-pasteable reproduction command.

Run ``python benchmarks/ci_checks.py --list`` for the full menu.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Callable, Dict, List


def _load(path: str) -> dict:
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot read artifact {path}: {exc}")


def _step_summary(lines: List[str]) -> None:
    """Append *lines* to the GitHub job summary, when running in CI."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    with open(path, "a") as handle:
        handle.write("\n".join(lines) + "\n")


# -- benchmark artifacts ------------------------------------------------------


def check_bench_trace(args: List[str]) -> None:
    """BENCH_TRACE.json: the pipeline benchmark produced a real trace."""
    data = _load(args[0] if args else "BENCH_TRACE.json")
    assert data["format"] == "repro-bench-trace", data.get("format")
    trace = data["trace"]
    assert trace["format"] == "repro-trace" and trace["events"], "empty trace"
    print(f"trace ok: {len(trace['events'])} events,",
          f"{len(trace['summary'])} summary entries")


def check_solver_bench(args: List[str]) -> None:
    """BENCH_solver.json: dense solver equivalent to the reference.

    Gate on equivalence only; the speedup is recorded, not asserted,
    so a loaded runner cannot flake the build.
    """
    data = _load(args[0] if args else "BENCH_solver.json")
    assert data["format"] == "repro-solver-bench", data.get("format")
    assert data["equivalent"] is True, data
    assert data["blocks"] >= 200 and data["width"] >= 128, data
    print(f"solver bench ok: {data['blocks']} blocks,",
          f"width {data['width']}, {data['speedup']}x dense speedup")


def check_fused(args: List[str]) -> None:
    """BENCH_solver.json: the fused plan matched the staged quartet."""
    data = _load(args[0] if args else "BENCH_solver.json")
    fused = data["fused"]
    assert fused["equivalent"] is True, fused
    assert fused["blocks"] >= 200 and fused["width"] >= 128, fused
    print(f"fused plan ok: {fused['blocks']} blocks,",
          f"width {fused['width']}, {fused['speedup']}x vs staged")


def check_bench_batch(args: List[str]) -> None:
    """BENCH_BATCH.json: liveness solve budget held during the bench."""
    data = _load(args[0] if args else "BENCH_BATCH.json")
    live = data["liveness"]
    per_item = live["solves_per_item"]
    assert per_item <= 2.0, live
    assert live["full_solves"] <= 2 * data["items_total"], live
    print(f"bench batch ok: {live['full_solves']} full solves,",
          f"{live['incr_updates']} incremental updates,",
          f"{per_item:.2f} solves/item")


def check_rewrite(args: List[str]) -> None:
    """BENCH_BATCH.json: fingerprint hash budget held in the rewrite run."""
    data = _load(args[0] if args else "BENCH_BATCH.json")
    assert "liveness" in data, sorted(data)  # merge kept earlier keys
    rewrite = data["rewrite"]
    fp = rewrite["fingerprints"]["pipeline_dirty"]
    assert fp["full_per_item"] <= 2.0, fp
    assert rewrite["fingerprints"]["optimize"]["full"] <= \
        2 * rewrite["items"], rewrite
    print(f"rewrite ok: {rewrite['items']} items,",
          f"{fp['full']} full + {fp['incr']} incr hashes,",
          f"{rewrite['speedup_vs_seed']['pipeline']:.2f}x pipeline,",
          f"{rewrite['speedup_vs_seed']['optimize']:.2f}x optimize",
          "vs seed")


# -- batch reports ------------------------------------------------------------


def check_batch_report(args: List[str]) -> None:
    """A plain batch report: schema v3, all ok, liveness budget held."""
    data = _load(args[0] if args else "/tmp/batch.json")
    assert data["format"] == "repro-batch-report", data.get("format")
    assert data["version"] == 3, data.get("version")
    assert data["tally"] == {"ok": data["items_total"]}, data["tally"]
    assert data["items_total"] >= 5
    assert all(i["status"] == "ok" and i["fingerprint"]
               for i in data["items"])
    # The incremental liveness engine solves at most once per optimize
    # and patches between edits; before it, this corpus recorded ~14
    # full solves per item.
    solves = data["summary"].get("dataflow.solve[liveness]", {})
    per_item = solves.get("count", 0) / data["items_total"]
    assert per_item <= 2.0, (
        f"{solves.get('count')} liveness solves over "
        f"{data['items_total']} items — incremental engine regressed")
    print(f"batch ok: {data['items_total']} items,",
          f"{data['wall_time_s']:.2f}s wall, jobs={data['jobs']},",
          f"{per_item:.1f} liveness solves/item")


def check_stream_parity(args: List[str]) -> None:
    """The NDJSON stream collects to the same report as a plain run."""
    from repro.batch import stable_report_json

    stream_path = args[0] if args else "/tmp/batch-stream.ndjson"
    plain_path = args[1] if len(args) > 1 else "/tmp/batch-plain.json"
    with open(stream_path) as handle:
        lines = [json.loads(line) for line in handle if line.strip()]
    report, item_lines = lines[-1], lines[:-1]
    assert report["format"] == "repro-batch-report", "missing report line"
    # One NDJSON line per item, each index exactly once.
    assert len(item_lines) == report["items_total"], len(item_lines)
    assert sorted(line["index"] for line in item_lines) == list(
        range(report["items_total"]))
    assert all(line["status"] == "ok" for line in item_lines)
    plain = _load(plain_path)
    assert stable_report_json(report) == stable_report_json(plain), \
        "stream/plain diverge"
    print(f"stream ok: {len(item_lines)} NDJSON lines, parity holds")


def check_warm_store(args: List[str]) -> None:
    """Cold run populates the store; warm run reads it, solves nothing."""
    cold = _load(args[0] if args else "/tmp/batch-cold.json")
    warm = _load(args[1] if len(args) > 1 else "/tmp/batch-warm.json")
    assert cold["cache"]["disk_writes"] > 0, cold["cache"]
    assert cold["store"]["entries"] > 0, cold["store"]
    assert warm["cache"]["disk_hits"] > 0, warm["cache"]
    assert warm["cache"]["misses"] == 0, warm["cache"]
    assert warm["cache"]["disk_writes"] == 0, warm["cache"]

    def stable(report):
        return [(i["name"], i["status"], i["fingerprint"],
                 i["static_before"], i["static_after"])
                for i in report["items"]]

    assert stable(warm) == stable(cold), "warm store changed results"
    print(f"warm store ok: {warm['cache']['disk_hits']} disk hits,",
          f"{warm['store']['entries']} entries")


def check_shard_merge(args: List[str]) -> None:
    """Sharded runs recombine byte-identically to the unsharded run.

    Args: ``FULL.json MERGED.json SHARD1.json [SHARD2.json ...]``.
    The shard reports are checked for disjoint, complete coverage and
    correct shard blocks; the merged report must match the unsharded
    one exactly once timing fields are set aside.
    """
    from repro.batch import stable_report_json

    if len(args) < 3:
        raise SystemExit(
            "shard-merge needs FULL.json MERGED.json SHARD1.json ...")
    full = _load(args[0])
    merged = _load(args[1])
    shards = [_load(path) for path in args[2:]]
    total = len(shards)
    for i, shard in enumerate(shards):
        block = shard.get("shard")
        assert block == {
            "index": i + 1, "total": total,
            "universe": full["items_total"],
        }, (i, block)
    counted = sum(s["items_total"] for s in shards)
    assert counted == full["items_total"], (counted, full["items_total"])
    indexes = sorted(
        item["index"] for shard in shards for item in shard["items"])
    assert indexes == list(range(full["items_total"])), "shards overlap"
    assert "shard" not in merged, "merge must drop the shard block"
    assert stable_report_json(merged) == stable_report_json(full), \
        "merged shard reports != unsharded report"
    sizes = ", ".join(str(s["items_total"]) for s in shards)
    print(f"shard-merge ok: {total} shards ({sizes} items),",
          f"byte-identical to the {full['items_total']}-item run")


# -- differential fuzzing -----------------------------------------------------


def _divergence_lines(data: dict) -> List[str]:
    """Job-summary rows for every divergent item in a fuzz report."""
    lines = []
    for item in data["items"]:
        if item["status"] != "divergent":
            continue
        diff = item.get("differential", {})
        seed = diff.get("seed")
        config = diff.get("generator", {})
        first = diff["divergences"][0] if diff.get("divergences") else {}
        lines.append(
            f"| `{item['name']}` | {seed} | "
            f"stmts={config.get('statements')} "
            f"depth={config.get('max_depth')} "
            f"loop={config.get('loop_probability')} "
            f"branch={config.get('branch_probability')} | "
            f"{first.get('detail', item['message'])} |")
    return lines


def check_differential(args: List[str]) -> None:
    """A differential-fuzz report over a clean pass came back green.

    Args: ``REPORT.json [MIN_ITEMS]``.  Every item must be ``ok`` with
    an empty ``divergences`` list; a divergence prints the minting
    seed and generator config into the job summary, with the
    reproduction command.
    """
    data = _load(args[0] if args else "/tmp/fuzz.json")
    minimum = int(args[1]) if len(args) > 1 else 200
    assert data["version"] == 3, data.get("version")
    assert data["items_total"] >= minimum, (
        f"fuzz corpus shrank: {data['items_total']} < {minimum} items")
    divergent = [i for i in data["items"] if i["status"] == "divergent"]
    compared = 0
    for item in data["items"]:
        diff = item.get("differential")
        if item["status"] in ("ok", "divergent"):
            assert diff is not None, f"{item['name']}: no differential block"
            compared += diff["compared"]
    if divergent:
        rows = _divergence_lines(data)
        _step_summary([
            "## Differential fuzz: DIVERGENCES FOUND",
            "",
            "| item | seed | generator config | first divergence |",
            "|---|---|---|---|",
            *rows,
            "",
            "Reproduce one locally:",
            "```",
            "repro corpus generate --seed-range SEED:SEED+1 --out /tmp/c",
            "repro batch /tmp/c --differential --emit json",
            "```",
        ])
        names = ", ".join(i["name"] for i in divergent[:5])
        raise SystemExit(
            f"differential fuzz found {len(divergent)} miscompiled "
            f"program(s): {names} — seeds and configs in the job summary")
    assert data["tally"] == {"ok": data["items_total"]}, data["tally"]
    _step_summary([
        "## Differential fuzz: green",
        "",
        f"{data['items_total']} generated programs, {compared} "
        f"before/after executions compared, 0 divergences.",
    ])
    print(f"differential ok: {data['items_total']} programs,",
          f"{compared} runs compared, 0 divergences")


def check_differential_injection(args: List[str]) -> None:
    """The fuzzer caught the deliberately miscompiled pass.

    Args: ``REPORT.json``.  The report ran ``miscompile-dce`` (a pass
    that silently drops a live store); the check demands divergent
    records and that each carries the minting seed + generator config
    — the reproduction contract the job summary relies on.
    """
    data = _load(args[0] if args else "/tmp/fuzz-injected.json")
    divergent = [i for i in data["items"] if i["status"] == "divergent"]
    assert divergent, (
        "fault injection not detected: miscompile-dce ran but no item "
        "came back divergent — the differential oracle is broken")
    for item in divergent:
        diff = item["differential"]
        assert diff["divergences"], item["name"]
        assert isinstance(diff.get("seed"), int), (
            f"{item['name']}: divergent record lost its minting seed")
        assert diff.get("generator", {}).get("statements"), (
            f"{item['name']}: divergent record lost its generator config")
        first = diff["divergences"][0]
        assert "env" in first and "detail" in first, first
    seeds = [i["differential"]["seed"] for i in divergent]
    _step_summary([
        "## Differential fuzz: fault injection caught",
        "",
        f"`miscompile-dce` flagged divergent on {len(divergent)} of "
        f"{data['items_total']} programs (seeds: "
        f"{', '.join(map(str, seeds[:10]))}"
        + ("…" if len(seeds) > 10 else "") + ").",
    ])
    print(f"differential-injection ok: {len(divergent)}/"
          f"{data['items_total']} programs flagged divergent,",
          f"seeds attached")


# -- self-contained smokes (run + assert) -------------------------------------


def check_kill_resilience(args: List[str]) -> None:
    """Hard worker isolation: a C-call hang dies by parent SIGKILL."""
    import multiprocessing

    from repro.batch import (
        BatchConfig,
        WorkItem,
        items_from_dir,
        run_batch,
    )

    corpus = args[0] if args else "tests/corpus"
    # A real corpus plus one item that hangs inside a single C call --
    # immune to SIGALRM; only the supervisor's hard deadline (SIGKILL
    # from the parent) can end it.
    items = items_from_dir(corpus)
    items.append(
        WorkItem("spin-c", "call", "repro.batch.testing:busy_loop_c"))
    report = run_batch(items, BatchConfig(jobs=2, timeout=2.0, grace=1.0))

    assert report.tally.get("timeout") == 1, report.tally
    assert report.tally.get("ok") == len(items) - 1, report.tally
    spin = next(i for i in report.items if i.name == "spin-c")
    assert spin.status == "timeout" and "killed" in spin.message, (
        spin.status, spin.message)
    assert report.supervisor["batch.item.killed"] == 1, report.supervisor
    assert report.supervisor["batch.worker.respawn"] >= 1, report.supervisor
    # The supervisor must have reaped every worker it ever spawned.
    assert not multiprocessing.active_children(), "orphan workers"
    print("kill-resilience ok:", report.tally, report.supervisor)


def check_serve(args: List[str]) -> None:
    """The serve daemon answers a cold/warm pair and shuts down clean."""
    import subprocess

    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--jobs", "1"],
        stdout=subprocess.PIPE,
    )
    try:
        ready = json.loads(proc.stdout.readline())
        assert ready["type"] == "listening", ready

        from repro.service import ServeClient

        src = "x = a + b; if (p) { y = a + b; } z = a + b;"
        with ServeClient(ready["host"], ready["port"], 60) as client:
            cold = client.optimize(src)
            warm = client.optimize(src)
            stats = client.stats()
            client.shutdown()
        assert cold["status"] == "ok" and cold["cached"] is False
        assert warm["status"] == "ok" and warm["cached"] is True
        assert warm["fingerprint"] == cold["fingerprint"]
        counters = stats["counters"]
        assert counters["serve.cache.hit"] == 1, counters
        assert counters["serve.pool.dispatch"] == 1, counters
        assert stats["protocol"] == "repro-serve", stats
        # The shutdown op must end the daemon cleanly.
        assert proc.wait(timeout=30) == 0, proc.returncode
        print("serve ok:", counters)
    finally:
        proc.kill()


CHECKS: Dict[str, Callable[[List[str]], None]] = {
    "bench-trace": check_bench_trace,
    "solver-bench": check_solver_bench,
    "fused": check_fused,
    "bench-batch": check_bench_batch,
    "rewrite": check_rewrite,
    "batch-report": check_batch_report,
    "stream-parity": check_stream_parity,
    "warm-store": check_warm_store,
    "shard-merge": check_shard_merge,
    "differential": check_differential,
    "differential-injection": check_differential_injection,
    "kill-resilience": check_kill_resilience,
    "serve": check_serve,
}


def main(argv: List[str]) -> int:
    if not argv or argv[0] in ("--list", "-l"):
        for name, fn in sorted(CHECKS.items()):
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:24s} {doc}")
        return 0 if argv else 2
    name, rest = argv[0], argv[1:]
    if name not in CHECKS:
        known = ", ".join(sorted(CHECKS))
        print(f"unknown check {name!r}; one of: {known}", file=sys.stderr)
        return 2
    try:
        CHECKS[name](rest)
    except AssertionError as exc:
        print(f"check {name} FAILED: {exc}", file=sys.stderr)
        return 1
    except SystemExit as exc:
        print(f"check {name} FAILED: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
