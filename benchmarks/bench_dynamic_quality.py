"""C3 — dynamic redundancy elimination quality across strategies.

Replays every workload on a fixed set of random inputs (the same
inputs for every strategy) and counts interpreter-measured expression
evaluations — the quantity the optimality theorem is actually about.

Expected paper shape: none >= gcse >= {mr} >= {lcm == bcm}, with LCM
and BCM exactly tied (they are both computationally optimal) and the
naive LICM baseline landing between none and LCM while being unsafe.
"""

from repro.bench.figures import FIGURES
from repro.bench.generators import GeneratorConfig, random_cfg
from repro.bench.harness import Table, record_report
from repro.bench.metrics import dynamic_evaluations
from repro.core.pipeline import optimize

STRATEGIES = ("none", "gcse", "licm", "mr", "bcm", "lcm")
SEEDS = range(6)
RUNS = 12


def workloads():
    graphs = [(name, fn()) for name, fn in sorted(FIGURES.items())]
    graphs += [
        (f"random-{seed}", random_cfg(seed, GeneratorConfig(statements=12)))
        for seed in SEEDS
    ]
    return graphs


def sweep():
    rows = []
    for name, cfg in workloads():
        counts = {}
        for strategy in STRATEGIES:
            result = optimize(cfg, strategy)
            total, completed = dynamic_evaluations(
                result.cfg, runs=RUNS, seed=17, env_source=cfg
            )
            assert completed == RUNS, (name, strategy)
            counts[strategy] = total
        rows.append((name, counts))
    return rows


def test_dynamic_quality(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table(
        ["workload", *STRATEGIES],
        title=f"C3: dynamic expression evaluations over {RUNS} runs (same inputs per row)",
    )
    totals = {s: 0 for s in STRATEGIES}
    for name, counts in rows:
        table.add_row(name, *(counts[s] for s in STRATEGIES))
        for s in STRATEGIES:
            totals[s] += counts[s]
    table.add_row("TOTAL", *(totals[s] for s in STRATEGIES))
    record_report("C3 dynamic evaluation counts", table)

    # The paper's quality ordering.
    assert totals["lcm"] == totals["bcm"]
    assert totals["lcm"] <= totals["gcse"] <= totals["none"]
    assert totals["lcm"] <= totals["mr"]
