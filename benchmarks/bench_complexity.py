"""C1 — analysis cost: four unidirectional problems vs bidirectional MR.

The paper's efficiency argument is structural: Lazy Code Motion needs
only unidirectional bit-vector problems, which converge in few sweeps
when iterated in the right order, while Morel-Renvoise's bidirectional
"placement possible" system must be iterated as a coupled whole.  This
benchmark measures both on the same programs across a size sweep:

* logical bit-vector operations executed (the paper-era cost unit —
  the same metric later PRE papers report, e.g. ops normalised per
  algorithm),
* wall-clock time of the full analysis+transform pipeline.

Expected shape: LCM's cost grows linearly and stays below MR's, with
the gap widening on larger graphs.
"""

import pytest

from repro.bench.generators import GeneratorConfig, random_cfg
from repro.bench.harness import Table, record_report
from repro.bench.metrics import solver_cost
from repro.core.pipeline import optimize

SIZES = (10, 20, 40, 80)


def cost_sweep():
    rows = []
    for size in SIZES:
        cfg = random_cfg(size, GeneratorConfig(statements=size))
        lcm_ops = solver_cost(cfg, "lcm").total
        mr_ops = solver_cost(cfg, "mr").total
        rows.append((size, len(cfg), lcm_ops, mr_ops, mr_ops / max(lcm_ops, 1)))
    return rows


def test_complexity_bitvector_ops(benchmark):
    rows = benchmark.pedantic(cost_sweep, rounds=1, iterations=1)
    table = Table(
        ["statements", "blocks", "LCM bv-ops", "MR bv-ops", "MR / LCM"],
        title="C1: bit-vector operations, LCM (4 unidirectional) vs Morel-Renvoise (bidirectional)",
    )
    for row in rows:
        table.add_row(*row)
    record_report("C1 analysis cost sweep", table)
    # Shape: both grow with size; the bidirectional system does not get
    # cheaper than the unidirectional pipeline as programs grow.
    assert rows[-1][2] > rows[0][2]
    assert rows[-1][3] >= rows[-1][2]


@pytest.mark.parametrize("size", [20, 80])
def test_complexity_lcm_wall_clock(benchmark, size):
    cfg = random_cfg(size, GeneratorConfig(statements=size))
    benchmark(optimize, cfg, "lcm")


@pytest.mark.parametrize("size", [20, 80])
def test_complexity_mr_wall_clock(benchmark, size):
    cfg = random_cfg(size, GeneratorConfig(statements=size))
    benchmark(optimize, cfg, "mr")
