"""A1 — ablation: what the isolation analysis buys.

ALCM (latest placement, *without* isolation filtering) is already
computationally and almost lifetime optimal; the paper adds the
isolation analysis purely to suppress pointless insertions whose value
feeds only the statement right after them.  This ablation measures the
difference on graphs rich in single-use computations:

* dynamic evaluations: identical (isolation never changes counts);
* inserted instructions and temporary live points: strictly fewer with
  isolation.
"""

from repro.bench.figures import isolated_example
from repro.bench.generators import GeneratorConfig, random_cfg
from repro.bench.harness import Table, record_report
from repro.bench.metrics import dynamic_evaluations
from repro.core.lifetime import measure_lifetimes
from repro.core.pipeline import optimize

SEEDS = range(8)


def measure(cfg, strategy):
    result = optimize(cfg, strategy)
    lifetimes = measure_lifetimes(result.cfg, result.temps)
    dynamic, _ = dynamic_evaluations(result.cfg, runs=8, seed=5, env_source=cfg)
    inserted = sum(
        1
        for _, _, instr in result.cfg.instructions()
        if instr.target in result.temps and instr.is_computation
    )
    return dynamic, inserted, lifetimes.total_live_points


def sweep():
    rows = []
    graphs = [("isolated_example", isolated_example())]
    graphs += [
        (f"random-{seed}", random_cfg(seed, GeneratorConfig(statements=10)))
        for seed in SEEDS
    ]
    for name, cfg in graphs:
        alcm = measure(cfg, "krs-alcm")
        lcm = measure(cfg, "krs-lcm")
        rows.append((name, alcm, lcm))
    return rows


def test_ablation_isolation(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table(
        [
            "workload",
            "ALCM dyn",
            "LCM dyn",
            "ALCM inserts",
            "LCM inserts",
            "ALCM live pts",
            "LCM live pts",
        ],
        title="A1: ALCM (no isolation) vs LCM (with isolation)",
    )
    for name, (a_dyn, a_ins, a_live), (l_dyn, l_ins, l_live) in rows:
        table.add_row(name, a_dyn, l_dyn, a_ins, l_ins, a_live, l_live)
        # Isolation never changes evaluation counts...
        assert a_dyn == l_dyn, name
        # ...and never adds insertions or lifetime.
        assert l_ins <= a_ins, name
        assert l_live <= a_live, name
    record_report("A1 isolation ablation", table)

    # On the isolation litmus graph the effect is strict.
    name, alcm, lcm = rows[0]
    assert lcm[1] < alcm[1]
