"""E4 — extension: partial dead-code elimination, the dual of PRE.

The authors followed LCM with its mirror image (PLDI'94): sink
partially dead *assignments* with the control flow as LCM hoists
partially redundant *computations* against it.  This benchmark runs
both directions on one graph that contains both phenomena, and shows
the dual per-path guarantees:

* PRE: no path evaluates more, paths with redundancy evaluate less;
* PDE: no path evaluates more, paths where the assignment was dead
  evaluate less;
* composed, both path families improve.
"""

from repro.bench.generators import GeneratorConfig, random_cfg
from repro.bench.harness import Table, record_report
from repro.core.optimality import compare_per_path
from repro.core.pipeline import optimize
from repro.extensions.sinking import sink_assignments
from repro.ir.builder import CFGBuilder


def dual_graph():
    """Left arm: a+b redundant (PRE's case); top: x=c*d partially dead
    (PDE's case, overwritten on the right arm)."""
    b = CFGBuilder()
    b.block("top", "x = c * d").branch("p", "l", "r")
    b.block("l", "u = a + b", "y = x + u").jump("join")
    b.block("r", "x = 5").jump("join")
    b.block("join", "v = a + b", "out = v + x").to_exit()
    return b.build()


def test_extension_sinking_dual(benchmark):
    cfg = dual_graph()

    def both():
        pre = optimize(cfg, "lcm")
        pde, report = sink_assignments(cfg)
        composed, _ = sink_assignments(pre.cfg)
        return pre, pde, report, composed

    pre, pde, report, composed = benchmark.pedantic(both, rounds=1, iterations=1)
    assert report.sunk

    table = Table(
        ["variant", "paths", "evals before", "evals after", "paths improved"],
        title="E4: PRE (hoisting) vs PDE (sinking) vs both",
    )
    for name, transformed in (
        ("PRE (lcm)", pre.cfg),
        ("PDE (sinking)", pde.cfg),
        ("PRE then PDE", composed.cfg),
    ):
        rep = compare_per_path(cfg, transformed, max_branches=4)
        assert rep.safe, name
        table.add_row(
            name, rep.paths_checked, rep.total_before, rep.total_after,
            rep.improvements,
        )
    record_report("E4 partial dead-code elimination (dual of PRE)", table)

    pre_rep = compare_per_path(cfg, pre.cfg, max_branches=4)
    pde_rep = compare_per_path(cfg, pde.cfg, max_branches=4)
    both_rep = compare_per_path(cfg, composed.cfg, max_branches=4)
    assert pre_rep.improvements >= 1
    assert pde_rep.improvements >= 1
    assert both_rep.total_after <= min(pre_rep.total_after, pde_rep.total_after)


def test_extension_sinking_random_sweep(benchmark):
    """Unstructured graphs: branch-final assignments are common there
    (the structured front-end pins a condition temp before every
    branch, which blocks sinking — an interesting shape effect in its
    own right, asserted below)."""

    from repro.bench.shapegen import ShapeConfig, random_shape_cfg

    def sweep():
        actions = 0
        total_before = total_after = 0
        for seed in range(10):
            cfg = random_shape_cfg(seed, ShapeConfig(blocks=10))
            result, report = sink_assignments(cfg)
            rep = compare_per_path(cfg, result.cfg, max_branches=6)
            assert rep.safe, seed
            actions += report.actions
            total_before += rep.total_before
            total_after += rep.total_after
        structured_actions = sum(
            sink_assignments(random_cfg(seed, GeneratorConfig(statements=12)))[1].actions
            for seed in range(8)
        )
        return actions, total_before, total_after, structured_actions

    actions, before, after, structured = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    record_report(
        "E4 sweep (10 unstructured graphs)",
        f"{actions} sinking actions; path evaluations {before} -> {after} "
        f"(structured front-end programs: {structured} actions — their "
        "branches always read a just-defined condition temp)",
    )
    assert actions > 0
    assert after <= before
