"""Extension — strength reduction: trading multiplications for additions.

The paper's authors followed LCM with *Lazy Strength Reduction*; this
benchmark measures the classical core of that optimisation on an
address-computation loop: dynamic operation mix (multiplications vs
additions) and a weighted cost model (mul = 4 cycles, add/copy = 1) as
a function of the trip count.

Expected shape: multiplications per run drop from Θ(n) to O(1), the
addition count rises by one per iteration, and the weighted cost
crosses in favour of the reduced loop for every non-trivial trip
count.
"""

from repro.bench.harness import Table, record_report
from repro.extensions.strength import strength_reduce
from repro.interp.machine import run
from repro.ir.builder import CFGBuilder
from repro.ir.expr import BinExpr

MUL_COST = 4
ADD_COST = 1


def workload():
    b = CFGBuilder()
    b.block("init", "i = 0", "sum = 0").jump("head")
    b.block("head", "t = i < n").branch("t", "body", "out")
    b.block("body", "addr = i * 8", "sum = sum + addr", "i = i + 1").jump("head")
    b.block("out", "res = sum").to_exit()
    return b.build()


def op_mix(cfg, n):
    result = run(cfg, {"n": n})
    assert result.reached_exit
    muls = adds = others = 0
    for expr, count in result.eval_counts.items():
        if isinstance(expr, BinExpr) and expr.op == "*":
            muls += count
        elif isinstance(expr, BinExpr) and expr.op in ("+", "-"):
            adds += count
        else:
            others += count
    return muls, adds, others


def weighted(mix):
    muls, adds, others = mix
    return MUL_COST * muls + ADD_COST * (adds + others)


def test_extension_strength_reduction(benchmark):
    cfg = workload()
    result, report = benchmark.pedantic(
        strength_reduce, args=(cfg,), rounds=1, iterations=1
    )
    assert report.reduced

    table = Table(
        ["trip count", "muls before", "muls after", "adds before",
         "adds after", "cost before", "cost after"],
        title=f"strength reduction op mix (mul={MUL_COST}, add={ADD_COST})",
    )
    for n in (1, 4, 16, 64):
        before = op_mix(cfg, n)
        after = op_mix(result.cfg, n)
        table.add_row(
            n, before[0], after[0], before[1], after[1],
            weighted(before), weighted(after),
        )
        # Multiplications collapse to the preheader initialisation.
        assert before[0] == n
        assert after[0] <= 1
        # The weighted cost wins for every non-trivial trip count.
        if n > 1:
            assert weighted(after) < weighted(before)
    record_report("EXT strength reduction", table)
