"""Extension — classic vs speculative PRE under different profiles.

The paper's discipline (insert only where down-safe) makes classic
PRE's optimal transformation *profile-independent*: the same placement
is optimal for every execution frequency assignment.  Speculative PRE
gives that up — its choices depend on the profile and can regress when
the profile is wrong.  This benchmark measures the full trade-off on a
zero-trip-capable loop:

* hot profile (loop usually iterates): speculation beats LCM's dynamic
  counts, because LCM must leave the non-down-safe invariant in the
  body;
* cold/adversarial profile (loop rarely entered): the speculative
  placement trained on the hot profile *loses* to LCM, while LCM's
  placement is the same as ever — classic PRE never regrets.
"""

from repro.analysis.frequency import profile_from_runs
from repro.bench.harness import Table, record_report
from repro.core.pipeline import optimize
from repro.extensions.speculative import speculative_transform
from repro.interp.machine import run
from repro.ir.builder import CFGBuilder


def workload():
    b = CFGBuilder()
    b.block("init", "i = 0", "s = 0").jump("head")
    b.block("head", "t = i < n").branch("t", "body", "out")
    b.block("body", "z = a * k", "s = s + z", "i = i + 1").jump("head")
    b.block("out", "res = s + 1").to_exit()
    return b.build()


def total_cost(cfg, trip_counts):
    return sum(
        run(cfg, {"n": n, "a": 2, "k": 3}).total_evaluations
        for n in trip_counts
    )


def test_extension_speculative_tradeoff(benchmark):
    hot_trips = [10, 12, 8, 16]
    cold_trips = [0, 0, 0, 1]

    def build_all():
        cfg = workload()
        profile = profile_from_runs(cfg, [{"n": 10, "a": 2, "k": 3}] * 3)
        profile.attach(minimum=1)
        spec, report = speculative_transform(cfg)
        lcm = optimize(cfg, "lcm")
        return cfg, spec, report, lcm

    cfg, spec, report, lcm = benchmark.pedantic(build_all, rounds=1, iterations=1)
    assert report.hoisted, "the hot profile must trigger speculation"

    table = Table(
        ["profile at runtime", "original", "LCM", "speculative"],
        title="speculative vs classic PRE: total dynamic evaluations",
    )
    rows = {}
    for name, trips in (("hot (matches training)", hot_trips),
                        ("cold (profile was wrong)", cold_trips)):
        rows[name] = (
            total_cost(cfg, trips),
            total_cost(lcm.cfg, trips),
            total_cost(spec.cfg, trips),
        )
        table.add_row(name, *rows[name])
    record_report("EXT classic vs speculative PRE", table)

    hot = rows["hot (matches training)"]
    cold = rows["cold (profile was wrong)"]
    # Hot: speculation wins over LCM (the invariant was not down-safe,
    # so classic PRE could not hoist it).
    assert hot[2] < hot[1] <= hot[0]
    # Cold: speculation pays for computations never needed; classic
    # PRE never exceeds the original.
    assert cold[2] > cold[1]
    assert cold[1] <= cold[0]


def test_extension_lcm_profile_independence(benchmark):
    """LCM's placement is identical under wildly different profiles."""

    def placements_under(weight):
        cfg = workload()
        for edge in cfg.edges():
            cfg.set_weight(edge, weight)
        result = optimize(cfg, "lcm")
        return sorted(
            (str(p.expr), tuple(sorted(p.insert_edges)), tuple(sorted(p.delete_blocks)))
            for p in result.placements
        )

    first = benchmark.pedantic(placements_under, args=(1,), rounds=1, iterations=1)
    assert first == placements_under(1000)
    record_report(
        "EXT profile independence",
        "LCM placements identical under uniform weight 1 and 1000 "
        "(classic PRE is profile-independent)",
    )
