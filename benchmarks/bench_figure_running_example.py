"""F1 — the paper's running example (reconstructed figures 1-3).

Regenerates, for the reconstructed running-example flow graph, exactly
what the paper's figures show: where each transformation (BCM, ALCM,
LCM) inserts ``t = a+b``, which occurrences it replaces, and what the
insertion costs in temporary lifetime.  The hand-derived optimal
placement (documented in ``repro.bench.figures.running_example``) is
asserted, so this benchmark doubles as the figure's golden test.
"""

from repro.bench.figures import running_example
from repro.bench.harness import Table, record_report
from repro.core.lifetime import measure_lifetimes
from repro.core.pipeline import optimize
from repro.ir.expr import BinExpr, Var

AB = BinExpr("+", Var("a"), Var("b"))


def _row(cfg, strategy):
    result = optimize(cfg, strategy)
    plan = next((p for p in result.placements if p.expr == AB), None)
    lifetimes = measure_lifetimes(result.cfg, result.temps)
    inserts = "-"
    deletes = "-"
    if plan is not None:
        edges = sorted(f"{m}->{n}" for m, n in plan.insert_edges)
        entries = sorted(plan.insert_entries)
        inserts = ", ".join(edges + entries) or "-"
        deletes = ", ".join(sorted(plan.delete_blocks)) or "-"
    return (
        strategy,
        inserts,
        deletes,
        ", ".join(sorted(result.copy_blocks)) or "-",
        lifetimes.total_live_points,
        lifetimes.max_pressure,
    )


def test_figure_running_example(benchmark):
    cfg = running_example()
    result = benchmark(optimize, cfg, "lcm")

    plan = next(p for p in result.placements if p.expr == AB)
    # The figure's hand-derived optimal placement (DESIGN.md F1).
    assert plan.insert_edges == {("n3", "n4"), ("n5", "n6"), ("n5", "n10")}
    assert plan.delete_blocks == {"n4", "n6", "n10"}
    assert result.copy_blocks == {"n2"}

    table = Table(
        ["variant", "insert t=a+b at", "replace in", "copies", "live pts", "pressure"],
        title="F1: running example, placements per transformation",
    )
    for strategy in ("bcm", "krs-alcm", "lcm"):
        table.add_row(*_row(running_example(), strategy))
    record_report("F1 running example (reconstruction of Figs. 1-3)", table)


def test_figure_running_example_lifetime_gap(benchmark):
    cfg = running_example()

    def both():
        lcm = optimize(cfg, "lcm")
        bcm = optimize(cfg, "bcm")
        return lcm, bcm

    lcm, bcm = benchmark(both)
    lcm_span = measure_lifetimes(lcm.cfg, lcm.temps).total_live_points
    bcm_span = measure_lifetimes(bcm.cfg, bcm.temps).total_live_points
    # The paper's point: same computations, strictly tighter lifetimes.
    assert lcm_span < bcm_span
