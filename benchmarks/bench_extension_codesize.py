"""Extension — code-size-governed placement (Sparse Code Motion flavour).

Speed-optimal PRE can grow the program: deleting one occurrence may
require an insertion on every uncovered incoming path.  The size
governor applies a placement only when ``|INSERT| - |DELETE| <= 0``.
Measured here:

* the bloat litmus graph: plain LCM grows the text, the governed
  variant refuses (and gives up that path's dynamic win — the price of
  the size guarantee);
* a random sweep: governed static size never exceeds the original,
  while its dynamic counts stay close to plain LCM's (bloat cases are
  rare in practice).
"""

from repro.bench.generators import GeneratorConfig, random_cfg
from repro.bench.harness import Table, record_report
from repro.bench.metrics import dynamic_evaluations
from repro.core.pipeline import optimize
from repro.extensions.codesize import size_governed_transform
from repro.ir.builder import CFGBuilder


def bloat_graph():
    b = CFGBuilder()
    b.block("f1").branch("p", "g", "ks")
    b.block("g", "x = a + b").jump("use")
    b.block("ks").branch("q", "k1", "k2")
    b.block("k1", "a = c + 1").jump("use")
    b.block("k2", "a = c + 2").jump("use")
    b.block("use", "y = a + b").to_exit()
    return b.build()


def test_extension_codesize_litmus(benchmark):
    cfg = bloat_graph()
    (governed, report) = benchmark.pedantic(
        size_governed_transform, args=(cfg,), rounds=1, iterations=1
    )
    plain = optimize(cfg, "lcm")

    table = Table(
        ["variant", "static computations", "dynamic evals (12 runs)"],
        title="code-size governor on the bloat litmus graph",
    )
    for name, graph in (
        ("original", cfg),
        ("plain LCM", plain.cfg),
        ("size-governed", governed.cfg),
    ):
        dynamic, _ = dynamic_evaluations(graph, runs=12, seed=9, env_source=cfg)
        table.add_row(name, graph.static_computation_count(), dynamic)
    record_report("EXT code-size governor (litmus)", table)

    assert plain.cfg.static_computation_count() > cfg.static_computation_count()
    assert governed.cfg.static_computation_count() <= cfg.static_computation_count()
    assert report.dropped


def test_extension_codesize_random_sweep(benchmark):
    def sweep():
        rows = []
        for seed in range(8):
            cfg = random_cfg(seed, GeneratorConfig(statements=12))
            plain = optimize(cfg, "lcm")
            governed, _ = size_governed_transform(cfg)
            plain_dyn, _ = dynamic_evaluations(
                plain.cfg, runs=8, seed=4, env_source=cfg
            )
            gov_dyn, _ = dynamic_evaluations(
                governed.cfg, runs=8, seed=4, env_source=cfg
            )
            rows.append(
                (
                    seed,
                    cfg.static_computation_count(),
                    plain.cfg.static_computation_count(),
                    governed.cfg.static_computation_count(),
                    plain_dyn,
                    gov_dyn,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table(
        ["seed", "static orig", "static LCM", "static governed",
         "dyn LCM", "dyn governed"],
        title="code-size governor over random programs",
    )
    for row in rows:
        table.add_row(*row)
    record_report("EXT code-size governor (sweep)", table)

    for _, orig, _, governed_static, plain_dyn, gov_dyn in rows:
        assert governed_static <= orig
        assert gov_dyn >= plain_dyn  # the governor only gives wins up
