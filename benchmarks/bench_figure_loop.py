"""F2 — loop-invariant code motion through a do-while loop.

Regenerates the paper's loop figure as a measured series: dynamic
evaluations of the invariant expression ``a * k`` as a function of the
trip count, before and after LCM.  The paper-shape to reproduce: the
original program's cost grows linearly with the trip count; after LCM
it is constant (one evaluation per loop entry).
"""

from repro.bench.figures import loop_example
from repro.bench.harness import Table, record_report
from repro.core.pipeline import optimize
from repro.interp.machine import run
from repro.ir.expr import BinExpr, Var

AK = BinExpr("*", Var("a"), Var("k"))


def evaluations(cfg, trip_count):
    result = run(cfg, {"a": 3, "k": 5, "n": trip_count})
    assert result.reached_exit
    return result.count(AK)


def test_figure_loop_invariant_series(benchmark):
    cfg = loop_example()
    optimized = benchmark(optimize, cfg, "lcm")

    table = Table(
        ["trip count", "original", "after LCM"],
        title="F2: dynamic evaluations of the loop-invariant a*k",
    )
    for n in (1, 2, 4, 8, 16):
        before = evaluations(cfg, n)
        after = evaluations(optimized.cfg, n)
        table.add_row(n, before, after)
        # Original: once per iteration plus the trailing use; LCM: once.
        assert before == n + 1
        assert after == 1
    record_report("F2 loop-invariant motion (reconstruction of Fig. 4)", table)


def test_figure_loop_total_work_shrinks(benchmark):
    cfg = loop_example()
    optimized = optimize(cfg, "lcm")

    def total(cfg_):
        return sum(
            run(cfg_, {"a": 2, "k": 7, "n": n}).total_evaluations
            for n in (1, 4, 16)
        )

    after = benchmark(total, optimized.cfg)
    before = total(cfg)
    assert after < before
