"""Batch throughput: the parallel corpus driver vs. the serial baseline.

Pushes the realistic corpus (``tests/corpus``) plus a pile of generated
workloads through :func:`repro.batch.run_batch` at increasing worker
counts.  Two things are checked, matching the driver's contract:

* every job count produces **bit-identical per-program IR** (equal
  content fingerprints item by item) — parallelism must not change
  results;
* the parallel run completes with a zero error tally.

The wall-time rows (items/s, speedup over ``jobs=1``) are recorded in
the end-of-run report tables, and the ``jobs``-max batch report is
persisted as ``BENCH_BATCH.json`` next to ``BENCH_TRACE.json``.

A second benchmark measures the persistent store (docs/CACHING.md):
a cold run populating a fresh ``--cache-dir`` vs. a warm run over the
same corpus, asserting the warm run does **zero solver work** (no
memory-tier misses, therefore no solves) with bit-identical IR.
"""

import json
import os
import tempfile
import time
from pathlib import Path

from repro.api import load_cfg, optimize_cfg
from repro.batch import BatchConfig, items_from_dir, run_batch, WorkItem
from repro.bench.generators import GeneratorConfig, random_program
from repro.bench.harness import Table, record_report, write_json_report
from repro.lang.unparse import unparse
from repro.obs.manager import AnalysisManager
from repro.obs.trace import tracing
from repro.passes.pipeline import run_pipeline

CORPUS_DIR = Path(__file__).resolve().parent.parent / "tests" / "corpus"
GENERATED = 51  # with the 9 corpus programs: a 60-program batch
JOB_COUNTS = (1, 2, 4)
REPORT_FILENAME = "BENCH_BATCH.json"

# The incremental liveness engine solves the global fixpoint at most
# once per optimize and patches it between edits; before it, this
# corpus re-solved ~14x per item (826 solves / 60 items).
MAX_LIVENESS_SOLVES_PER_ITEM = 2.0

# Incremental fingerprints: one full hash for the input, every later
# fingerprint of the evolving graph is a per-block patch.
MAX_FULL_FINGERPRINTS_PER_ITEM = 2.0

# Serial walls over this exact 60-item corpus measured at commit
# 4c3a37c (before incremental fingerprints, dirty-region scheduling and
# the transform-side rewrites): the before side of the speedup rows.
SEED_OPTIMIZE_WALL_S = 0.638
SEED_PIPELINE_WALL_S = 1.016


def _merge_batch_report(updates):
    """Read-modify-write ``BENCH_BATCH.json`` so the throughput and
    rewrite benchmarks can each update their own keys without
    clobbering the other's numbers (the tests run in either order, or
    alone)."""
    data = {}
    try:
        with open(REPORT_FILENAME) as handle:
            previous = json.load(handle)
        if (
            isinstance(previous, dict)
            and previous.get("format") == "repro-batch-report"
        ):
            data = previous
    except (OSError, ValueError):
        pass
    data.update(updates)
    try:
        return write_json_report(REPORT_FILENAME, data)
    except OSError:
        return data  # read-only invocation dir: the artifact is best-effort


def liveness_solves(report) -> int:
    """Full liveness fixpoint solves recorded in *report*'s trace."""
    entry = report.merged_summary().get("dataflow.solve[liveness]", {})
    return int(entry.get("count", 0))


def build_items():
    items = items_from_dir(str(CORPUS_DIR))
    for seed in range(GENERATED):
        source = unparse(random_program(seed, GeneratorConfig(statements=14)))
        items.append(WorkItem(f"gen{seed:03d}", "source", source))
    return items


def sweep():
    items = build_items()
    reports = {}
    for jobs in JOB_COUNTS:
        report = run_batch(items, BatchConfig(jobs=jobs, timeout=60.0))
        assert report.ok, report.tally
        solves = liveness_solves(report)
        per_item = solves / len(report.items)
        assert per_item <= MAX_LIVENESS_SOLVES_PER_ITEM, (
            f"jobs={jobs}: {solves} liveness solves over "
            f"{len(report.items)} items ({per_item:.1f}/item) — the "
            "incremental engine should patch, not re-solve"
        )
        reports[jobs] = report

    # Parallelism must not change results: same fingerprints everywhere.
    baseline = [item.fingerprint for item in reports[JOB_COUNTS[0]].items]
    for jobs in JOB_COUNTS[1:]:
        fingerprints = [item.fingerprint for item in reports[jobs].items]
        assert fingerprints == baseline, f"jobs={jobs} changed the IR"
    return reports


def test_batch_throughput(benchmark):
    reports = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table(
        ["jobs", "items", "wall s", "items/s", "speedup", "hit rate", "live solves"],
        title=f"batch throughput over {len(reports[1].items)} programs "
        f"({os.cpu_count()} cores)",
    )
    serial_wall = reports[JOB_COUNTS[0]].wall_time_s
    for jobs in JOB_COUNTS:
        report = reports[jobs]
        wall = report.wall_time_s
        table.add_row(
            jobs,
            len(report.items),
            wall,
            len(report.items) / wall if wall else 0.0,
            serial_wall / wall if wall else 0.0,
            report.cache_stats()["hit_rate"],
            liveness_solves(report),
        )
    record_report("batch throughput", table)

    final = reports[max(JOB_COUNTS)]
    payload = final.to_dict()
    counters = final.merged_counters()
    payload["liveness"] = {
        "full_solves": liveness_solves(final),
        "solves_per_item": liveness_solves(final) / len(final.items),
        "incr_updates": counters.get("dataflow.incr.update", 0),
        "demand_solves": counters.get("dataflow.query.demand", 0),
    }
    _merge_batch_report(payload)


def store_sweep(store_dir):
    items = build_items()
    config = BatchConfig(jobs=2, timeout=60.0, store_path=store_dir)
    cold = run_batch(items, config)
    assert cold.ok, cold.tally
    warm = run_batch(items, config)
    assert warm.ok, warm.tally

    # The warm run must do zero solver work: a memory-tier miss is the
    # only path that runs a solver, and there are none.
    warm_stats = warm.cache_stats()
    assert warm_stats["misses"] == 0, warm_stats
    assert warm_stats["disk_writes"] == 0, warm_stats
    assert warm_stats["hits"] + warm_stats["disk_hits"] > 0
    # ... with bit-identical IR to the cold run.
    cold_fps = [item.fingerprint for item in cold.items]
    warm_fps = [item.fingerprint for item in warm.items]
    assert warm_fps == cold_fps, "warm store changed the IR"
    return cold, warm


def test_batch_warm_store(benchmark):
    with tempfile.TemporaryDirectory(prefix="repro-store-") as store_dir:
        cold, warm = benchmark.pedantic(
            store_sweep, args=(store_dir,), rounds=1, iterations=1
        )
        table = Table(
            ["run", "items", "wall s", "misses", "disk hits", "disk writes"],
            title=f"persistent store: cold vs warm over {len(cold.items)} "
            f"programs (jobs=2, entries={warm.store['entries']})",
        )
        for name, report in (("cold", cold), ("warm", warm)):
            stats = report.cache_stats()
            table.add_row(
                name,
                len(report.items),
                report.wall_time_s,
                stats["misses"],
                stats["disk_hits"],
                stats["disk_writes"],
            )
        record_report("batch warm store", table)


def rewrite_sweep():
    """The rewrite-side benchmark: dirty scheduling + incremental
    fingerprints vs. the legacy whole-CFG arm, over the same corpus.

    The two arms must produce bit-identical IR (equal output
    fingerprints item by item); the dirty arm must fingerprint the
    whole graph at most :data:`MAX_FULL_FINGERPRINTS_PER_ITEM` times
    per item — one full hash for the input, incremental patches for
    everything after.
    """
    items = build_items()
    cfgs = [load_cfg(item.payload, item.kind) for item in items]

    arms = {}
    for name, scheduling, incremental in (
        ("full", "full", False),
        ("dirty", "dirty", True),
    ):
        manager = AnalysisManager(incremental_fingerprints=incremental)
        with tracing() as tracer:
            start = time.perf_counter()
            outputs = []
            for cfg in cfgs:
                manager.fingerprint(cfg)
                result = run_pipeline(
                    cfg, "lcm", manager=manager, scheduling=scheduling
                )
                outputs.append(manager.fingerprint(result.cfg))
            wall = time.perf_counter() - start
        arms[name] = {
            "wall": wall,
            "outputs": outputs,
            "counters": dict(tracer.counters),
        }

    assert arms["dirty"]["outputs"] == arms["full"]["outputs"], (
        "dirty-region scheduling changed the IR"
    )
    full_hashes = arms["dirty"]["counters"].get("fingerprint.full", 0)
    per_item = full_hashes / len(cfgs)
    assert per_item <= MAX_FULL_FINGERPRINTS_PER_ITEM, (
        f"{full_hashes} whole-graph hashes over {len(cfgs)} items "
        f"({per_item:.1f}/item) — fingerprints should patch, not rehash"
    )

    # The single-pass optimize path (what the serve daemon drives).
    manager = AnalysisManager()
    with tracing() as tracer:
        start = time.perf_counter()
        for cfg in cfgs:
            optimize_cfg(cfg, "lcm", manager=manager)
        optimize_wall = time.perf_counter() - start
    optimize_counters = dict(tracer.counters)
    optimize_full = optimize_counters.get("fingerprint.full", 0)
    assert optimize_full / len(cfgs) <= MAX_FULL_FINGERPRINTS_PER_ITEM

    return cfgs, arms, optimize_wall, optimize_counters


def test_batch_rewrite(benchmark):
    cfgs, arms, optimize_wall, optimize_counters = benchmark.pedantic(
        rewrite_sweep, rounds=1, iterations=1
    )
    n = len(cfgs)
    dirty = arms["dirty"]
    table = Table(
        ["path", "wall s", "seed s", "speedup", "fp full", "fp incr"],
        title=f"rewrite side over {n} programs (serial)",
    )
    table.add_row(
        "optimize (lcm)",
        optimize_wall,
        SEED_OPTIMIZE_WALL_S,
        SEED_OPTIMIZE_WALL_S / optimize_wall if optimize_wall else 0.0,
        optimize_counters.get("fingerprint.full", 0),
        optimize_counters.get("fingerprint.incr", 0),
    )
    for name in ("full", "dirty"):
        arm = arms[name]
        table.add_row(
            f"pipeline ({name})",
            arm["wall"],
            SEED_PIPELINE_WALL_S,
            SEED_PIPELINE_WALL_S / arm["wall"] if arm["wall"] else 0.0,
            arm["counters"].get("fingerprint.full", 0),
            arm["counters"].get("fingerprint.incr", 0),
        )
    record_report("batch rewrite", table)

    _merge_batch_report(
        {
            "rewrite": {
                "items": n,
                "optimize_wall_s": optimize_wall,
                "pipeline_wall_s": {
                    name: arms[name]["wall"] for name in ("full", "dirty")
                },
                "seed_baseline_s": {
                    "optimize": SEED_OPTIMIZE_WALL_S,
                    "pipeline": SEED_PIPELINE_WALL_S,
                },
                "speedup_vs_seed": {
                    "optimize": SEED_OPTIMIZE_WALL_S / optimize_wall
                    if optimize_wall
                    else 0.0,
                    "pipeline": SEED_PIPELINE_WALL_S / dirty["wall"]
                    if dirty["wall"]
                    else 0.0,
                },
                "fingerprints": {
                    "optimize": {
                        "full": optimize_counters.get("fingerprint.full", 0),
                        "incr": optimize_counters.get("fingerprint.incr", 0),
                    },
                    "pipeline_dirty": {
                        "full": dirty["counters"].get("fingerprint.full", 0),
                        "incr": dirty["counters"].get("fingerprint.incr", 0),
                        "full_per_item": dirty["counters"].get(
                            "fingerprint.full", 0
                        )
                        / n,
                    },
                },
            }
        }
    )
