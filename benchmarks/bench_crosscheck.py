"""X1 — cross-validation of the two independent implementations.

The library implements Lazy Code Motion twice: the paper's node-level
formulation (six predicates on a statement-granular graph) and the
practical edge-based formulation (four analyses on basic blocks).
They share no placement code, so path-for-path agreement of the
transformed programs is strong evidence both read the paper right.

This benchmark sweeps random programs and verifies the agreement for
both the lazy and the busy variant, and also records how the two
implementations' analysis costs compare (the node-level graph is
larger, so the edge-based formulation is the practical one).
"""

from repro.bench.generators import GeneratorConfig, random_cfg
from repro.bench.harness import Table, record_report
from repro.bench.metrics import solver_cost
from repro.core.optimality import enumerate_traces, paths_agree, replay
from repro.core.pipeline import optimize

SEEDS = range(10)
CONFIG = GeneratorConfig(statements=10)


def sweep():
    paths_checked = 0
    for seed in SEEDS:
        cfg = random_cfg(seed, CONFIG)
        edge_lcm = optimize(cfg, "lcm")
        node_lcm = optimize(cfg, "krs-lcm")
        edge_bcm = optimize(cfg, "bcm")
        node_bcm = optimize(cfg, "krs-bcm")
        for trace in enumerate_traces(edge_lcm.cfg, max_branches=6):
            assert replay(node_lcm.cfg, trace.decisions).eval_counts == trace.eval_counts, seed
            paths_checked += 1
        assert paths_agree(edge_bcm.cfg, node_bcm.cfg, max_branches=6), seed
    return paths_checked


def test_crosscheck_formulations(benchmark):
    paths_checked = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_report(
        "X1 formulation cross-check",
        f"node-level and edge-based LCM agree on all {paths_checked} paths "
        f"across {len(list(SEEDS))} programs (and BCM likewise)",
    )
    assert paths_checked > 50


def test_crosscheck_cost_comparison(benchmark):
    def costs():
        rows = []
        for seed in (3, 7):
            cfg = random_cfg(seed, GeneratorConfig(statements=30))
            edge_ops = solver_cost(cfg, "lcm").total
            node_ops = solver_cost(cfg, "krs-lcm").total
            rows.append((seed, len(cfg), edge_ops, node_ops))
        return rows

    rows = benchmark.pedantic(costs, rounds=1, iterations=1)
    table = Table(
        ["seed", "blocks", "edge-based bv-ops", "node-level bv-ops"],
        title="X1: analysis cost, block-granular vs statement-granular",
    )
    for row in rows:
        table.add_row(*row)
    record_report("X1 granularity cost", table)
    # The statement-granular graph is bigger, so it costs more — the
    # reason practical compilers use the edge-based formulation.
    assert all(node >= edge for _, _, edge, node in rows)
