"""A2 — ablation: how much edge splitting node insertion needs.

The node-level formulation places ``t = e`` at node entries, so its
expressiveness depends on which edges carry landing nodes.  Three
regimes are compared:

* **none** — raw statement graph: insertion points on branch edges do
  not exist, so partial redundancies whose optimal insertion is an
  edge survive;
* **critical only** — the textbook minimum: enough for branch-to-join
  edges, but an edge from a single-successor block (ending in a kill)
  into a join still has no landing node, and the insertion forced to
  the join's entry recomputes on the already-covered path;
* **full edge-split form** (every edge into a join) — matches the
  edge-based formulation exactly.

Measured per regime: total per-path evaluations against the edge-based
LCM reference on the two crafted litmus graphs and a sweep of
unstructured random graphs.
"""

from repro.bench.harness import Table, record_report
from repro.bench.shapegen import ShapeConfig, random_shape_cfg
from repro.core.krs import analyze_krs, krs_placements
from repro.core.localcse import local_cse
from repro.core.nodegraph import expand_to_nodes
from repro.core.optimality import (
    check_equivalence,
    compare_per_path,
    enumerate_traces,
    replay,
)
from repro.core.pipeline import optimize
from repro.core.transform import apply_placements
from repro.ir.builder import CFGBuilder
from repro.ir.edgesplit import split_critical_edges, split_join_edges

REGIMES = ("none", "critical", "full")


def critical_edge_graph():
    """fork -> {A, join}; A -> join.  fork->join is critical."""
    b = CFGBuilder()
    b.block("fork").branch("p", "A", "join")
    b.block("A", "x = a + b").jump("join")
    b.block("join", "y = a + b").to_exit()
    return b.build()


def kill_into_join_graph():
    """pre (kills b) -> use; top -> use carries b*b: needs a landing
    node on the non-critical edge pre -> use."""
    b = CFGBuilder()
    b.block("top", "c = b * b").branch("p", "pre", "use")
    b.block("pre", "b = a - b").jump("use")
    b.block("use", "y = b * b").to_exit()
    return b.build()


def node_lcm(cfg, regime):
    source, _ = local_cse(cfg)
    expanded = expand_to_nodes(source).cfg
    if regime == "critical":
        split_critical_edges(expanded)
    elif regime == "full":
        split_join_edges(expanded)
    analysis = analyze_krs(expanded)
    return apply_placements(expanded, krs_placements(analysis, "lcm"))


def path_cost(original, transformed, max_branches=6):
    total = 0
    for trace in enumerate_traces(original, max_branches):
        total += replay(transformed, trace.decisions).total
    return total


def test_ablation_edge_splitting(benchmark):
    def measure():
        rows = []
        for name, graph_fn in (
            ("critical-edge graph", critical_edge_graph),
            ("kill-into-join graph", kill_into_join_graph),
        ):
            cfg = graph_fn()
            reference = path_cost(cfg, optimize(cfg, "lcm").cfg)
            costs = {}
            for regime in REGIMES:
                result = node_lcm(cfg, regime)
                assert check_equivalence(cfg, result.cfg, runs=15).equivalent
                assert compare_per_path(cfg, result.cfg, max_branches=6).safe
                costs[regime] = path_cost(cfg, result.cfg)
            rows.append((name, path_cost(cfg, cfg), costs, reference))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    table = Table(
        ["graph", "original", "none", "critical only", "full split", "edge-based ref"],
        title="A2: per-path evaluations under three edge-splitting regimes",
    )
    for name, original, costs, reference in rows:
        table.add_row(
            name, original, costs["none"], costs["critical"], costs["full"], reference
        )
    record_report("A2 edge-splitting ablation", table)

    crit_graph = rows[0]
    kill_graph = rows[1]
    # Critical-edge graph: 'none' misses the opportunity; both split
    # regimes reach the reference.
    assert crit_graph[2]["none"] > crit_graph[3]
    assert crit_graph[2]["critical"] == crit_graph[3]
    assert crit_graph[2]["full"] == crit_graph[3]
    # Kill-into-join graph: only full edge-split form is optimal.
    assert kill_graph[2]["critical"] > kill_graph[3]
    assert kill_graph[2]["full"] == kill_graph[3]


def test_ablation_edge_splitting_random_shapes(benchmark):
    """Aggregate over unstructured graphs: full <= critical <= none."""

    def sweep():
        totals = {regime: 0 for regime in REGIMES}
        reference = 0
        for seed in range(8):
            cfg = random_shape_cfg(seed, ShapeConfig(blocks=8))
            reference += path_cost(cfg, optimize(cfg, "lcm").cfg)
            for regime in REGIMES:
                totals[regime] += path_cost(cfg, node_lcm(cfg, regime).cfg)
        return totals, reference

    totals, reference = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_report(
        "A2 aggregate (8 unstructured graphs)",
        f"per-path evaluations: none {totals['none']}, critical "
        f"{totals['critical']}, full {totals['full']}, "
        f"edge-based reference {reference}",
    )
    assert totals["full"] <= totals["critical"] <= totals["none"]
    assert totals["full"] == reference
