"""T1 + T3 — computational optimality and safety, measured per path.

The paper's central theorem: BCM (and therefore LCM, which evaluates
identically) is computationally optimal among all *safe* placements —
no admissible transformation evaluates a candidate expression less
often on any path.  This benchmark sweeps random programs and checks,
over every control-flow path up to a branch bound:

* T3: no strategy in the safe family ever increases a path's count;
* T1a: LCM's counts equal BCM's on every path;
* T1b: no competing safe strategy (Morel-Renvoise, GCSE) ever beats
  LCM on any path;
* the naive-LICM baseline *does* violate safety (it speculates), which
  is the contrast the paper draws against pre-PRE loop optimisation.
"""

from repro.bench.generators import GeneratorConfig, random_cfg
from repro.bench.harness import Table, record_report
from repro.core.optimality import compare_per_path, paths_agree
from repro.core.pipeline import optimize

SEEDS = range(10)
CONFIG = GeneratorConfig(statements=10)
BOUND = 7


def sweep():
    rows = {}
    licm_violations = 0
    for seed in SEEDS:
        cfg = random_cfg(seed, CONFIG)
        lcm = optimize(cfg, "lcm")
        for strategy in ("lcm", "bcm", "mr", "gcse"):
            transformed = optimize(cfg, strategy)
            report = compare_per_path(cfg, transformed.cfg, max_branches=BOUND)
            assert report.safe, (strategy, seed)
            entry = rows.setdefault(
                strategy, {"paths": 0, "improved": 0, "before": 0, "after": 0}
            )
            entry["paths"] += report.paths_checked
            entry["improved"] += report.improvements
            entry["before"] += report.total_before
            entry["after"] += report.total_after
            if strategy != "lcm":
                head = compare_per_path(lcm.cfg, transformed.cfg, max_branches=BOUND)
                assert head.improvements == 0, (strategy, seed)
        bcm = optimize(cfg, "bcm")
        assert paths_agree(lcm.cfg, bcm.cfg, max_branches=BOUND), seed
        licm = optimize(cfg, "licm")
        licm_report = compare_per_path(cfg, licm.cfg, max_branches=BOUND)
        entry = rows.setdefault(
            "licm", {"paths": 0, "improved": 0, "before": 0, "after": 0}
        )
        entry["paths"] += licm_report.paths_checked
        entry["improved"] += licm_report.improvements
        entry["before"] += licm_report.total_before
        entry["after"] += licm_report.total_after
        licm_violations += len(licm_report.safety_violations)
    return rows, licm_violations


def test_theorem_computational_optimality(benchmark):
    rows, licm_violations = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = Table(
        ["strategy", "paths", "evals before", "evals after", "paths improved", "safety"],
        title=f"T1/T3: per-path evaluation counts over {len(list(SEEDS))} random programs",
    )
    for strategy in ("lcm", "bcm", "mr", "gcse", "licm"):
        entry = rows[strategy]
        safety = "SAFE" if strategy != "licm" else f"{licm_violations} violations"
        table.add_row(
            strategy,
            entry["paths"],
            entry["before"],
            entry["after"],
            entry["improved"],
            safety,
        )
    record_report("T1/T3 computational optimality + safety", table)

    # Paper shape: LCM/BCM tie; MR <= LCM's wins but never beats it;
    # GCSE strictly weaker; LICM unsafe.
    assert rows["lcm"]["after"] == rows["bcm"]["after"]
    assert rows["gcse"]["after"] >= rows["lcm"]["after"]
    assert rows["mr"]["after"] >= rows["lcm"]["after"]
    assert licm_violations > 0
