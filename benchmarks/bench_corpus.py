"""C4 — elimination quality on the realistic corpus programs.

The random generators measure breadth; the corpus
(``tests/corpus/*.mini``) measures depth: hand-written kernels
(polynomial evaluation, address walks, filters, bounded GCD/Collatz)
with the redundancy patterns real code exhibits.  Same columns as C3,
plus the full pass pipeline.
"""

from pathlib import Path

from repro.bench.harness import Table, record_report
from repro.bench.metrics import dynamic_evaluations
from repro.core.pipeline import optimize
from repro.lang import compile_program
from repro.passes import standard_pipeline

CORPUS = sorted(
    (Path(__file__).resolve().parent.parent / "tests" / "corpus").glob("*.mini")
)
STRATEGIES = ("none", "gcse", "mr", "lcm")
RUNS = 10


def sweep():
    rows = []
    for path in CORPUS:
        cfg = compile_program(path.read_text())
        counts = {}
        for strategy in STRATEGIES:
            result = optimize(cfg, strategy)
            total, completed = dynamic_evaluations(
                result.cfg, runs=RUNS, seed=31, env_source=cfg,
                max_steps=2_000_000,
            )
            assert completed == RUNS, (path.stem, strategy)
            counts[strategy] = total
        pipe = standard_pipeline(cfg)
        counts["pipeline"], _ = dynamic_evaluations(
            pipe.cfg, runs=RUNS, seed=31, env_source=cfg, max_steps=2_000_000
        )
        rows.append((path.stem, counts))
    return rows


def test_corpus_quality(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table(
        ["program", *STRATEGIES, "pipeline"],
        title=f"C4: dynamic evaluations on the corpus ({RUNS} runs each)",
    )
    totals = {name: 0 for name in (*STRATEGIES, "pipeline")}
    for stem, counts in rows:
        table.add_row(stem, *(counts[s] for s in (*STRATEGIES, "pipeline")))
        for s in (*STRATEGIES, "pipeline"):
            totals[s] += counts[s]
    table.add_row("TOTAL", *(totals[s] for s in (*STRATEGIES, "pipeline")))
    record_report("C4 corpus quality", table)

    assert totals["lcm"] <= totals["gcse"] <= totals["none"]
    assert totals["lcm"] <= totals["mr"]
    assert totals["pipeline"] <= totals["lcm"]
