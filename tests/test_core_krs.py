"""Unit tests for the original node-level (KRS) formulation.

The node-level predicates are checked on hand-expanded graphs, and the
three variants (BCM/ALCM/LCM) are checked for the relationships the
paper proves: same deletions modulo isolation, insertion frontiers
ordered earliest >= latest, isolated single uses left alone.
"""

import pytest

from tests.helpers import AB, diamond, straight_line

from repro.bench.figures import isolated_example
from repro.core.krs import analyze_krs, krs_placements
from repro.core.nodegraph import expand_to_nodes
from repro.ir.edgesplit import split_critical_edges


def node_graph(cfg):
    expanded = expand_to_nodes(cfg).cfg
    split_critical_edges(expanded)
    return expanded


def analysis_of(cfg):
    return analyze_krs(node_graph(cfg))


class TestGranularityGuard:
    def test_multi_instruction_block_rejected(self):
        cfg = straight_line(["x = a + b", "y = a + b"])
        with pytest.raises(ValueError, match="statement-granular"):
            analyze_krs(cfg)

    def test_expanded_graph_accepted(self):
        analysis_of(straight_line(["x = a + b", "y = a + b"]))


class TestPredicates:
    def test_dsafe_at_computing_node(self):
        analysis = analysis_of(diamond())
        idx = analysis.universe.index_of(AB)
        assert idx in analysis.dsafe["left@0"]
        assert idx in analysis.dsafe["join@0"]

    def test_dsafe_propagates_to_entry(self):
        analysis = analysis_of(diamond())
        idx = analysis.universe.index_of(AB)
        # Both arms lead to a computation of a+b.
        assert idx in analysis.dsafe["entry@0"]

    def test_usafe_below_computation(self):
        cfg = straight_line(["x = a + b"], ["y = c * 2"], ["z = a + b"])
        analysis = analysis_of(cfg)
        idx = analysis.universe.index_of(AB)
        assert idx in analysis.usafe["s2@0"]
        assert idx not in analysis.usafe["s0@0"]

    def test_earliest_at_entry_for_globally_dsafe(self):
        analysis = analysis_of(diamond())
        idx = analysis.universe.index_of(AB)
        assert idx in analysis.earliest["entry@0"]
        # Not earliest anywhere below: the region above is already safe.
        below = [l for l in analysis.cfg.labels if l != "entry@0"]
        assert all(idx not in analysis.earliest[l] for l in below)

    def test_delay_runs_to_the_uses(self):
        analysis = analysis_of(diamond())
        idx = analysis.universe.index_of(AB)
        assert idx in analysis.delay["left@0"]
        assert idx in analysis.delay["right@0"]
        # Past the occurrence in left the delay chain is broken, so the
        # join (whose left predecessor computes a+b) is not delayable.
        assert idx not in analysis.delay["join@0"]

    def test_delay_stops_at_first_use(self):
        cfg = straight_line(["x = a + b"], ["y = a + b"])
        analysis = analysis_of(cfg)
        idx = analysis.universe.index_of(AB)
        assert idx in analysis.delay["s0@0"]
        # Below the first occurrence the delay chain has been broken.
        assert idx not in analysis.delay["s1@0"]

    def test_latest_frontier_in_diamond(self):
        analysis = analysis_of(diamond())
        idx = analysis.universe.index_of(AB)
        # The optimal insertion frontier: the computing arm itself and
        # the empty arm (feeding the join's use).
        latest = {l for l in analysis.cfg.labels if idx in analysis.latest[l]}
        assert latest == {"left@0", "right@0"}

    def test_isolated_single_use(self):
        analysis = analysis_of(isolated_example())
        idx = analysis.universe.index_of(AB)
        assert idx in analysis.latest["only@0"]
        assert idx in analysis.isolated["only@0"]


class TestVariants:
    def test_lcm_leaves_isolated_occurrence_alone(self):
        analysis = analysis_of(isolated_example())
        for plan in krs_placements(analysis, "lcm"):
            assert plan.is_identity, plan.describe()

    def test_alcm_touches_isolated_occurrence(self):
        analysis = analysis_of(isolated_example())
        plan = next(p for p in krs_placements(analysis, "alcm") if p.expr == AB)
        assert plan.insert_entries == {"only@0"}
        assert plan.delete_blocks == {"only@0"}

    def test_bcm_inserts_at_entry_in_diamond(self):
        analysis = analysis_of(diamond())
        plan = next(p for p in krs_placements(analysis, "bcm") if p.expr == AB)
        assert plan.insert_entries == {"entry@0"}
        assert plan.delete_blocks == {"left@0", "join@0"}

    def test_lcm_insertion_at_join_and_generator_kept(self):
        analysis = analysis_of(diamond())
        plan = next(p for p in krs_placements(analysis, "lcm") if p.expr == AB)
        # left@0 is latest-and-occurrence: it stays as the generator.
        assert "left@0" in plan.insert_entries or "left@0" not in plan.delete_blocks
        assert "join@0" in plan.delete_blocks

    def test_unknown_variant_rejected(self):
        analysis = analysis_of(diamond())
        with pytest.raises(ValueError, match="variant"):
            krs_placements(analysis, "xxx")

    def test_lcm_insertions_subset_of_alcm(self):
        analysis = analysis_of(diamond())
        lcm = {p.expr: p for p in krs_placements(analysis, "lcm")}
        alcm = {p.expr: p for p in krs_placements(analysis, "alcm")}
        for expr, plan in lcm.items():
            assert plan.insert_entries <= alcm[expr].insert_entries


class TestEdgeSplitForm:
    def test_noncritical_join_edge_needs_landing_node(self):
        """Regression: critical-edge splitting alone loses optimality.

        ``pre`` kills ``b`` and feeds the join ``use`` whose other
        predecessor (``top``, via the loop-ish edge) already carries
        ``b * b``.  The only optimal insertion point is the edge
        ``pre -> use`` — not critical (pre has one successor), so
        without full edge-split form the node formulation is forced to
        insert at ``use``'s entry and recomputes on the already-covered
        path.  The pipeline's ``krs-lcm`` uses edge-split form and must
        match edge-based LCM path-for-path here.
        """
        from repro.core.optimality import paths_agree
        from repro.core.pipeline import optimize
        from repro.ir.builder import CFGBuilder

        b = CFGBuilder()
        b.block("top", "c = b * b").branch("p", "pre", "use")
        b.block("pre", "b = a - b").jump("use")
        b.block("use", "y = b * b").to_exit()
        cfg = b.build()
        edge = optimize(cfg, "lcm")
        node = optimize(cfg, "krs-lcm")
        assert paths_agree(edge.cfg, node.cfg, max_branches=4)
