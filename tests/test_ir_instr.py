"""Unit tests for instructions and terminators."""

import pytest

from repro.ir.expr import BinExpr, Const, Var
from repro.ir.instr import Assign, CondBranch, Halt, InstrError, Jump


class TestAssign:
    def test_str(self):
        assert str(Assign("x", BinExpr("+", Var("a"), Var("b")))) == "x = a + b"

    def test_uses_and_defines(self):
        instr = Assign("x", BinExpr("+", Var("a"), Var("b")))
        assert instr.uses() == ("a", "b")
        assert instr.defines() == "x"

    def test_copy_is_not_computation(self):
        assert not Assign("x", Var("y")).is_computation
        assert not Assign("x", Const(3)).is_computation

    def test_operator_rhs_is_computation(self):
        assert Assign("x", BinExpr("*", Var("a"), Const(2))).is_computation

    def test_empty_target_rejected(self):
        with pytest.raises(InstrError):
            Assign("", Var("y"))

    def test_immutability(self):
        instr = Assign("x", Var("y"))
        with pytest.raises(Exception):
            instr.target = "z"


class TestTerminators:
    def test_jump_successors(self):
        assert Jump("next").successors() == ("next",)

    def test_jump_has_no_uses(self):
        assert Jump("next").uses() == ()

    def test_branch_successors_ordered(self):
        term = CondBranch(Var("p"), "then", "else_")
        assert term.successors() == ("then", "else_")

    def test_branch_uses_condition_variable(self):
        assert CondBranch(Var("p"), "a", "b").uses() == ("p",)

    def test_branch_on_constant_uses_nothing(self):
        assert CondBranch(Const(1), "a", "b").uses() == ()

    def test_branch_rejects_compound_condition(self):
        with pytest.raises(InstrError):
            CondBranch(BinExpr("<", Var("a"), Var("b")), "t", "f")

    def test_halt(self):
        assert Halt().successors() == ()
        assert Halt().uses() == ()
        assert str(Halt()) == "halt"
