"""Tests for the tracing core: spans, counters, no-op mode, export."""

import json


from tests.helpers import diamond

from repro.analysis.local import compute_local_properties
from repro.dataflow.problem import DataflowProblem, GenKillTransfer
from repro.dataflow.solver import solve
from repro.obs.trace import (
    Tracer,
    activate,
    count,
    current,
    deactivate,
    gauge,
    is_active,
    span,
    tracing,
)


def availability_problem(cfg):
    local = compute_local_properties(cfg)
    return DataflowProblem.forward_intersect(
        "avail",
        local.universe.width,
        GenKillTransfer(gen=local.comp, keep=local.transp),
    )


class TestTracerSpans:
    def test_events_record_names_and_attrs(self):
        tracer = Tracer()
        with tracer.span("outer", kind="test") as sp:
            sp.set(extra=3)
        (event,) = tracer.events
        assert event.name == "outer"
        assert event.attrs == {"kind": "test", "extra": 3}
        assert event.parent is None
        assert event.duration_ms >= 0

    def test_nesting_keeps_parent_links(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.events  # innermost closes first
        assert inner.name == "inner"
        assert inner.parent == outer.id
        assert outer.parent is None

    def test_counters_and_gauges(self):
        tracer = Tracer()
        tracer.count("ticks")
        tracer.count("ticks", 4)
        tracer.gauge("width", 7.5)
        assert tracer.counters == {"ticks": 5}
        assert tracer.gauges == {"width": 7.5}

    def test_spans_query_filters(self):
        tracer = Tracer()
        with tracer.span("solve", problem="avail"):
            pass
        with tracer.span("solve", problem="ant"):
            pass
        assert len(tracer.spans("solve")) == 2
        assert len(tracer.spans("solve", problem="ant")) == 1
        assert tracer.spans("missing") == []

    def test_summary_aggregates_numeric_attrs_by_problem(self):
        tracer = Tracer()
        with tracer.span("solve", problem="avail", sweeps=3):
            pass
        with tracer.span("solve", problem="avail", sweeps=2):
            pass
        summary = tracer.summary()
        entry = summary["solve[avail]"]
        assert entry["count"] == 2
        assert entry["sweeps"] == 5
        assert entry["total_ms"] >= 0


class TestNoOpMode:
    def test_module_span_is_null_when_off(self):
        assert not is_active()
        with span("anything", a=1) as sp:
            sp.set(b=2)  # must be accepted and discarded
        assert current() is None

    def test_module_counters_are_noops_when_off(self):
        count("nothing")
        gauge("nothing", 1.0)
        assert current() is None

    def test_instrumented_solve_records_nothing_when_off(self):
        cfg = diamond()
        sol = solve(cfg, availability_problem(cfg))
        assert sol.stats.bitvec_ops == {}  # tallied only when tracing


class TestActivation:
    def test_tracing_context_installs_and_restores(self):
        outer = Tracer()
        activate(outer)
        try:
            with tracing() as inner:
                assert current() is inner
                with span("x"):
                    pass
            assert current() is outer
            assert len(inner.events) == 1
        finally:
            deactivate()
        assert not is_active()

    def test_solver_emits_span_with_stats(self):
        cfg = diamond()
        with tracing() as tracer:
            sol = solve(cfg, availability_problem(cfg))
        (event,) = tracer.spans("dataflow.solve")
        assert event.attrs["problem"] == "avail"
        assert event.attrs["strategy"] == "auto"
        assert event.attrs["backend"] == "dense"
        assert event.attrs["sweeps"] == sol.stats.sweeps
        assert event.attrs["blocks"] == len(cfg)
        # The dense backend does no counted BitVector operations.
        assert event.attrs["bitvec_ops"] == sol.stats.total_bitvec_ops == 0

    def test_reference_solve_tallies_ops_in_span(self):
        cfg = diamond()
        with tracing() as tracer:
            sol = solve(cfg, availability_problem(cfg), strategy="round-robin")
        (event,) = tracer.spans("dataflow.solve")
        assert event.attrs["strategy"] == "round-robin"
        assert event.attrs["backend"] == "reference"
        assert event.attrs["bitvec_ops"] == sol.stats.total_bitvec_ops > 0


class TestExport:
    def test_json_document_shape(self, tmp_path):
        cfg = diamond()
        with tracing() as tracer:
            solve(cfg, availability_problem(cfg))
            tracer.count("cache.miss")
        path = tmp_path / "trace.json"
        tracer.write(str(path))
        data = json.loads(path.read_text())
        assert data["format"] == "repro-trace"
        assert data["version"] == 1
        assert data["counters"] == {"cache.miss": 1}
        names = {event["name"] for event in data["events"]}
        assert "dataflow.solve" in names
        assert "dataflow.solve[avail]" in data["summary"]
        for event in data["events"]:
            assert {"type", "id", "name", "parent", "start_ms",
                    "duration_ms", "attrs"} <= set(event)
