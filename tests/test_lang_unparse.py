"""Unparser tests, including the parse/unparse round-trip property."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ir.expr import BINARY_OPS, BinExpr, Const, UnaryExpr, Var
from repro.lang import ast
from repro.lang.parser import parse_program
from repro.lang.unparse import unparse, unparse_expr

quick = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# -- hypothesis strategies over parser-canonical ASTs -----------------------

names = st.sampled_from(["a", "b", "count", "x_1", "tmp"])
atoms = st.one_of(
    names.map(Var),
    st.integers(min_value=-50, max_value=99).map(Const),
)
symbolic_binops = st.sampled_from(
    [op for op in BINARY_OPS if not op.isalpha()]
)
exprs = st.one_of(
    atoms,
    st.builds(BinExpr, symbolic_binops, atoms, atoms),
    st.builds(BinExpr, st.sampled_from(["min", "max"]), atoms, atoms),
    st.builds(UnaryExpr, st.sampled_from(["!", "~"]), names.map(Var)),
    st.builds(UnaryExpr, st.just("-"), names.map(Var)),
    st.builds(UnaryExpr, st.just("abs"), atoms),
)

assigns = st.builds(ast.AssignStmt, names, exprs)


def statements(depth: int):
    if depth <= 0:
        return st.one_of(assigns, st.just(ast.SkipStmt()))
    inner = st.lists(statements(depth - 1), min_size=1, max_size=3)
    return st.one_of(
        assigns,
        st.just(ast.SkipStmt()),
        st.builds(
            ast.IfStmt,
            exprs,
            inner.map(tuple),
            st.one_of(st.just(()), inner.map(tuple)),
        ),
        st.builds(ast.WhileStmt, exprs, inner.map(tuple)),
        st.builds(ast.DoWhileStmt, exprs, inner.map(tuple)),
        st.builds(ast.RepeatStmt, atoms, inner.map(tuple)),
    )


programs = st.lists(statements(2), min_size=0, max_size=5).map(
    lambda body: ast.Program(tuple(body))
)


class TestUnparseExpr:
    def test_binary(self):
        assert unparse_expr(BinExpr("+", Var("a"), Const(2))) == "a + 2"

    def test_min(self):
        assert unparse_expr(BinExpr("min", Var("a"), Var("b"))) == "min(a, b)"

    def test_unary(self):
        assert unparse_expr(UnaryExpr("!", Var("p"))) == "!p"

    def test_abs(self):
        assert unparse_expr(UnaryExpr("abs", Const(-3))) == "abs(-3)"


class TestUnparseProgram:
    def test_small_program_text(self):
        program = ast.Program(
            (
                ast.AssignStmt("x", BinExpr("+", Var("a"), Var("b"))),
                ast.WhileStmt(
                    Var("p"),
                    (ast.AssignStmt("x", BinExpr("-", Var("x"), Const(1))),),
                ),
            )
        )
        assert unparse(program) == (
            "x = a + b;\n"
            "while (p) {\n"
            "    x = x - 1;\n"
            "}\n"
        )

    def test_empty_program(self):
        assert unparse(ast.Program(())) == ""

    @quick
    @given(programs)
    def test_roundtrip_is_a_fixpoint(self, program):
        text = unparse(program)
        reparsed = parse_program(text)
        # AST line numbers differ, so compare via the textual fixpoint.
        assert unparse(reparsed) == text

    @quick
    @given(programs)
    def test_roundtrip_preserves_semantics(self, program):
        from repro.lang.lower import lower_program
        from repro.interp.machine import run
        from repro.interp.random_inputs import random_envs

        original = lower_program(program)
        reparsed = lower_program(parse_program(unparse(program)))
        for env in random_envs(original, 3, seed=11):
            before = run(original, env, max_steps=20_000)
            after = run(reparsed, env, max_steps=20_000)
            assert before.reached_exit == after.reached_exit
            if before.reached_exit:
                assert before.env == after.env

    def test_generated_workloads_unparse(self):
        from repro.bench.generators import random_program

        for seed in range(5):
            program = random_program(seed)
            text = unparse(program)
            assert unparse(parse_program(text)) == text
