"""Incremental + demand-driven liveness is bit-identical to re-solving.

The correctness spine of the incremental engine
(:mod:`repro.dataflow.incremental`): for random CFGs and random
insert/delete edit scripts, the patched fixpoint — and every
demand-driven point query — must coincide **bit for bit** with a fresh
:func:`~repro.analysis.liveness.compute_liveness` of the current graph
content.  Targeted tests pin the counter contracts (a DCE fixpoint run
performs exactly one full solve; pure point-query workloads perform
none), the manager wiring (``notify_cfg_edited`` patches,
``notify_cfg_mutated`` rebuilds) and the edge cases (unknown labels,
unknown variables, observable names the program never mentions).
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.helpers import diamond, do_while_invariant

from repro.analysis.liveness import compute_liveness, liveness_of
from repro.bench.generators import GeneratorConfig, random_cfg
from repro.bench.shapegen import ShapeConfig, random_shape_cfg
from repro.core.transform import _is_live_after
from repro.dataflow.incremental import IncrementalLiveness
from repro.ir.cfg import CFGError
from repro.ir.expr import BinExpr, Const, Var
from repro.ir.instr import Assign
from repro.obs.manager import (
    AnalysisManager,
    notify_cfg_edited,
    notify_cfg_mutated,
)
from repro.obs.trace import Tracer, activate, deactivate

SMALL = GeneratorConfig(statements=10, max_depth=2)
SHAPES = ShapeConfig(blocks=8, back_edge_probability=0.5)

quick = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

seeds = st.integers(min_value=0, max_value=10_000)


def _random_edit(cfg, rng, step):
    """Mutate one block's instruction list in place; return its label."""
    labels = [l for l in cfg.labels if cfg.block(l).instrs]
    if labels and rng.random() < 0.5:
        label = rng.choice(labels)
        block = cfg.block(label)
        del block.instrs[rng.randrange(len(block.instrs))]
    else:
        label = rng.choice(list(cfg.labels))
        block = cfg.block(label)
        names = sorted(cfg.variables()) or ["seed"]
        target = rng.choice(names + [f"fresh{step}"])
        expr = BinExpr("+", Var(rng.choice(names)), Const(rng.randrange(7)))
        block.instrs.insert(rng.randrange(len(block.instrs) + 1), Assign(target, expr))
    return label


def _assert_matches_reference(engine, cfg, exit_names, context=""):
    """engine.result() must equal compute_liveness bit for bit."""
    reference = compute_liveness(cfg, live_at_exit=exit_names)
    result = engine.result()
    assert result.variables == reference.variables, context
    assert result.index == reference.index, context
    for label in cfg.labels:
        assert result.livein[label].width == reference.livein[label].width
        assert result.livein[label].bits == reference.livein[label].bits, (
            context,
            label,
            "livein",
        )
        assert result.liveout[label].bits == reference.liveout[label].bits, (
            context,
            label,
            "liveout",
        )


class TestIncrementalEquivalence:
    @quick
    @given(seed=seeds, edit_seed=seeds)
    def test_edit_scripts_match_full_resolve(self, seed, edit_seed):
        cfg = random_cfg(seed, SMALL)
        rng = random.Random(edit_seed)
        names = sorted(cfg.variables())
        exit_names = names[: rng.randrange(3)] if names else []
        engine = IncrementalLiveness(cfg, live_at_exit=exit_names)
        _assert_matches_reference(engine, cfg, exit_names, "initial")
        for step in range(6):
            label = _random_edit(cfg, rng, step)
            engine.block_edited(label)
            _assert_matches_reference(engine, cfg, exit_names, f"step {step}")
        assert engine.stats.full_solves == 1  # everything after is patched
        assert engine.stats.incr_updates >= 1

    @quick
    @given(seed=seeds, edit_seed=seeds)
    def test_edit_scripts_on_loopy_shapes(self, seed, edit_seed):
        # Deletion around back edges is where naive re-propagation from
        # stale facts goes wrong: a loop-carried live range sustains
        # itself.  The reset-region update must not.
        cfg = random_shape_cfg(seed, SHAPES)
        rng = random.Random(edit_seed)
        engine = IncrementalLiveness(cfg)
        engine.solve()
        for step in range(6):
            label = _random_edit(cfg, rng, step)
            engine.block_edited(label)
        _assert_matches_reference(engine, cfg, (), "after burst")
        assert engine.stats.full_solves == 1

    @quick
    @given(seed=seeds, edit_seed=seeds)
    def test_point_queries_match_reference(self, seed, edit_seed):
        cfg = random_cfg(seed, SMALL)
        rng = random.Random(edit_seed)
        engine = IncrementalLiveness(cfg)
        for step in range(4):
            reference = compute_liveness(cfg)
            probe_vars = (reference.variables or ["x"])[:4]
            for label in cfg.labels:
                assert engine.live_in(label) == reference.live_in(label)
                assert engine.live_out(label) == reference.live_out(label)
                for var in probe_vars:
                    assert engine.is_live_in(label, var) == reference.is_live_in(
                        label, var
                    )
                    assert engine.is_live_out(label, var) == reference.is_live_out(
                        label, var
                    )
                block = cfg.block(label)
                for i, instr in enumerate(block.instrs):
                    assert engine.is_live_after(
                        label, i, instr.target
                    ) == _is_live_after(cfg, reference, label, i, instr.target)
            label = _random_edit(cfg, rng, step)
            engine.block_edited(label)


class TestDemandDriven:
    def test_point_queries_never_solve_globally(self):
        cfg = do_while_invariant()
        engine = IncrementalLiveness(cfg)
        reference = compute_liveness(cfg)
        assert engine.is_live_in("after", "w") == reference.is_live_in("after", "w")
        assert engine.stats.full_solves == 0
        assert engine.stats.demand_solves >= 1

    def test_demand_region_is_the_backward_slice(self):
        # Querying a late block of a chain must not solve the blocks
        # before it: a backward fact depends only on successors.
        b_count = 12
        from repro.ir.builder import CFGBuilder

        b = CFGBuilder()
        for i in range(b_count):
            handle = b.block(f"s{i}", f"v{i} = a + {i}")
            if i + 1 < b_count:
                handle.jump(f"s{i + 1}")
            else:
                handle.to_exit()
        cfg = b.build()
        engine = IncrementalLiveness(cfg)
        engine.is_live_out(f"s{b_count - 1}", "a")
        assert engine.stats.full_solves == 0
        # The slice of the last block is just itself (+ the exit block).
        assert engine.stats.blocks_demanded <= 2

    def test_promotion_after_demand_is_exact(self):
        cfg = random_cfg(7, SMALL)
        engine = IncrementalLiveness(cfg)
        some_label = next(iter(cfg.labels))
        engine.live_in(some_label)  # partial demand solve
        assert engine.stats.full_solves == 0
        _assert_matches_reference(engine, cfg, (), "promoted")

    def test_interleaved_demand_and_edits(self):
        cfg = random_shape_cfg(3, SHAPES)
        rng = random.Random(11)
        engine = IncrementalLiveness(cfg)
        for step in range(8):
            reference = compute_liveness(cfg)
            label = rng.choice(list(cfg.labels))
            var = rng.choice(reference.variables) if reference.variables else "x"
            assert engine.is_live_out(label, var) == reference.is_live_out(label, var)
            engine.block_edited(_random_edit(cfg, rng, step))
        assert engine.stats.full_solves == 0


class TestCounters:
    def _counters(self, fn):
        tracer = Tracer()
        activate(tracer)
        try:
            fn()
        finally:
            deactivate()
        return dict(tracer.counters)

    def test_dce_performs_exactly_one_full_solve(self):
        # The pinned regression: DCE used to re-solve the world once per
        # fixpoint round; with the engine it solves once and patches.
        from repro.passes.dce import dead_code_elimination

        cfg = random_cfg(5, GeneratorConfig(statements=14))
        counters = self._counters(lambda: dead_code_elimination(cfg))
        assert counters.get("dataflow.incr.fullsolve", 0) == 1
        assert counters.get("dataflow.solve[liveness]", counters.get("cache.miss", 1))

    def test_eliminate_dead_code_performs_exactly_one_full_solve(self):
        from repro.core.transform import eliminate_dead_code
        from tests.helpers import straight_line

        cfg = straight_line(["t1 = a + b", "t2 = t1 + 1", "x = c + d"])
        counters = self._counters(lambda: eliminate_dead_code(cfg, ["t1", "t2"]))
        assert counters.get("dataflow.incr.fullsolve", 0) == 1

    def test_update_counter_fires_on_edits(self):
        cfg = diamond()
        engine = IncrementalLiveness(cfg)

        def run():
            engine.solve()
            cfg.block("left").instrs.append(Assign("q", BinExpr("+", Var("a"), Const(1))))
            engine.block_edited("left")
            engine.solve()

        counters = self._counters(run)
        assert counters.get("dataflow.incr.fullsolve", 0) == 1
        assert counters.get("dataflow.incr.update", 0) == 1


class TestManagerWiring:
    def test_manager_engine_follows_edit_hook(self):
        manager = AnalysisManager()
        cfg = random_cfg(9, SMALL)
        engine = manager.liveness(cfg)
        assert manager.liveness(cfg) is engine  # one engine per (cfg, exit set)
        engine.solve()
        label = _random_edit(cfg, random.Random(1), 0)
        notify_cfg_edited(cfg, [label])
        _assert_matches_reference(engine, cfg, (), "after hook")
        assert engine.stats.full_solves == 1

    def test_full_solve_is_memoized_by_content(self):
        manager = AnalysisManager()
        cfg = random_cfg(9, SMALL)
        twin = cfg.copy()
        manager.liveness(cfg).solve()
        before = manager.stats.misses
        manager.liveness(twin).solve()  # same content, distinct object
        assert manager.stats.misses == before
        assert manager.stats.hits >= 1

    def test_mutation_hook_resets_the_engine(self):
        manager = AnalysisManager()
        cfg = random_cfg(4, SMALL)
        engine = manager.liveness(cfg)
        engine.solve()
        # A structural mutation (block added) must escalate to rebuild.
        some = next(iter(cfg.labels))
        cfg.split_edge(some, cfg.succs(some)[0], "wedge")
        notify_cfg_mutated(cfg)
        _assert_matches_reference(engine, cfg, (), "after rebuild")
        assert engine.stats.full_solves == 2

    def test_distinct_exit_sets_get_distinct_engines(self):
        manager = AnalysisManager()
        cfg = diamond()
        default = manager.liveness(cfg)
        observed = manager.liveness(cfg, live_at_exit=["y"])
        assert default is not observed
        assert observed.is_live_out("join", "y")
        assert not default.is_live_out("join", "y")

    def test_liveness_of_routes_through_the_memo_tier(self):
        manager = AnalysisManager()
        cfg = diamond()
        first = liveness_of(cfg, manager=manager)
        second = liveness_of(cfg, manager=manager)
        assert first is second
        assert manager.stats.hits == 1
        assert liveness_of(cfg).livein.keys() == first.livein.keys()


class TestEdgeCases:
    def test_unknown_label_raises(self):
        engine = IncrementalLiveness(diamond())
        with pytest.raises(CFGError):
            engine.is_live_in("nope", "a")

    def test_unknown_variable_is_dead(self):
        engine = IncrementalLiveness(diamond())
        assert not engine.is_live_in("join", "zzz")
        assert not engine.is_live_out("cond", "zzz")

    def test_unmentioned_exit_name_is_live_everywhere(self):
        cfg = diamond()
        engine = IncrementalLiveness(cfg, live_at_exit=["phantom"])
        for label in cfg.labels:
            assert engine.is_live_in(label, "phantom")
            assert engine.is_live_out(label, "phantom")
        _assert_matches_reference(engine, cfg, ("phantom",), "phantom")

    def test_new_block_label_escalates_to_rebuild(self):
        cfg = diamond()
        engine = IncrementalLiveness(cfg)
        engine.solve()
        split = cfg.split_edge("cond", "right", "wedge")
        split.instrs.append(Assign("r", BinExpr("+", Var("a"), Const(2))))
        engine.block_edited(split.label)  # unseen label: full rebuild
        _assert_matches_reference(engine, cfg, (), "after split")

    def test_universe_growth_and_decay_roundtrip(self):
        cfg = diamond()
        engine = IncrementalLiveness(cfg)
        engine.solve()
        # Grow: a brand-new variable appears...
        cfg.block("left").instrs.append(
            Assign("w", BinExpr("+", Var("fresh"), Const(1)))
        )
        engine.block_edited("left")
        _assert_matches_reference(engine, cfg, (), "grown")
        # ... and decays: its last mention is deleted again.
        del cfg.block("left").instrs[-1]
        engine.block_edited("left")
        _assert_matches_reference(engine, cfg, (), "decayed")
