"""Unit tests for structural CFG validation."""

import pytest

from tests.helpers import diamond

from repro.ir.block import BasicBlock
from repro.ir.builder import parse_assign
from repro.ir.cfg import CFG
from repro.ir.instr import CondBranch, Halt, Jump
from repro.ir.expr import Var
from repro.ir.validate import ValidationError, validate_cfg


def minimal() -> CFG:
    cfg = CFG()
    cfg.add_block(BasicBlock("entry", [], Jump("exit")))
    cfg.add_block(BasicBlock("exit", [], Halt()))
    return cfg


class TestValidate:
    def test_minimal_graph_valid(self):
        validate_cfg(minimal())

    def test_diamond_valid(self):
        validate_cfg(diamond())

    def test_missing_entry(self):
        cfg = CFG(entry="nope")
        cfg.add_block(BasicBlock("exit", [], Halt()))
        with pytest.raises(ValidationError, match="entry"):
            validate_cfg(cfg)

    def test_unterminated_block(self):
        cfg = minimal()
        cfg.add_block(BasicBlock("loose"))
        with pytest.raises(ValidationError, match="unterminated"):
            validate_cfg(cfg)

    def test_halt_outside_exit(self):
        cfg = minimal()
        cfg.block("entry").terminator = Jump("mid")
        cfg.add_block(BasicBlock("mid", [], Halt()))
        with pytest.raises(ValidationError, match="halt"):
            validate_cfg(cfg)

    def test_dangling_target(self):
        cfg = minimal()
        cfg.block("entry").terminator = Jump("ghost")
        with pytest.raises(ValidationError, match="ghost"):
            validate_cfg(cfg)

    def test_branch_same_target_twice(self):
        cfg = minimal()
        cfg.block("entry").terminator = Jump("mid")
        cfg.add_block(BasicBlock("mid", [], CondBranch(Var("p"), "exit", "exit")))
        with pytest.raises(ValidationError, match="same target"):
            validate_cfg(cfg)

    def test_nonempty_entry_rejected(self):
        cfg = minimal()
        cfg.block("entry").append(parse_assign("x = 1"))
        with pytest.raises(ValidationError, match="entry block must be empty"):
            validate_cfg(cfg)

    def test_nonempty_entry_allowed_when_relaxed(self):
        cfg = minimal()
        cfg.block("entry").append(parse_assign("x = 1"))
        validate_cfg(cfg, require_empty_entry_exit=False)

    def test_entry_with_predecessor_rejected(self):
        cfg = minimal()
        cfg.block("entry").terminator = Jump("mid")
        cfg.add_block(BasicBlock("mid", [], CondBranch(Var("p"), "entry", "exit")))
        with pytest.raises(ValidationError, match="no predecessors"):
            validate_cfg(cfg)

    def test_unreachable_block_rejected(self):
        cfg = minimal()
        cfg.add_block(BasicBlock("island", [], Jump("exit")))
        with pytest.raises(ValidationError, match="unreachable"):
            validate_cfg(cfg)

    def test_block_not_reaching_exit_rejected(self):
        cfg = minimal()
        cfg.block("entry").terminator = Jump("mid")
        # mid loops forever on itself via a branch back to mid/trap.
        cfg.add_block(BasicBlock("mid", [], CondBranch(Var("p"), "trap", "exit")))
        cfg.add_block(BasicBlock("trap", [], Jump("trap")))
        with pytest.raises(ValidationError, match="cannot reach exit"):
            validate_cfg(cfg)
