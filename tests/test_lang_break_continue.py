"""Tests for break/continue lowering and their interaction with PRE.

Multi-exit loops are the interesting case for down-safety: an
expression computed after a conditional break is *not* anticipatable
at the loop entry, so LCM must not hoist it.
"""

import pytest

from repro.core.optimality import check_equivalence, compare_per_path
from repro.core.pipeline import optimize
from repro.interp.machine import run
from repro.ir.validate import validate_cfg
from repro.lang import compile_program
from repro.lang.errors import LangError


def result_of(source, **inputs):
    cfg = compile_program(source)
    validate_cfg(cfg)
    return run(cfg, inputs)


class TestBreak:
    def test_break_leaves_while_loop(self):
        src = """
        i = 0; s = 0;
        while (1) {
            t = i >= n;
            if (t) { break; }
            s = s + i;
            i = i + 1;
        }
        """
        assert result_of(src, n=5).env["s"] == 10

    def test_break_in_repeat(self):
        src = """
        s = 0;
        repeat (10) {
            s = s + 1;
            t = s == 4;
            if (t) { break; }
        }
        """
        assert result_of(src).env["s"] == 4

    def test_break_in_do_while(self):
        src = """
        i = 0;
        do {
            i = i + 1;
            t = i == 3;
            if (t) { break; }
        } while (1);
        """
        assert result_of(src).env["i"] == 3

    def test_break_targets_innermost_loop(self):
        src = """
        total = 0;
        repeat (3) {
            repeat (10) {
                total = total + 1;
                t = total % 2;
                if (t) { break; }
            }
        }
        """
        # Inner loop breaks on odd totals: first inner run breaks at 1,
        # second at 3 (1 -> 2? no: totals 2,3 -> break at 3), etc.
        res = result_of(src)
        assert res.reached_exit
        assert res.env["total"] == 5

    def test_statements_after_break_are_dropped(self):
        src = """
        x = 0;
        while (1) {
            break;
            x = 99;
        }
        """
        assert result_of(src).env["x"] == 0

    def test_break_outside_loop_rejected(self):
        with pytest.raises(LangError, match="break"):
            compile_program("break;")

    def test_both_arms_break(self):
        src = """
        while (1) {
            if (p) { x = 1; break; } else { x = 2; break; }
        }
        """
        assert result_of(src, p=1).env["x"] == 1
        assert result_of(src, p=0).env["x"] == 2


class TestContinue:
    def test_continue_in_repeat_advances_counter(self):
        src = """
        s = 0; k = 0;
        repeat (6) {
            m = k % 2;
            k = k + 1;
            if (m) { continue; }
            s = s + 1;
        }
        """
        assert result_of(src).env["s"] == 3

    def test_continue_in_while(self):
        src = """
        i = 0; s = 0;
        while (i < n) {
            i = i + 1;
            m = i % 3;
            if (m) { continue; }
            s = s + i;
        }
        """
        assert result_of(src, n=9).env["s"] == 3 + 6 + 9

    def test_continue_in_do_while_reaches_the_test(self):
        src = """
        s = 0; i = 0;
        do {
            i = i + 1;
            m = i % 2;
            if (m) { continue; }
            s = s + i;
        } while (i < n);
        """
        assert result_of(src, n=6).env["s"] == 12

    def test_continue_outside_loop_rejected(self):
        with pytest.raises(LangError, match="continue"):
            compile_program("x = 1; continue;")


class TestPREOnMultiExitLoops:
    SRC = """
    i = 0; s = 0;
    while (i < n) {
        t = i == stop;
        if (t) { break; }
        v = a * k;          # NOT down-safe at loop entry: the break
        s = s + v;          # path skips it
        i = i + 1;
    }
    """

    def test_lcm_respects_early_exit(self):
        cfg = compile_program(self.SRC)
        result = optimize(cfg, "lcm")
        report = compare_per_path(cfg, result.cfg, max_branches=8)
        assert report.safe
        assert check_equivalence(cfg, result.cfg, runs=25).equivalent
        # On the immediate-break path a*k is never evaluated; LCM must
        # not have inserted it anywhere above the break test.
        immediate_break = run(
            result.cfg, {"n": 10, "stop": 0, "a": 3, "k": 4}
        )
        from repro.ir.expr import BinExpr, Var

        assert immediate_break.count(BinExpr("*", Var("a"), Var("k"))) == 0

    @pytest.mark.parametrize(
        "strategy", ["lcm", "bcm", "krs-lcm", "mr", "gcse"]
    )
    def test_all_safe_strategies_stay_safe(self, strategy):
        cfg = compile_program(self.SRC)
        result = optimize(cfg, strategy)
        assert compare_per_path(cfg, result.cfg, max_branches=8).safe
