"""The fused LCM plan is bit-identical to the staged pipeline.

The tentpole property of :mod:`repro.dataflow.fused`: one compiled
:class:`~repro.dataflow.fused.LCMPlan` runs the whole
earliest/later/insert/replace cascade back-to-back on raw int arrays,
and the resulting :class:`~repro.core.lcm.LCMAnalysis` /
:class:`~repro.core.krs.KRSAnalysis` bundles coincide with the staged
four-solve pipeline *exactly* — every vector map, every edge map, and
the ``sweeps``/``node_visits`` statistics.  A hypothesis sweep pins the
property over random reducible and irreducible graphs; targeted tests
pin the universe edge cases, the routing rules (a ``counting()``
context always gets the staged reference path, so benchmark C1's op
tallies are untouched), the manager's fused-plan tier and the
``krs-analysis`` store codec.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.helpers import diamond, do_while_invariant, straight_line

from repro.bench.generators import GeneratorConfig, random_cfg
from repro.bench.shapegen import ShapeConfig, random_shape_cfg
from repro.core.krs import KRSAnalysis, analyze_krs
from repro.core.lcm import LCM_STRATEGIES, LCMAnalysis, analyze_lcm
from repro.core.nodegraph import expand_to_nodes
from repro.dataflow.bitvec import counting
from repro.dataflow.fused import LCMPlan, compile_lcm_plan, run_fused_lcm
from repro.analysis.local import compute_local_properties
from repro.ir.builder import CFGBuilder
from repro.ir.edgesplit import split_join_edges
from repro.obs.manager import AnalysisManager
from repro.obs.store import SolutionStore
from repro.obs.trace import tracing

SMALL = GeneratorConfig(statements=8, max_depth=2)
SHAPES = ShapeConfig(blocks=8, back_edge_probability=0.5)

quick = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

seeds = st.integers(min_value=0, max_value=10_000)

LCM_FIELDS = (
    "antin", "antout", "avin", "avout",
    "earliest", "laterin", "later", "insert", "delete",
)
KRS_FIELDS = ("dsafe", "usafe", "earliest", "delay", "latest", "isolated")


def _assert_lcm_identical(cfg):
    staged = analyze_lcm(cfg, strategy="staged")
    fused = analyze_lcm(cfg, strategy="fused")
    assert isinstance(fused, LCMAnalysis)
    for field in LCM_FIELDS:
        assert getattr(staged, field) == getattr(fused, field), field
    assert staged.local.antloc == fused.local.antloc
    assert staged.local.transp == fused.local.transp
    assert list(staged.universe) == list(fused.universe)
    # The fused cascade mirrors the staged dense sweeps node for node,
    # so the work statistics coincide too; only the backend tag differs.
    assert staged.stats.sweeps == fused.stats.sweeps
    assert staged.stats.node_visits == fused.stats.node_visits
    assert fused.stats.backend == "fused"
    return fused


def _node_granular(cfg):
    expanded = expand_to_nodes(cfg).cfg
    split_join_edges(expanded)
    return expanded


def _assert_krs_identical(cfg):
    expanded = _node_granular(cfg)
    staged = analyze_krs(expanded, strategy="staged")
    fused = analyze_krs(expanded, strategy="fused")
    assert isinstance(fused, KRSAnalysis)
    for field in KRS_FIELDS:
        assert getattr(staged, field) == getattr(fused, field), field
    assert staged.stats.sweeps == fused.stats.sweeps
    assert staged.stats.node_visits == fused.stats.node_visits
    assert fused.stats.backend == "fused"
    return fused


# ---------------------------------------------------------------------------
# The equivalence property
# ---------------------------------------------------------------------------

class TestFusedEqualsStaged:
    @quick
    @given(seeds)
    def test_lcm_on_random_reducible_cfgs(self, seed):
        _assert_lcm_identical(random_cfg(seed, SMALL))

    @quick
    @given(seeds)
    def test_lcm_on_random_irreducible_cfgs(self, seed):
        _assert_lcm_identical(random_shape_cfg(seed, SHAPES))

    @quick
    @given(seeds)
    def test_krs_on_random_reducible_cfgs(self, seed):
        _assert_krs_identical(random_cfg(seed, SMALL))

    @quick
    @given(seeds)
    def test_krs_on_random_irreducible_cfgs(self, seed):
        _assert_krs_identical(random_shape_cfg(seed, SHAPES))

    def test_on_handwritten_graphs(self):
        for cfg in (diamond(), do_while_invariant()):
            _assert_lcm_identical(cfg)
            _assert_krs_identical(cfg)

    def test_auto_is_fused_outside_counting(self):
        assert analyze_lcm(diamond()).stats.backend == "fused"
        assert (
            analyze_krs(_node_granular(diamond())).stats.backend == "fused"
        )

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="auto"):
            analyze_lcm(diamond(), strategy="bogus")
        assert "staged" in LCM_STRATEGIES


# ---------------------------------------------------------------------------
# Universe edge cases
# ---------------------------------------------------------------------------

class TestUniverseEdgeCases:
    def test_empty_expression_universe(self):
        cfg = straight_line(["x = 1"], ["y = 2"])
        fused = _assert_lcm_identical(cfg)
        assert fused.universe.width == 0
        assert all(not vec for vec in fused.insert.values())
        _assert_krs_identical(cfg)

    def test_single_block_cfg(self):
        cfg = straight_line(["x = a + b", "y = a + b"])
        fused = _assert_lcm_identical(cfg)
        assert len(cfg) == len(fused.cfg)
        _assert_krs_identical(cfg)

    def test_expressions_killed_everywhere(self):
        # Every block recomputes a+b into its own operand, so the
        # expression is locally computed but nowhere transparent:
        # nothing is ever insertable above a kill.
        b = CFGBuilder()
        b.block("top", "a = a + b").jump("mid")
        b.block("mid", "a = a + b").jump("bot")
        b.block("bot", "a = a + b").to_exit()
        cfg = b.build()
        fused = _assert_lcm_identical(cfg)
        assert any(vec for vec in fused.local.antloc.values())
        assert all(not vec for vec in fused.insert.values())
        _assert_krs_identical(cfg)

    def test_explicit_universe_bypasses_plan_tier(self):
        cfg = diamond()
        default = analyze_lcm(cfg)
        explicit = analyze_lcm(cfg, universe=default.universe)
        for field in LCM_FIELDS:
            assert getattr(default, field) == getattr(explicit, field), field


# ---------------------------------------------------------------------------
# Routing: counting contexts always get the staged reference path
# ---------------------------------------------------------------------------

class TestCountingRegression:
    def _lcm_ops(self, cfg, strategy):
        with counting() as ops:
            analysis = analyze_lcm(cfg, strategy=strategy)
            assert analysis.stats.backend != "fused"
        return dict(ops.counts)

    @pytest.mark.parametrize("strategy", ["auto", "fused"])
    def test_counting_forces_staged_path(self, strategy):
        cfg = do_while_invariant()
        baseline = self._lcm_ops(cfg, "staged")
        assert baseline and sum(baseline.values()) > 0
        assert self._lcm_ops(cfg, strategy) == baseline

    def test_counting_run_emits_fallback_not_run_counter(self):
        cfg = diamond()
        with tracing() as tracer:
            with counting():
                analyze_lcm(cfg)
        assert "fused.run" not in tracer.counters
        assert tracer.counters.get("fused.fallback", 0) == 1

    def test_krs_counting_forces_staged_path(self):
        expanded = _node_granular(do_while_invariant())
        with counting() as ops:
            analysis = analyze_krs(expanded)
            assert analysis.stats.backend != "fused"
        baseline = dict(ops.counts)
        with counting() as ops:
            analyze_krs(expanded, strategy="staged")
        assert baseline == dict(ops.counts)
        assert sum(baseline.values()) > 0


# ---------------------------------------------------------------------------
# Manager integration: the fused plan tier and the bundle memo
# ---------------------------------------------------------------------------

class TestManagerFusedTier:
    def test_bundle_memoized_and_backend_tallied(self):
        manager = AnalysisManager()
        cfg = diamond()
        with tracing() as tracer:
            first = analyze_lcm(cfg, manager=manager)
            second = analyze_lcm(cfg, manager=manager)
        assert first is second  # memory-tier hit returns the object
        assert first.stats.backend == "fused"
        assert manager.stats.backends == {"fused": 1}
        assert tracer.counters.get("fused.run", 0) == 1
        assert tracer.counters.get("cache.hit", 0) >= 1

    def test_plan_shared_across_content_equal_graphs(self):
        manager = AnalysisManager()
        a, b = diamond(), diamond()
        plan_a = manager.lcm_plan(a, compute_local_properties(a))
        plan_b = manager.lcm_plan(b, compute_local_properties(b))
        assert isinstance(plan_a, LCMPlan)
        assert plan_a is plan_b
        # The fused plan composes the manager's dense graph, so staged
        # and fused share one id mapping per fingerprint.
        assert plan_a.graph is manager.dense_plan(a)

    def test_plan_counters(self):
        manager = AnalysisManager()
        cfg = diamond()
        local = compute_local_properties(cfg)
        with tracing() as tracer:
            manager.lcm_plan(cfg, local)
            manager.lcm_plan(cfg, local)
        assert tracer.counters.get("fused.plan.miss", 0) == 1
        assert tracer.counters.get("fused.plan.hit", 0) == 1

    def test_disabled_manager_recompiles(self):
        manager = AnalysisManager(enabled=False)
        cfg = diamond()
        local = compute_local_properties(cfg)
        assert manager.lcm_plan(cfg, local) is not manager.lcm_plan(cfg, local)

    def test_manager_result_identical_to_direct(self):
        manager = AnalysisManager()
        cfg = do_while_invariant()
        managed = analyze_lcm(cfg, manager=manager)
        direct = analyze_lcm(cfg.copy(), strategy="staged")
        for field in LCM_FIELDS:
            assert getattr(managed, field) == getattr(direct, field), field


# ---------------------------------------------------------------------------
# Persistence: the krs-analysis codec round-trips through the store
# ---------------------------------------------------------------------------

class TestKRSStoreCodec:
    def test_krs_bundle_roundtrips_through_disk(self, tmp_path):
        expanded = _node_granular(diamond())
        store = SolutionStore(tmp_path)
        manager = AnalysisManager(store=store)
        first = analyze_krs(expanded, manager=manager)
        assert manager.stats.disk_writes == 1

        warm = AnalysisManager(store=SolutionStore(tmp_path))
        second = analyze_krs(_node_granular(diamond()), manager=warm)
        assert warm.stats.disk_hits == 1
        assert warm.stats.misses == 0
        for field in KRS_FIELDS:
            assert getattr(first, field) == getattr(second, field), field
        assert first.local.antloc == second.local.antloc
        assert list(first.universe) == list(second.universe)
        assert first.stats.sweeps == second.stats.sweeps

    def test_direct_plan_compile_matches_manager_plan(self):
        cfg = diamond()
        local = compute_local_properties(cfg)
        plan = compile_lcm_plan(cfg, local)
        analysis = run_fused_lcm(cfg, plan, local)
        via_manager = analyze_lcm(cfg, manager=AnalysisManager())
        for field in LCM_FIELDS:
            assert getattr(analysis, field) == getattr(via_manager, field), field
