"""Unit tests for the unidirectional solvers.

Fixpoints are validated on graphs small enough to compute by hand, and
the two solvers (round-robin and worklist) are cross-checked.
"""

import pytest

from tests.helpers import diamond, do_while_invariant, straight_line

from repro.analysis.local import compute_local_properties
from repro.dataflow.bitvec import BitVector
from repro.dataflow.problem import (
    Confluence,
    DataflowProblem,
    Direction,
    GenKillTransfer,
)
from repro.dataflow.solver import solve, solve_worklist
from repro.ir.expr import BinExpr, Var


def availability_problem(cfg):
    local = compute_local_properties(cfg)
    problem = DataflowProblem.forward_intersect(
        "avail",
        local.universe.width,
        GenKillTransfer(gen=local.comp, keep=local.transp),
    )
    return local, problem


class TestRoundRobin:
    def test_availability_on_chain(self):
        cfg = straight_line(["x = a + b"], ["y = c * d"], ["z = a + b"])
        local, problem = availability_problem(cfg)
        sol = solve(cfg, problem)
        ab = local.universe.index_of(BinExpr("+", Var("a"), Var("b")))
        assert ab not in sol.inof["s0"]
        assert ab in sol.outof["s0"]
        assert ab in sol.inof["s2"]

    def test_kill_stops_availability(self):
        cfg = straight_line(["x = a + b"], ["a = 1"], ["z = a + b"])
        local, problem = availability_problem(cfg)
        sol = solve(cfg, problem)
        ab = local.universe.index_of(BinExpr("+", Var("a"), Var("b")))
        assert ab not in sol.inof["s2"]

    def test_intersection_at_join(self):
        cfg = diamond()  # only 'left' computes a+b
        local, problem = availability_problem(cfg)
        sol = solve(cfg, problem)
        ab = local.universe.index_of(BinExpr("+", Var("a"), Var("b")))
        assert ab not in sol.inof["join"]  # not on the right path

    def test_loop_fixpoint(self):
        cfg = do_while_invariant()
        local, problem = availability_problem(cfg)
        sol = solve(cfg, problem)
        ab = local.universe.index_of(BinExpr("+", Var("a"), Var("b")))
        # Available at loop exit and on the back edge.
        assert ab in sol.inof["after"]
        assert ab in sol.outof["body"]

    def test_boundary_respected(self):
        cfg = diamond()
        _, problem = availability_problem(cfg)
        sol = solve(cfg, problem)
        assert sol.inof[cfg.entry] == problem.boundary

    def test_stats_populated(self):
        cfg = diamond()
        _, problem = availability_problem(cfg)
        sol = solve(cfg, problem)
        assert sol.stats.sweeps >= 2  # at least one change sweep + one check
        assert sol.stats.node_visits >= len(cfg)

    def test_divergence_guard(self):
        cfg = straight_line(["x = a + b"])
        width = 1

        flip = {"state": False}

        def bad_transfer(label, fact):
            # Non-monotone oscillation must hit the sweep guard.
            flip["state"] = not flip["state"]
            return BitVector.of(width, [0]) if flip["state"] else BitVector.empty(width)

        problem = DataflowProblem.forward_intersect("bad", width, bad_transfer)
        with pytest.raises(RuntimeError, match="converge"):
            solve(cfg, problem, max_sweeps=5)


class TestWorklist:
    @pytest.mark.parametrize(
        "graph", [diamond, do_while_invariant, lambda: straight_line(["x = a + b"], ["y = a + b"])]
    )
    def test_matches_round_robin_forward(self, graph):
        cfg = graph()
        _, problem = availability_problem(cfg)
        a = solve(cfg, problem)
        b = solve(cfg, problem, strategy="worklist")
        assert a.inof == b.inof
        assert a.outof == b.outof

    def test_matches_round_robin_backward(self):
        cfg = do_while_invariant()
        local = compute_local_properties(cfg)
        problem = DataflowProblem.backward_intersect(
            "ant",
            local.universe.width,
            GenKillTransfer(gen=local.antloc, keep=local.transp),
        )
        a = solve(cfg, problem)
        b = solve(cfg, problem, strategy="worklist")
        assert a.inof == b.inof
        assert a.outof == b.outof

    def test_unknown_strategy_rejected(self):
        cfg = diamond()
        _, problem = availability_problem(cfg)
        with pytest.raises(ValueError, match="worklist"):
            solve(cfg, problem, strategy="chaotic")

    def test_deprecated_alias_still_works(self):
        cfg = diamond()
        _, problem = availability_problem(cfg)
        with pytest.warns(DeprecationWarning, match="solve_worklist"):
            b = solve_worklist(cfg, problem)
        assert b.inof == solve(cfg, problem).inof


class TestProblemConstruction:
    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DataflowProblem(
                "bad",
                Direction.FORWARD,
                Confluence.INTERSECT,
                4,
                lambda l, f: f,
                boundary=BitVector.empty(3),
                init=BitVector.full(4),
            )

    def test_union_inits_empty(self):
        p = DataflowProblem.forward_union("u", 3, lambda l, f: f)
        assert p.init == BitVector.empty(3)

    def test_intersect_inits_full(self):
        p = DataflowProblem.backward_intersect("i", 3, lambda l, f: f)
        assert p.init == BitVector.full(3)
