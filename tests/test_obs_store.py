"""Tests for the persistent solution store (the disk cache tier).

Covers the codec roundtrips, the two-tier manager flow, corruption
handling, ``code_version`` invalidation and the maintenance operations
documented in docs/CACHING.md.
"""

import json
import os


from tests.helpers import diamond, do_while_invariant

from repro.analysis.liveness import compute_liveness
from repro.analysis.local import compute_local_properties
from repro.core.lcm import analyze_lcm
from repro.core.pipeline import optimize
from repro.dataflow.problem import DataflowProblem, GenKillTransfer
from repro.dataflow.solver import solve
from repro.obs.fingerprint import cfg_fingerprint
from repro.obs.manager import AnalysisManager
from repro.obs.store import (
    JSONRecord,
    SolutionStore,
    default_code_version,
)
from repro.obs.trace import tracing


def availability_problem(cfg):
    local = compute_local_properties(cfg)
    return DataflowProblem.forward_intersect(
        "avail",
        local.universe.width,
        GenKillTransfer(gen=local.comp, keep=local.transp),
    )


def entry_files(root):
    return [
        p
        for p in root.rglob("*.json")
        if p.is_file() and not p.name.startswith(".tmp-")
    ]


class TestRoundtrips:
    def test_solution_roundtrip(self, tmp_path):
        cfg = diamond()
        fp = cfg_fingerprint(cfg)
        solution = solve(cfg, availability_problem(cfg))
        store = SolutionStore(tmp_path)
        assert store.save(fp, "solve:avail:w2:round-robin", solution)

        loaded = SolutionStore(tmp_path).load(
            fp, "solve:avail:w2:round-robin", cfg=cfg
        )
        assert loaded is not None and loaded is not solution
        assert loaded.problem == solution.problem
        assert {l: v.bits for l, v in loaded.inof.items()} == {
            l: v.bits for l, v in solution.inof.items()
        }
        assert {l: v.bits for l, v in loaded.outof.items()} == {
            l: v.bits for l, v in solution.outof.items()
        }

    def test_lcm_analysis_roundtrip(self, tmp_path):
        cfg = diamond()
        fp = cfg_fingerprint(cfg)
        analysis = analyze_lcm(cfg)
        store = SolutionStore(tmp_path)
        assert store.save(fp, "lcm.analysis", analysis)

        loaded = SolutionStore(tmp_path).load(fp, "lcm.analysis", cfg=cfg)
        assert loaded is not None
        assert list(loaded.local.universe) == list(analysis.local.universe)
        for name in ("antin", "avout", "laterin", "delete"):
            got, want = getattr(loaded, name), getattr(analysis, name)
            assert {l: v.bits for l, v in got.items()} == {
                l: v.bits for l, v in want.items()
            }, name
        for name in ("earliest", "later", "insert"):
            got, want = getattr(loaded, name), getattr(analysis, name)
            assert {e: v.bits for e, v in got.items()} == {
                e: v.bits for e, v in want.items()
            }, name

    def test_liveness_roundtrip(self, tmp_path):
        cfg = do_while_invariant()
        fp = cfg_fingerprint(cfg)
        liveness = compute_liveness(cfg)
        store = SolutionStore(tmp_path)
        assert store.save(fp, "liveness", liveness)

        loaded = SolutionStore(tmp_path).load(fp, "liveness", cfg=cfg)
        assert loaded is not None
        assert loaded.variables == liveness.variables
        for label in liveness.livein:
            assert loaded.live_in(label) == liveness.live_in(label)
            assert loaded.live_out(label) == liveness.live_out(label)

    def test_unsupported_values_stay_memory_only(self, tmp_path):
        store = SolutionStore(tmp_path)
        assert not store.save("f" * 64, "krs.analysis", {"not": "a codec kind"})
        assert len(store) == 0


class TestTwoTierManager:
    def test_warm_store_does_zero_solver_work(self, tmp_path):
        cold = AnalysisManager(store=SolutionStore(tmp_path))
        first = optimize(diamond(), "lcm", manager=cold)
        assert cold.stats.misses > 0 and cold.stats.disk_writes > 0

        warm = AnalysisManager(store=SolutionStore(tmp_path))
        second = optimize(diamond(), "lcm", manager=warm)
        assert warm.stats.misses == 0
        assert warm.stats.disk_hits > 0 and warm.stats.disk_writes == 0
        assert cfg_fingerprint(second.cfg) == cfg_fingerprint(first.cfg)

    def test_disk_traffic_has_its_own_counters(self, tmp_path):
        with tracing() as tracer:
            manager = AnalysisManager(store=SolutionStore(tmp_path))
            optimize(diamond(), "lcm", manager=manager)
        assert tracer.counters["cache.miss"] == manager.stats.misses
        assert tracer.counters["cache.disk.write"] == manager.stats.disk_writes
        assert tracer.counters["cache.disk.miss"] == manager.stats.disk_misses

        with tracing() as tracer:
            warm = AnalysisManager(store=SolutionStore(tmp_path))
            optimize(diamond(), "lcm", manager=warm)
        assert tracer.counters["cache.disk.hit"] == warm.stats.disk_hits
        assert "cache.miss" not in tracer.counters

    def test_disk_hit_promotes_into_memory(self, tmp_path):
        seed = AnalysisManager(store=SolutionStore(tmp_path))
        optimize(diamond(), "lcm", manager=seed)

        warm = AnalysisManager(store=SolutionStore(tmp_path))
        optimize(diamond(), "lcm", manager=warm)
        after_first = warm.stats.disk_hits
        optimize(diamond(), "lcm", manager=warm)
        assert warm.stats.disk_hits == after_first  # second run is all-memory
        assert warm.stats.misses == 0

    def test_disabled_manager_bypasses_the_store(self, tmp_path):
        manager = AnalysisManager(enabled=False, store=SolutionStore(tmp_path))
        optimize(diamond(), "lcm", manager=manager)
        assert len(SolutionStore(tmp_path)) == 0
        assert manager.stats.disk_writes == 0

    def test_stats_split_by_tier(self, tmp_path):
        manager = AnalysisManager(store=SolutionStore(tmp_path))
        optimize(diamond(), "lcm", manager=manager)
        stats = manager.stats
        assert stats.lookups == stats.hits + stats.disk_hits + stats.misses
        assert 0.0 <= stats.hit_rate <= 1.0


class TestCorruption:
    def test_corrupt_entry_is_a_miss_and_heals(self, tmp_path):
        seed = AnalysisManager(store=SolutionStore(tmp_path))
        optimize(diamond(), "lcm", manager=seed)
        files = entry_files(tmp_path)
        assert files
        for path in files:
            path.write_text("{definitely not json")

        with tracing() as tracer:
            manager = AnalysisManager(store=SolutionStore(tmp_path))
            result = optimize(diamond(), "lcm", manager=manager)
        assert result.cfg is not None
        assert tracer.counters.get("cache.disk.corrupt", 0) > 0
        assert manager.stats.disk_hits == 0 and manager.stats.misses > 0
        # The re-solve wrote the entries back: every file decodes again.
        healed = AnalysisManager(store=SolutionStore(tmp_path))
        optimize(diamond(), "lcm", manager=healed)
        assert healed.stats.misses == 0 and healed.stats.disk_hits > 0

    def test_wrong_header_fields_are_misses(self, tmp_path):
        cfg = diamond()
        fp = cfg_fingerprint(cfg)
        store = SolutionStore(tmp_path)
        store.save(fp, "liveness", compute_liveness(cfg))
        (path,) = entry_files(tmp_path)
        doc = json.loads(path.read_text())
        doc["fingerprint"] = "0" * 64
        path.write_text(json.dumps(doc))
        assert SolutionStore(tmp_path).load(fp, "liveness", cfg=cfg) is None


class TestCodeVersion:
    def test_other_version_entries_are_invisible(self, tmp_path):
        cfg = diamond()
        fp = cfg_fingerprint(cfg)
        old = SolutionStore(tmp_path, code_version="0.9.0-f1")
        assert old.save(fp, "liveness", compute_liveness(cfg))

        current = SolutionStore(tmp_path)
        assert current.load(fp, "liveness", cfg=cfg) is None
        assert len(current) == 0
        assert current.stats()["stale_entries"] == 1

    def test_default_code_version_tracks_package(self):
        from repro import __version__

        assert default_code_version().startswith(__version__)

    def test_gc_reclaims_only_stale_versions(self, tmp_path):
        cfg = diamond()
        fp = cfg_fingerprint(cfg)
        SolutionStore(tmp_path, code_version="0.9.0-f1").save(
            fp, "liveness", compute_liveness(cfg)
        )
        current = SolutionStore(tmp_path)
        current.save(fp, "liveness", compute_liveness(cfg))

        report = current.gc()
        assert report["removed_entries"] == 1
        assert report["reclaimed_bytes"] > 0
        stats = current.stats()
        assert stats["entries"] == 1 and stats["stale_entries"] == 0
        assert current.load(fp, "liveness", cfg=cfg) is not None

    def test_clear_removes_everything(self, tmp_path):
        cfg = diamond()
        fp = cfg_fingerprint(cfg)
        SolutionStore(tmp_path, code_version="0.9.0-f1").save(
            fp, "liveness", compute_liveness(cfg)
        )
        current = SolutionStore(tmp_path)
        current.save(fp, "liveness", compute_liveness(cfg))
        report = current.clear()
        assert report["removed_entries"] == 2
        assert not entry_files(tmp_path)


class TestStoreShape:
    def test_one_entry_per_key(self, tmp_path):
        cfg = diamond()
        fp = cfg_fingerprint(cfg)
        store = SolutionStore(tmp_path)
        for _ in range(3):
            store.save(fp, "liveness", compute_liveness(cfg))
        assert len(store) == 1

    def test_stats_shape(self, tmp_path):
        stats = SolutionStore(tmp_path).stats()
        assert set(stats) == {
            "path",
            "code_version",
            "entries",
            "bytes",
            "stale_entries",
            "stale_bytes",
            "evicted_entries",
            "evicted_bytes",
        }
        assert stats["entries"] == 0


class TestSizeBudget:
    """The LRU sweep behind ``repro cache gc --max-bytes``."""

    def _fill(self, tmp_path, store, n=4):
        """Save *n* entries with deterministic, increasing mtimes."""
        paths = {}
        seen = set()
        for i in range(n):
            record = JSONRecord({"i": i, "pad": "x" * 64})
            assert store.save(f"k{i}", "serve-response", record)
            (path,) = set(entry_files(tmp_path)) - seen
            seen.add(path)
            os.utime(path, (1_000_000 + i, 1_000_000 + i))
            paths[f"k{i}"] = path
        return paths

    def test_json_record_roundtrip(self, tmp_path):
        store = SolutionStore(tmp_path)
        assert store.save("k", "serve-response", JSONRecord({"a": [1]}))
        loaded = SolutionStore(tmp_path).load("k", "serve-response")
        assert isinstance(loaded, JSONRecord)
        assert loaded.payload == {"a": [1]}

    def test_evicts_oldest_first_down_to_budget(self, tmp_path):
        store = SolutionStore(tmp_path)
        paths = self._fill(tmp_path, store)
        total = sum(p.stat().st_size for p in paths.values())
        report = store.gc(max_bytes=total - 1)
        # One eviction suffices, and the *oldest* entry went first.
        assert report["evicted_entries"] == 1
        assert report["evicted_bytes"] > 0
        assert not paths["k0"].exists()
        assert paths["k3"].exists()
        assert store.stats()["bytes"] <= total - 1

    def test_load_touch_protects_recent_entries(self, tmp_path):
        store = SolutionStore(tmp_path)
        paths = self._fill(tmp_path, store, n=3)
        # Reading k0 refreshes its mtime: it is now the *newest*.
        assert store.load("k0", "serve-response") is not None
        budget = paths["k0"].stat().st_size
        store.gc(max_bytes=budget)
        assert paths["k0"].exists()
        assert not paths["k1"].exists()
        assert not paths["k2"].exists()

    def test_meta_accumulates_across_sweeps(self, tmp_path):
        store = SolutionStore(tmp_path)
        paths = self._fill(tmp_path, store)
        sizes = sorted(p.stat().st_size for p in paths.values())
        store.gc(max_bytes=sum(sizes[:2]))  # drop two
        store.gc(max_bytes=0)  # drop the rest
        stats = store.stats()
        assert stats["evicted_entries"] == 4
        assert stats["evicted_bytes"] > 0
        assert stats["entries"] == 0
        # Totals persist on disk: a fresh handle still sees them.
        assert SolutionStore(tmp_path).stats()["evicted_entries"] == 4

    def test_gc_without_budget_never_evicts(self, tmp_path):
        store = SolutionStore(tmp_path)
        self._fill(tmp_path, store)
        report = store.gc()
        assert report["evicted_entries"] == 0
        assert report["evicted_bytes"] == 0
        assert len(entry_files(tmp_path)) == 4

    def test_eviction_has_a_counter(self, tmp_path):
        store = SolutionStore(tmp_path)
        self._fill(tmp_path, store)
        with tracing() as tracer:
            store.gc(max_bytes=0)
        assert tracer.counters["cache.disk.evict"] == 4
