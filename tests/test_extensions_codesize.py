"""Unit tests for code-size-sensitive PRE."""

from tests.helpers import diamond, straight_line

from repro.core.optimality import check_equivalence, compare_per_path
from repro.core.pipeline import optimize
from repro.extensions.codesize import size_governed_transform
from repro.ir.builder import CFGBuilder


def many_paths_one_use():
    """Two kill-paths and one generator path feed one redundant use.

    The generator path blocks the postponement (LATERIN(use) is
    false), so LCM must insert on *both* kill edges to delete the one
    occurrence: 2 inserts buy 1 delete — a bloat case the size
    governor must drop at budget 0.  (Each kill writes `a` a different
    value, so the insertions cannot be hoisted above the `ks` fork.)
    """
    b = CFGBuilder()
    b.block("f1").branch("p", "g", "ks")
    b.block("g", "x = a + b").jump("use")
    b.block("ks").branch("q", "k1", "k2")
    b.block("k1", "a = c + 1").jump("use")
    b.block("k2", "a = c + 2").jump("use")
    b.block("use", "y = a + b").to_exit()
    return b.build()


class TestSizeGovernor:
    def test_balanced_placement_applied(self):
        # Diamond: 1 insert / 1 delete — within budget 0.
        result, report = size_governed_transform(diamond())
        assert report.applied
        assert not report.dropped
        assert check_equivalence(diamond(), result.cfg).equivalent

    def test_bloating_placement_dropped(self):
        cfg = many_paths_one_use()
        # Plain LCM grows the program here...
        plain = optimize(cfg, "lcm")
        inserted = sum(p.insertion_count for p in plain.placements)
        deleted = sum(len(p.delete_blocks) for p in plain.placements)
        assert inserted > deleted
        # ...and the governor refuses.
        result, report = size_governed_transform(cfg)
        assert any("a + b" in expr for expr, _, _ in report.dropped)
        assert str(result.cfg) == str(cfg)

    def test_budget_loosens_the_governor(self):
        cfg = many_paths_one_use()
        result, report = size_governed_transform(cfg, budget=10)
        assert report.applied
        assert check_equivalence(cfg, result.cfg).equivalent

    def test_static_size_never_grows_at_budget_zero(self):
        from repro.bench.generators import GeneratorConfig, random_cfg

        for seed in range(8):
            cfg = random_cfg(seed, GeneratorConfig(statements=10))
            result, _ = size_governed_transform(cfg)
            assert (
                result.cfg.static_computation_count()
                <= cfg.static_computation_count()
            ), seed

    def test_still_safe_and_equivalent(self):
        from repro.bench.generators import GeneratorConfig, random_cfg

        for seed in range(6):
            cfg = random_cfg(seed, GeneratorConfig(statements=10))
            result, _ = size_governed_transform(cfg)
            assert check_equivalence(cfg, result.cfg, runs=10).equivalent
            assert compare_per_path(cfg, result.cfg, max_branches=6).safe

    def test_identity_placements_not_reported(self):
        cfg = straight_line(["x = a + b"])  # nothing to do
        _, report = size_governed_transform(cfg)
        assert not report.applied
        assert not report.dropped
        assert "no candidate placements" in report.describe()

    def test_dropping_is_per_expression(self):
        # One bloating expression (a+b: the many-paths shape) and one
        # fully redundant one (c*d): only the balanced placement runs.
        b = CFGBuilder()
        b.block("f1", "u = c * d").branch("p", "g", "ks")
        b.block("g", "x = a + b").jump("use")
        b.block("ks").branch("q", "k1", "k2")
        b.block("k1", "a = c + 1").jump("use")
        b.block("k2", "a = c + 2").jump("use")
        b.block("use", "y = a + b", "v = c * d").to_exit()
        cfg = b.build()
        result, report = size_governed_transform(cfg)
        applied = {expr for expr, _, _ in report.applied}
        dropped = {expr for expr, _, _ in report.dropped}
        assert "c * d" in applied   # fully redundant: 0 inserts, 1 delete
        assert "a + b" in dropped   # needs 2 inserts for 1 delete
        assert check_equivalence(cfg, result.cfg).equivalent