"""Tests for the repro.api facade: loading, outcomes, error mapping."""

import json

import pytest

from repro import api
from repro.lang import compile_program
from repro.obs.fingerprint import cfg_fingerprint
from repro.obs.manager import AnalysisManager

SOURCE = """
x = a + b;
if (p) { y = a + b; } else { y = 0; }
z = a + b;
"""


class TestLoadCfg:
    def test_source_kind(self):
        cfg = api.load_cfg(SOURCE)
        assert cfg.static_computation_count() > 0

    def test_json_kind_roundtrips(self):
        from repro.ir.serialize import cfg_to_json

        cfg = compile_program(SOURCE)
        again = api.load_cfg(cfg_to_json(cfg), kind=api.KIND_JSON)
        assert cfg_fingerprint(again) == cfg_fingerprint(cfg)

    def test_path_kind_dispatches_on_suffix(self, tmp_path):
        from repro.ir.serialize import cfg_to_json

        mini = tmp_path / "p.mini"
        mini.write_text(SOURCE)
        dump = tmp_path / "p.json"
        dump.write_text(cfg_to_json(compile_program(SOURCE)))
        a = api.load_cfg(str(mini), kind=api.KIND_PATH)
        b = api.load_cfg(str(dump), kind=api.KIND_PATH)
        assert cfg_fingerprint(a) == cfg_fingerprint(b)

    def test_missing_file_is_source_error(self, tmp_path):
        with pytest.raises(api.SourceError, match="cannot read"):
            api.load_cfg(str(tmp_path / "nope.mini"), kind=api.KIND_PATH)

    def test_parse_error_is_source_error(self):
        with pytest.raises(api.SourceError):
            api.load_cfg("x = = ;")

    def test_bad_json_is_source_error(self):
        with pytest.raises(api.SourceError):
            api.load_cfg("{not json", kind=api.KIND_JSON)

    def test_unknown_kind_is_source_error(self):
        with pytest.raises(api.SourceError, match="unknown payload kind"):
            api.load_cfg(SOURCE, kind="telepathy")


class TestOptimize:
    def test_outcome_fields(self):
        outcome = api.optimize_source(SOURCE)
        assert outcome.pass_ == "lcm"
        assert not outcome.pipeline
        assert outcome.static_before > outcome.static_after
        assert outcome.fingerprint != outcome.source_fingerprint
        assert "a + b" in outcome.description
        # The live transform result is attached for in-process callers.
        assert outcome.cfg is outcome.transform.cfg

    def test_to_dict_is_json_ready(self):
        payload = api.optimize_source(SOURCE).to_dict()
        json.dumps(payload)  # nothing non-serialisable
        assert payload["pass"] == "lcm"
        assert "ir" not in payload  # only with keep_ir

    def test_keep_ir_carries_the_program(self):
        from repro.ir.serialize import cfg_from_json

        outcome = api.optimize_source(SOURCE, keep_ir=True)
        assert cfg_fingerprint(cfg_from_json(outcome.ir)) == (
            outcome.fingerprint
        )

    def test_pipeline_mode(self):
        outcome = api.optimize_source(SOURCE, pipeline=True)
        assert outcome.pipeline
        assert outcome.static_after <= outcome.static_before

    def test_manager_threads_through(self):
        manager = AnalysisManager()
        cfg = api.load_cfg(SOURCE)
        api.optimize_cfg(cfg, manager=manager)
        before = manager.stats.hits
        api.optimize_cfg(cfg, manager=manager)
        assert manager.stats.hits > before


class TestAnalyze:
    def test_placements_shape(self):
        outcome = api.analyze_source(SOURCE)
        assert "a + b" in outcome.expressions
        decision = outcome.placements["a + b"]
        # Fully redundant occurrences become deletions here.
        assert decision["delete_blocks"]
        for edge in decision["insert_edges"]:
            assert "->" in edge

    def test_to_dict_matches_wire_shape(self):
        payload = api.analyze_source(SOURCE).to_dict()
        json.dumps(payload)
        assert set(payload) == {"fingerprint", "expressions", "placements"}
        assert set(payload["placements"]["a + b"]) == {
            "insert_edges",
            "delete_blocks",
        }

    def test_agrees_with_optimize_fingerprint_of_input(self):
        cfg = api.load_cfg(SOURCE)
        assert api.analyze_cfg(cfg).fingerprint == cfg_fingerprint(cfg)
