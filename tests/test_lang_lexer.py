"""Unit tests for the tokeniser."""

import pytest

from repro.lang.errors import LexError
from repro.lang.lexer import tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]  # drop EOF


class TestTokenize:
    def test_simple_assignment(self):
        assert texts("x = a + b;") == ["x", "=", "a", "+", "b", ";"]

    def test_keywords_recognised(self):
        tokens = tokenize("if while else do repeat skip")
        assert all(t.kind == "KEYWORD" for t in tokens[:-1])

    def test_identifier_with_underscore_and_digits(self):
        tokens = tokenize("my_var2")
        assert tokens[0].kind == "IDENT"
        assert tokens[0].text == "my_var2"

    def test_number(self):
        tokens = tokenize("123")
        assert tokens[0].kind == "NUMBER"

    def test_two_char_operators_greedy(self):
        assert texts("a <= b") == ["a", "<=", "b"]
        assert texts("a << b") == ["a", "<<", "b"]
        assert texts("a != b") == ["a", "!=", "b"]

    def test_adjacent_single_char_ops(self):
        assert texts("a<b") == ["a", "<", "b"]

    def test_comment_skipped(self):
        assert texts("x = 1; # a comment\ny = 2;") == [
            "x", "=", "1", ";", "y", "=", "2", ";",
        ]

    def test_line_and_column_tracking(self):
        tokens = tokenize("x = 1;\n  y = 2;")
        y = next(t for t in tokens if t.text == "y")
        assert y.line == 2
        assert y.column == 3

    def test_eof_token_present(self):
        assert tokenize("")[-1].kind == "EOF"

    def test_bad_character_raises_with_position(self):
        with pytest.raises(LexError) as info:
            tokenize("x = $;")
        assert "line 1" in str(info.value)

    def test_whitespace_only(self):
        assert kinds("   \n\t ") == ["EOF"]
