"""Tests for the AnalysisManager: memoization, fingerprints, invalidation."""

from tests.helpers import diamond, do_while_invariant

from repro.analysis.local import compute_local_properties
from repro.core.lcm import analyze_lcm
from repro.core.pipeline import OptimizeConfig, optimize
from repro.dataflow.problem import DataflowProblem, GenKillTransfer
from repro.ir.instr import Assign
from repro.ir.expr import BinExpr, Var
from repro.obs.fingerprint import cfg_fingerprint
from repro.obs.manager import AnalysisManager, notify_cfg_mutated
from repro.ir.pretty import pretty_cfg
from repro.obs.trace import tracing


def availability_problem(cfg):
    local = compute_local_properties(cfg)
    return DataflowProblem.forward_intersect(
        "avail",
        local.universe.width,
        GenKillTransfer(gen=local.comp, keep=local.transp),
    )


class TestFingerprint:
    def test_equal_content_equal_fingerprint(self):
        assert cfg_fingerprint(diamond()) == cfg_fingerprint(diamond())
        assert cfg_fingerprint(diamond()) != cfg_fingerprint(do_while_invariant())

    def test_copy_shares_fingerprint(self):
        cfg = diamond()
        assert cfg_fingerprint(cfg) == cfg_fingerprint(cfg.copy())

    def test_mutation_changes_fingerprint(self):
        cfg = diamond()
        before = cfg_fingerprint(cfg)
        cfg.block("join").append(Assign("q", BinExpr("+", Var("a"), Var("b"))))
        assert cfg_fingerprint(cfg) != before


class TestMemoization:
    def test_second_solve_returns_same_object(self):
        manager = AnalysisManager()
        cfg = diamond()
        problem = availability_problem(cfg)
        first = manager.solve(cfg, problem)
        second = manager.solve(cfg, problem)
        assert second is first
        assert manager.stats.hits == 1 and manager.stats.misses == 1

    def test_cache_shared_across_equal_content_objects(self):
        manager = AnalysisManager()
        a, b = diamond(), diamond()
        assert manager.solve(a, availability_problem(a)) is manager.solve(
            b, availability_problem(b)
        )

    def test_disabled_manager_always_recomputes(self):
        manager = AnalysisManager(enabled=False)
        cfg = diamond()
        problem = availability_problem(cfg)
        assert manager.solve(cfg, problem) is not manager.solve(cfg, problem)
        assert manager.stats.hits == 0 and manager.stats.misses == 2
        assert len(manager) == 0

    def test_disabled_manager_traces_every_miss(self):
        # --no-cache runs must still report their cache traffic: the
        # disabled path bumps stats.misses AND the cache.miss counter,
        # so traces and stats agree.
        manager = AnalysisManager(enabled=False)
        cfg = diamond()
        problem = availability_problem(cfg)
        with tracing() as tracer:
            manager.solve(cfg, problem)
            manager.solve(cfg, problem)
        assert tracer.counters.get("cache.miss", 0) == 2
        assert "cache.hit" not in tracer.counters
        assert manager.stats.misses == tracer.counters["cache.miss"]

    def test_distinct_strategies_cached_separately(self):
        manager = AnalysisManager()
        cfg = diamond()
        problem = availability_problem(cfg)
        rr = manager.solve(cfg, problem)
        wl = manager.solve(cfg, problem, strategy="worklist")
        assert rr is not wl
        assert rr.inof == wl.inof and rr.outof == wl.outof


class TestInvalidation:
    def test_mutation_hook_yields_fresh_results(self):
        manager = AnalysisManager()
        cfg = diamond()
        stale = manager.solve(cfg, availability_problem(cfg))
        cfg.block("join").append(Assign("q", BinExpr("*", Var("c"), Var("d"))))
        notify_cfg_mutated(cfg)
        assert manager.stats.invalidations == 1
        fresh = manager.solve(cfg, availability_problem(cfg))
        assert fresh is not stale  # new content, new solution

    def test_cached_solution_bit_identical_across_transform(self):
        # The acceptance check: a cached Solution for the *original*
        # content must come back bit-identical after an invalidating
        # transform round-trips the graph through mutation and back.
        manager = AnalysisManager()
        cfg = diamond()
        problem = availability_problem(cfg)
        before = manager.solve(cfg, problem)
        result = optimize(cfg, "lcm", manager=manager)  # mutates a copy
        assert result.cfg is not cfg
        after = manager.solve(cfg, problem)
        assert after is before
        assert after.inof == before.inof and after.outof == before.outof


class TestSolveEachProblemOnce:
    def test_two_lcm_runs_one_manager_solve_once(self):
        # ISSUE acceptance: running the LCM pipeline twice on the same
        # CFG through one AnalysisManager must solve each dataflow
        # problem exactly once — verified through the trace events.
        manager = AnalysisManager()
        cfg = do_while_invariant()
        config = OptimizeConfig(run_local_cse=False, validate=False)
        with tracing() as tracer:
            first = optimize(cfg, "lcm", config=config, manager=manager)
            solves_after_first = len(tracer.spans("dataflow.solve"))
            second = optimize(cfg, "lcm", config=config, manager=manager)
            solves_after_second = len(tracer.spans("dataflow.solve"))
        assert solves_after_first > 0
        assert solves_after_second == solves_after_first
        assert tracer.counters.get("cache.hit", 0) >= 1
        assert pretty_cfg(first.cfg) == pretty_cfg(second.cfg)

    def test_memoized_analysis_is_same_object(self):
        manager = AnalysisManager()
        cfg = diamond()
        assert analyze_lcm(cfg, manager=manager) is analyze_lcm(
            cfg, manager=manager
        )
