"""Unit tests for global copy propagation."""

from tests.helpers import straight_line

from repro.core.optimality import check_equivalence
from repro.ir.builder import CFGBuilder
from repro.ir.expr import Var
from repro.ir.instr import CondBranch
from repro.passes.copyprop import copy_propagate


class TestWithinBlock:
    def test_simple_propagation(self):
        cfg = straight_line(["t = a + b", "x = t", "y = x + 1"])
        rewrites = copy_propagate(cfg)
        assert rewrites == 1
        # y reads x's source directly after one step.
        assert str(cfg.block("s0").instrs[2]) == "y = t + 1"

    def test_kill_by_source_redefinition(self):
        cfg = straight_line(["x = t", "t = 5", "y = x + 1"])
        rewrites = copy_propagate(cfg)
        # x = t is stale after t changes; y must keep reading x.
        assert rewrites == 0
        assert "x" in [v for v in cfg.block("s0").instrs[2].uses()]

    def test_kill_by_dest_redefinition(self):
        cfg = straight_line(["x = t", "x = 5", "y = x + 1"])
        assert copy_propagate(cfg) == 0

    def test_chain_collapses_under_iteration(self):
        cfg = straight_line(["b = a", "c = b", "d = c"])
        while copy_propagate(cfg):
            pass
        instrs = [str(i) for i in cfg.block("s0").instrs]
        assert instrs == ["b = a", "c = a", "d = a"]


class TestAcrossBlocks:
    def test_propagates_through_join_when_on_all_paths(self):
        b = CFGBuilder()
        b.block("top", "x = t").branch("p", "l", "r")
        b.block("l", "u = 1").jump("join")
        b.block("r", "u = 2").jump("join")
        b.block("join", "y = x + 1").to_exit()
        cfg = b.build()
        assert copy_propagate(cfg) == 1
        assert "t" in cfg.block("join").instrs[0].uses()

    def test_blocked_at_join_when_one_path_differs(self):
        b = CFGBuilder()
        b.block("top").branch("p", "l", "r")
        b.block("l", "x = t").jump("join")
        b.block("r", "x = u").jump("join")
        b.block("join", "y = x + 1").to_exit()
        cfg = b.build()
        assert copy_propagate(cfg) == 0

    def test_branch_condition_rewritten(self):
        b = CFGBuilder()
        b.block("top", "q = p").branch("q", "l", "r")
        b.block("l").to_exit()
        b.block("r").to_exit()
        cfg = b.build()
        assert copy_propagate(cfg) == 1
        term = cfg.block("top").terminator
        assert isinstance(term, CondBranch)
        assert term.cond == Var("p")

    def test_loop_carried_copy_killed(self):
        # Inside the loop x = t, but t changes each iteration: the copy
        # reaching the header from the back edge is a *different* t.
        b = CFGBuilder()
        b.block("init", "x = t").jump("head")
        b.block("head", "y = x + 1", "t = t + 1", "x = t", "c = t < n").branch(
            "c", "head", "out"
        )
        b.block("out").to_exit()
        cfg = b.build()
        snapshot = cfg.copy()
        copy_propagate(cfg)
        assert check_equivalence(snapshot, cfg, runs=25).equivalent


class TestSemantics:
    def test_random_programs_preserved(self):
        from repro.bench.generators import GeneratorConfig, random_cfg

        for seed in range(8):
            cfg = random_cfg(seed, GeneratorConfig(statements=8))
            snapshot = cfg.copy()
            copy_propagate(cfg)
            assert check_equivalence(snapshot, cfg, runs=10).equivalent, seed

    def test_no_copies_no_changes(self):
        cfg = straight_line(["x = a + b"])
        assert copy_propagate(cfg) == 0
