"""Unit tests for the counting interpreter."""

import pytest

from tests.helpers import AB, diamond, straight_line

from repro.interp.machine import InterpreterError, eval_expr, run
from repro.interp.random_inputs import random_env, random_envs
from repro.ir.expr import BinExpr, Const, UnaryExpr, Var
import random


class TestEvalExpr:
    @pytest.mark.parametrize(
        "op,left,right,expected",
        [
            ("+", 3, 4, 7),
            ("-", 3, 4, -1),
            ("*", 3, 4, 12),
            ("/", 7, 2, 3),
            ("/", -7, 2, -3),  # C-style truncation
            ("/", 7, -2, -3),
            ("/", 5, 0, 0),  # total semantics
            ("%", 7, 3, 1),
            ("%", 7, 0, 0),
            ("<", 1, 2, 1),
            ("<=", 2, 2, 1),
            (">", 1, 2, 0),
            (">=", 2, 2, 1),
            ("==", 5, 5, 1),
            ("!=", 5, 5, 0),
            ("&", 6, 3, 2),
            ("|", 6, 3, 7),
            ("^", 6, 3, 5),
            ("<<", 1, 3, 8),
            ("<<", 1, 67, 8),  # shift amount mod 64
            (">>", 8, 2, 2),
            ("min", 3, -1, -1),
            ("max", 3, -1, 3),
        ],
    )
    def test_binary_operators(self, op, left, right, expected):
        expr = BinExpr(op, Const(left), Const(right))
        assert eval_expr(expr, {}) == expected

    @pytest.mark.parametrize(
        "op,value,expected",
        [("-", 5, -5), ("!", 0, 1), ("!", 7, 0), ("~", 0, -1), ("abs", -4, 4)],
    )
    def test_unary_operators(self, op, value, expected):
        assert eval_expr(UnaryExpr(op, Const(value)), {}) == expected

    def test_variable_lookup(self):
        assert eval_expr(Var("x"), {"x": 9}) == 9

    def test_undefined_defaults_to_zero(self):
        assert eval_expr(Var("ghost"), {}) == 0

    def test_strict_mode_raises_on_undefined(self):
        with pytest.raises(InterpreterError, match="undefined"):
            eval_expr(Var("ghost"), {}, strict=True)


class TestTruncatedRemainder:
    """``%`` is the C-style truncated remainder, paired with ``/``."""

    @pytest.mark.parametrize(
        "left,right,expected",
        [
            (7, 3, 1),
            (-7, 3, -1),   # sign of the dividend, not Python's +2
            (7, -3, 1),
            (-7, -3, -1),
            (-7, 2, -1),
            (-6, 3, 0),
            (0, 5, 0),
            (5, 0, 0),     # total semantics
            (-5, 0, 0),
        ],
    )
    def test_remainder_follows_dividend_sign(self, left, right, expected):
        expr = BinExpr("%", Const(left), Const(right))
        assert eval_expr(expr, {}) == expected

    def test_division_identity_all_sign_combinations(self):
        # (a / b) * b + a % b == a exhaustively near zero ...
        for a in range(-12, 13):
            for b in range(-6, 7):
                if b == 0:
                    continue
                q = eval_expr(BinExpr("/", Const(a), Const(b)), {})
                r = eval_expr(BinExpr("%", Const(a), Const(b)), {})
                assert q * b + r == a, (a, b, q, r)
                assert abs(r) < abs(b), (a, b, r)
                assert r == 0 or (r < 0) == (a < 0), (a, b, r)

    def test_division_identity_randomized(self):
        # ... and on random larger operands.
        rng = random.Random(20260806)
        for _ in range(500):
            a = rng.randint(-10_000, 10_000)
            b = rng.randint(-500, 500) or 1
            q = eval_expr(BinExpr("/", Const(a), Const(b)), {})
            r = eval_expr(BinExpr("%", Const(a), Const(b)), {})
            assert q * b + r == a, (a, b, q, r)


class TestShiftSemantics:
    """The fixed-width shift story pinned (see docs/LANGUAGE.md):
    unbounded values, amounts taken modulo 64 into 0..63, arithmetic
    right shift, and no result wrapping."""

    @pytest.mark.parametrize(
        "op,left,right,expected",
        [
            ("<<", 1, 64, 1),      # amount mod 64
            ("<<", 1, 67, 8),
            ("<<", 1, 128, 1),
            (">>", 256, 64, 256),
            (">>", 256, 66, 64),
            ("<<", 3, 0, 3),
        ],
    )
    def test_amounts_reduce_mod_64(self, op, left, right, expected):
        assert eval_expr(BinExpr(op, Const(left), Const(right)), {}) == expected

    def test_negative_amounts_map_into_range(self):
        # Python's floored %: (-1) % 64 == 63, so x << -1 == x << 63.
        assert eval_expr(BinExpr("<<", Const(1), Const(-1)), {}) == 1 << 63
        assert eval_expr(BinExpr("<<", Const(1), Const(-63)), {}) == 2
        assert eval_expr(BinExpr(">>", Const(1 << 63), Const(-1)), {}) == 1

    @pytest.mark.parametrize(
        "left,right,expected",
        [
            (-8, 1, -4),   # sign-preserving
            (-1, 5, -1),   # saturates at -1, never 0
            (-1, 63, -1),
            (7, 1, 3),     # floors toward -inf on positives too
            (-7, 1, -4),
        ],
    )
    def test_right_shift_is_arithmetic(self, left, right, expected):
        assert eval_expr(BinExpr(">>", Const(left), Const(right)), {}) == expected

    def test_left_shift_never_wraps(self):
        # Values are unbounded: 1 << 63 << ... grows, never truncates.
        huge = eval_expr(BinExpr("<<", Const(1 << 62), Const(2)), {})
        assert huge == 1 << 64

    def test_round_trip_identity(self):
        # Because results never wrap, (x << k) >> k == x for every x
        # and every amount — false under true 64-bit semantics.
        rng = random.Random(19920617)
        for _ in range(300):
            x = rng.randint(-(10**9), 10**9)
            k = rng.randint(-130, 130)
            shifted = eval_expr(BinExpr("<<", Const(x), Const(k)), {})
            back = eval_expr(BinExpr(">>", Const(shifted), Const(k)), {})
            assert back == x, (x, k)


class TestRun:
    def test_final_environment(self):
        cfg = straight_line(["x = a + b", "y = x * 2"])
        result = run(cfg, {"a": 3, "b": 4})
        assert result.env["y"] == 14
        assert result.reached_exit

    def test_eval_counts_by_structure(self):
        cfg = straight_line(["x = a + b"], ["y = a + b"], ["z = a * b"])
        result = run(cfg, {"a": 1, "b": 1})
        assert result.count(AB) == 2
        assert result.count(BinExpr("*", Var("a"), Var("b"))) == 1
        assert result.total_evaluations == 3

    def test_copies_not_counted(self):
        cfg = straight_line(["x = a + b", "y = x", "z = 5"])
        result = run(cfg, {})
        assert result.total_evaluations == 1

    def test_branching_on_value(self):
        cfg = diamond()
        taken = run(cfg, {"a": 1, "b": 2})  # a < b: left arm
        assert taken.decisions_taken == [True]
        assert "left" in taken.block_trace
        other = run(cfg, {"a": 2, "b": 1})
        assert other.decisions_taken == [False]
        assert "right" in other.block_trace

    def test_oracle_overrides_condition(self):
        cfg = diamond()
        result = run(cfg, {"a": 1, "b": 2}, decisions=[False])
        assert "right" in result.block_trace

    def test_oracle_exhaustion_stops_run(self):
        cfg = diamond()
        result = run(cfg, decisions=[])
        assert not result.reached_exit

    def test_step_budget(self):
        from repro.ir.builder import CFGBuilder

        b = CFGBuilder()
        b.block("spin", "i = i + 1", "t = 1").branch("t", "spin", "done")
        b.block("done").to_exit()
        cfg = b.build()
        result = run(cfg, {}, max_steps=50)
        assert not result.reached_exit
        assert result.steps > 50 - 5

    def test_block_trace_starts_at_entry(self):
        result = run(diamond(), {})
        assert result.block_trace[0] == "entry"
        assert result.block_trace[-1] == "exit"

    def test_block_counts(self):
        from tests.helpers import do_while_invariant

        result = run(do_while_invariant(), {"n": 4})
        counts = result.block_counts()
        assert counts["body"] == 4
        assert counts["after"] == 1
        assert counts["entry"] == 1


class TestRandomInputs:
    def test_random_env_covers_variables(self):
        env = random_env(["b", "a"], random.Random(0))
        assert set(env) == {"a", "b"}

    def test_random_envs_reproducible(self):
        cfg = diamond()
        assert random_envs(cfg, 5, seed=7) == random_envs(cfg, 5, seed=7)

    def test_random_envs_differ_across_seeds(self):
        cfg = diamond()
        assert random_envs(cfg, 5, seed=1) != random_envs(cfg, 5, seed=2)

    def test_bounds_respected(self):
        cfg = diamond()
        for env in random_envs(cfg, 20, seed=0, lo=-3, hi=3):
            assert all(-3 <= v <= 3 for v in env.values())
