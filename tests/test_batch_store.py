"""Batch driver × persistent store: the cross-process guarantees.

Pins the concurrency story documented in docs/CACHING.md: concurrent
batch runs sharing one store directory end with exactly one valid
entry per unique ``(fingerprint, key)`` — no torn or duplicate
writes — and a store full of corrupted entries degrades to a cold run,
never a failed one.
"""

import json
import multiprocessing
import os

from repro.batch import BatchConfig, items_from_dir, run_batch
from repro.obs.store import (
    ENTRY_FORMAT,
    STORE_FORMAT_VERSION,
    SolutionStore,
    default_code_version,
)

CORPUS = os.path.join(os.path.dirname(__file__), "corpus")


def entry_files(root):
    return [
        p
        for p in root.rglob("*.json")
        if p.is_file() and not p.name.startswith(".tmp-")
    ]


def _run_batch_into(store_dir, jobs):
    report = run_batch(
        items_from_dir(CORPUS),
        BatchConfig(jobs=jobs, store_path=str(store_dir)),
    )
    if not report.ok:
        raise AssertionError(f"batch failed: {report.tally}")


class TestConcurrentWriters:
    def test_single_valid_entry_per_key(self, tmp_path):
        # Two whole batch processes (each with its own worker pool)
        # race over the same corpus and the same store directory.
        ctx = multiprocessing.get_context()
        procs = [
            ctx.Process(target=_run_batch_into, args=(tmp_path, 2))
            for _ in range(2)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0

        files = entry_files(tmp_path)
        assert files
        seen = set()
        for path in files:
            document = json.loads(path.read_text())  # parses: not torn
            assert document["format"] == ENTRY_FORMAT
            assert document["version"] == STORE_FORMAT_VERSION
            assert document["code_version"] == default_code_version()
            assert isinstance(document["payload"], dict)
            seen.add((document["fingerprint"], document["key"]))
        assert len(seen) == len(files)  # no duplicates
        assert len(SolutionStore(tmp_path)) == len(files)

    def test_second_run_is_all_hits(self, tmp_path):
        items = items_from_dir(CORPUS)
        config = BatchConfig(jobs=1, store_path=str(tmp_path))
        cold = run_batch(items, config)
        warm = run_batch(items, config)
        assert warm.ok

        cold_stats, warm_stats = cold.cache_stats(), warm.cache_stats()
        assert cold_stats["disk_writes"] > 0
        assert warm_stats["misses"] == 0 and warm_stats["disk_writes"] == 0
        assert warm_stats["hits"] + warm_stats["disk_hits"] > 0
        assert [i.fingerprint for i in warm.items] == [
            i.fingerprint for i in cold.items
        ]
        assert warm.store["entries"] == cold.store["entries"]


class TestCorruptedStore:
    def test_batch_falls_through_and_heals(self, tmp_path):
        items = items_from_dir(CORPUS)
        config = BatchConfig(jobs=1, store_path=str(tmp_path))
        cold = run_batch(items, config)
        for path in entry_files(tmp_path):
            path.write_bytes(b"\x00 torn mid-write")

        recovered = run_batch(items, config)
        assert recovered.ok, recovered.tally
        assert recovered.merged_counters().get("cache.disk.corrupt", 0) > 0
        assert recovered.cache_stats()["disk_hits"] == 0
        assert [i.fingerprint for i in recovered.items] == [
            i.fingerprint for i in cold.items
        ]
        # The re-solves rewrote every entry: a third run hits clean.
        healed = run_batch(items, config)
        assert healed.cache_stats()["misses"] == 0
        assert healed.merged_counters().get("cache.disk.corrupt", 0) == 0
