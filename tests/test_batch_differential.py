"""Tests for differential batch mode and the interpreter oracle."""

import pytest

import repro.batch.testing  # noqa: F401  registers miscompile-dce
from repro.batch import (
    STATUS_DIVERGENT,
    BatchConfig,
    WorkItem,
    run_batch,
)
from repro.batch.differential import diff_cfgs
from repro.corpus import generated_items, profile_config
from repro.lang import compile_program

SOURCE = "x = a + b; if (p) { y = a + b; } else { y = 0; } z = a + b;"


class TestDiffCfgs:
    def test_identical_programs_agree(self):
        cfg = compile_program(SOURCE)
        block = diff_cfgs(cfg, compile_program(SOURCE), runs=6, seed=1)
        assert block["runs"] == 6
        assert block["compared"] == 6
        assert block["divergences"] == []

    def test_lcm_output_agrees(self):
        from repro import api

        cfg = compile_program(SOURCE)
        optimised = api.optimize_cfg(cfg, "lcm").cfg
        block = diff_cfgs(cfg, optimised, runs=10, seed=0)
        assert block["divergences"] == []

    def test_dropped_store_detected(self):
        cfg = compile_program(SOURCE)
        broken = cfg.copy()
        # Drop the final `z = a + b` store: observable on every input.
        for block in reversed(broken.blocks):
            if block.instrs:
                block.instrs.pop()
                break
        result = diff_cfgs(cfg, broken, runs=5, seed=0)
        assert result["divergences"], "dropped store went unnoticed"
        first = result["divergences"][0]
        assert first["detail"].startswith("variable ")
        assert isinstance(first["env"], dict)
        assert isinstance(first["run"], int)

    def test_decision_flip_detected_unless_pipeline(self):
        cfg = compile_program("if (p) { x = 1; } else { x = 1; } y = x;")
        flipped = compile_program(
            "if (p == 0) { x = 1; } else { x = 1; } y = x;"
        )
        strict = diff_cfgs(cfg, flipped, runs=8, seed=3)
        assert any(
            d["detail"] == "branch decisions differ"
            for d in strict["divergences"]
        )
        # Pipeline mode tolerates decision changes (branch folding) as
        # long as the observable store agrees.
        lax = diff_cfgs(
            cfg, flipped, runs=8, seed=3, compare_decisions=False
        )
        assert lax["divergences"] == []


class TestDifferentialBatch:
    def test_clean_pass_fuzzes_green(self):
        items = generated_items(range(30), profile_config("mixed"))
        report = run_batch(
            items, BatchConfig(differential=True, diff_runs=4)
        )
        assert report.ok, report.tally
        for record in report.items:
            assert record.differential is not None
            assert record.differential["divergences"] == []
            assert record.differential["runs"] == 4

    def test_miscompiled_pass_caught_with_seed(self):
        items = generated_items(range(30), profile_config("mixed"))
        report = run_batch(
            items,
            BatchConfig(
                pass_="miscompile-dce", differential=True, diff_runs=6
            ),
        )
        divergent = [
            r for r in report.items if r.status == STATUS_DIVERGENT
        ]
        assert divergent, report.tally
        assert not report.ok
        assert report.tally[STATUS_DIVERGENT] == len(divergent)
        for record in divergent:
            diff = record.differential
            assert diff["divergences"]
            # The reproduction contract: the minting seed and the full
            # generator config ride in the failure record.
            assert isinstance(diff["seed"], int)
            assert diff["generator"]["statements"] == 12
            assert "diverged" in record.message
            # Divergent records still carry the optimize outcome.
            assert record.fingerprint

    def test_miscompile_caught_across_workers(self):
        # Forked workers inherit the registered pass from the parent.
        items = generated_items(range(12), profile_config("mixed"))
        serial = run_batch(
            items,
            BatchConfig(
                pass_="miscompile-dce", differential=True, diff_runs=6
            ),
        )
        parallel = run_batch(
            items,
            BatchConfig(
                pass_="miscompile-dce",
                differential=True,
                diff_runs=6,
                jobs=3,
            ),
        )
        assert serial.tally == parallel.tally
        assert [r.status for r in serial.items] == [
            r.status for r in parallel.items
        ]

    def test_input_decks_position_independent(self):
        # The same item must draw the same inputs whatever subset it
        # runs in — the property shard/unsharded parity rests on.
        items = generated_items(range(8), profile_config("mixed"))
        config = BatchConfig(pass_="miscompile-dce", differential=True,
                             diff_runs=6)
        full = run_batch(items, config)
        tail = run_batch(items[4:], config)
        by_name = {r.name: r for r in full.items}
        for record in tail.items:
            twin = by_name[record.name]
            assert record.status == twin.status
            assert record.differential == twin.differential

    def test_non_generated_items_fuzz_too(self):
        items = [WorkItem("hand", "source", SOURCE)]
        report = run_batch(
            items, BatchConfig(differential=True, diff_runs=4)
        )
        assert report.ok
        diff = report.items[0].differential
        assert diff["divergences"] == []
        assert "seed" not in diff  # no minting seed to attach

    def test_differential_excludes_analyze(self):
        with pytest.raises(ValueError, match="analyze"):
            BatchConfig(differential=True, analyze=True)

    def test_report_schema_carries_block(self):
        items = generated_items(range(3), profile_config("mixed"))
        report = run_batch(
            items, BatchConfig(differential=True, diff_runs=2)
        )
        payload = report.to_dict()
        assert payload["version"] == 3
        for item in payload["items"]:
            assert item["differential"]["compared"] <= 2
