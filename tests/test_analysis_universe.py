"""Unit tests for the expression universe."""

import pytest

from tests.helpers import AB, CD, diamond

from repro.analysis.universe import ExprUniverse
from repro.dataflow.bitvec import BitVector
from repro.ir.expr import BinExpr, UnaryExpr, Var


class TestUniverse:
    def test_of_cfg_collects_candidates(self):
        universe = ExprUniverse.of_cfg(diamond())
        assert AB in universe
        assert BinExpr("<", Var("a"), Var("b")) in universe
        assert len(universe) == 2

    def test_first_occurrence_order(self):
        universe = ExprUniverse.of_cfg(diamond())
        # cond's "a < b" appears before left's "a + b".
        assert universe.index_of(BinExpr("<", Var("a"), Var("b"))) == 0
        assert universe.index_of(AB) == 1

    def test_add_is_idempotent(self):
        universe = ExprUniverse()
        first = universe.add(AB)
        second = universe.add(AB)
        assert first == second
        assert len(universe) == 1

    def test_add_rejects_non_computation(self):
        with pytest.raises(ValueError):
            ExprUniverse().add(Var("x"))  # type: ignore[arg-type]

    def test_vector_roundtrip(self):
        universe = ExprUniverse([AB, CD])
        vec = universe.vector([CD])
        assert universe.exprs_of(vec) == [CD]

    def test_vector_width(self):
        universe = ExprUniverse([AB, CD])
        assert universe.empty().width == 2
        assert universe.full().count() == 2

    def test_exprs_of_checks_width(self):
        universe = ExprUniverse([AB])
        with pytest.raises(ValueError):
            universe.exprs_of(BitVector.empty(5))

    def test_invalidated_by(self):
        universe = ExprUniverse([AB, CD, UnaryExpr("-", Var("a"))])
        hit = universe.invalidated_by("a")
        assert universe.exprs_of(hit) == [AB, UnaryExpr("-", Var("a"))]

    def test_invalidated_by_unrelated_var(self):
        universe = ExprUniverse([AB])
        assert not universe.invalidated_by("z")

    def test_temp_names_unique_and_dotted(self):
        universe = ExprUniverse([AB, CD])
        names = {universe.temp_name(e) for e in universe}
        assert len(names) == 2
        assert all("." in name for name in names)

    def test_temp_name_collision_safety(self):
        tricky_a = BinExpr("+", Var("a_plus_b"), Var("c"))
        tricky_b = BinExpr("+", Var("a"), Var("b_plus_c"))
        universe = ExprUniverse([tricky_a, tricky_b])
        assert universe.temp_name(tricky_a) != universe.temp_name(tricky_b)

    def test_describe(self):
        universe = ExprUniverse([AB])
        assert universe.describe() == "{0:a + b}"
        assert universe.describe(universe.empty()) == "{}"
