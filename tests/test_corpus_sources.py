"""Tests for corpus sources and manifests (:mod:`repro.corpus`)."""

import json
import tarfile
import zipfile

import pytest

from repro.batch.driver import WorkItem, items_from_dir
from repro.corpus import (
    generated_items,
    items_from_archive,
    items_to_manifest,
    load_corpus,
    manifest_to_items,
    read_manifest,
    scan_directory,
    write_manifest,
)

PROG_A = "x = a + b; y = a + b;"
PROG_B = "u = c * d; v = c * d;"


@pytest.fixture
def corpus_dir(tmp_path):
    root = tmp_path / "corpus"
    root.mkdir()
    (root / "alpha.mini").write_text(PROG_A)
    (root / "beta.mini").write_text(PROG_B)
    return root


class TestScanDirectory:
    def test_flat_scan_sorted(self, corpus_dir):
        items = scan_directory(str(corpus_dir))
        assert [i.name for i in items] == ["alpha", "beta"]
        assert all(i.kind == "path" for i in items)

    def test_case_insensitive_suffix(self, corpus_dir):
        (corpus_dir / "LOUD.MINI").write_text(PROG_A)
        items = scan_directory(str(corpus_dir))
        assert "LOUD" in [i.name for i in items]

    def test_flat_scan_ignores_subdirs(self, corpus_dir):
        sub = corpus_dir / "sub"
        sub.mkdir()
        (sub / "gamma.mini").write_text(PROG_A)
        items = scan_directory(str(corpus_dir))
        assert [i.name for i in items] == ["alpha", "beta"]

    def test_recursive_names_carry_relative_path(self, corpus_dir):
        # Equal stems in different subdirectories must stay distinct.
        sub = corpus_dir / "sub"
        sub.mkdir()
        (sub / "alpha.mini").write_text(PROG_B)
        items = scan_directory(str(corpus_dir), recursive=True)
        assert [i.name for i in items] == ["alpha", "beta", "sub/alpha"]

    def test_manifest_files_skipped(self, corpus_dir):
        (corpus_dir / "manifest.ndjson").write_text("{}")
        (corpus_dir / "MANIFEST.json").write_text("{}")
        items = scan_directory(str(corpus_dir))
        assert [i.name for i in items] == ["alpha", "beta"]

    def test_missing_directory(self, tmp_path):
        with pytest.raises(ValueError, match="not a directory"):
            scan_directory(str(tmp_path / "nope"))

    def test_empty_directory(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(ValueError, match="no .*files"):
            scan_directory(str(empty))

    def test_items_from_dir_alias(self, corpus_dir):
        sub = corpus_dir / "sub"
        sub.mkdir()
        (sub / "alpha.mini").write_text(PROG_B)
        flat = items_from_dir(str(corpus_dir))
        deep = items_from_dir(str(corpus_dir), recursive=True)
        assert [i.name for i in flat] == ["alpha", "beta"]
        assert [i.name for i in deep] == ["alpha", "beta", "sub/alpha"]


class TestArchives:
    def _check(self, items):
        assert [i.name for i in items] == ["alpha", "sub/beta"]
        assert all(i.kind == "source" for i in items)
        assert items[0].payload == PROG_A
        assert items[1].payload == PROG_B

    def test_zip(self, tmp_path):
        path = tmp_path / "corpus.zip"
        with zipfile.ZipFile(path, "w") as handle:
            handle.writestr("alpha.mini", PROG_A)
            handle.writestr("sub/beta.mini", PROG_B)
            handle.writestr("manifest.ndjson", "{}")
            handle.writestr("README.txt", "not a program")
        self._check(items_from_archive(str(path)))

    def test_tar_gz(self, tmp_path, corpus_dir):
        (corpus_dir / "sub").mkdir()
        (corpus_dir / "sub" / "beta.mini").write_text(PROG_B)
        (corpus_dir / "beta.mini").unlink()
        path = tmp_path / "corpus.tar.gz"
        with tarfile.open(path, "w:gz") as handle:
            handle.add(corpus_dir / "alpha.mini", arcname="alpha.mini")
            handle.add(
                corpus_dir / "sub" / "beta.mini", arcname="sub/beta.mini"
            )
        self._check(items_from_archive(str(path)))

    def test_duplicate_names_rejected(self, tmp_path):
        path = tmp_path / "dup.zip"
        with zipfile.ZipFile(path, "w") as handle:
            handle.writestr("prog.mini", PROG_A)
            handle.writestr("prog.MINI", PROG_B)
        with pytest.raises(ValueError, match="duplicate item names"):
            items_from_archive(str(path))

    def test_empty_archive(self, tmp_path):
        path = tmp_path / "empty.zip"
        with zipfile.ZipFile(path, "w"):
            pass
        with pytest.raises(ValueError, match="no .*members"):
            items_from_archive(str(path))

    def test_missing_archive(self, tmp_path):
        with pytest.raises(ValueError, match="no such archive"):
            items_from_archive(str(tmp_path / "nope.zip"))


class TestManifests:
    def test_json_document_roundtrip(self, tmp_path):
        items = [
            WorkItem("a", "source", PROG_A, cost=2.0),
            WorkItem("b", "json", "{}"),
        ]
        path = tmp_path / "manifest.json"
        write_manifest(items, str(path))
        doc = json.loads(path.read_text())
        assert doc["format"] == "repro-corpus-manifest"
        assert read_manifest(str(path)) == items

    def test_ndjson_roundtrip(self, tmp_path):
        items = generated_items(range(3))
        path = tmp_path / "manifest.ndjson"
        write_manifest(items, str(path))
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 4  # header + one record per item
        assert read_manifest(str(path)) == items

    def test_generated_records_are_human_auditable(self):
        doc = items_to_manifest(generated_items([7]))
        record = doc["items"][0]
        assert record["kind"] == "generated"
        assert record["options"]["seed"] == 7
        assert "statements" in record["options"]["config"]
        assert "payload" not in record

    def test_call_items_gated(self):
        doc = items_to_manifest(
            [WorkItem("evil", "call", "os:getcwd")]
        )
        with pytest.raises(ValueError, match="allow_call"):
            manifest_to_items(doc)
        items = manifest_to_items(doc, allow_call=True)
        assert items[0].kind == "call"

    def test_duplicate_names_rejected(self):
        doc = items_to_manifest(
            [WorkItem("same", "source", PROG_A),
             WorkItem("same", "source", PROG_B)]
        )
        with pytest.raises(ValueError, match="duplicate item name"):
            manifest_to_items(doc)

    def test_version_and_format_validated(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "nope", "items": []}))
        with pytest.raises(ValueError, match="not a corpus manifest"):
            read_manifest(str(path))
        path.write_text(json.dumps(
            {"format": "repro-corpus-manifest", "version": 99,
             "items": [{"name": "a", "kind": "source", "payload": "x=1;"}]}
        ))
        with pytest.raises(ValueError, match="unsupported manifest version"):
            read_manifest(str(path))

    def test_bad_records_validated(self):
        header = {"format": "repro-corpus-manifest", "version": 1}
        with pytest.raises(ValueError, match="no items"):
            manifest_to_items(dict(header, items=[]))
        with pytest.raises(ValueError, match="unknown kind"):
            manifest_to_items(
                dict(header, items=[{"name": "a", "kind": "exe"}])
            )
        with pytest.raises(ValueError, match="string 'payload'"):
            manifest_to_items(
                dict(header, items=[{"name": "a", "kind": "source"}])
            )
        with pytest.raises(ValueError, match="needs options"):
            manifest_to_items(
                dict(header, items=[{"name": "a", "kind": "generated"}])
            )

    def test_malformed_file(self, tmp_path):
        path = tmp_path / "garbage.ndjson"
        path.write_text("{not json\nat all}")
        with pytest.raises(ValueError, match="malformed manifest"):
            read_manifest(str(path))
        path.write_text("")
        with pytest.raises(ValueError, match="empty manifest"):
            read_manifest(str(path))


class TestLoadCorpus:
    def test_dispatch_directory(self, corpus_dir):
        assert [i.name for i in load_corpus(str(corpus_dir))] == [
            "alpha", "beta",
        ]

    def test_dispatch_archive(self, tmp_path):
        path = tmp_path / "c.zip"
        with zipfile.ZipFile(path, "w") as handle:
            handle.writestr("alpha.mini", PROG_A)
        assert [i.name for i in load_corpus(str(path))] == ["alpha"]

    def test_dispatch_manifest(self, tmp_path):
        items = generated_items(range(2))
        path = tmp_path / "m.ndjson"
        write_manifest(items, str(path))
        assert load_corpus(str(path)) == items

    def test_missing_path(self, tmp_path):
        with pytest.raises(ValueError, match="no such corpus"):
            load_corpus(str(tmp_path / "nope"))
