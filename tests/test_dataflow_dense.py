"""The dense integer backend is bit-identical to the reference solver.

The tentpole property: ``solve_dense`` mirrors the reference round-robin
solver node for node, so on *any* problem — forward/backward,
intersect/union, gen/kill-lowered or closure fallback, reducible or
irreducible graph — the fixpoints, the ``sweeps`` count and the
``node_visits`` count all coincide exactly.  A hypothesis sweep pins the
property over random graphs; targeted tests pin the routing rules (the
dense backend steps aside whenever a :func:`counting` context is active,
so benchmark C1's operation tallies are untouched) and the manager's
plan cache.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.helpers import diamond, do_while_invariant

from repro.analysis.anticipability import anticipability_problem
from repro.analysis.availability import availability_problem
from repro.analysis.local import compute_local_properties
from repro.bench.generators import GeneratorConfig, random_cfg
from repro.bench.shapegen import ShapeConfig, random_shape_cfg
from repro.core.krs import delay_problem, isolation_problem
from repro.dataflow.bitvec import BitVector, counting, counting_active
from repro.dataflow.dense import (
    DenseGraph,
    compile_plan,
    lower_transfer,
    solve_dense,
)
from repro.dataflow.problem import DataflowProblem, GenKillTransfer
from repro.dataflow.solver import solve
from repro.obs.manager import AnalysisManager

SMALL = GeneratorConfig(statements=8, max_depth=2)
SHAPES = ShapeConfig(blocks=8, back_edge_probability=0.5)

quick = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

seeds = st.integers(min_value=0, max_value=10_000)


def _problem_suite(cfg):
    """Problems covering every (direction, confluence, lowering) shape."""
    local = compute_local_properties(cfg)
    width = local.universe.width
    # Gen/kill, forward intersect and backward intersect.
    yield availability_problem(local)
    yield anticipability_problem(local)
    # Gen/kill, backward union (the liveness shape).
    yield DataflowProblem.backward_union(
        "liveness-shape",
        width,
        GenKillTransfer(gen=local.antloc, keep=local.transp),
    )
    # Bespoke lowered transfers with a full boundary (the KRS systems).
    earliest = {n: local.antloc[n] - local.transp[n] for n in cfg.labels}
    latest = {n: local.antloc[n] for n in cfg.labels}
    yield delay_problem(local, earliest)
    yield isolation_problem(local, latest)
    # A transfer with no lowering hook: exercises the closure fallback.
    transp = local.transp
    antloc = local.antloc
    yield DataflowProblem.forward_intersect(
        "closure-shape",
        width,
        lambda label, fact: (fact & transp[label]) | antloc[label],
    )


def _assert_backends_agree(cfg):
    for problem in _problem_suite(cfg):
        rr = solve(cfg, problem, strategy="round-robin")
        wl = solve(cfg, problem, strategy="worklist")
        dn = solve(cfg, problem, strategy="dense")
        assert dn.stats.backend == "dense"
        assert rr.inof == wl.inof == dn.inof, problem.name
        assert rr.outof == wl.outof == dn.outof, problem.name
        assert rr.stats.sweeps == dn.stats.sweeps, problem.name
        assert rr.stats.node_visits == dn.stats.node_visits, problem.name
        assert rr.stats.sweeps >= 1 and rr.stats.node_visits >= len(cfg) - 1


# ---------------------------------------------------------------------------
# The equivalence property
# ---------------------------------------------------------------------------

class TestDenseEqualsReference:
    @quick
    @given(seeds)
    def test_on_random_reducible_cfgs(self, seed):
        _assert_backends_agree(random_cfg(seed, SMALL))

    @quick
    @given(seeds)
    def test_on_random_irreducible_cfgs(self, seed):
        _assert_backends_agree(random_shape_cfg(seed, SHAPES))

    def test_on_handwritten_graphs(self):
        _assert_backends_agree(diamond())
        _assert_backends_agree(do_while_invariant())

    @pytest.mark.parametrize("width", [0, 1, 7, 64, 200])
    def test_odd_widths(self, width):
        cfg = diamond()
        empty = BitVector.empty(width)
        gen = {label: empty for label in cfg.labels}
        keep = {label: ~empty for label in cfg.labels}
        problem = DataflowProblem.forward_intersect(
            "widths", width, GenKillTransfer(gen=gen, keep=keep)
        )
        rr = solve(cfg, problem, strategy="round-robin")
        dn = solve(cfg, problem, strategy="dense")
        assert rr.inof == dn.inof and rr.outof == dn.outof


# ---------------------------------------------------------------------------
# Plan compilation and lowering
# ---------------------------------------------------------------------------

class TestPlan:
    def test_plan_shape(self):
        cfg = diamond()
        plan = compile_plan(cfg)
        assert isinstance(plan, DenseGraph)
        assert len(plan) == len(cfg)
        assert plan.labels == tuple(cfg.labels)
        assert plan.labels[plan.entry] == cfg.entry
        assert plan.labels[plan.exit] == cfg.exit
        for label in cfg.labels:
            i = plan.index[label]
            assert {plan.labels[p] for p in plan.preds[i]} == set(cfg.preds(label))
            assert {plan.labels[s] for s in plan.succs[i]} == set(cfg.succs(label))
        # Both orders visit every block exactly once on this graph.
        assert sorted(plan.forward_order) == list(range(len(plan)))
        assert sorted(plan.backward_order) == list(range(len(plan)))

    def test_explicit_plan_is_honoured(self):
        cfg = diamond()
        plan = compile_plan(cfg)
        problem = availability_problem(compute_local_properties(cfg))
        with_plan = solve_dense(cfg, problem, plan=plan)
        without = solve_dense(cfg, problem)
        assert with_plan.inof == without.inof
        assert with_plan.outof == without.outof

    def test_gen_kill_lowers_to_parallel_arrays(self):
        cfg = diamond()
        local = compute_local_properties(cfg)
        problem = availability_problem(local)
        plan = compile_plan(cfg)
        lowered = lower_transfer(problem, plan.labels)
        assert lowered is not None
        gen, keep = lowered
        for i, label in enumerate(plan.labels):
            assert gen[i] == local.comp[label].bits
            assert keep[i] == local.transp[label].bits

    def test_function_transfer_does_not_lower(self):
        problem = DataflowProblem.forward_intersect(
            "raw", 4, lambda label, fact: fact
        )
        assert lower_transfer(problem, ("a", "b")) is None

    @quick
    @given(seeds)
    def test_krs_lowering_contract(self, seed):
        """``transfer(l, f) == gen | (f & keep)`` bit-for-bit, any fact."""
        cfg = random_cfg(seed, SMALL)
        local = compute_local_properties(cfg)
        width = local.universe.width
        earliest = {n: local.antloc[n] - local.transp[n] for n in cfg.labels}
        latest = {n: local.antloc[n] for n in cfg.labels}
        labels = tuple(cfg.labels)
        for problem in (
            delay_problem(local, earliest),
            isolation_problem(local, latest),
        ):
            gen, keep = problem.transfer.lower(labels)
            for i, label in enumerate(labels):
                for fact in (
                    BitVector.empty(width),
                    BitVector.full(width),
                    local.transp[label],
                    ~local.antloc[label],
                ):
                    expect = problem.transfer(label, fact)
                    assert expect.bits == gen[i] | (fact.bits & keep[i])


# ---------------------------------------------------------------------------
# Routing: counting contexts always get the counted reference path
# ---------------------------------------------------------------------------

class TestCountingRegression:
    def _tally(self, cfg, strategy):
        local = compute_local_properties(cfg)
        with counting() as ops:
            for problem in (
                availability_problem(local),
                anticipability_problem(local),
            ):
                solution = solve(cfg, problem, strategy=strategy)
                assert solution.stats.backend == "reference"
        return dict(ops.counts)

    @pytest.mark.parametrize("strategy", ["auto", "dense"])
    def test_counting_forces_reference_backend(self, strategy):
        cfg = do_while_invariant()
        baseline = self._tally(cfg, "round-robin")
        assert baseline and sum(baseline.values()) > 0
        assert self._tally(cfg, strategy) == baseline

    def test_counting_active_probe(self):
        assert not counting_active()
        with counting():
            assert counting_active()
            with counting(exclusive=False):
                assert counting_active()
        assert not counting_active()

    def test_dense_runs_when_no_counter_is_active(self):
        cfg = diamond()
        problem = availability_problem(compute_local_properties(cfg))
        assert solve(cfg, problem).stats.backend == "dense"
        assert solve(cfg, problem, strategy="auto").stats.backend == "dense"
        rr = solve(cfg, problem, strategy="round-robin")
        assert rr.stats.backend == "reference"


# ---------------------------------------------------------------------------
# Manager integration: one plan per graph content
# ---------------------------------------------------------------------------

class TestManagerPlanCache:
    def test_plan_cached_by_fingerprint(self):
        manager = AnalysisManager()
        a, b = diamond(), diamond()
        plan = manager.dense_plan(a)
        assert manager.dense_plan(a) is plan
        assert manager.dense_plan(b) is plan  # equal content, same plan
        assert manager.stats.plan_misses == 1
        assert manager.stats.plan_hits == 2
        other = manager.dense_plan(do_while_invariant())
        assert other is not plan
        assert manager.stats.plan_misses == 2

    def test_disabled_manager_recompiles(self):
        manager = AnalysisManager(enabled=False)
        cfg = diamond()
        assert manager.dense_plan(cfg) is not manager.dense_plan(cfg)
        assert manager.stats.plan_hits == 0

    def test_solution_cache_unaffected_and_backends_tallied(self):
        manager = AnalysisManager()
        cfg = diamond()
        problem = availability_problem(compute_local_properties(cfg))
        first = manager.solve(cfg, problem)
        second = manager.solve(cfg, problem)
        assert first.inof == second.inof
        # Plan compiles never show up as solution misses.
        assert manager.stats.misses == 1
        assert manager.stats.hits == 1
        assert manager.stats.backends == {"dense": 1}

    def test_clear_drops_plans(self):
        manager = AnalysisManager()
        cfg = diamond()
        plan = manager.dense_plan(cfg)
        manager.clear()
        assert manager.dense_plan(cfg) is not plan


# ---------------------------------------------------------------------------
# Unreachable blocks keep their init facts in both backends
# ---------------------------------------------------------------------------

def test_unreachable_blocks_keep_init_facts():
    from repro.ir.block import BasicBlock
    from repro.ir.cfg import CFG
    from repro.ir.instr import Halt, Jump

    cfg = CFG()
    cfg.add_block(BasicBlock("entry", [], Jump("exit")))
    cfg.add_block(BasicBlock("exit", [], Halt()))
    cfg.add_block(BasicBlock("orphan", [], Jump("exit")))

    width = 3
    full = BitVector.full(width)
    gen = {label: BitVector.empty(width) for label in cfg.labels}
    keep = {label: full for label in cfg.labels}
    problem = DataflowProblem.forward_intersect(
        "unreachable", width, GenKillTransfer(gen=gen, keep=keep)
    )
    rr = solve(cfg, problem, strategy="round-robin")
    dn = solve(cfg, problem, strategy="dense")
    assert rr.inof == dn.inof and rr.outof == dn.outof
    assert dn.inof["orphan"] == problem.init
