"""Unit + property tests for CFG JSON serialisation."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.helpers import diamond, do_while_invariant

from repro.bench.generators import GeneratorConfig, random_cfg
from repro.ir.expr import BinExpr, Const, UnaryExpr, Var
from repro.ir.serialize import (
    SerializeError,
    cfg_from_dict,
    cfg_from_json,
    cfg_to_dict,
    cfg_to_json,
    expr_from_dict,
    expr_to_dict,
)


class TestExprRoundTrip:
    @pytest.mark.parametrize(
        "expr",
        [
            Const(42),
            Const(-7),
            Var("alpha"),
            UnaryExpr("-", Var("x")),
            UnaryExpr("abs", Const(-3)),
            BinExpr("+", Var("a"), Var("b")),
            BinExpr("<<", Var("a"), Const(2)),
            BinExpr("min", Const(1), Var("z")),
        ],
    )
    def test_roundtrip(self, expr):
        assert expr_from_dict(expr_to_dict(expr)) == expr

    def test_bad_kind_rejected(self):
        with pytest.raises(SerializeError, match="kind"):
            expr_from_dict({"kind": "lambda"})

    def test_non_dict_rejected(self):
        with pytest.raises(SerializeError):
            expr_from_dict(["const", 1])

    def test_nested_expression_rejected(self):
        nested = {
            "kind": "binary",
            "op": "+",
            "left": {"kind": "binary", "op": "*", "left": {"kind": "var", "name": "a"},
                     "right": {"kind": "var", "name": "b"}},
            "right": {"kind": "const", "value": 1},
        }
        with pytest.raises(SerializeError, match="atomic"):
            expr_from_dict(nested)


class TestCfgRoundTrip:
    def test_diamond_roundtrip(self):
        cfg = diamond()
        again = cfg_from_dict(cfg_to_dict(cfg))
        assert str(again) == str(cfg)
        assert again.labels == cfg.labels

    def test_json_roundtrip(self):
        cfg = do_while_invariant()
        assert str(cfg_from_json(cfg_to_json(cfg))) == str(cfg)

    def test_weights_preserved(self):
        cfg = diamond()
        cfg.set_weight(("cond", "left"), 9)
        again = cfg_from_dict(cfg_to_dict(cfg))
        assert again.weight(("cond", "left")) == 9
        assert again.weight(("cond", "right")) == 1

    def test_unterminated_block_rejected_on_write(self):
        from repro.ir.block import BasicBlock
        from repro.ir.cfg import CFG

        cfg = CFG()
        cfg.add_block(BasicBlock("entry"))
        with pytest.raises(SerializeError, match="unterminated"):
            cfg_to_dict(cfg)

    def test_wrong_format_rejected(self):
        with pytest.raises(SerializeError, match="repro-cfg"):
            cfg_from_dict({"format": "elf", "version": 1})

    def test_wrong_version_rejected(self):
        data = cfg_to_dict(diamond())
        data["version"] = 99
        with pytest.raises(SerializeError, match="version"):
            cfg_from_dict(data)

    def test_bad_json_rejected(self):
        with pytest.raises(SerializeError, match="JSON"):
            cfg_from_json("{not json")

    def test_malformed_block_reports_path(self):
        data = cfg_to_dict(diamond())
        data["blocks"][2] = {"nope": True}
        with pytest.raises(SerializeError, match=r"blocks\[2\]"):
            cfg_from_dict(data)

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=0, max_value=5000))
    def test_random_program_roundtrip(self, seed):
        cfg = random_cfg(seed, GeneratorConfig(statements=8))
        again = cfg_from_json(cfg_to_json(cfg))
        assert str(again) == str(cfg)
        assert again.edges() == cfg.edges()

    def test_all_figures_roundtrip(self):
        from repro.bench.figures import FIGURES

        for name, fn in sorted(FIGURES.items()):
            cfg = fn()
            again = cfg_from_json(cfg_to_json(cfg))
            assert str(again) == str(cfg), name

    def test_unstructured_graphs_roundtrip(self):
        from repro.bench.shapegen import random_shape_cfg

        for seed in range(5):
            cfg = random_shape_cfg(seed)
            again = cfg_from_json(cfg_to_json(cfg))
            assert str(again) == str(cfg), seed

    def test_optimised_program_roundtrips(self):
        from repro.core.pipeline import optimize

        cfg = optimize(diamond(), "lcm").cfg
        again = cfg_from_json(cfg_to_json(cfg))
        assert str(again) == str(cfg)
