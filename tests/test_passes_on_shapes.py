"""The cleanup passes on unstructured graphs, via the path oracle.

Copy propagation, constant folding and DCE preserve branch structure
(they may rewrite a condition's *variable* but never add, remove or
reorder branches), so per-path comparison is well defined even on the
shape generator's irreducible graphs, whose concrete executions may
diverge.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.shapegen import ShapeConfig, random_shape_cfg
from repro.core.optimality import compare_per_path, enumerate_traces, replay
from repro.ir.validate import validate_cfg
from repro.passes.canonical import canonicalize
from repro.passes.constfold import fold_constants
from repro.passes.copyprop import copy_propagate
from repro.passes.dce import dead_code_elimination

quick = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
seeds = st.integers(min_value=0, max_value=10_000)


def final_envs_agree(original, transformed, max_branches=6):
    """Same decision sequence -> same final environment (source vars)."""
    source_vars = original.variables()
    for trace in enumerate_traces(original, max_branches):
        from repro.interp.machine import run

        before = run(original, decisions=trace.decisions)
        after = run(transformed, decisions=trace.decisions)
        assert after.reached_exit
        for name in source_vars:
            if before.env.get(name, 0) != after.env.get(name, 0):
                return False, (trace.decisions, name)
    return True, None


class TestPassesOnShapes:
    @quick
    @given(seeds)
    def test_copy_propagation(self, seed):
        cfg = random_shape_cfg(seed, ShapeConfig(blocks=8))
        work = cfg.copy()
        copy_propagate(work)
        validate_cfg(work)
        ok, witness = final_envs_agree(cfg, work)
        assert ok, witness

    @quick
    @given(seeds)
    def test_constant_folding(self, seed):
        cfg = random_shape_cfg(seed, ShapeConfig(blocks=8))
        work = cfg.copy()
        fold_constants(work)
        validate_cfg(work)
        ok, witness = final_envs_agree(cfg, work)
        assert ok, witness

    @quick
    @given(seeds)
    def test_dead_code_elimination(self, seed):
        cfg = random_shape_cfg(seed, ShapeConfig(blocks=8))
        work = cfg.copy()
        dead_code_elimination(work)
        validate_cfg(work)
        ok, witness = final_envs_agree(cfg, work)
        assert ok, witness

    @quick
    @given(seeds)
    def test_canonicalisation_never_increases_path_counts(self, seed):
        cfg = random_shape_cfg(seed, ShapeConfig(blocks=8))
        work = cfg.copy()
        canonicalize(work)
        # Counting is by structural expression; canonicalisation renames
        # candidates, so compare totals rather than per-expression.
        for trace in enumerate_traces(cfg, 6):
            after = replay(work, trace.decisions)
            assert after.total == trace.total

    @quick
    @given(seeds)
    def test_dce_never_increases_evaluations(self, seed):
        cfg = random_shape_cfg(seed, ShapeConfig(blocks=8))
        work = cfg.copy()
        dead_code_elimination(work)
        report = compare_per_path(cfg, work, max_branches=6)
        assert report.safe
