"""Unit tests for AST -> CFG lowering, checked by executing the result."""


from repro.interp.machine import run
from repro.ir.instr import CondBranch
from repro.ir.validate import validate_cfg
from repro.lang.lower import compile_program


def result_of(source, **inputs):
    cfg = compile_program(source)
    validate_cfg(cfg)
    return run(cfg, inputs)


class TestStraightLine:
    def test_sequence(self):
        res = result_of("x = 1; y = x + 2; z = y * 3;")
        assert res.env["z"] == 9

    def test_empty_program(self):
        res = result_of("")
        assert res.reached_exit

    def test_skip_only(self):
        assert result_of("skip;").reached_exit


class TestIf:
    def test_then_taken(self):
        res = result_of("if (p) { x = 1; } else { x = 2; }", p=1)
        assert res.env["x"] == 1

    def test_else_taken(self):
        res = result_of("if (p) { x = 1; } else { x = 2; }", p=0)
        assert res.env["x"] == 2

    def test_if_without_else_skips(self):
        res = result_of("x = 9; if (p) { x = 1; }", p=0)
        assert res.env["x"] == 9

    def test_condition_materialised_as_temp(self):
        cfg = compile_program("if (a < b) { x = 1; }")
        branches = [
            blk for blk in cfg if isinstance(blk.terminator, CondBranch)
        ]
        assert len(branches) == 1
        cond_var = branches[0].terminator.cond
        # The comparison is computed into a dotted compiler temp.
        assert "." in cond_var.name
        assert any(
            str(i) == f"{cond_var.name} = a < b" for i in branches[0].instrs
        )

    def test_nested_ifs(self):
        src = """
        if (p) {
            if (q) { x = 1; } else { x = 2; }
        } else {
            x = 3;
        }
        """
        assert result_of(src, p=1, q=0).env["x"] == 2
        assert result_of(src, p=0, q=1).env["x"] == 3


class TestLoops:
    def test_while_counts(self):
        res = result_of("i = 0; while (i < n) { i = i + 1; }", n=5)
        assert res.env["i"] == 5

    def test_while_zero_trip(self):
        res = result_of("i = 0; x = 7; while (i < n) { x = 0; }", n=0)
        assert res.env["x"] == 7

    def test_do_while_runs_at_least_once(self):
        res = result_of("x = 0; do { x = x + 1; } while (0);")
        assert res.env["x"] == 1

    def test_do_while_loops(self):
        res = result_of(
            "i = 0; do { i = i + 1; t = i < n; } while (t);", n=4
        )
        assert res.env["i"] == 4

    def test_repeat_fixed_count(self):
        res = result_of("x = 0; repeat (4) { x = x + 2; }")
        assert res.env["x"] == 8

    def test_repeat_zero(self):
        res = result_of("x = 5; repeat (0) { x = 0; }")
        assert res.env["x"] == 5

    def test_repeat_with_expression_count(self):
        res = result_of("x = 0; repeat (n * 2) { x = x + 1; }", n=3)
        assert res.env["x"] == 6

    def test_nested_loops(self):
        res = result_of(
            "x = 0; repeat (3) { repeat (4) { x = x + 1; } }"
        )
        assert res.env["x"] == 12

    def test_loop_condition_reevaluated(self):
        # n changes inside the loop; the header must recompute the test.
        res = result_of(
            "i = 0; while (i < n) { n = n - 1; i = i + 1; }", n=10
        )
        assert res.env["i"] == 5


class TestStructure:
    def test_all_programs_validate(self):
        sources = [
            "x = 1;",
            "if (p) { x = 1; }",
            "while (p) { skip; }",
            "do { x = 1; } while (p);",
            "repeat (2) { if (q) { y = 1; } }",
        ]
        for source in sources:
            validate_cfg(compile_program(source))

    def test_compiler_temps_cannot_collide_with_source(self):
        cfg = compile_program("c1 = 1; if (c1 < 5) { x = 1; }")
        res = run(cfg, {})
        assert res.env["x"] == 1
