"""LCM on unstructured (possibly irreducible) control flow.

The structured front-end can only produce reducible graphs; these
tests drive the whole PRE stack over arbitrary-shaped CFGs — joins,
critical edges, irreducible loops — using the decision-oracle path
checkers (concrete execution may not terminate on such graphs).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.dominators import compute_dominators
from repro.bench.shapegen import ShapeConfig, random_shape_cfg
from repro.core.lifetime import measure_lifetimes
from repro.core.optimality import compare_per_path, paths_agree
from repro.core.pipeline import optimize
from repro.ir.edgesplit import critical_edges
from repro.ir.validate import validate_cfg

quick = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
seeds = st.integers(min_value=0, max_value=10_000)


def is_irreducible(cfg):
    """Any back-ish edge whose target does not dominate its source."""
    dom = compute_dominators(cfg)
    order = {label: i for i, label in enumerate(cfg.labels)}
    return any(
        order.get(dst, 0) <= order.get(src, 0) and dst not in dom[src]
        for src, dst in cfg.edges()
    )


class TestGenerator:
    @quick
    @given(seeds)
    def test_graphs_validate(self, seed):
        validate_cfg(random_shape_cfg(seed))

    def test_reproducible(self):
        assert str(random_shape_cfg(3)) == str(random_shape_cfg(3))

    def test_produces_critical_edges(self):
        assert any(
            critical_edges(random_shape_cfg(seed)) for seed in range(20)
        )

    def test_produces_irreducible_graphs(self):
        assert any(is_irreducible(random_shape_cfg(seed)) for seed in range(40))

    def test_config_scales(self):
        small = random_shape_cfg(1, ShapeConfig(blocks=4))
        large = random_shape_cfg(1, ShapeConfig(blocks=20))
        assert len(large) > len(small)


class TestLCMOnShapes:
    @quick
    @given(seeds)
    def test_lcm_safe_on_any_shape(self, seed):
        cfg = random_shape_cfg(seed)
        result = optimize(cfg, "lcm")
        report = compare_per_path(cfg, result.cfg, max_branches=6)
        assert report.safe, report.safety_violations[:3]

    @quick
    @given(seeds)
    def test_bcm_safe_on_any_shape(self, seed):
        cfg = random_shape_cfg(seed)
        result = optimize(cfg, "bcm")
        assert compare_per_path(cfg, result.cfg, max_branches=6).safe

    @quick
    @given(seeds)
    def test_lcm_equals_bcm_on_any_shape(self, seed):
        cfg = random_shape_cfg(seed)
        lcm = optimize(cfg, "lcm")
        bcm = optimize(cfg, "bcm")
        assert paths_agree(lcm.cfg, bcm.cfg, max_branches=6)

    @quick
    @given(seeds)
    def test_formulations_agree_on_any_shape(self, seed):
        cfg = random_shape_cfg(seed)
        edge = optimize(cfg, "lcm")
        node = optimize(cfg, "krs-lcm")
        assert paths_agree(edge.cfg, node.cfg, max_branches=6)

    @quick
    @given(seeds)
    def test_lifetime_ordering_on_any_shape(self, seed):
        cfg = random_shape_cfg(seed)
        spans = {}
        for strategy in ("krs-lcm", "krs-alcm", "krs-bcm"):
            result = optimize(cfg, strategy)
            spans[strategy] = measure_lifetimes(
                result.cfg, result.temps
            ).total_live_points
        assert spans["krs-lcm"] <= spans["krs-alcm"] <= spans["krs-bcm"]

    @quick
    @given(seeds)
    def test_mr_never_beats_lcm_on_any_shape(self, seed):
        cfg = random_shape_cfg(seed)
        lcm = optimize(cfg, "lcm")
        mr = optimize(cfg, "mr")
        head = compare_per_path(lcm.cfg, mr.cfg, max_branches=6)
        assert head.improvements == 0
