"""Unit tests for dominators, frontiers and natural loops."""

from tests.helpers import diamond, straight_line

from repro.analysis.dominators import (
    back_edges,
    compute_dominators,
    dominance_frontier,
    immediate_dominators,
    natural_loop,
)
from repro.ir.builder import CFGBuilder


def loop_graph():
    b = CFGBuilder()
    b.block("pre", "i = 0").jump("head")
    b.block("head", "t = i < n").branch("t", "body", "out")
    b.block("body", "i = i + 1").jump("head")
    b.block("out").to_exit()
    return b.build()


def nested_loops():
    b = CFGBuilder()
    b.block("oh", "t1 = i < n").branch("t1", "ih", "done")
    b.block("ih", "t2 = j < m").branch("t2", "ib", "oend")
    b.block("ib", "j = j + 1").jump("ih")
    b.block("oend", "i = i + 1").jump("oh")
    b.block("done").to_exit()
    return b.build()


class TestDominators:
    def test_entry_dominates_everything(self):
        cfg = diamond()
        dom = compute_dominators(cfg)
        assert all(cfg.entry in doms for doms in dom.values())

    def test_diamond_join_not_dominated_by_arms(self):
        dom = compute_dominators(diamond())
        assert "left" not in dom["join"]
        assert "right" not in dom["join"]
        assert "cond" in dom["join"]

    def test_chain_dominance_is_total(self):
        cfg = straight_line(["x = 1"], ["y = 2"], ["z = 3"])
        dom = compute_dominators(cfg)
        assert dom["s2"] >= {"entry", "s0", "s1", "s2"}

    def test_self_domination(self):
        dom = compute_dominators(diamond())
        assert all(label in dom[label] for label in dom)


class TestImmediateDominators:
    def test_entry_has_none(self):
        idom = immediate_dominators(diamond())
        assert idom["entry"] is None

    def test_join_idom_is_branch_point(self):
        idom = immediate_dominators(diamond())
        assert idom["join"] == "cond"

    def test_chain(self):
        cfg = straight_line(["x = 1"], ["y = 2"])
        idom = immediate_dominators(cfg)
        assert idom["s1"] == "s0"


class TestFrontier:
    def test_diamond_arms_frontier_is_join(self):
        frontier = dominance_frontier(diamond())
        assert frontier["left"] == {"join"}
        assert frontier["right"] == {"join"}

    def test_join_has_empty_frontier_in_dag(self):
        frontier = dominance_frontier(diamond())
        assert frontier["join"] == set()

    def test_loop_header_in_own_frontier(self):
        frontier = dominance_frontier(loop_graph())
        assert "head" in frontier["head"] or "head" in frontier["body"]


class TestLoops:
    def test_back_edge_detection(self):
        assert back_edges(loop_graph()) == [("body", "head")]

    def test_no_back_edges_in_dag(self):
        assert back_edges(diamond()) == []

    def test_natural_loop_body(self):
        cfg = loop_graph()
        body = natural_loop(cfg, ("body", "head"))
        assert body == {"head", "body"}

    def test_nested_loop_bodies(self):
        cfg = nested_loops()
        backs = dict.fromkeys(back_edges(cfg))
        assert ("ib", "ih") in backs and ("oend", "oh") in backs
        inner = natural_loop(cfg, ("ib", "ih"))
        outer = natural_loop(cfg, ("oend", "oh"))
        assert inner == {"ih", "ib"}
        assert inner < outer
        assert "oh" in outer
