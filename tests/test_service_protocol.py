"""Tests for the shared NDJSON codec (repro.service.protocol)."""

import json

import pytest

from repro.batch.report import ItemResult
from repro.service import protocol
from repro.service.protocol import ProtocolError, Request, parse_request


class TestParseRequest:
    def test_roundtrip_work_request(self):
        request = Request(
            op="optimize",
            id="r1",
            source="x = a + b;",
            pass_="bcm",
            pipeline=True,
            timeout=2.5,
            keep_ir=True,
            name="prog",
        )
        again = parse_request(request.to_dict())
        assert again == request

    def test_accepts_raw_line(self):
        line = json.dumps({"op": "ping", "id": 7})
        request = parse_request(line)
        assert request.op == "ping"
        assert request.id == "7"  # integer ids are coerced to strings

    def test_defaults(self):
        request = parse_request({"op": "optimize", "source": "x = 1;"})
        assert request.kind == "source"
        assert request.pass_ == "lcm"
        assert request.pipeline is False
        assert request.timeout is None

    @pytest.mark.parametrize(
        "document, match",
        [
            ("{oops", "bad JSON"),
            ('["not", "object"]', "JSON object"),
            ({"op": "frobnicate"}, "unknown op"),
            ({"op": "optimize"}, "non-empty string 'source'"),
            ({"op": "optimize", "source": ""}, "non-empty string 'source'"),
            ({"op": "optimize", "source": "x;", "kind": "psychic"},
             "unknown kind"),
            ({"op": "optimize", "source": "x;", "timeout": -1},
             "positive number"),
            ({"op": "optimize", "source": "x;", "timeout": True},
             "positive number"),
            ({"op": "optimize", "source": "x;", "pipeline": "yes"},
             "boolean"),
            ({"v": 99, "op": "ping"}, "unsupported protocol version"),
            ({"op": "ping", "id": ["x"]}, "id must be"),
        ],
    )
    def test_malformed_requests(self, document, match):
        with pytest.raises(ProtocolError, match=match):
            parse_request(document)

    def test_control_ops_ignore_payload_fields(self):
        request = parse_request({"op": "stats", "id": "s"})
        assert request.source == ""


class TestRecords:
    def test_item_record_is_the_bare_batch_shape(self):
        # The batch --stream parity contract: one shape, two transports.
        item = ItemResult(index=3, name="p", status="ok", fingerprint="f")
        assert protocol.item_record(item) == item.to_dict()

    def test_result_record_wraps_item_fields(self):
        item = ItemResult(index=0, name="p", status="ok", fingerprint="f")
        record = protocol.result_record("r1", item)
        assert record["v"] == protocol.PROTOCOL_VERSION
        assert record["type"] == "result"
        assert record["id"] == "r1"
        assert record["cached"] is False
        assert record["fingerprint"] == "f"

    def test_cached_result_record_marks_cached(self):
        record = protocol.cached_result_record("r2", {"status": "ok"})
        assert record["cached"] is True
        assert record["status"] == "ok"

    def test_rejected_record_fields(self):
        record = protocol.rejected_record(
            "r3", "queue full", queue_depth=2, queue_limit=2
        )
        assert record["type"] == "rejected"
        assert record["queue_depth"] == 2
        assert record["queue_limit"] == 2

    def test_listening_record_has_no_id(self):
        record = protocol.listening_record("127.0.0.1", 9000)
        assert "id" not in record
        assert record["port"] == 9000

    def test_encode_decode_roundtrip(self):
        record = protocol.pong_record("p1")
        line = protocol.encode(record)
        assert line.endswith(b"\n")
        assert protocol.decode(line) == record

    def test_decode_rejects_junk(self):
        with pytest.raises(ProtocolError):
            protocol.decode(b"not json\n")
        with pytest.raises(ProtocolError):
            protocol.decode(b"[1, 2]\n")
