"""Unit tests for the path-enumeration optimality checkers."""

import pytest

from tests.helpers import AB, diamond, do_while_invariant, straight_line

from repro.core.optimality import (
    check_equivalence,
    check_safety_and_optimality,
    compare_per_path,
    enumerate_traces,
    paths_agree,
    replay,
)
from repro.core.pipeline import optimize


class TestEnumerateTraces:
    def test_straightline_has_one_trace(self):
        traces = enumerate_traces(straight_line(["x = a + b"]))
        assert len(traces) == 1
        assert traces[0].decisions == ()
        assert traces[0].count(AB) == 1

    def test_diamond_has_two_traces(self):
        traces = enumerate_traces(diamond())
        assert {t.decisions for t in traces} == {(True,), (False,)}

    def test_diamond_counts_per_arm(self):
        by_decision = {
            t.decisions: t for t in enumerate_traces(diamond())
        }
        assert by_decision[(True,)].count(AB) == 2  # left arm + join
        assert by_decision[(False,)].count(AB) == 1  # join only

    def test_loop_traces_bounded_by_branch_budget(self):
        traces = enumerate_traces(do_while_invariant(), max_branches=4)
        lengths = sorted(len(t.decisions) for t in traces)
        assert lengths == [1, 2, 3, 4]  # 1..4 loop iterations

    def test_loop_eval_counts_scale_with_iterations(self):
        traces = enumerate_traces(do_while_invariant(), max_branches=3)
        by_len = {len(t.decisions): t for t in traces}
        assert by_len[1].count(AB) == 2  # one body run + after
        assert by_len[3].count(AB) == 4  # three body runs + after

    def test_traces_sorted_deterministically(self):
        a = [t.decisions for t in enumerate_traces(diamond())]
        b = [t.decisions for t in enumerate_traces(diamond())]
        assert a == b


class TestReplay:
    def test_replay_matches_enumeration(self):
        cfg = diamond()
        for trace in enumerate_traces(cfg):
            again = replay(cfg, trace.decisions)
            assert again.eval_counts == trace.eval_counts

    def test_replay_requires_exit(self):
        cfg = do_while_invariant()
        with pytest.raises(RuntimeError, match="exit"):
            replay(cfg, [True] * 3, max_steps=1000)  # never leaves the loop


class TestComparePerPath:
    def test_identity_is_safe_and_neutral(self):
        cfg = diamond()
        report = compare_per_path(cfg, cfg.copy())
        assert report.safe
        assert report.improvements == 0
        assert report.total_before == report.total_after

    def test_lcm_improves_without_violations(self):
        cfg = diamond()
        result = optimize(cfg, "lcm")
        report = compare_per_path(cfg, result.cfg)
        assert report.safe
        assert report.improvements >= 1
        assert report.regressions == 0

    def test_speculative_insertion_flagged(self):
        # Hand-build an unsafe program: compute a+b on a path that
        # never needed it.
        cfg = diamond()
        unsafe = cfg.copy()
        from repro.ir.builder import parse_assign

        unsafe.block("right").instrs.append(parse_assign("extra = a + b"))
        unsafe.block("right").instrs.append(parse_assign("extra2 = a + b"))
        report = compare_per_path(cfg, unsafe)
        assert not report.safe
        assert any(expr == AB for _, expr, _, _ in report.safety_violations)

    def test_expr_filter(self):
        cfg = diamond()
        result = optimize(cfg, "lcm")
        report = compare_per_path(cfg, result.cfg, exprs=[AB])
        assert report.safe


class TestPathsAgree:
    def test_program_agrees_with_itself(self):
        cfg = diamond()
        assert paths_agree(cfg, cfg.copy())

    def test_lcm_and_bcm_agree_everywhere(self):
        cfg = do_while_invariant()
        lcm = optimize(cfg, "lcm")
        bcm = optimize(cfg, "bcm")
        assert paths_agree(lcm.cfg, bcm.cfg, max_branches=6)

    def test_disagreement_detected(self):
        cfg = diamond()
        gcse = optimize(cfg, "gcse")  # removes nothing here
        lcm = optimize(cfg, "lcm")
        assert not paths_agree(gcse.cfg, lcm.cfg)


class TestEquivalence:
    def test_equivalent_programs(self):
        cfg = diamond()
        report = check_equivalence(cfg, optimize(cfg, "lcm").cfg)
        assert report.equivalent
        assert report.runs > 0

    def test_broken_program_detected(self):
        cfg = diamond()
        broken = cfg.copy()
        from repro.ir.builder import parse_assign

        broken.block("join").instrs[0] = parse_assign("y = a - b")
        report = check_equivalence(cfg, broken)
        assert not report.equivalent
        assert any("y" in why for _, why in report.mismatches)


class TestCheckSafetyAndOptimality:
    def test_reference_never_beaten(self):
        cfg = do_while_invariant()
        candidates = {
            name: optimize(cfg, name).cfg for name in ("lcm", "bcm", "gcse")
        }
        reports = check_safety_and_optimality(
            cfg, candidates, reference="lcm", max_branches=5
        )
        assert set(reports) == {"lcm", "bcm", "gcse"}
        assert all(r.safe for r in reports.values())

    def test_optimality_violation_raises(self):
        cfg = diamond()
        candidates = {
            "weak": optimize(cfg, "gcse").cfg,  # removes nothing
            "strong": optimize(cfg, "lcm").cfg,
        }
        with pytest.raises(AssertionError, match="beats reference"):
            check_safety_and_optimality(cfg, candidates, reference="weak")
