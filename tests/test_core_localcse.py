"""Unit tests for local common-subexpression elimination."""

from tests.helpers import straight_line

from repro.core.localcse import local_cse, local_cse_block
from repro.core.optimality import check_equivalence
from repro.ir.builder import parse_assign


def cse_lines(*instrs: str):
    new, replaced = local_cse_block([parse_assign(t) for t in instrs])
    return [str(i) for i in new], replaced


class TestLocalCseBlock:
    def test_duplicate_replaced_by_copy(self):
        lines, replaced = cse_lines("x = a + b", "y = a + b")
        assert lines == ["x = a + b", "y = x"]
        assert replaced == 1

    def test_kill_blocks_reuse(self):
        lines, replaced = cse_lines("x = a + b", "a = 1", "y = a + b")
        assert lines == ["x = a + b", "a = 1", "y = a + b"]
        assert replaced == 0

    def test_holder_overwrite_handled_by_temp(self):
        lines, replaced = cse_lines("x = a + b", "x = 5", "y = a + b")
        assert replaced == 1
        assert lines == [
            "lcse0.t = a + b",
            "x = lcse0.t",
            "x = 5",
            "y = lcse0.t",
        ]

    def test_holder_loss_uses_temp(self):
        # x is overwritten before the reuses, so the value is saved
        # into an LCSE temporary and both later occurrences read it.
        lines, replaced = cse_lines(
            "x = a + b", "x = 9", "z = a + b", "w = a + b"
        )
        assert lines == [
            "lcse0.t = a + b",
            "x = lcse0.t",
            "x = 9",
            "z = lcse0.t",
            "w = lcse0.t",
        ]
        assert replaced == 2

    def test_noop_recomputation_dropped(self):
        lines, replaced = cse_lines("z = a + b", "z = a + b", "u = a + b")
        assert lines == ["z = a + b", "u = z"]
        assert replaced == 2

    def test_self_kill_not_recorded(self):
        lines, replaced = cse_lines("a = a + b", "y = a + b")
        assert lines == ["a = a + b", "y = a + b"]
        assert replaced == 0

    def test_copies_and_constants_ignored(self):
        lines, replaced = cse_lines("x = y", "z = 5", "w = y")
        assert replaced == 0

    def test_three_in_a_row(self):
        lines, replaced = cse_lines("x = a * 2", "y = a * 2", "z = a * 2")
        assert lines == ["x = a * 2", "y = x", "z = x"]
        assert replaced == 2


class TestLocalCseCfg:
    def test_whole_graph(self):
        cfg = straight_line(["x = a + b", "y = a + b"], ["z = a + b"])
        new, replaced = local_cse(cfg)
        assert replaced == 1  # only the within-block duplicate
        assert str(new.block("s0").instrs[1]) == "y = x"
        # The cross-block duplicate is global PRE's job, not LCSE's.
        assert str(new.block("s1").instrs[0]) == "z = a + b"

    def test_input_untouched(self):
        cfg = straight_line(["x = a + b", "y = a + b"])
        before = str(cfg)
        local_cse(cfg)
        assert str(cfg) == before

    def test_semantics_preserved(self):
        cfg = straight_line(
            ["x = a + b", "y = a + b", "a = x + 1", "z = a + b"]
        )
        new, _ = local_cse(cfg)
        assert check_equivalence(cfg, new).equivalent

    def test_idempotent(self):
        cfg = straight_line(["x = a + b", "y = a + b"])
        once, _ = local_cse(cfg)
        twice, replaced = local_cse(once)
        assert replaced == 0
        assert str(once) == str(twice)
